#include "matrix/summa.h"

#include <optional>
#include <unordered_map>

#include "ebsp/job.h"
#include "kvstore/store_util.h"

namespace ripple::matrix {

namespace {

using ripple::ebsp::AggregatorDecl;
using ripple::ebsp::JobProperties;
using ripple::ebsp::RawLoaderPtr;

/// Direction of a block message.
enum class Dir : std::uint8_t { kA = 0, kB = 1 };

struct SummaMsg {
  Dir dir = Dir::kA;
  std::uint32_t batch = 0;
  DenseBlock block;

  void encodeTo(ByteWriter& w) const {
    w.putU8(static_cast<std::uint8_t>(dir));
    w.putVarint(batch);
    block.encodeTo(w);
  }

  static SummaMsg decodeFrom(ByteReader& r) {
    SummaMsg m;
    m.dir = static_cast<Dir>(r.getU8());
    m.batch = static_cast<std::uint32_t>(r.getVarint());
    m.block = DenseBlock::decodeFrom(r);
    return m;
  }
};

/// Component state: grid coordinates, local A/B blocks, the C accumulator,
/// arrived-but-unconsumed blocks, and pipeline cursors.
struct SummaState {
  std::uint32_t grid = 0;
  std::uint32_t i = 0;
  std::uint32_t j = 0;

  // haveA[k] / haveB[k]: the batch-k operand if currently held.  The own
  // blocks start present at batch j (for A) and i (for B).
  std::vector<std::optional<DenseBlock>> haveA;
  std::vector<std::optional<DenseBlock>> haveB;
  std::vector<bool> sentA;  // Sent/forwarded on the horizontal channel.
  std::vector<bool> sentB;
  std::uint32_t nextMult = 0;
  DenseBlock c;

  void encodeTo(ByteWriter& w) const {
    w.putVarint(grid);
    w.putVarint(i);
    w.putVarint(j);
    auto encodeOptVec = [&](const std::vector<std::optional<DenseBlock>>& v) {
      w.putVarint(v.size());
      for (const auto& ob : v) {
        w.putBool(ob.has_value());
        if (ob) {
          ob->encodeTo(w);
        }
      }
    };
    encodeOptVec(haveA);
    encodeOptVec(haveB);
    auto encodeBoolVec = [&](const std::vector<bool>& v) {
      w.putVarint(v.size());
      for (const bool b : v) {
        w.putBool(b);
      }
    };
    encodeBoolVec(sentA);
    encodeBoolVec(sentB);
    w.putVarint(nextMult);
    c.encodeTo(w);
  }

  static SummaState decodeFrom(ByteReader& r) {
    SummaState s;
    s.grid = static_cast<std::uint32_t>(r.getVarint());
    s.i = static_cast<std::uint32_t>(r.getVarint());
    s.j = static_cast<std::uint32_t>(r.getVarint());
    auto decodeOptVec = [&](std::vector<std::optional<DenseBlock>>& v) {
      const auto n = static_cast<std::size_t>(r.getVarint());
      v.resize(n);
      for (auto& ob : v) {
        if (r.getBool()) {
          ob = DenseBlock::decodeFrom(r);
        }
      }
    };
    decodeOptVec(s.haveA);
    decodeOptVec(s.haveB);
    auto decodeBoolVec = [&](std::vector<bool>& v) {
      const auto n = static_cast<std::size_t>(r.getVarint());
      v.assign(n, false);
      for (std::size_t k = 0; k < n; ++k) {
        v[k] = r.getBool();
      }
    };
    decodeBoolVec(s.sentA);
    decodeBoolVec(s.sentB);
    s.nextMult = static_cast<std::uint32_t>(r.getVarint());
    s.c = DenseBlock::decodeFrom(r);
    return s;
  }
};

std::uint32_t componentKey(std::uint32_t grid, std::uint32_t i,
                           std::uint32_t j) {
  return i * grid + j;
}

/// Hop position of component (at ring index `self`) in the multicast of
/// the block originating at ring index `origin`: 0 = origin, G-1 = tail.
std::uint32_t hopPosition(std::uint32_t self, std::uint32_t origin,
                          std::uint32_t grid) {
  return (self + grid - origin) % grid;
}

class SummaCompute : public ebsp::Compute<std::uint32_t, SummaState, SummaMsg> {
 public:
  SummaCompute(bool limited, std::shared_ptr<SummaInstrumentation> instr)
      : limited_(limited), instr_(std::move(instr)) {}

  bool compute(Context& ctx) override {
    // The component's working state is cached as a live object between
    // invocations and written back to the K/V table once the component is
    // done.  This mirrors the paper's store contract — "local operations
    // do not marshal" — a mature in-memory store (WXS) keeps collocated
    // state as live objects; re-encoding several dense blocks on every
    // invocation would be an artifact of this port, not of the design,
    // and it would mask the synchronization effects §V-B measures.
    SummaState& s = liveState(ctx);
    const std::uint32_t g = s.grid;

    // 1. Ingest arrived blocks.  Per-channel FIFO plus SUMMA's send order
    //    guarantees batch order per direction.
    for (const SummaMsg& m : ctx.inputMessages()) {
      if (m.dir == Dir::kA) {
        s.haveA[m.batch] = m.block;
      } else {
        s.haveB[m.batch] = m.block;
      }
    }

    // 2. Work loop.  Synchronized mode performs at most one send per
    //    direction and one multiply, then waits for the barrier;
    //    unsynchronized mode drains everything possible.
    bool didASend = false;
    bool didBSend = false;
    bool didMult = false;
    for (;;) {
      bool progressed = false;

      if ((!limited_ || !didASend)) {
        if (trySend(ctx, s, Dir::kA)) {
          didASend = true;
          progressed = true;
        }
      }
      if ((!limited_ || !didBSend)) {
        if (trySend(ctx, s, Dir::kB)) {
          didBSend = true;
          progressed = true;
        }
      }
      if ((!limited_ || !didMult)) {
        if (s.nextMult < g && s.haveA[s.nextMult].has_value() &&
            s.haveB[s.nextMult].has_value()) {
          s.c.multiplyAccumulate(*s.haveA[s.nextMult], *s.haveB[s.nextMult]);
          if (instr_) {
            instr_->recordMultiply(ctx.stepNum());
          }
          ++s.nextMult;
          didMult = true;
          progressed = true;
        }
      }
      releaseConsumed(s);
      if (!progressed) {
        break;
      }
      if (limited_ && didASend && didBSend && didMult) {
        break;
      }
    }

    // 3. Write back once the component has finished all multiplies and
    //    sends; until then the live cached object carries the state.
    if (s.nextMult == g && !nextSendBatch(s, Dir::kA) &&
        !nextSendBatch(s, Dir::kB)) {
      ctx.writeState(s);
      dropLiveState(ctx.key());
      return false;
    }

    // A checkpointed run captures the state TABLES at each barrier, so
    // the live object must be mirrored there before returning; otherwise
    // recovery would restore the loader's initial snapshot while the
    // cache remembers sends whose messages died with the failed server,
    // and the replay would starve downstream components (DESIGN.md §11).
    if (ctx.checkpointed()) {
      ctx.writeState(s);
    }

    // Continue while actions remain possible without new input; blocks
    // still in flight re-enable the component on arrival.
    const bool backlog = hasImmediateWork(s);
    if (limited_) {
      return backlog;
    }
    return false;
  }

  /// The engine restored the state tables from a checkpoint: every live
  /// object is now ahead of the truth and must be re-read from the table
  /// on next touch.
  void onRecovery() override {
    LockGuard lock(liveMu_);
    live_.clear();
  }

 private:
  /// Fetch (or load from the state table on first touch) the component's
  /// live state object.  Each component is only ever touched by its own
  /// part's thread, so the returned reference is safe to use outside the
  /// registry lock.
  SummaState& liveState(Context& ctx) {
    const std::uint32_t key = ctx.key();
    {
      LockGuard lock(liveMu_);
      auto it = live_.find(key);
      if (it != live_.end()) {
        return *it->second;
      }
    }
    auto stateOpt = ctx.readState();
    if (!stateOpt) {
      throw std::logic_error("SUMMA: component has no state");
    }
    auto owned = std::make_unique<SummaState>(std::move(*stateOpt));
    SummaState* raw = owned.get();
    LockGuard lock(liveMu_);
    live_.emplace(key, std::move(owned));
    return *raw;
  }

  void dropLiveState(std::uint32_t key) {
    LockGuard lock(liveMu_);
    live_.erase(key);
  }
  /// Batch this component must send next on the given channel, if any:
  /// the smallest unsent batch in its schedule.  A component participates
  /// in the multicast of batch k unless it is the tail of the ring.
  [[nodiscard]] static std::optional<std::uint32_t> nextSendBatch(
      const SummaState& s, Dir dir) {
    const std::uint32_t g = s.grid;
    if (g < 2) {
      return std::nullopt;  // Single component: nothing to multicast.
    }
    const std::uint32_t self = dir == Dir::kA ? s.j : s.i;
    const auto& sent = dir == Dir::kA ? s.sentA : s.sentB;
    for (std::uint32_t k = 0; k < g; ++k) {
      const std::uint32_t pos = hopPosition(self, k, g);
      if (pos > g - 2) {
        continue;  // Tail: no forward for this batch.
      }
      if (!sent[k]) {
        return k;  // Channel order: batches strictly ascending.
      }
    }
    return std::nullopt;
  }

  /// Send the next due block on `dir`'s channel if it is in hand.
  bool trySend(Context& ctx, SummaState& s, Dir dir) {
    const auto batch = nextSendBatch(s, dir);
    if (!batch) {
      return false;
    }
    const auto& have = dir == Dir::kA ? s.haveA : s.haveB;
    if (!have[*batch].has_value()) {
      return false;  // Not arrived yet; channel order forbids skipping.
    }
    const std::uint32_t g = s.grid;
    SummaMsg m;
    m.dir = dir;
    m.batch = *batch;
    m.block = *have[*batch];
    std::uint32_t destKey;
    if (dir == Dir::kA) {
      destKey = componentKey(g, s.i, (s.j + 1) % g);
      s.sentA[*batch] = true;
    } else {
      destKey = componentKey(g, (s.i + 1) % g, s.j);
      s.sentB[*batch] = true;
    }
    ctx.sendMessage(destKey, m);
    return true;
  }

  /// Drop operand blocks that have been both multiplied and forwarded
  /// (SUMMA's limited-buffering virtue).
  static void releaseConsumed(SummaState& s) {
    const std::uint32_t g = s.grid;
    auto release = [&](std::vector<std::optional<DenseBlock>>& have,
                       const std::vector<bool>& sent, std::uint32_t self) {
      for (std::uint32_t k = 0; k < g; ++k) {
        if (!have[k]) {
          continue;
        }
        const bool used = s.nextMult > k;
        const std::uint32_t pos = hopPosition(self, k, g);
        const bool forwarded = pos > g - 2 || sent[k];
        if (used && forwarded) {
          have[k].reset();
        }
      }
    };
    release(s.haveA, s.sentA, s.j);
    release(s.haveB, s.sentB, s.i);
  }

  /// Any action currently possible without further input?
  [[nodiscard]] bool hasImmediateWork(const SummaState& s) const {
    const std::uint32_t g = s.grid;
    if (s.nextMult < g && s.haveA[s.nextMult].has_value() &&
        s.haveB[s.nextMult].has_value()) {
      return true;
    }
    for (const Dir dir : {Dir::kA, Dir::kB}) {
      const auto batch = nextSendBatch(s, dir);
      if (batch) {
        const auto& have = dir == Dir::kA ? s.haveA : s.haveB;
        if (have[*batch].has_value()) {
          return true;
        }
      }
    }
    return false;
  }

  bool limited_;
  std::shared_ptr<SummaInstrumentation> instr_;
  RankedMutex<LockRank::kEngineControl> liveMu_;
  std::unordered_map<std::uint32_t, std::unique_ptr<SummaState>> live_;
};

class SummaJob : public ebsp::Job<std::uint32_t, SummaState, SummaMsg> {
 public:
  SummaJob(const BlockMatrix& a, const BlockMatrix& b,
           const SummaOptions& options)
      : a_(a), b_(b), options_(options) {}

  std::vector<std::string> stateTableNames() const override {
    return {options_.stateTable};
  }

  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<SummaCompute>(options_.synchronized,
                                          options_.instrumentation);
  }

  std::string referenceTable() const override { return options_.stateTable; }

  JobProperties properties() const override {
    JobProperties p;
    if (!options_.synchronized) {
      // Pipelined multicasts interleaved with local computation: exactly
      // the paper's `incremental` example.  The compute function never
      // returns the positive continue signal in this variant.
      p.incremental = true;
      p.noContinue = true;
    }
    return p;
  }

  std::vector<RawLoaderPtr> loaders() const override {
    const BlockMatrix& a = a_;
    const BlockMatrix& b = b_;
    return {std::make_shared<ebsp::FunctionLoader>(
        [&a, &b](ebsp::LoaderContext& ctx) {
          const auto g = static_cast<std::uint32_t>(a.grid());
          for (std::uint32_t i = 0; i < g; ++i) {
            for (std::uint32_t j = 0; j < g; ++j) {
              SummaState s;
              s.grid = g;
              s.i = i;
              s.j = j;
              s.haveA.resize(g);
              s.haveB.resize(g);
              s.sentA.assign(g, false);
              s.sentB.assign(g, false);
              s.haveA[j] = a.block(i, j);
              s.haveB[i] = b.block(i, j);
              s.c = DenseBlock(a.blockSize(), a.blockSize());
              const Bytes key = encodeToBytes(componentKey(g, i, j));
              ctx.putState(0, key, encodeToBytes(s));
              ctx.enableComponent(key);
            }
          }
        })};
  }

 private:
  const BlockMatrix& a_;
  const BlockMatrix& b_;
  const SummaOptions& options_;
};

}  // namespace

SummaResult runSumma(ebsp::Engine& engine, const BlockMatrix& a,
                     const BlockMatrix& b, const SummaOptions& options) {
  if (a.grid() != b.grid() || a.blockSize() != b.blockSize()) {
    throw std::invalid_argument("runSumma: shape mismatch");
  }
  kv::KVStore& store = *engine.store();
  kv::TableOptions tableOptions;
  tableOptions.parts = options.parts;
  // Components are placed round-robin by grid index, one per part when
  // parts == G*G — the paper's layout ("all matrices stored in the same
  // MN components", each on its own processor).  A hash partitioner
  // would collide components onto shared parts and distort the load
  // balance the experiment measures.
  tableOptions.partitioner = std::make_shared<const Partitioner>(
      options.parts, [](BytesView key) -> std::uint64_t {
        ByteReader r(key);
        return r.getVarint();
      });
  kv::TablePtr table = store.createTable(options.stateTable, tableOptions);

  SummaJob job(a, b, options);
  SummaResult result;
  result.job = ebsp::runJob(engine, job);

  // Read back the C blocks.
  const auto g = static_cast<std::uint32_t>(a.grid());
  result.c = BlockMatrix(g, a.blockSize());
  kv::TypedTable<std::uint32_t, SummaState> typed(table);
  for (std::uint32_t i = 0; i < g; ++i) {
    for (std::uint32_t j = 0; j < g; ++j) {
      auto s = typed.get(componentKey(g, i, j));
      if (!s) {
        throw std::logic_error("runSumma: missing component state");
      }
      if (s->nextMult != g) {
        throw std::logic_error("runSumma: component finished with " +
                               std::to_string(s->nextMult) + "/" +
                               std::to_string(g) + " multiplies");
      }
      result.c.block(i, j) = std::move(s->c);
    }
  }
  store.dropTable(options.stateTable);
  return result;
}

}  // namespace ripple::matrix
