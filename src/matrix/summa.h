// SUMMA-style matrix multiplication on K/V EBSP (paper §V-B).
//
// C <- A x B with all three matrices decomposed into a G x G grid of
// blocks held by G*G components.  Each A block is multicast along its grid
// row and each B block down its grid column, pipelined as point-to-point
// sends from one grid point to the next; a component multiplies
// corresponding blocks as they meet and accumulates into its local C
// block (the per-component state).
//
// Two execution variants, with identical arithmetic:
//  * synchronized (BSPified) — per step a component performs at most one
//    block multiply and at most one block send per direction, in an order
//    consistent with original SUMMA; blocks are delivered in the step
//    after they are sent.  Uses the continue signal to stay enabled while
//    it has backlog.
//  * no-sync — the job declares the `incremental` property (messages may
//    be delivered in any grouping provided per-(sender,receiver) order is
//    preserved — which is exactly what the SUMMA pattern needs); each
//    component processes blocks as they arrive, with no per-step limits
//    and no barriers.

#pragma once

#include <map>
#include <memory>

#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "ebsp/engine.h"
#include "matrix/dense.h"

namespace ripple::matrix {

/// Per-step multiply counts observed during a synchronized run (Table II
/// instrumentation).  Thread-safe.
class SummaInstrumentation {
 public:
  void recordMultiply(int step) {
    LockGuard lock(mu_);
    ++multsPerStep_[step];
  }

  [[nodiscard]] std::map<int, std::uint64_t> multsPerStep() const {
    LockGuard lock(mu_);
    return multsPerStep_;
  }

 private:
  mutable RankedMutex<LockRank::kEngineState> mu_;
  std::map<int, std::uint64_t> multsPerStep_;
};

struct SummaOptions {
  /// Run with synchronization barriers (BSPified) or without (no-sync).
  bool synchronized = true;

  /// State table name; also the job's reference table.  The table is
  /// created with `parts` parts (the paper's run used one part per
  /// component: a 3x3 grid on a store with enough containers).
  std::string stateTable = "summa_state";
  std::uint32_t parts = 9;

  /// Optional Table II instrumentation (synchronized runs only).
  std::shared_ptr<SummaInstrumentation> instrumentation;
};

struct SummaResult {
  ebsp::JobResult job;
  BlockMatrix c;
};

/// Multiply A x B on the engine's store.  A and B must share grid and
/// block size.  The state table named in `options` must not yet exist.
SummaResult runSumma(ebsp::Engine& engine, const BlockMatrix& a,
                     const BlockMatrix& b, const SummaOptions& options);

}  // namespace ripple::matrix
