#include "matrix/dense.h"

#include <cmath>
#include <stdexcept>

namespace ripple::matrix {

void DenseBlock::multiplyAccumulate(const DenseBlock& a, const DenseBlock& b) {
  if (a.cols_ != b.rows_ || rows_ != a.rows_ || cols_ != b.cols_) {
    throw std::invalid_argument("DenseBlock::multiplyAccumulate: dimension "
                                "mismatch");
  }
  // i-k-j loop order: streams b row-wise for cache friendliness.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a.data_[i * a.cols_ + k];
      if (aik == 0.0) {
        continue;
      }
      const double* brow = &b.data_[k * b.cols_];
      double* crow = &data_[i * cols_];
      for (std::size_t j = 0; j < cols_; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

void DenseBlock::add(const DenseBlock& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("DenseBlock::add: dimension mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void DenseBlock::fillRandom(Rng& rng) {
  for (double& x : data_) {
    x = rng.nextDouble() * 2.0 - 1.0;
  }
}

bool DenseBlock::approxEqual(const DenseBlock& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tolerance) {
      return false;
    }
  }
  return true;
}

double DenseBlock::frobeniusNorm() const {
  double sum = 0;
  for (const double x : data_) {
    sum += x * x;
  }
  return std::sqrt(sum);
}

void DenseBlock::encodeTo(ByteWriter& w) const {
  w.putVarint(rows_);
  w.putVarint(cols_);
  for (const double x : data_) {
    w.putDouble(x);
  }
}

DenseBlock DenseBlock::decodeFrom(ByteReader& r) {
  const auto rows = static_cast<std::size_t>(r.getVarint());
  const auto cols = static_cast<std::size_t>(r.getVarint());
  DenseBlock b(rows, cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    b.data_[i] = r.getDouble();
  }
  return b;
}

BlockMatrix::BlockMatrix(std::size_t grid, std::size_t blockSize)
    : grid_(grid), blockSize_(blockSize) {
  blocks_.reserve(grid * grid);
  for (std::size_t i = 0; i < grid * grid; ++i) {
    blocks_.emplace_back(blockSize, blockSize);
  }
}

void BlockMatrix::fillRandom(Rng& rng) {
  for (DenseBlock& b : blocks_) {
    b.fillRandom(rng);
  }
}

BlockMatrix BlockMatrix::multiplyReference(const BlockMatrix& a,
                                           const BlockMatrix& b) {
  if (a.grid_ != b.grid_ || a.blockSize_ != b.blockSize_) {
    throw std::invalid_argument("BlockMatrix::multiplyReference: shape "
                                "mismatch");
  }
  BlockMatrix c(a.grid_, a.blockSize_);
  for (std::size_t i = 0; i < a.grid_; ++i) {
    for (std::size_t j = 0; j < a.grid_; ++j) {
      for (std::size_t k = 0; k < a.grid_; ++k) {
        c.block(i, j).multiplyAccumulate(a.block(i, k), b.block(k, j));
      }
    }
  }
  return c;
}

bool BlockMatrix::approxEqual(const BlockMatrix& other,
                              double tolerance) const {
  if (grid_ != other.grid_ || blockSize_ != other.blockSize_) {
    return false;
  }
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (!blocks_[i].approxEqual(other.blocks_[i], tolerance)) {
      return false;
    }
  }
  return true;
}

}  // namespace ripple::matrix
