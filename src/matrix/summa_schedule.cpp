#include "matrix/summa_schedule.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <stdexcept>

namespace ripple::matrix {

namespace {

enum class Dir : std::uint8_t { kA = 0, kB = 1 };

struct Component {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  std::vector<bool> haveA;
  std::vector<bool> haveB;
  std::vector<bool> sentA;
  std::vector<bool> sentB;
  std::uint32_t nextMult = 0;
};

std::uint32_t hopPosition(std::uint32_t self, std::uint32_t origin,
                          std::uint32_t grid) {
  return (self + grid - origin) % grid;
}

std::optional<std::uint32_t> nextSendBatch(const Component& c, Dir dir,
                                           std::uint32_t g) {
  if (g < 2) {
    return std::nullopt;
  }
  const std::uint32_t self = dir == Dir::kA ? c.j : c.i;
  const auto& sent = dir == Dir::kA ? c.sentA : c.sentB;
  for (std::uint32_t k = 0; k < g; ++k) {
    if (hopPosition(self, k, g) > g - 2) {
      continue;
    }
    if (!sent[k]) {
      return k;
    }
  }
  return std::nullopt;
}

bool canMultiply(const Component& c, std::uint32_t g) {
  return c.nextMult < g && c.haveA[c.nextMult] && c.haveB[c.nextMult];
}

bool hasImmediateWork(const Component& c, std::uint32_t g) {
  if (canMultiply(c, g)) {
    return true;
  }
  for (const Dir dir : {Dir::kA, Dir::kB}) {
    const auto batch = nextSendBatch(c, dir, g);
    if (batch && (dir == Dir::kA ? c.haveA : c.haveB)[*batch]) {
      return true;
    }
  }
  return false;
}

}  // namespace

SummaSchedule simulateSummaSchedule(std::uint32_t grid) {
  if (grid == 0) {
    throw std::invalid_argument("simulateSummaSchedule: grid must be > 0");
  }
  const std::uint32_t g = grid;
  std::vector<Component> comps(g * g);
  for (std::uint32_t i = 0; i < g; ++i) {
    for (std::uint32_t j = 0; j < g; ++j) {
      Component& c = comps[i * g + j];
      c.i = i;
      c.j = j;
      c.haveA.assign(g, false);
      c.haveB.assign(g, false);
      c.sentA.assign(g, false);
      c.sentB.assign(g, false);
      c.haveA[j] = true;
      c.haveB[i] = true;
    }
  }

  struct Msg {
    Dir dir;
    std::uint32_t batch;
  };
  std::vector<std::vector<Msg>> inbox(g * g);
  std::vector<bool> enabled(g * g, true);

  SummaSchedule schedule;
  const std::uint64_t wanted = static_cast<std::uint64_t>(g) * g * g;
  std::uint64_t done = 0;
  const int maxSteps = static_cast<int>(8 * g + 8);

  for (int step = 1; done < wanted; ++step) {
    if (step > maxSteps) {
      throw std::logic_error("simulateSummaSchedule: schedule did not finish");
    }
    std::vector<std::vector<Msg>> nextInbox(g * g);
    std::vector<bool> nextEnabled(g * g, false);
    std::uint64_t mults = 0;

    for (std::uint32_t idx = 0; idx < g * g; ++idx) {
      if (!enabled[idx] && inbox[idx].empty()) {
        continue;
      }
      Component& c = comps[idx];
      for (const Msg& m : inbox[idx]) {
        (m.dir == Dir::kA ? c.haveA : c.haveB)[m.batch] = true;
      }
      // At most one send per direction and one multiply per step, as in
      // the engine's synchronized SummaCompute.
      for (const Dir dir : {Dir::kA, Dir::kB}) {
        const auto batch = nextSendBatch(c, dir, g);
        if (batch && (dir == Dir::kA ? c.haveA : c.haveB)[*batch]) {
          std::uint32_t dest;
          if (dir == Dir::kA) {
            dest = c.i * g + (c.j + 1) % g;
            c.sentA[*batch] = true;
          } else {
            dest = ((c.i + 1) % g) * g + c.j;
            c.sentB[*batch] = true;
          }
          nextInbox[dest].push_back({dir, *batch});
        }
      }
      if (canMultiply(c, g)) {
        ++c.nextMult;
        ++mults;
        ++done;
      }
      if (hasImmediateWork(c, g)) {
        nextEnabled[idx] = true;
      }
    }

    schedule.multsPerStep.push_back(mults);
    inbox = std::move(nextInbox);
    enabled = std::move(nextEnabled);
  }
  return schedule;
}

double simulateNoSyncMakespan(std::uint32_t grid) {
  if (grid == 0) {
    throw std::invalid_argument("simulateNoSyncMakespan: grid must be > 0");
  }
  const std::uint32_t g = grid;
  std::vector<Component> comps(g * g);
  std::vector<double> clock(g * g, 0.0);
  for (std::uint32_t i = 0; i < g; ++i) {
    for (std::uint32_t j = 0; j < g; ++j) {
      Component& c = comps[i * g + j];
      c.i = i;
      c.j = j;
      c.haveA.assign(g, false);
      c.haveB.assign(g, false);
      c.sentA.assign(g, false);
      c.sentB.assign(g, false);
      c.haveA[j] = true;
      c.haveB[i] = true;
    }
  }

  struct Event {
    double time;
    std::uint64_t seq;
    std::uint32_t dest;
    Dir dir;
    std::uint32_t batch;
    bool operator>(const Event& other) const {
      return time > other.time || (time == other.time && seq > other.seq);
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;

  // Each component runs once at time 0 to prime the pipeline, then once
  // per arriving block: forward first (free), then multiply (cost 1 per
  // block multiply, serializing the component).
  auto runComponent = [&](std::uint32_t idx, double now) {
    Component& c = comps[idx];
    double& t = clock[idx];
    t = std::max(t, now);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (const Dir dir : {Dir::kA, Dir::kB}) {
        const auto batch = nextSendBatch(c, dir, g);
        if (batch && (dir == Dir::kA ? c.haveA : c.haveB)[*batch]) {
          std::uint32_t dest;
          if (dir == Dir::kA) {
            dest = c.i * g + (c.j + 1) % g;
            c.sentA[*batch] = true;
          } else {
            dest = ((c.i + 1) % g) * g + c.j;
            c.sentB[*batch] = true;
          }
          events.push({t, seq++, dest, dir, *batch});
          progressed = true;
        }
      }
      if (canMultiply(c, g)) {
        t += 1.0;  // One block multiply.
        ++c.nextMult;
        progressed = true;
      }
    }
  };

  for (std::uint32_t idx = 0; idx < g * g; ++idx) {
    runComponent(idx, 0.0);
  }
  while (!events.empty()) {
    const Event e = events.top();
    events.pop();
    Component& c = comps[e.dest];
    (e.dir == Dir::kA ? c.haveA : c.haveB)[e.batch] = true;
    runComponent(e.dest, e.time);
  }

  double makespan = 0;
  for (std::uint32_t idx = 0; idx < g * g; ++idx) {
    if (comps[idx].nextMult != g) {
      throw std::logic_error("simulateNoSyncMakespan: incomplete component");
    }
    makespan = std::max(makespan, clock[idx]);
  }
  return makespan;
}

}  // namespace ripple::matrix
