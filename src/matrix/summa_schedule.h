// Analytic simulator of the BSPified SUMMA schedule (paper Table II).
//
// Simulates the per-step behaviour of the synchronized SUMMA job — at
// most one block multiply and one block send per direction per component
// per step, sends in SUMMA-consistent channel order, delivery in the
// following step — without doing any block arithmetic.  Used to
// regenerate Table II and to cross-check the real engine's instrumented
// run (they must agree step for step).

#pragma once

#include <cstdint>
#include <vector>

namespace ripple::matrix {

struct SummaSchedule {
  /// multsPerStep[s] = number of block multiplications in step s+1.
  std::vector<std::uint64_t> multsPerStep;

  [[nodiscard]] std::uint64_t steps() const { return multsPerStep.size(); }
  [[nodiscard]] std::uint64_t totalMultiplies() const {
    std::uint64_t total = 0;
    for (const std::uint64_t m : multsPerStep) {
      total += m;
    }
    return total;
  }

  /// max over components of multiplies done serially == G; the
  /// synchronization slowdown factor of the paper is steps()/G (7/3 for
  /// G = 3).
  [[nodiscard]] double slowdownFactor(std::uint32_t grid) const {
    return static_cast<double>(steps()) / static_cast<double>(grid);
  }
};

/// Simulate the synchronized schedule for a G x G grid.
[[nodiscard]] SummaSchedule simulateSummaSchedule(std::uint32_t grid);

/// Simulate the unsynchronized (pipelined) execution in idealized time
/// units where one block multiply costs 1 and communication is free;
/// returns the makespan in multiply-units.  The paper's ideal no-sync
/// time is G (every component pipelines its G multiplies).
[[nodiscard]] double simulateNoSyncMakespan(std::uint32_t grid);

}  // namespace ripple::matrix
