// Dense matrix blocks: the arithmetic kernel under the SUMMA workload.

#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/random.h"

namespace ripple::matrix {

/// Row-major dense block of doubles.
class DenseBlock {
 public:
  DenseBlock() = default;
  DenseBlock(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// this += a * b.  Dimensions must agree; throws otherwise.
  void multiplyAccumulate(const DenseBlock& a, const DenseBlock& b);

  /// this += other (element-wise).
  void add(const DenseBlock& other);

  void fillRandom(Rng& rng);

  [[nodiscard]] bool approxEqual(const DenseBlock& other,
                                 double tolerance = 1e-9) const;

  [[nodiscard]] double frobeniusNorm() const;

  // Codec support (SelfCodable).
  void encodeTo(ByteWriter& w) const;
  static DenseBlock decodeFrom(ByteReader& r);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// A dense matrix stored as a G x G grid of b x b blocks (the SUMMA
/// decomposition with M = N = G).
class BlockMatrix {
 public:
  BlockMatrix() = default;
  BlockMatrix(std::size_t grid, std::size_t blockSize);

  [[nodiscard]] std::size_t grid() const { return grid_; }
  [[nodiscard]] std::size_t blockSize() const { return blockSize_; }

  [[nodiscard]] const DenseBlock& block(std::size_t i, std::size_t j) const {
    return blocks_[i * grid_ + j];
  }
  DenseBlock& block(std::size_t i, std::size_t j) {
    return blocks_[i * grid_ + j];
  }

  void fillRandom(Rng& rng);

  /// Reference (serial) product: C = A * B, blockwise.
  [[nodiscard]] static BlockMatrix multiplyReference(const BlockMatrix& a,
                                                     const BlockMatrix& b);

  [[nodiscard]] bool approxEqual(const BlockMatrix& other,
                                 double tolerance = 1e-9) const;

 private:
  std::size_t grid_ = 0;
  std::size_t blockSize_ = 0;
  std::vector<DenseBlock> blocks_;
};

}  // namespace ripple::matrix
