// The Message Queuing SPI (paper §III-B).
//
// A *queue set* is placed like a given key/value table: one queue per part
// of that table.  Mobile client code runs in each part reading (with a
// timeout) from the local queue of the set; messages can be put into a
// given queue of a queue set from anywhere in the system.
//
// Delivery guarantee relied on by the no-sync engine: per (sender thread,
// queue) FIFO — if one sender puts a then b into the same queue, readers
// observe a before b.

#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "kvstore/table.h"

namespace ripple::mq {

/// Read access to the local queue, handed to worker code running in a part.
class WorkerContext {
 public:
  virtual ~WorkerContext() = default;

  /// Which queue (== part index) this worker primarily serves.  Under the
  /// multiplexed runWorkers overload a worker owns every queue congruent
  /// to this index modulo the worker count; read/tryRead then serve all
  /// of them (round-robin), and trySteal/tryReadFrom treat any owned
  /// queue as local.
  [[nodiscard]] virtual std::uint32_t queueIndex() const = 0;

  /// Blocking read with timeout; nullopt on timeout or when the set is
  /// closed and the queue drained.
  virtual std::optional<Bytes> read(std::chrono::milliseconds timeout) = 0;

  /// Non-blocking read.
  virtual std::optional<Bytes> tryRead() = 0;

  /// Attempt to steal one message from another queue of the set.  Only
  /// legal when the job's properties allow run-anywhere (paper §II-A);
  /// stealing forfeits per-sender ordering for the stolen message.
  /// Default: stealing unsupported.
  virtual std::optional<Bytes> trySteal(std::uint32_t fromQueue) {
    (void)fromQueue;
    return std::nullopt;
  }

  /// Non-blocking read from the FRONT of another queue of the set.
  /// Unlike trySteal this preserves per-sender FIFO, but it is only
  /// legal when that queue's original reader is gone for good — it is
  /// the takeover primitive the no-sync engine uses to re-dispatch a
  /// dead worker's queue to a survivor.  Default: takeover unsupported.
  virtual std::optional<Bytes> tryReadFrom(std::uint32_t fromQueue) {
    (void)fromQueue;
    return std::nullopt;
  }
};

class QueueSet {
 public:
  virtual ~QueueSet() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual std::uint32_t numQueues() const = 0;

  /// Enqueue into one queue; callable from anywhere.  Returns false if
  /// the set is closed.
  virtual bool put(std::uint32_t queue, Bytes message) = 0;

  /// Run `body` once per queue, collocated with the corresponding part,
  /// and block until every instance returns.  Workers typically loop on
  /// ctx.read() until a termination condition of the client's choosing.
  virtual void runWorkers(
      const std::function<void(WorkerContext&)>& body) = 0;

  /// Run `body` on `threads` striped workers instead of one per queue:
  /// worker w (0-based) owns queues {w, w + threads, ...} and its context
  /// multiplexes them.  threads == 0 or >= numQueues() degenerates to the
  /// one-worker-per-queue overload above.  Implementations that cannot
  /// multiplex may ignore the budget (the default does), so callers must
  /// size per-worker state by the worker ids actually observed.
  virtual void runWorkers(const std::function<void(WorkerContext&)>& body,
                          std::uint32_t threads) {
    (void)threads;
    runWorkers(body);
  }

  /// Close the set: subsequent puts fail, reads drain then return nullopt
  /// immediately.  Idempotent.
  virtual void close() = 0;

  /// Messages currently buffered across all queues (diagnostics).
  [[nodiscard]] virtual std::uint64_t backlog() const = 0;
};

using QueueSetPtr = std::shared_ptr<QueueSet>;

/// Factory for queue sets; the paper's adjunct lower-level interface.
class Queuing {
 public:
  virtual ~Queuing() = default;

  /// Create a queue set placed like `placement` (queue i collocated with
  /// part i).  Throws if the name exists.
  virtual QueueSetPtr createQueueSet(const std::string& name,
                                     const kv::TablePtr& placement) = 0;

  virtual void deleteQueueSet(const std::string& name) = 0;
};

using QueuingPtr = std::shared_ptr<Queuing>;

/// Direct in-memory implementation (one blocking queue per part).
[[nodiscard]] QueuingPtr makeMemQueuing(kv::KVStorePtr store);

/// The paper's generic implementation: each queue set is backed by a new
/// table of the underlying store ("a private extension in the Table
/// interface"), with sequenced keys providing per-queue FIFO.
[[nodiscard]] QueuingPtr makeTableQueuing(kv::KVStorePtr store);

}  // namespace ripple::mq
