#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.h"
#include "mq/queue.h"

namespace ripple::mq {

namespace {

class MemQueueSet : public QueueSet,
                    public std::enable_shared_from_this<MemQueueSet> {
 public:
  MemQueueSet(std::string name, kv::KVStorePtr store, kv::TablePtr placement)
      : name_(std::move(name)), store_(std::move(store)),
        placement_(std::move(placement)),
        queues_(placement_->numParts()) {
    for (auto& q : queues_) {
      q = std::make_unique<BlockingQueue<Bytes>>();
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }

  [[nodiscard]] std::uint32_t numQueues() const override {
    return static_cast<std::uint32_t>(queues_.size());
  }

  bool put(std::uint32_t queue, Bytes message) override {
    return queues_.at(queue)->push(std::move(message));
  }

  void runWorkers(const std::function<void(WorkerContext&)>& body) override {
    // Workers are long-lived mobile code; each gets a dedicated thread
    // adopted into its part's location so state access stays local.
    // (Store executors cannot host them: a looping worker would starve
    // every other task on its executor.)
    std::vector<std::thread> threads;
    threads.reserve(queues_.size());
    std::mutex failMu;
    std::exception_ptr failure;
    for (std::uint32_t part = 0; part < numQueues(); ++part) {
      threads.emplace_back([&, part] {
        auto token = store_->adoptPartThread(*placement_, part);
        Context ctx(this, part);
        try {
          body(ctx);
        } catch (...) {
          std::lock_guard<std::mutex> lock(failMu);
          if (!failure) {
            failure = std::current_exception();
          }
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    if (failure) {
      std::rethrow_exception(failure);
    }
  }

  void close() override {
    for (auto& q : queues_) {
      q->close();
    }
  }

  [[nodiscard]] std::uint64_t backlog() const override {
    std::uint64_t total = 0;
    for (const auto& q : queues_) {
      total += q->size();
    }
    return total;
  }

 private:
  class Context : public WorkerContext {
   public:
    Context(MemQueueSet* set, std::uint32_t queue) : set_(set), queue_(queue) {}

    [[nodiscard]] std::uint32_t queueIndex() const override { return queue_; }

    std::optional<Bytes> read(std::chrono::milliseconds timeout) override {
      return set_->queues_[queue_]->popFor(timeout);
    }

    std::optional<Bytes> tryRead() override {
      return set_->queues_[queue_]->tryPop();
    }

    std::optional<Bytes> trySteal(std::uint32_t fromQueue) override {
      if (fromQueue == queue_ || fromQueue >= set_->numQueues()) {
        return std::nullopt;
      }
      return set_->queues_[fromQueue]->trySteal();
    }

    std::optional<Bytes> tryReadFrom(std::uint32_t fromQueue) override {
      if (fromQueue == queue_ || fromQueue >= set_->numQueues()) {
        return std::nullopt;
      }
      return set_->queues_[fromQueue]->tryPop();
    }

   private:
    MemQueueSet* set_;
    std::uint32_t queue_;
  };

  std::string name_;
  kv::KVStorePtr store_;
  kv::TablePtr placement_;
  std::vector<std::unique_ptr<BlockingQueue<Bytes>>> queues_;
};

class MemQueuing : public Queuing {
 public:
  explicit MemQueuing(kv::KVStorePtr store) : store_(std::move(store)) {}

  QueueSetPtr createQueueSet(const std::string& name,
                             const kv::TablePtr& placement) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (sets_.contains(name)) {
      throw std::invalid_argument("MemQueuing: queue set '" + name +
                                  "' already exists");
    }
    auto set = std::make_shared<MemQueueSet>(name, store_, placement);
    sets_.emplace(name, set);
    return set;
  }

  void deleteQueueSet(const std::string& name) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sets_.find(name);
    if (it != sets_.end()) {
      it->second->close();
      sets_.erase(it);
    }
  }

 private:
  kv::KVStorePtr store_;
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<MemQueueSet>> sets_;
};

}  // namespace

QueuingPtr makeMemQueuing(kv::KVStorePtr store) {
  return std::make_shared<MemQueuing>(std::move(store));
}

}  // namespace ripple::mq
