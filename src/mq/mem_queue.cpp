#include <atomic>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/queue.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "mq/queue.h"

namespace ripple::mq {

namespace {

class MemQueueSet : public QueueSet,
                    public std::enable_shared_from_this<MemQueueSet> {
 public:
  MemQueueSet(std::string name, kv::KVStorePtr store, kv::TablePtr placement)
      : name_(std::move(name)), store_(std::move(store)),
        placement_(std::move(placement)),
        queues_(placement_->numParts()) {
    for (auto& q : queues_) {
      q = std::make_unique<BlockingQueue<Bytes>>();
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }

  [[nodiscard]] std::uint32_t numQueues() const override {
    return static_cast<std::uint32_t>(queues_.size());
  }

  bool put(std::uint32_t queue, Bytes message) override {
    return queues_.at(queue)->push(std::move(message));
  }

  void runWorkers(const std::function<void(WorkerContext&)>& body) override {
    runWorkers(body, numQueues());
  }

  void runWorkers(const std::function<void(WorkerContext&)>& body,
                  std::uint32_t workerBudget) override {
    // Workers are long-lived mobile code; each gets a dedicated thread
    // adopted into its primary part's location so state access stays
    // local.  (Store executors cannot host them: a looping worker would
    // starve every other task on its executor.)  With a budget below the
    // queue count, worker w owns the striped queues {w, w + budget, ...}
    // and its context multiplexes them.
    const std::uint32_t workers =
        (workerBudget == 0 || workerBudget > numQueues()) ? numQueues()
                                                          : workerBudget;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    RankedMutex<LockRank::kExecutor> failMu;
    std::exception_ptr failure;
    for (std::uint32_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        auto token = store_->adoptPartThread(*placement_, w);
        Context ctx(this, w, workers);
        try {
          body(ctx);
        } catch (...) {
          LockGuard lock(failMu);
          if (!failure) {
            failure = std::current_exception();
          }
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    if (failure) {
      std::rethrow_exception(failure);
    }
  }

  void close() override {
    for (auto& q : queues_) {
      q->close();
    }
  }

  [[nodiscard]] std::uint64_t backlog() const override {
    std::uint64_t total = 0;
    for (const auto& q : queues_) {
      total += q->size();
    }
    return total;
  }

 private:
  class Context : public WorkerContext {
   public:
    /// `stride` is the worker count; this worker owns every queue
    /// congruent to `queue` modulo it (stride == numQueues means the
    /// legacy single-queue worker).
    Context(MemQueueSet* set, std::uint32_t queue, std::uint32_t stride)
        : set_(set), queue_(queue), stride_(stride) {
      for (std::uint32_t q = queue; q < set->numQueues(); q += stride) {
        owned_.push_back(q);
      }
    }

    [[nodiscard]] std::uint32_t queueIndex() const override { return queue_; }

    std::optional<Bytes> read(std::chrono::milliseconds timeout) override {
      if (owned_.size() == 1) {
        return set_->queues_[queue_]->popFor(timeout);
      }
      // Multiplexed: poll the owned queues until one yields, every owned
      // queue is closed and drained, or the timeout lapses.
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      for (;;) {
        if (auto msg = tryRead()) {
          return msg;
        }
        if (allOwnedClosedAndDrained() ||
            std::chrono::steady_clock::now() >= deadline) {
          return tryRead();  // Final drain against a racing put.
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }

    std::optional<Bytes> tryRead() override {
      for (std::size_t i = 0; i < owned_.size(); ++i) {
        const std::size_t at = (cursor_ + i) % owned_.size();
        if (auto msg = set_->queues_[owned_[at]]->tryPop()) {
          // Resume after the queue that yielded, so a busy queue cannot
          // starve its siblings.
          cursor_ = (at + 1) % owned_.size();
          return msg;
        }
      }
      return std::nullopt;
    }

    std::optional<Bytes> trySteal(std::uint32_t fromQueue) override {
      if (fromQueue >= set_->numQueues() || owned(fromQueue)) {
        return std::nullopt;
      }
      return set_->queues_[fromQueue]->trySteal();
    }

    std::optional<Bytes> tryReadFrom(std::uint32_t fromQueue) override {
      if (fromQueue >= set_->numQueues() || owned(fromQueue)) {
        return std::nullopt;
      }
      return set_->queues_[fromQueue]->tryPop();
    }

   private:
    [[nodiscard]] bool owned(std::uint32_t q) const {
      return q % stride_ == queue_ % stride_;
    }

    [[nodiscard]] bool allOwnedClosedAndDrained() const {
      for (const std::uint32_t q : owned_) {
        const auto& bq = *set_->queues_[q];
        if (!bq.closed() || !bq.empty()) {
          return false;
        }
      }
      return true;
    }

    MemQueueSet* set_;
    std::uint32_t queue_;
    std::uint32_t stride_;
    std::vector<std::uint32_t> owned_;
    std::size_t cursor_ = 0;
  };

  std::string name_;
  kv::KVStorePtr store_;
  kv::TablePtr placement_;
  std::vector<std::unique_ptr<BlockingQueue<Bytes>>> queues_;
};

class MemQueuing : public Queuing {
 public:
  explicit MemQueuing(kv::KVStorePtr store) : store_(std::move(store)) {}

  QueueSetPtr createQueueSet(const std::string& name,
                             const kv::TablePtr& placement) override {
    // Reserve under the lock, construct UNLOCKED, publish: building a set
    // touches the store (rank-legal for local backends, but a remote
    // store does wire I/O), and the registry lock must never be held
    // across either.
    {
      LockGuard lock(mu_);
      if (!sets_.emplace(name, nullptr).second) {
        throw std::invalid_argument("MemQueuing: queue set '" + name +
                                    "' already exists");
      }
    }
    std::shared_ptr<MemQueueSet> set;
    try {
      set = std::make_shared<MemQueueSet>(name, store_, placement);
    } catch (...) {
      LockGuard lock(mu_);
      sets_.erase(name);
      throw;
    }
    LockGuard lock(mu_);
    sets_[name] = set;
    return set;
  }

  void deleteQueueSet(const std::string& name) override {
    // Unregister under the lock, close AFTER releasing it: close() takes
    // every member queue's mutex (same kQueue rank as the registry), so
    // closing under the registry lock is a lock-order violation — found
    // by the rank validator, regression-tested in queue_set_test.cpp.
    std::shared_ptr<MemQueueSet> set;
    {
      LockGuard lock(mu_);
      auto it = sets_.find(name);
      if (it == sets_.end() || it->second == nullptr) {
        return;  // nullptr: still being constructed by createQueueSet.
      }
      set = std::move(it->second);
      sets_.erase(it);
    }
    set->close();
  }

 private:
  kv::KVStorePtr store_;
  RankedMutex<LockRank::kQueue> mu_;
  std::unordered_map<std::string, std::shared_ptr<MemQueueSet>> sets_;
};

}  // namespace

QueuingPtr makeMemQueuing(kv::KVStorePtr store) {
  return std::make_shared<MemQueuing>(std::move(store));
}

}  // namespace ripple::mq
