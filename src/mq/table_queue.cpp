// Table-backed queue set: the paper's "generic implementation of the
// message queuing interface based on a private extension in the Table
// interface.  Each new queue set is implemented by such a new table."
//
// Message keys are (queue, sequence) pairs; a custom partitioner routes a
// key to part == queue, giving queue-per-part placement.  Readers drain
// their part and re-order by sequence.  Per-sender FIFO holds because a
// sender's next put begins only after its previous put completed, so its
// sequence numbers are monotone and already-stored messages are never
// outrun by later ones.

#include <algorithm>
#include <atomic>
#include <deque>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "mq/queue.h"

namespace ripple::mq {

namespace {

kv::Key queueKey(std::uint32_t queue, std::uint64_t seq) {
  ByteWriter w(12);
  w.putFixed32(queue);
  w.putFixed64(seq);
  return w.take();
}

std::pair<std::uint32_t, std::uint64_t> parseQueueKey(BytesView key) {
  ByteReader r(key);
  const std::uint32_t queue = r.getFixed32();
  const std::uint64_t seq = r.getFixed64();
  return {queue, seq};
}

class TableQueueSet : public QueueSet {
 public:
  TableQueueSet(std::string name, kv::KVStorePtr store,
                kv::TablePtr placement)
      : name_(std::move(name)), store_(std::move(store)),
        placement_(std::move(placement)) {
    const std::uint32_t parts = placement_->numParts();
    kv::TableOptions options;
    options.parts = parts;
    // Route key -> part by the queue index embedded in the key.
    options.partitioner = std::make_shared<const Partitioner>(
        parts, [](BytesView key) -> std::uint64_t {
          ByteReader r(key);
          return r.getFixed32();
        });
    table_ = store_->createTable("__mq_" + name_, std::move(options));
    seq_ = std::vector<std::atomic<std::uint64_t>>(parts);
  }

  ~TableQueueSet() override {
    if (store_->lookupTable(table_->name())) {
      store_->dropTable(table_->name());
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }

  [[nodiscard]] std::uint32_t numQueues() const override {
    return placement_->numParts();
  }

  bool put(std::uint32_t queue, Bytes message) override {
    if (closed_.load(std::memory_order_acquire)) {
      return false;
    }
    if (queue >= numQueues()) {
      throw std::out_of_range("TableQueueSet: bad queue index");
    }
    const std::uint64_t seq =
        seq_[queue].fetch_add(1, std::memory_order_relaxed);
    table_->put(queueKey(queue, seq), message);
    return true;
  }

  void runWorkers(const std::function<void(WorkerContext&)>& body) override {
    runWorkers(body, numQueues());
  }

  void runWorkers(const std::function<void(WorkerContext&)>& body,
                  std::uint32_t workerBudget) override {
    // With a budget below the queue count, worker w owns the striped
    // queues {w, w + budget, ...} and its context multiplexes them.
    const std::uint32_t workers =
        (workerBudget == 0 || workerBudget > numQueues()) ? numQueues()
                                                          : workerBudget;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    RankedMutex<LockRank::kExecutor> failMu;
    std::exception_ptr failure;
    for (std::uint32_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        auto token = store_->adoptPartThread(*placement_, w);
        Context ctx(this, w, workers);
        try {
          body(ctx);
        } catch (...) {
          LockGuard lock(failMu);
          if (!failure) {
            failure = std::current_exception();
          }
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    if (failure) {
      std::rethrow_exception(failure);
    }
  }

  void close() override { closed_.store(true, std::memory_order_release); }

  /// Drop the backing table (called on deleteQueueSet; the set is then
  /// unusable).  Idempotent with the destructor's cleanup.
  void dropBacking() {
    close();
    if (store_->lookupTable(table_->name())) {
      store_->dropTable(table_->name());
    }
  }

  [[nodiscard]] std::uint64_t backlog() const override {
    return table_->size();
  }

 private:
  class Context : public WorkerContext {
   public:
    /// `stride` is the worker count; this worker owns every queue
    /// congruent to `queue` modulo it (stride == numQueues means the
    /// legacy single-queue worker).
    Context(TableQueueSet* set, std::uint32_t queue, std::uint32_t stride)
        : set_(set), queue_(queue), stride_(stride) {
      for (std::uint32_t q = queue; q < set->numQueues(); q += stride) {
        owned_.push_back(q);
      }
    }

    [[nodiscard]] std::uint32_t queueIndex() const override { return queue_; }

    std::optional<Bytes> read(std::chrono::milliseconds timeout) override {
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      for (;;) {
        if (auto msg = tryRead()) {
          return msg;
        }
        if (set_->closed_.load(std::memory_order_acquire) ||
            std::chrono::steady_clock::now() >= deadline) {
          // One final drain: messages stored before close must be read.
          return tryRead();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }

    std::optional<Bytes> tryRead() override {
      for (std::size_t i = 0; i < owned_.size(); ++i) {
        const std::size_t at = (cursor_ + i) % owned_.size();
        if (auto msg = popOrRefill(owned_[at], buffers_[owned_[at]])) {
          // Resume after the queue that yielded, so a busy queue cannot
          // starve its siblings.
          cursor_ = (at + 1) % owned_.size();
          return msg;
        }
      }
      return std::nullopt;
    }

    std::optional<Bytes> tryReadFrom(std::uint32_t fromQueue) override {
      // Takeover read: the adopted queue's pairs drain into a buffer
      // owned by THIS context.  Any messages the dead reader had already
      // buffered are beyond reach — the no-sync engine only kills workers
      // before a read completes, so nothing is buffered at death for the
      // in-memory queuing; table-backed takeover additionally relies on
      // the same fail-before discipline.
      if (fromQueue >= set_->numQueues() || owned(fromQueue)) {
        return std::nullopt;
      }
      return popOrRefill(fromQueue, buffers_[fromQueue]);
    }

   private:
    [[nodiscard]] bool owned(std::uint32_t q) const {
      return q % stride_ == queue_ % stride_;
    }

    std::optional<Bytes> popOrRefill(std::uint32_t queue,
                                     std::deque<Bytes>& buffer) {
      if (!buffer.empty()) {
        Bytes msg = std::move(buffer.front());
        buffer.pop_front();
        return msg;
      }
      refill(queue, buffer);
      if (buffer.empty()) {
        return std::nullopt;
      }
      Bytes msg = std::move(buffer.front());
      buffer.pop_front();
      return msg;
    }

    void refill(std::uint32_t queue, std::deque<Bytes>& buffer) {
      auto drained = set_->table_->drainPart(queue);
      if (drained.empty()) {
        return;
      }
      std::sort(drained.begin(), drained.end(),
                [](const auto& a, const auto& b) {
                  return parseQueueKey(a.first).second <
                         parseQueueKey(b.first).second;
                });
      for (auto& [k, v] : drained) {
        buffer.push_back(std::move(v));
      }
    }

    TableQueueSet* set_;
    std::uint32_t queue_;
    std::uint32_t stride_;
    std::vector<std::uint32_t> owned_;
    std::size_t cursor_ = 0;
    // Per-queue sequence-ordered read buffers (owned and adopted alike).
    std::unordered_map<std::uint32_t, std::deque<Bytes>> buffers_;
  };

  std::string name_;
  kv::KVStorePtr store_;
  kv::TablePtr placement_;
  kv::TablePtr table_;
  std::vector<std::atomic<std::uint64_t>> seq_;
  std::atomic<bool> closed_{false};
};

class TableQueuing : public Queuing {
 public:
  explicit TableQueuing(kv::KVStorePtr store) : store_(std::move(store)) {}

  QueueSetPtr createQueueSet(const std::string& name,
                             const kv::TablePtr& placement) override {
    // Reserve under the lock, construct UNLOCKED, publish: the set ctor
    // creates its backing table on the store — blocking wire I/O when the
    // store is remote — and the registry lock must never be held across
    // that (rank-validator finding; regression in remote_store_test.cpp).
    {
      LockGuard lock(mu_);
      if (!sets_.emplace(name, nullptr).second) {
        throw std::invalid_argument("TableQueuing: queue set '" + name +
                                    "' already exists");
      }
    }
    std::shared_ptr<TableQueueSet> set;
    try {
      set = std::make_shared<TableQueueSet>(name, store_, placement);
    } catch (...) {
      LockGuard lock(mu_);
      sets_.erase(name);
      throw;
    }
    LockGuard lock(mu_);
    sets_[name] = set;
    return set;
  }

  void deleteQueueSet(const std::string& name) override {
    // Unregister under the lock, drop the backing table AFTER releasing
    // it: dropBacking() goes through the store (wire I/O when remote) and
    // takes queue-rank locks while closing.  A nullptr entry is a set
    // still being constructed by createQueueSet; leave it alone.
    std::shared_ptr<TableQueueSet> set;
    {
      LockGuard lock(mu_);
      auto it = sets_.find(name);
      if (it == sets_.end() || it->second == nullptr) {
        return;
      }
      set = std::move(it->second);
      sets_.erase(it);
    }
    set->dropBacking();
  }

 private:
  kv::KVStorePtr store_;
  RankedMutex<LockRank::kQueue> mu_;
  std::unordered_map<std::string, std::shared_ptr<TableQueueSet>> sets_;
};

}  // namespace

QueuingPtr makeTableQueuing(kv::KVStorePtr store) {
  return std::make_shared<TableQueuing>(std::move(store));
}

}  // namespace ripple::mq
