// ripple::fault — deterministic fault injection (paper §IV-A robustness).
//
// The paper's recovery story ("recover from primary shard failure by
// deleting writes done by the failed shard(s) and retry") needs faults to
// recover *from*.  A FaultPlan is a seeded, declarative schedule of
// injected failures; a FaultInjector evaluates the plan against the
// stream of store/queue operations the decorators (FaultyStore,
// FaultyQueuing) observe.  Determinism contract: given the same plan and
// the same per-part operation sequence, the injector makes the same
// decisions — trigger counters are kept per (rule, part) and the
// probabilistic trigger is a pure hash of (seed, rule, part, ordinal),
// never a shared global RNG.
//
// Fail-before semantics: decorators consult the injector BEFORE invoking
// the wrapped operation, so an injected fault never leaves partial
// effects.  That single invariant is what makes every retry site in the
// engines safe (a failed drain consumed nothing; a failed put wrote
// nothing).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace ripple::fault {

/// Base class for injected errors the engines treat as retryable.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Injected failure of a store operation (put/get/scan/drain).
class TransientStoreError : public TransientError {
 public:
  explicit TransientStoreError(const std::string& what)
      : TransientError(what) {}
};

/// Injected failure of a queue operation (enqueue/dequeue).
class TransientQueueError : public TransientError {
 public:
  explicit TransientQueueError(const std::string& what)
      : TransientError(what) {}
};

/// Injected death of a no-sync worker.  NOT transient: the reader thread
/// is considered gone and the engine must re-dispatch its queue.
class WorkerKilled : public std::runtime_error {
 public:
  explicit WorkerKilled(const std::string& what) : std::runtime_error(what) {}
};

/// In-memory state at an endpoint was lost: the wire transport detected a
/// server restart (session-epoch change, DESIGN.md §11).  Deliberately NOT
/// a TransientError — re-sending the request cannot bring the state back,
/// so per-op retriers must never absorb it.  The sync engine escalates to
/// checkpoint recovery; forced no-sync with lost queue state fails the job
/// through the mid-invocation escalation path.
class StateLostError : public std::runtime_error {
 public:
  explicit StateLostError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Operations the injector can observe.
enum class Op : std::uint8_t {
  kGet = 0,
  kPut,
  kErase,
  kScan,   // Part/pair enumeration.
  kDrain,  // clearPart / drainPart.
  kEnqueue,
  kDequeue,
};

[[nodiscard]] const char* opName(Op op);

using OpMask = std::uint32_t;

[[nodiscard]] constexpr OpMask maskOf(Op op) {
  return OpMask{1} << static_cast<unsigned>(op);
}

inline constexpr OpMask kStoreOps = maskOf(Op::kGet) | maskOf(Op::kPut) |
                                    maskOf(Op::kErase) | maskOf(Op::kScan) |
                                    maskOf(Op::kDrain);
inline constexpr OpMask kQueueOps = maskOf(Op::kEnqueue) | maskOf(Op::kDequeue);
inline constexpr OpMask kAllOps = kStoreOps | kQueueOps;

/// What a firing rule does to the operation.
enum class Action : std::uint8_t {
  kFail = 0,    // Throw TransientStoreError / TransientQueueError.
  kDelay,       // Sleep delaySeconds, then let the operation proceed.
  kKillWorker,  // Throw WorkerKilled (meaningful at dequeue sites).
};

inline constexpr std::uint32_t kAnyPart = 0xffffffffu;
inline constexpr int kAnyStep = -1;

/// One declarative injection rule.  An operation matches when its op bit
/// is in `ops`, the table/queue-set name contains `tableSubstring`, the
/// part matches (kAnyPart matches all), and the injector's current step
/// matches (kAnyStep matches all).  Exactly one trigger should be set:
/// `nth` > 0 fires on every nth matching operation (counted per part), or
/// `probability` > 0 fires Bernoulli per matching operation.
struct FaultRule {
  OpMask ops = kAllOps;
  std::string tableSubstring;  // Empty matches every name.
  std::uint32_t part = kAnyPart;
  int step = kAnyStep;

  std::uint64_t nth = 0;
  double probability = 0;

  Action action = Action::kFail;
  double delaySeconds = 0;  // For kDelay.

  /// Stop firing after this many injections (summed across parts).
  std::uint64_t maxInjections = UINT64_MAX;
};

/// A seeded schedule of faults.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Probabilistic store failures on every table whose name contains
  /// `tableSubstring` (get/put/erase/drain; scans are excluded because
  /// export-time enumeration feeds exporters that are not replay-safe).
  [[nodiscard]] static FaultPlan storeChaos(std::uint64_t seed,
                                            double probability,
                                            std::string tableSubstring = "");

  /// Probabilistic enqueue/dequeue failures on queue sets whose name
  /// contains `nameSubstring`.
  [[nodiscard]] static FaultPlan queueChaos(std::uint64_t seed,
                                            double probability,
                                            std::string nameSubstring = "");
};

/// Thread-safe evaluator of a FaultPlan.  One injector typically backs
/// both a FaultyStore and a FaultyQueuing so the plan sees every
/// operation of a run.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Mirror injection counts into `fault.injected` (total) plus
  /// `fault.injected_failures` / `fault.injected_delays` /
  /// `fault.injected_kills`.  The registry must outlive the injector.
  void bindRegistry(obs::MetricsRegistry& registry);

  /// Arm/disarm the whole plan (disarmed injectors match nothing).  Lets
  /// harnesses run setup (graph generation, loading) fault-free and arm
  /// before the job proper.  Injectors start armed.
  void setArmed(bool armed) {
    armed_.store(armed, std::memory_order_release);
  }

  /// Scope subsequent operations to a superstep for rules with a `step`
  /// filter; kAnyStep clears.  Set by the sync engine per step.
  void setStep(int step) { step_.store(step, std::memory_order_release); }

  /// Consult the plan for one operation about to execute.  Per the first
  /// firing rule: throws TransientStoreError (store ops) or
  /// TransientQueueError (queue ops) for kFail, throws WorkerKilled for
  /// kKillWorker, or sleeps for kDelay.  Returns normally when no rule
  /// fires; the caller then performs the real operation.
  void onOp(Op op, std::string_view name, std::uint32_t part);

  [[nodiscard]] std::uint64_t injected() const {
    return injectedFailures() + injectedDelays() + injectedKills();
  }
  [[nodiscard]] std::uint64_t injectedFailures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injectedDelays() const {
    return delays_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injectedKills() const {
    return kills_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// Per-(rule, part) match ordinals.  Parts index modulo kPartSlots;
  /// runs with more parts than slots alias counters (still deterministic
  /// for single-threaded stores, and all in-tree tests use fewer parts).
  static constexpr std::size_t kPartSlots = 256;

  struct RuleState {
    std::unique_ptr<std::atomic<std::uint64_t>[]> matches;
    std::atomic<std::uint64_t> injections{0};
  };

  void count(Action action);

  FaultPlan plan_;
  std::vector<std::unique_ptr<RuleState>> states_;
  std::atomic<bool> armed_{true};
  std::atomic<int> step_{kAnyStep};

  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> kills_{0};
  std::atomic<obs::Counter*> ctrInjected_{nullptr};
  std::atomic<obs::Counter*> ctrFailures_{nullptr};
  std::atomic<obs::Counter*> ctrDelays_{nullptr};
  std::atomic<obs::Counter*> ctrKills_{nullptr};
};

using FaultInjectorPtr = std::shared_ptr<FaultInjector>;

}  // namespace ripple::fault
