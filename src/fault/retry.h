// ripple::fault — bounded retry with deterministic backoff.
//
// The engines absorb TransientError with a Retrier: bounded attempts,
// exponential backoff, and jitter drawn from a seeded per-stream RNG (so
// a run's backoff schedule is reproducible).  Backoff is virtual-time
// aware: when bound to a sim::VirtualCluster the waited time is charged
// to the part's virtual clock, so recovery overhead shows up in the
// virtual makespan exactly like compute would.
//
// When the attempt budget is exhausted the Retrier counts an escalation
// and rethrows; the caller decides what engine-level recovery means
// (checkpoint restore for the sync engine, queue re-dispatch for the
// no-sync engine, or plain failure).
//
// Charging is thread-safe: the retry/escalation/backoff counters are
// atomic, so the ledger reads coherently while pool workers are still
// charging.  The jitter stream itself stays single-consumer: operator()
// must not run concurrently on one instance, which the engines honor by
// keeping one Retrier per part (or per no-sync worker) plus one for the
// client thread.

#pragma once

#include <atomic>
#include <cstdint>

#include "common/random.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "sim/virtual_time.h"

namespace ripple::fault {

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  int maxAttempts = 4;

  double initialBackoffMs = 0.2;
  double backoffMultiplier = 2.0;

  /// Hard upper bound on any single backoff wait, applied after jitter:
  /// the escalation latency of an exhausted budget (and its virtual-time
  /// charge) is at most (maxAttempts - 1) * maxBackoffMs.
  double maxBackoffMs = 5.0;

  /// Backoff is scaled by a uniform factor in [1 - jitter, 1 + jitter],
  /// then clamped to maxBackoffMs.
  double jitter = 0.5;

  /// Base seed for the jitter stream (combined with the stream id).
  std::uint64_t seed = 0;

  /// Sleep the backoff in wall-clock time as well as charging virtual
  /// time.  Tests that only care about counters can turn this off.
  bool sleepWallClock = true;
};

/// The policy's exponential curve for 1-based `attempt`, without jitter,
/// clamped to maxBackoffMs.  Shared by Retrier::backoff and the net-layer
/// circuit breaker so both honor one schedule and one hard bound.
[[nodiscard]] double scheduledBackoffMs(const RetryPolicy& policy,
                                        int attempt);

class Retrier {
 public:
  explicit Retrier(RetryPolicy policy = {}, std::uint64_t streamId = 0);

  // Movable so the engines can keep per-part vectors; the atomics force
  // the member-wise transfer to be spelled out.  Moving is only safe when
  // no other thread is using `other` (engine setup/teardown).
  Retrier(Retrier&& other) noexcept;
  Retrier& operator=(Retrier&& other) noexcept;
  Retrier(const Retrier&) = delete;
  Retrier& operator=(const Retrier&) = delete;

  /// Mirror retry counts into `fault.retries`, `fault.backoff_ms`
  /// (rounded up per backoff), and `fault.escalations`.  Null disables;
  /// the registry must outlive the retrier.
  void bindRegistry(obs::MetricsRegistry* registry);

  /// Charge future backoff waits to `part`'s virtual clock.  Null clears.
  void bindVirtualTime(sim::VirtualCluster* vt, std::uint32_t part);

  /// Run `fn`, retrying on TransientError within the attempt budget.
  /// Rethrows the last error once the budget is exhausted.
  template <typename F>
  auto operator()(F&& fn) -> decltype(fn()) {
    for (int attempt = 1;; ++attempt) {
      try {
        return fn();
      } catch (const TransientError&) {
        if (attempt >= policy_.maxAttempts) {
          noteEscalation();
          throw;
        }
        backoff(attempt);
      }
    }
  }

  [[nodiscard]] std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t escalations() const {
    return escalations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double backoffMsTotal() const {
    return backoffMsTotal_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

 private:
  /// Count one retry and wait before attempt `attempt + 1`.
  void backoff(int attempt);
  void noteEscalation();

  RetryPolicy policy_;
  Rng rng_;

  sim::VirtualCluster* vt_ = nullptr;
  std::uint32_t part_ = 0;

  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> escalations_{0};
  std::atomic<double> backoffMsTotal_{0};

  obs::Counter* ctrRetries_ = nullptr;
  obs::Counter* ctrBackoffMs_ = nullptr;
  obs::Counter* ctrEscalations_ = nullptr;
};

}  // namespace ripple::fault
