// ripple::fault — KVStore decorator that injects faults per a FaultPlan.
//
// FaultyStore wraps any kv::KVStore; every table it hands out is wrapped
// so that point operations, scans, and drains consult the FaultInjector
// BEFORE delegating (fail-before: an injected fault never leaves partial
// effects).  Wrapped tables forward name(), options(), and the
// partitioner instance untouched, so consistent partitioning (shared
// partitioner => co-placement) survives the decoration, and lookupTable
// returns the identical wrapper instance each time — the decorator is
// fully transparent when the plan is empty (verified by running the
// store conformance suite against it).

#pragma once

#include <string>
#include <unordered_map>

#include "fault/fault.h"
#include "kvstore/table.h"

namespace ripple::fault {

class FaultyStore : public kv::KVStore {
 public:
  FaultyStore(kv::KVStorePtr inner, FaultInjectorPtr injector);

  /// Convenience factory.
  [[nodiscard]] static kv::KVStorePtr wrap(kv::KVStorePtr inner,
                                           FaultInjectorPtr injector);

  kv::TablePtr createTable(const std::string& name,
                           kv::TableOptions options) override;
  kv::TablePtr lookupTable(const std::string& name) override;
  void dropTable(const std::string& name) override;
  void runInParts(const kv::Table& placement,
                  const std::function<void(std::uint32_t)>& fn) override;
  void runInPart(const kv::Table& placement, std::uint32_t part,
                 const std::function<void()>& fn) override;
  void postToPart(const kv::Table& placement, std::uint32_t part,
                  std::function<void()> fn) override;
  std::shared_ptr<void> adoptPartThread(const kv::Table& placement,
                                        std::uint32_t part) override;
  [[nodiscard]] kv::StoreMetrics& metrics() override {
    return inner_->metrics();
  }
  [[nodiscard]] const char* backendName() const override {
    return inner_->backendName();
  }
  [[nodiscard]] std::uint32_t partsOf(const kv::Table& placement)
      const override;

  [[nodiscard]] const kv::KVStorePtr& inner() const { return inner_; }
  [[nodiscard]] const FaultInjectorPtr& injector() const { return injector_; }

 private:
  /// Wrap-or-return-cached, keyed by table name (so repeated lookups see
  /// one wrapper instance, preserving pointer identity).
  kv::TablePtr wrapTable(kv::TablePtr table);

  /// Peel our own wrapper off a placement argument before forwarding.
  [[nodiscard]] static const kv::Table& unwrap(const kv::Table& table);

  kv::KVStorePtr inner_;
  FaultInjectorPtr injector_;
  RankedMutex<LockRank::kStoreTableMap> mu_;
  std::unordered_map<std::string, kv::TablePtr> wrappers_;
};

}  // namespace ripple::fault
