#include "fault/fault.h"

#include <chrono>
#include <thread>

namespace ripple::fault {

namespace {

/// splitmix64 finalizer: the stateless mixer behind the deterministic
/// probabilistic trigger.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from (seed, rule, part, ordinal) — a pure
/// function, so the same operation sequence reproduces the same draws.
double hashUnit(std::uint64_t seed, std::uint64_t rule, std::uint32_t part,
                std::uint64_t ordinal) {
  std::uint64_t u = mix64(seed ^ mix64(rule * 0x9e3779b97f4a7c15ULL ^
                                       (std::uint64_t{part} << 32) ^ ordinal));
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

}  // namespace

const char* opName(Op op) {
  switch (op) {
    case Op::kGet: return "get";
    case Op::kPut: return "put";
    case Op::kErase: return "erase";
    case Op::kScan: return "scan";
    case Op::kDrain: return "drain";
    case Op::kEnqueue: return "enqueue";
    case Op::kDequeue: return "dequeue";
  }
  return "?";
}

FaultPlan FaultPlan::storeChaos(std::uint64_t seed, double probability,
                                std::string tableSubstring) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRule rule;
  rule.ops = maskOf(Op::kGet) | maskOf(Op::kPut) | maskOf(Op::kErase) |
             maskOf(Op::kDrain);
  rule.tableSubstring = std::move(tableSubstring);
  rule.probability = probability;
  rule.action = Action::kFail;
  plan.rules.push_back(std::move(rule));
  return plan;
}

FaultPlan FaultPlan::queueChaos(std::uint64_t seed, double probability,
                                std::string nameSubstring) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRule rule;
  rule.ops = kQueueOps;
  rule.tableSubstring = std::move(nameSubstring);
  rule.probability = probability;
  rule.action = Action::kFail;
  plan.rules.push_back(std::move(rule));
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  states_.reserve(plan_.rules.size());
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    auto state = std::make_unique<RuleState>();
    state->matches =
        std::make_unique<std::atomic<std::uint64_t>[]>(kPartSlots);
    for (std::size_t i = 0; i < kPartSlots; ++i) {
      state->matches[i].store(0, std::memory_order_relaxed);
    }
    states_.push_back(std::move(state));
  }
}

void FaultInjector::bindRegistry(obs::MetricsRegistry& registry) {
  ctrInjected_.store(&registry.counter("fault.injected"),
                     std::memory_order_release);
  ctrFailures_.store(&registry.counter("fault.injected_failures"),
                     std::memory_order_release);
  ctrDelays_.store(&registry.counter("fault.injected_delays"),
                   std::memory_order_release);
  ctrKills_.store(&registry.counter("fault.injected_kills"),
                  std::memory_order_release);
}

void FaultInjector::count(Action action) {
  if (obs::Counter* c = ctrInjected_.load(std::memory_order_acquire)) {
    c->add(1);
  }
  std::atomic<obs::Counter*>* fwd = nullptr;
  switch (action) {
    case Action::kFail:
      failures_.fetch_add(1, std::memory_order_relaxed);
      fwd = &ctrFailures_;
      break;
    case Action::kDelay:
      delays_.fetch_add(1, std::memory_order_relaxed);
      fwd = &ctrDelays_;
      break;
    case Action::kKillWorker:
      kills_.fetch_add(1, std::memory_order_relaxed);
      fwd = &ctrKills_;
      break;
  }
  if (obs::Counter* c = fwd->load(std::memory_order_acquire)) {
    c->add(1);
  }
}

void FaultInjector::onOp(Op op, std::string_view name, std::uint32_t part) {
  if (plan_.rules.empty() || !armed_.load(std::memory_order_acquire)) {
    return;
  }
  const int step = step_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if ((rule.ops & maskOf(op)) == 0) {
      continue;
    }
    if (!rule.tableSubstring.empty() &&
        name.find(rule.tableSubstring) == std::string_view::npos) {
      continue;
    }
    if (rule.part != kAnyPart && rule.part != part) {
      continue;
    }
    if (rule.step != kAnyStep && rule.step != step) {
      continue;
    }
    RuleState& state = *states_[i];
    // Match ordinal, counted per part so concurrent parts cannot perturb
    // each other's trigger sequence.
    const std::uint64_t ordinal =
        state.matches[part % kPartSlots].fetch_add(1,
                                                   std::memory_order_relaxed);
    bool fire = false;
    if (rule.nth > 0) {
      fire = (ordinal + 1) % rule.nth == 0;
    } else if (rule.probability > 0) {
      fire = hashUnit(plan_.seed, i, part, ordinal) < rule.probability;
    }
    if (!fire) {
      continue;
    }
    if (state.injections.fetch_add(1, std::memory_order_relaxed) >=
        rule.maxInjections) {
      continue;
    }
    count(rule.action);
    const std::string site = std::string("injected fault: rule ") +
                             std::to_string(i) + " " + opName(op) + " '" +
                             std::string(name) + "' part " +
                             std::to_string(part) + " ordinal " +
                             std::to_string(ordinal);
    switch (rule.action) {
      case Action::kDelay:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(rule.delaySeconds));
        return;  // Delayed operations proceed.
      case Action::kKillWorker:
        throw WorkerKilled(site);
      case Action::kFail:
        if ((maskOf(op) & kQueueOps) != 0) {
          throw TransientQueueError(site);
        }
        throw TransientStoreError(site);
    }
  }
}

}  // namespace ripple::fault
