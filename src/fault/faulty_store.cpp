#include "fault/faulty_store.h"

#include <utility>

namespace ripple::fault {

namespace {

/// Table decorator: consults the injector, then delegates.  putBatch is
/// NOT overridden on purpose — the base implementation routes through
/// put() entry by entry, giving per-entry injection and keeping a failed
/// batch free of untracked partial effects beyond the entries already
/// put (which a whole-batch retry overwrites idempotently).
class FaultyTable : public kv::Table {
 public:
  FaultyTable(kv::TablePtr inner, FaultInjectorPtr injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  [[nodiscard]] const std::string& name() const override {
    return inner_->name();
  }
  [[nodiscard]] const kv::TableOptions& options() const override {
    return inner_->options();
  }
  [[nodiscard]] std::uint32_t numParts() const override {
    return inner_->numParts();
  }
  [[nodiscard]] std::uint32_t partOf(kv::KeyView key) const override {
    return inner_->partOf(key);
  }

  std::optional<kv::Value> get(kv::KeyView key) override {
    injector_->onOp(Op::kGet, name(), partOf(key));
    return inner_->get(key);
  }

  void put(kv::KeyView key, kv::ValueView value) override {
    injector_->onOp(Op::kPut, name(), partOf(key));
    inner_->put(key, value);
  }

  bool erase(kv::KeyView key) override {
    injector_->onOp(Op::kErase, name(), partOf(key));
    return inner_->erase(key);
  }

  [[nodiscard]] std::uint64_t size() const override { return inner_->size(); }
  [[nodiscard]] std::uint64_t partSize(std::uint32_t part) const override {
    return inner_->partSize(part);
  }

  Bytes enumerate(kv::PairConsumer& consumer) override {
    // Inject per part as the enumeration reaches it (setupPart runs
    // collocated, once, before the part's pairs).
    class Shim : public kv::PairConsumer {
     public:
      Shim(FaultyTable& table, kv::PairConsumer& user)
          : table_(table), user_(user) {}
      void setupPart(std::uint32_t part) override {
        table_.injector_->onOp(Op::kScan, table_.name(), part);
        user_.setupPart(part);
      }
      bool consume(std::uint32_t part, kv::KeyView k,
                   kv::ValueView v) override {
        return user_.consume(part, k, v);
      }
      Bytes finalizePart(std::uint32_t part) override {
        return user_.finalizePart(part);
      }
      Bytes combine(Bytes a, Bytes b) override {
        return user_.combine(std::move(a), std::move(b));
      }

     private:
      FaultyTable& table_;
      kv::PairConsumer& user_;
    };
    Shim shim(*this, consumer);
    return inner_->enumerate(shim);
  }

  Bytes enumeratePart(std::uint32_t part, kv::PairConsumer& consumer) override {
    injector_->onOp(Op::kScan, name(), part);
    return inner_->enumeratePart(part, consumer);
  }

  Bytes processParts(kv::PartConsumer& consumer) override {
    // Mobile code gets the WRAPPER table, so its table operations stay
    // under injection; processParts itself is not an injection site.
    class Shim : public kv::PartConsumer {
     public:
      Shim(FaultyTable& table, kv::PartConsumer& user)
          : table_(table), user_(user) {}
      Bytes processPart(std::uint32_t part, kv::Table&) override {
        return user_.processPart(part, table_);
      }
      Bytes combine(Bytes a, Bytes b) override {
        return user_.combine(std::move(a), std::move(b));
      }

     private:
      FaultyTable& table_;
      kv::PartConsumer& user_;
    };
    Shim shim(*this, consumer);
    return inner_->processParts(shim);
  }

  std::uint64_t clearPart(std::uint32_t part) override {
    injector_->onOp(Op::kDrain, name(), part);
    return inner_->clearPart(part);
  }

  std::vector<std::pair<kv::Key, kv::Value>> drainPart(
      std::uint32_t part) override {
    injector_->onOp(Op::kDrain, name(), part);
    return inner_->drainPart(part);
  }

  // Sealing must reach the backing table: engines seal via the wrapper,
  // but callers holding the inner table directly must see the same state.
  void setReadOnly(bool readOnly) override { inner_->setReadOnly(readOnly); }
  [[nodiscard]] bool readOnly() const override { return inner_->readOnly(); }

  [[nodiscard]] const kv::TablePtr& inner() const { return inner_; }

 private:
  kv::TablePtr inner_;
  FaultInjectorPtr injector_;
};

}  // namespace

FaultyStore::FaultyStore(kv::KVStorePtr inner, FaultInjectorPtr injector)
    : inner_(std::move(inner)), injector_(std::move(injector)) {}

kv::KVStorePtr FaultyStore::wrap(kv::KVStorePtr inner,
                                 FaultInjectorPtr injector) {
  return std::make_shared<FaultyStore>(std::move(inner), std::move(injector));
}

kv::TablePtr FaultyStore::wrapTable(kv::TablePtr table) {
  if (!table) {
    return nullptr;
  }
  LockGuard lock(mu_);
  auto it = wrappers_.find(table->name());
  if (it != wrappers_.end()) {
    return it->second;
  }
  auto wrapper = std::make_shared<FaultyTable>(std::move(table), injector_);
  wrappers_.emplace(wrapper->name(), wrapper);
  return wrapper;
}

const kv::Table& FaultyStore::unwrap(const kv::Table& table) {
  if (const auto* wrapper = dynamic_cast<const FaultyTable*>(&table)) {
    return *wrapper->inner();
  }
  return table;
}

kv::TablePtr FaultyStore::createTable(const std::string& name,
                                      kv::TableOptions options) {
  return wrapTable(inner_->createTable(name, std::move(options)));
}

kv::TablePtr FaultyStore::lookupTable(const std::string& name) {
  return wrapTable(inner_->lookupTable(name));
}

void FaultyStore::dropTable(const std::string& name) {
  {
    LockGuard lock(mu_);
    wrappers_.erase(name);
  }
  inner_->dropTable(name);
}

void FaultyStore::runInParts(const kv::Table& placement,
                             const std::function<void(std::uint32_t)>& fn) {
  inner_->runInParts(unwrap(placement), fn);
}

void FaultyStore::runInPart(const kv::Table& placement, std::uint32_t part,
                            const std::function<void()>& fn) {
  inner_->runInPart(unwrap(placement), part, fn);
}

void FaultyStore::postToPart(const kv::Table& placement, std::uint32_t part,
                             std::function<void()> fn) {
  inner_->postToPart(unwrap(placement), part, std::move(fn));
}

std::shared_ptr<void> FaultyStore::adoptPartThread(const kv::Table& placement,
                                                   std::uint32_t part) {
  return inner_->adoptPartThread(unwrap(placement), part);
}

std::uint32_t FaultyStore::partsOf(const kv::Table& placement) const {
  return inner_->partsOf(unwrap(placement));
}

}  // namespace ripple::fault
