// ripple::fault — Queuing decorator that injects faults on deliveries.
//
// FaultyQueuing wraps any mq::Queuing; queue sets it creates consult the
// FaultInjector before every enqueue (put) and before every dequeue
// (read / tryRead / trySteal / tryReadFrom).  Fail-before semantics: a
// dequeue fault fires before the message is popped, so an injected
// failure or worker kill never loses a message (no weight escapes the
// no-sync termination ledger).  Delay rules model slow deliveries.

#pragma once

#include <mutex>
#include <string>
#include <unordered_map>

#include "fault/fault.h"
#include "mq/queue.h"

namespace ripple::fault {

class FaultyQueuing : public mq::Queuing {
 public:
  FaultyQueuing(mq::QueuingPtr inner, FaultInjectorPtr injector);

  /// Convenience factory.
  [[nodiscard]] static mq::QueuingPtr wrap(mq::QueuingPtr inner,
                                           FaultInjectorPtr injector);

  mq::QueueSetPtr createQueueSet(const std::string& name,
                                 const kv::TablePtr& placement) override;
  void deleteQueueSet(const std::string& name) override;

  [[nodiscard]] const mq::QueuingPtr& inner() const { return inner_; }
  [[nodiscard]] const FaultInjectorPtr& injector() const { return injector_; }

 private:
  mq::QueuingPtr inner_;
  FaultInjectorPtr injector_;
};

}  // namespace ripple::fault
