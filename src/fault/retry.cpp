#include "fault/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace ripple::fault {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double scheduledBackoffMs(const RetryPolicy& policy, int attempt) {
  double ms = policy.initialBackoffMs;
  for (int i = 1; i < attempt && ms < policy.maxBackoffMs; ++i) {
    // Stop multiplying once past the cap: a large attempt budget must not
    // overflow the double to inf before the clamp.
    ms *= policy.backoffMultiplier;
  }
  return std::min(ms, policy.maxBackoffMs);
}

Retrier::Retrier(RetryPolicy policy, std::uint64_t streamId)
    : policy_(policy), rng_(mix64(policy.seed ^ mix64(streamId))) {}

Retrier::Retrier(Retrier&& other) noexcept
    : policy_(other.policy_),
      rng_(other.rng_),
      vt_(other.vt_),
      part_(other.part_),
      retries_(other.retries_.load(std::memory_order_relaxed)),
      escalations_(other.escalations_.load(std::memory_order_relaxed)),
      backoffMsTotal_(other.backoffMsTotal_.load(std::memory_order_relaxed)),
      ctrRetries_(other.ctrRetries_),
      ctrBackoffMs_(other.ctrBackoffMs_),
      ctrEscalations_(other.ctrEscalations_) {}

Retrier& Retrier::operator=(Retrier&& other) noexcept {
  if (this != &other) {
    policy_ = other.policy_;
    rng_ = other.rng_;
    vt_ = other.vt_;
    part_ = other.part_;
    retries_.store(other.retries_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    escalations_.store(other.escalations_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    backoffMsTotal_.store(other.backoffMsTotal_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    ctrRetries_ = other.ctrRetries_;
    ctrBackoffMs_ = other.ctrBackoffMs_;
    ctrEscalations_ = other.ctrEscalations_;
  }
  return *this;
}

void Retrier::bindRegistry(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    ctrRetries_ = ctrBackoffMs_ = ctrEscalations_ = nullptr;
    return;
  }
  ctrRetries_ = &registry->counter("fault.retries");
  ctrBackoffMs_ = &registry->counter("fault.backoff_ms");
  ctrEscalations_ = &registry->counter("fault.escalations");
}

void Retrier::bindVirtualTime(sim::VirtualCluster* vt, std::uint32_t part) {
  vt_ = vt;
  part_ = part;
}

void Retrier::backoff(int attempt) {
  double ms = scheduledBackoffMs(policy_, attempt);
  if (policy_.jitter > 0) {
    ms *= 1.0 + policy_.jitter * (2.0 * rng_.nextDouble() - 1.0);
  }
  // Clamp AFTER jitter too: maxBackoffMs is a hard bound on the wait (and
  // the virtual-time charge), not on the pre-jitter base.
  ms = std::clamp(ms, 0.0, policy_.maxBackoffMs);

  retries_.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add: a single RMW cannot drop concurrent
  // additions the way a load/CAS retry written against a stale snapshot
  // could.
  backoffMsTotal_.fetch_add(ms, std::memory_order_relaxed);
  if (ctrRetries_ != nullptr) {
    ctrRetries_->add(1);
  }
  if (ctrBackoffMs_ != nullptr) {
    ctrBackoffMs_->add(static_cast<std::uint64_t>(std::ceil(ms)));
  }
  if (vt_ != nullptr) {
    vt_->charge(part_, ms / 1000.0);
  }
  if (policy_.sleepWallClock && ms > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

void Retrier::noteEscalation() {
  escalations_.fetch_add(1, std::memory_order_relaxed);
  if (ctrEscalations_ != nullptr) {
    ctrEscalations_->add(1);
  }
}

}  // namespace ripple::fault
