#include "fault/faulty_queue.h"

#include <utility>

namespace ripple::fault {

namespace {

class FaultyQueueSet : public mq::QueueSet {
 public:
  FaultyQueueSet(mq::QueueSetPtr inner, FaultInjectorPtr injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  [[nodiscard]] const std::string& name() const override {
    return inner_->name();
  }
  [[nodiscard]] std::uint32_t numQueues() const override {
    return inner_->numQueues();
  }

  bool put(std::uint32_t queue, Bytes message) override {
    injector_->onOp(Op::kEnqueue, name(), queue);
    return inner_->put(queue, std::move(message));
  }

  void runWorkers(const std::function<void(mq::WorkerContext&)>& body)
      override {
    inner_->runWorkers([this, &body](mq::WorkerContext& inner) {
      Context ctx(*this, inner);
      body(ctx);
    });
  }

  void runWorkers(const std::function<void(mq::WorkerContext&)>& body,
                  std::uint32_t threads) override {
    inner_->runWorkers(
        [this, &body](mq::WorkerContext& inner) {
          Context ctx(*this, inner);
          body(ctx);
        },
        threads);
  }

  void close() override { inner_->close(); }

  [[nodiscard]] std::uint64_t backlog() const override {
    return inner_->backlog();
  }

 private:
  /// Worker-context decorator: every dequeue path is an injection site,
  /// consulted before the inner read so a fault never consumes a message.
  class Context : public mq::WorkerContext {
   public:
    Context(FaultyQueueSet& set, mq::WorkerContext& inner)
        : set_(set), inner_(inner) {}

    [[nodiscard]] std::uint32_t queueIndex() const override {
      return inner_.queueIndex();
    }

    std::optional<Bytes> read(std::chrono::milliseconds timeout) override {
      set_.injector_->onOp(Op::kDequeue, set_.name(), queueIndex());
      return inner_.read(timeout);
    }

    std::optional<Bytes> tryRead() override {
      set_.injector_->onOp(Op::kDequeue, set_.name(), queueIndex());
      return inner_.tryRead();
    }

    std::optional<Bytes> trySteal(std::uint32_t fromQueue) override {
      set_.injector_->onOp(Op::kDequeue, set_.name(), fromQueue);
      return inner_.trySteal(fromQueue);
    }

    std::optional<Bytes> tryReadFrom(std::uint32_t fromQueue) override {
      set_.injector_->onOp(Op::kDequeue, set_.name(), fromQueue);
      return inner_.tryReadFrom(fromQueue);
    }

   private:
    FaultyQueueSet& set_;
    mq::WorkerContext& inner_;
  };

  mq::QueueSetPtr inner_;
  FaultInjectorPtr injector_;
};

}  // namespace

FaultyQueuing::FaultyQueuing(mq::QueuingPtr inner, FaultInjectorPtr injector)
    : inner_(std::move(inner)), injector_(std::move(injector)) {}

mq::QueuingPtr FaultyQueuing::wrap(mq::QueuingPtr inner,
                                   FaultInjectorPtr injector) {
  return std::make_shared<FaultyQueuing>(std::move(inner),
                                         std::move(injector));
}

mq::QueueSetPtr FaultyQueuing::createQueueSet(const std::string& name,
                                              const kv::TablePtr& placement) {
  return std::make_shared<FaultyQueueSet>(
      inner_->createQueueSet(name, placement), injector_);
}

void FaultyQueuing::deleteQueueSet(const std::string& name) {
  inner_->deleteQueueSet(name);
}

}  // namespace ripple::fault
