// Virtual-time cluster model.
//
// The reproduction runs on whatever CPUs exist (possibly one), but the
// paper's evaluation ran on a 16-way machine where the interesting effects
// are *idle-processor* effects (e.g. SUMMA's 7/3 synchronization tax).  To
// measure those faithfully we model each store partition as a virtual
// processor: the engines charge per-invocation compute time to per-part
// virtual clocks, synchronization barriers advance every clock to the
// global max, and asynchronous message delivery models
// arrival = send time + latency.  The virtual makespan is then exactly the
// elapsed time a P-processor cluster would have seen, independent of how
// many physical cores executed the run.
//
// DESIGN.md §2 records this as the hardware substitution.

#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace ripple::sim {

/// Cost parameters for the virtual cluster.  All times in seconds.
struct CostModel {
  /// Fixed cost of one global synchronization barrier (message shuffle
  /// coordination, step bookkeeping).
  double barrierOverhead = 1e-4;
  /// Network latency of one message/spill hop between parts.
  double messageLatency = 5e-5;
  /// Fixed CPU cost charged per compute invocation (dispatch overhead).
  double invocationOverhead = 1e-6;
  /// CPU cost per message handled (marshalling etc.), added to measured
  /// compute time.
  double perMessageCost = 0.0;

  /// Model roughly calibrated to an in-memory store on a LAN.
  [[nodiscard]] static CostModel defaults() { return {}; }
};

/// Per-part virtual clocks.  Mutating calls for a given part must be
/// serialized by the caller (the engines naturally do: each part's work
/// runs on that part's executor).  barrier() must only be called when no
/// part is actively charging.
class VirtualCluster {
 public:
  VirtualCluster(std::uint32_t parts, CostModel model);

  [[nodiscard]] std::uint32_t parts() const {
    return static_cast<std::uint32_t>(clock_.size());
  }
  [[nodiscard]] const CostModel& model() const { return model_; }

  /// Current virtual time of one part.
  [[nodiscard]] double now(std::uint32_t part) const { return clock_[part]; }

  /// Charge `seconds` of compute to a part; returns the new clock value.
  double charge(std::uint32_t part, double seconds);

  /// Model receipt of a message sent at virtual time `sendTime` from a
  /// (possibly different) part: the receiving part cannot process it
  /// before sendTime + latency.  Advances the receiver's clock to the
  /// arrival time if it is earlier.  Returns the receiver's clock.
  double deliver(std::uint32_t part, double sendTime);

  /// Global synchronization barrier: every clock advances to
  /// max(all clocks) + barrierOverhead.  Returns the post-barrier time.
  double barrier();

  /// Elapsed virtual time of the computation so far.
  [[nodiscard]] double makespan() const;

  /// Reset all clocks to zero.
  void reset();

 private:
  std::vector<double> clock_;
  CostModel model_;
};

}  // namespace ripple::sim
