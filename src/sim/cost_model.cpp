#include "sim/cost_model.h"

#include <ctime>
#include <cstdlib>

namespace ripple::sim {

namespace {

double envOr(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end == v ? fallback : parsed;
}

}  // namespace

double threadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

CostModel costModelFromEnv() {
  CostModel m = CostModel::defaults();
  m.barrierOverhead = envOr("RIPPLE_SIM_BARRIER", m.barrierOverhead);
  m.messageLatency = envOr("RIPPLE_SIM_LATENCY", m.messageLatency);
  m.invocationOverhead = envOr("RIPPLE_SIM_INVOKE", m.invocationOverhead);
  m.perMessageCost = envOr("RIPPLE_SIM_PER_MSG", m.perMessageCost);
  return m;
}

}  // namespace ripple::sim
