#include "sim/virtual_time.h"

#include <algorithm>
#include <stdexcept>

namespace ripple::sim {

VirtualCluster::VirtualCluster(std::uint32_t parts, CostModel model)
    : clock_(parts, 0.0), model_(model) {
  if (parts == 0) {
    throw std::invalid_argument("VirtualCluster: parts must be positive");
  }
}

double VirtualCluster::charge(std::uint32_t part, double seconds) {
  clock_.at(part) += seconds;
  return clock_[part];
}

double VirtualCluster::deliver(std::uint32_t part, double sendTime) {
  const double arrival = sendTime + model_.messageLatency;
  double& c = clock_.at(part);
  c = std::max(c, arrival);
  return c;
}

double VirtualCluster::barrier() {
  const double t = makespan() + model_.barrierOverhead;
  std::fill(clock_.begin(), clock_.end(), t);
  return t;
}

double VirtualCluster::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

void VirtualCluster::reset() { std::fill(clock_.begin(), clock_.end(), 0.0); }

}  // namespace ripple::sim
