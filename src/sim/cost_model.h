// Cost-model helpers: environment overrides and RAII measurement scopes.

#pragma once

#include <chrono>

#include "sim/virtual_time.h"

namespace ripple::sim {

/// CostModel::defaults() with optional environment overrides:
///   RIPPLE_SIM_BARRIER   — barrier overhead, seconds
///   RIPPLE_SIM_LATENCY   — message latency, seconds
///   RIPPLE_SIM_INVOKE    — per-invocation overhead, seconds
///   RIPPLE_SIM_PER_MSG   — per-message cost, seconds
[[nodiscard]] CostModel costModelFromEnv();

/// Current thread's consumed CPU time in seconds.  Thread CPU time (not
/// wall time) keeps virtual-time charges accurate even when the physical
/// machine has fewer cores than the virtual cluster and threads preempt
/// each other.
[[nodiscard]] double threadCpuSeconds();

/// Measures the thread CPU time of a scope and charges it (plus the
/// per-invocation overhead) to one part's virtual clock on destruction.
/// Used around compute invocations so virtual time reflects actual CPU
/// work arranged onto virtual processors.
class ChargeScope {
 public:
  ChargeScope(VirtualCluster* cluster, std::uint32_t part)
      : cluster_(cluster), part_(part),
        start_(cluster ? threadCpuSeconds() : 0.0) {}

  ChargeScope(const ChargeScope&) = delete;
  ChargeScope& operator=(const ChargeScope&) = delete;

  ~ChargeScope() {
    if (cluster_ != nullptr) {
      const double dt = threadCpuSeconds() - start_;
      cluster_->charge(part_, dt + cluster_->model().invocationOverhead);
    }
  }

 private:
  VirtualCluster* cluster_;  // May be null: measurement disabled.
  std::uint32_t part_;
  double start_;
};

}  // namespace ripple::sim
