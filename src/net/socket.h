// ripple::net — minimal POSIX TCP plumbing: endpoints, connected sockets
// with deadline-bounded I/O, and a listener.
//
// Raw socket failures surface as NetError; the Client (client.h) is the
// layer that maps them into ripple::fault transient errors so the engines'
// existing retry machinery applies.  Nothing here knows about frames.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace ripple::net {

/// A connect/send/recv-level failure (refused, reset, timeout, EOF where
/// bytes were required).  Deliberately NOT a fault::TransientError: the
/// client decides which socket errors are retryable.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// The peer closed the connection (clean EOF) where a response was still
/// owed.  Distinguished from NetError so non-idempotent callers can give
/// it exact semantics: a queue read treats it as "set closed" (clean
/// worker termination), a queue put as "not accepted" — instead of a
/// blind transient failure.
class ConnectionClosed : public NetError {
 public:
  explicit ConnectionClosed(const std::string& what) : NetError(what) {}
};

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string str() const {
    return host + ":" + std::to_string(port);
  }

  bool operator==(const Endpoint& other) const {
    return host == other.host && port == other.port;
  }
};

/// Parse "host:port"; throws std::invalid_argument on malformed input.
[[nodiscard]] Endpoint parseEndpoint(const std::string& spec);

/// Parse "host:port,host:port,..." (the RIPPLE_REMOTE_ENDPOINTS format).
[[nodiscard]] std::vector<Endpoint> parseEndpointList(const std::string& spec);

/// A connected TCP socket (RAII over the fd).  Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  /// Dial with a bounded connect (non-blocking connect + poll).  Throws
  /// NetError on refusal/timeout/resolution failure.
  [[nodiscard]] static Socket connect(const Endpoint& endpoint,
                                      int timeoutMs);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Write the whole buffer or throw NetError; each poll wait is bounded
  /// by timeoutMs.
  void sendAll(BytesView data, int timeoutMs);

  /// Read up to `capacity` bytes into `out` (appended).  Returns the
  /// number of bytes read; 0 means clean EOF.  Throws NetError on error
  /// or when the deadline lapses with nothing read.
  std::size_t recvSome(Bytes& out, std::size_t capacity, int timeoutMs);

  /// Non-blocking staleness probe for pooled idle connections: true when
  /// the peer has closed (EOF or error queued) or the connection carries
  /// unexpected bytes — an idle request/response connection must be
  /// silent, so pending input means protocol debris and the connection is
  /// equally unusable.  Never blocks; false on a healthy idle socket.
  [[nodiscard]] bool peerClosed() const;

  /// Half-close + close; idempotent, callable to unblock a peer.
  void close();

  /// shutdown(2) both directions without closing the fd — wakes a thread
  /// blocked in recv on this socket from another thread without the
  /// use-after-close race of close().
  void shutdownBoth();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to host:port (port 0 picks an ephemeral
/// port, readable via port()).
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen; throws NetError.
  void open(const Endpoint& endpoint, int backlog = 64);

  /// Accept with a bounded wait; nullopt on timeout.  Throws NetError on
  /// listener failure (including close() from another thread).
  [[nodiscard]] std::optional<Socket> accept(int timeoutMs);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ripple::net
