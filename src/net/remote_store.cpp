#include "net/remote_store.h"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <utility>

#include "common/executor.h"
#include "common/logging.h"
#include "net/frame.h"
#include "net/server.h"

namespace ripple::net {

namespace {

// Which location of which RemoteStore the calling thread currently acts
// for — set by adoptPartThread tokens and by mobile-code wrappers, read
// by the local/remote accounting.  Keyed by store so two RemoteStores in
// one process cannot cross-talk.
thread_local const RemoteStore* tlsStore = nullptr;
thread_local std::uint32_t tlsLocation = 0;

class ScopedLocation {
 public:
  ScopedLocation(const RemoteStore* store, std::uint32_t location)
      : prevStore_(tlsStore), prevLocation_(tlsLocation) {
    tlsStore = store;
    tlsLocation = location;
  }
  ~ScopedLocation() {
    tlsStore = prevStore_;
    tlsLocation = prevLocation_;
  }
  ScopedLocation(const ScopedLocation&) = delete;
  ScopedLocation& operator=(const ScopedLocation&) = delete;

 private:
  const RemoteStore* prevStore_;
  std::uint32_t prevLocation_;
};

/// Await every per-part future in part order, combining results; the
/// first (lowest-part) failure wins after all futures settle, mirroring
/// PartitionedStore's aggregation.
Bytes combineInPartOrder(std::vector<std::future<Bytes>>& futures,
                         const std::function<Bytes(Bytes, Bytes)>& combine) {
  Bytes combined;
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      combined = combine(std::move(combined), future.get());
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
  return combined;
}

}  // namespace

class RemoteTable : public kv::Table {
 public:
  RemoteTable(RemoteStore* store, std::string name, kv::TableOptions options)
      : store_(store), name_(std::move(name)), options_(std::move(options)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const kv::TableOptions& options() const override {
    return options_;
  }
  [[nodiscard]] std::uint32_t numParts() const override {
    return options_.parts;
  }

  [[nodiscard]] std::uint32_t partOf(kv::KeyView key) const override {
    return options_.ubiquitous ? 0 : options_.partitioner->partOf(key);
  }

  std::optional<kv::Value> get(kv::KeyView key) override {
    const std::uint32_t part = partOf(key);
    ByteWriter w(name_.size() + key.size() + 16);
    w.putBytes(name_);
    w.putFixed32(part);
    w.putBytes(key);
    const Bytes response = callPart(Opcode::kGet, fault::Op::kGet, part,
                                    w.view(), /*retryIo=*/true);
    account(part, w.size() + response.size());
    ByteReader r(response);
    if (!r.getBool()) {
      return std::nullopt;
    }
    return kv::Value{r.getBytes()};
  }

  void put(kv::KeyView key, kv::ValueView value) override {
    checkWritable("put");
    const std::uint32_t part = partOf(key);
    ByteWriter w(name_.size() + key.size() + value.size() + 24);
    w.putBytes(name_);
    w.putFixed32(part);
    w.putBytes(key);
    w.putBytes(value);
    callPart(Opcode::kPut, fault::Op::kPut, part, w.view(), /*retryIo=*/true);
    account(part, w.size());
  }

  bool erase(kv::KeyView key) override {
    checkWritable("erase");
    const std::uint32_t part = partOf(key);
    ByteWriter w(name_.size() + key.size() + 16);
    w.putBytes(name_);
    w.putFixed32(part);
    w.putBytes(key);
    // The erase EFFECT is idempotent but the boolean is not: a re-sent
    // erase whose first send executed would answer false.  The dedup
    // cache replays the recorded answer instead.
    const Bytes response = callPart(Opcode::kErase, fault::Op::kErase, part,
                                    w.view(), /*retryIo=*/false,
                                    /*dedup=*/true);
    account(part, w.size());
    return ByteReader(response).getBool();
  }

  void putBatch(
      const std::vector<std::pair<kv::Key, kv::Value>>& entries) override {
    checkWritable("putBatch");
    if (entries.empty()) {
      return;
    }
    // One kPutBatch per endpoint, grouped client-side, so a batch costs
    // O(servers) round trips instead of O(entries).
    const std::size_t endpoints = store_->placement().endpointCount();
    std::vector<std::vector<const std::pair<kv::Key, kv::Value>*>> groups(
        endpoints);
    std::vector<std::uint32_t> groupPart(endpoints, 0);
    for (const auto& entry : entries) {
      const std::uint32_t part = partOf(entry.first);
      const std::size_t endpoint = store_->placement().endpointOf(part);
      if (groups[endpoint].empty()) {
        groupPart[endpoint] = part;
      }
      groups[endpoint].push_back(&entry);
    }
    for (std::size_t e = 0; e < endpoints; ++e) {
      if (groups[e].empty()) {
        continue;
      }
      ByteWriter w;
      w.putBytes(name_);
      w.putVarint(groups[e].size());
      for (const auto* entry : groups[e]) {
        const std::uint32_t part = partOf(entry->first);
        w.putFixed32(part);
        w.putBytes(entry->first);
        w.putBytes(entry->second);
      }
      store_->client_->call(e, Opcode::kPutBatch, w.view(), fault::Op::kPut,
                            name_, groupPart[e], /*retryIo=*/true);
      account(groupPart[e], w.size());
    }
  }

  [[nodiscard]] std::uint64_t size() const override {
    ByteWriter w(name_.size() + 8);
    w.putBytes(name_);
    std::uint64_t total = 0;
    for (std::size_t e = 0; e < store_->placement().endpointCount(); ++e) {
      const Bytes response = store_->client_->call(
          e, Opcode::kTableSize, w.view(), fault::Op::kScan, name_, 0,
          /*retryIo=*/true);
      total += ByteReader(response).getFixed64();
    }
    return total;
  }

  [[nodiscard]] std::uint64_t partSize(std::uint32_t part) const override {
    ByteWriter w(name_.size() + 12);
    w.putBytes(name_);
    w.putFixed32(part);
    const Bytes response = store_->client_->call(
        store_->placement().endpointOf(part), Opcode::kPartSize, w.view(),
        fault::Op::kScan, name_, part, /*retryIo=*/true);
    return ByteReader(response).getFixed64();
  }

  Bytes enumerate(kv::PairConsumer& consumer) override {
    std::vector<std::future<Bytes>> futures;
    futures.reserve(numParts());
    for (std::uint32_t p = 0; p < numParts(); ++p) {
      futures.push_back(
          store_->executorAt(store_->locationOf(p)).submit([this, p,
                                                            &consumer] {
            return scanInto(p, consumer);
          }));
    }
    return combineInPartOrder(futures, [&](Bytes a, Bytes b) {
      return consumer.combine(std::move(a), std::move(b));
    });
  }

  Bytes enumeratePart(std::uint32_t part,
                      kv::PairConsumer& consumer) override {
    return store_->executorAt(store_->locationOf(part)).run([this, part,
                                                             &consumer] {
      return scanInto(part, consumer);
    });
  }

  Bytes processParts(kv::PartConsumer& consumer) override {
    std::vector<std::future<Bytes>> futures;
    futures.reserve(numParts());
    for (std::uint32_t p = 0; p < numParts(); ++p) {
      const std::uint32_t location = store_->locationOf(p);
      futures.push_back(store_->executorAt(location).submit(
          [this, p, location, &consumer] {
            ScopedLocation scope(store_, location);
            return consumer.processPart(p, *this);
          }));
    }
    return combineInPartOrder(futures, [&](Bytes a, Bytes b) {
      return consumer.combine(std::move(a), std::move(b));
    });
  }

  std::uint64_t clearPart(std::uint32_t part) override {
    checkWritable("clearPart");
    ByteWriter w(name_.size() + 12);
    w.putBytes(name_);
    w.putFixed32(part);
    // Like erase: re-executing a clear is harmless but its cleared-pair
    // COUNT is not re-derivable, so the answer rides the dedup cache.
    const Bytes response = callPart(Opcode::kClearPart, fault::Op::kDrain,
                                    part, w.view(), /*retryIo=*/false,
                                    /*dedup=*/true);
    account(part, w.size());
    return ByteReader(response).getFixed64();
  }

  std::vector<std::pair<kv::Key, kv::Value>> drainPart(
      std::uint32_t part) override {
    checkWritable("drainPart");
    ByteWriter w(name_.size() + 12);
    w.putBytes(name_);
    w.putFixed32(part);
    // Destructive read: a blind re-execution could observe an already
    // consumed part, so it rides the dedup cache instead of retryIo — a
    // re-sent request id replays the recorded drain result byte-for-byte.
    const Bytes response =
        callPart(Opcode::kDrainPart, fault::Op::kDrain, part, w.view(),
                 /*retryIo=*/false, /*dedup=*/true);
    account(part, w.size() + response.size());
    ByteReader r(response);
    const std::uint64_t count = r.getVarint();
    std::vector<std::pair<kv::Key, kv::Value>> pairs;
    pairs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      kv::Key key{r.getBytes()};
      pairs.emplace_back(std::move(key), kv::Value{r.getBytes()});
    }
    return pairs;
  }

 private:
  Bytes callPart(Opcode op, fault::Op faultOp, std::uint32_t part,
                 BytesView payload, bool retryIo, bool dedup = false) {
    return store_->client_->call(store_->placement().endpointOf(part), op,
                                 payload, faultOp, name_, part, retryIo,
                                 dedup);
  }

  /// Scan one part at its location and drive `consumer` through the SPI's
  /// setup/consume/finalize protocol.  Runs with the location mark set so
  /// the traffic is accounted collocated, mirroring the in-process
  /// stores' owner-executor enumeration.
  Bytes scanInto(std::uint32_t part, kv::PairConsumer& consumer) {
    ScopedLocation scope(store_, store_->locationOf(part));
    ByteWriter w(name_.size() + 12);
    w.putBytes(name_);
    w.putFixed32(part);
    const Bytes response = callPart(Opcode::kScanPart, fault::Op::kScan, part,
                                    w.view(), /*retryIo=*/true);
    store_->metrics_.incScans();
    account(part, w.size() + response.size());
    ByteReader r(response);
    const std::uint64_t count = r.getVarint();
    consumer.setupPart(part);
    for (std::uint64_t i = 0; i < count; ++i) {
      const BytesView key = r.getBytes();
      const BytesView value = r.getBytes();
      if (!consumer.consume(part, key, value)) {
        break;
      }
    }
    return consumer.finalizePart(part);
  }

  void account(std::uint32_t part, std::size_t bytes) const {
    kv::StoreMetrics& m = store_->metrics_;
    if (store_->onLocation(store_->locationOf(part))) {
      m.incLocal();
    } else {
      m.incRemote();
    }
    m.addMarshalled(bytes);
  }

  RemoteStore* store_;
  std::string name_;
  kv::TableOptions options_;
};

RemoteStore::RemoteStore(Options options)
    : options_(std::move(options)),
      client_(std::make_shared<Client>(options_.client)),
      placement_(client_->endpointCount()) {
  const std::uint32_t locations = std::max<std::uint32_t>(
      1, options_.locations);
  locations_.reserve(locations);
  for (std::uint32_t i = 0; i < locations; ++i) {
    locations_.push_back(
        std::make_unique<SerialExecutor>("remote-loc-" + std::to_string(i)));
  }
  // Raw `this` is safe: client_ is owned by this store and every call
  // that can detect an epoch change comes through it.
  client_->addRestartHook(
      [this](std::size_t endpoint) { reseedEndpoint(endpoint); });
}

void RemoteStore::reseedEndpoint(std::size_t endpoint) {
  // Snapshot (name, shape) pairs under the registry lock — no wire I/O
  // here — then recreate over the wire unlocked, in sorted order so
  // concurrent reseeds of the same incarnation collide deterministically.
  std::vector<std::pair<std::string, kv::TablePtr>> snapshot;
  {
    LockGuard lock(tablesMu_);
    snapshot.reserve(tables_.size());
    for (const auto& [name, table] : tables_) {
      if (table != nullptr) {  // Skip in-flight createTable reservations.
        snapshot.emplace_back(name, table);
      }
    }
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [name, table] : snapshot) {
    const kv::TableOptions& opts = table->options();
    ByteWriter w(name.size() + 16);
    w.putBytes(name);
    w.putVarint(opts.parts);
    w.putBool(opts.ordered);
    w.putBool(opts.ubiquitous);
    try {
      client_->call(endpoint, Opcode::kCreateTable, w.view(), fault::Op::kPut,
                    name, 0, /*retryIo=*/false, /*dedup=*/true);
    } catch (const std::invalid_argument&) {
      // Already recreated by a racing reseed (or survived): fine.
    }
  }
}

std::shared_ptr<RemoteStore> RemoteStore::create(Options options) {
  return std::shared_ptr<RemoteStore>(new RemoteStore(std::move(options)));
}

RemoteStore::~RemoteStore() { shutdown(); }

void RemoteStore::shutdown() {
  std::shared_ptr<void> keepalive;
  {
    LockGuard lock(lifecycleMu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    for (auto& location : locations_) {
      try {
        location->shutdown();
      } catch (...) {
        // A leaked mobile-code exception must not abort teardown.
      }
    }
    client_->closeAll();
    keepalive = std::move(keepalive_);
  }
  // Implicit loopback servers stop here, OUTSIDE the driver lifecycle
  // lock: Server::stop() takes its own kNetLifecycle mutex, and nesting
  // two same-rank lifecycle locks is a rank violation (found by the
  // validator via makeLoopbackStore teardown).
  keepalive.reset();
}

void RemoteStore::holdKeepalive(std::shared_ptr<void> keepalive) {
  keepalive_ = std::move(keepalive);
}

std::uint32_t RemoteStore::locationCount() const {
  return static_cast<std::uint32_t>(locations_.size());
}

std::uint32_t RemoteStore::locationOf(std::uint32_t part) const {
  return part % static_cast<std::uint32_t>(locations_.size());
}

bool RemoteStore::onLocation(std::uint32_t location) const {
  return tlsStore == this && tlsLocation == location;
}

SerialExecutor& RemoteStore::executorAt(std::uint32_t location) {
  return *locations_.at(location);
}

std::function<void()> RemoteStore::atLocation(std::uint32_t location,
                                              std::function<void()> fn) {
  return [this, location, fn = std::move(fn)] {
    ScopedLocation scope(this, location);
    fn();
  };
}

kv::TablePtr RemoteStore::createTable(const std::string& name,
                                      kv::TableOptions options) {
  kv::TableOptions normalized = std::move(options);
  if (normalized.ubiquitous) {
    normalized.parts = 1;
  }
  if (normalized.parts == 0) {
    throw std::invalid_argument("RemoteStore: table '" + name +
                                "' needs at least one part");
  }
  if (!normalized.ubiquitous && normalized.partitioner &&
      normalized.partitioner->parts() != normalized.parts) {
    throw std::invalid_argument(
        "RemoteStore: partitioner covers " +
        std::to_string(normalized.partitioner->parts()) + " parts, table '" +
        name + "' has " + std::to_string(normalized.parts));
  }
  if (!normalized.partitioner) {
    normalized.partitioner = makeDefaultPartitioner(normalized.parts);
  }

  // Reserve the name, then do the wire round-trips UNLOCKED: tablesMu_
  // must never be held across blocking socket I/O (a slow or dead server
  // would wedge every other table operation behind it).  The nullptr
  // placeholder keeps a concurrent createTable of the same name failing
  // with "already exists" while lookupTable still reports "not found"
  // until the table exists on every server.
  {
    LockGuard lock(tablesMu_);
    if (!tables_.emplace(name, nullptr).second) {
      throw std::invalid_argument("RemoteStore: table '" + name +
                                  "' already exists");
    }
  }
  ByteWriter w(name.size() + 16);
  w.putBytes(name);
  w.putVarint(normalized.parts);
  w.putBool(normalized.ordered);
  w.putBool(normalized.ubiquitous);
  try {
    // A table's parts shard across every server, so it must exist on all.
    // Creation is non-idempotent (a second execution answers "already
    // exists"), so it rides the dedup cache rather than retryIo.
    for (std::size_t e = 0; e < placement_.endpointCount(); ++e) {
      client_->call(e, Opcode::kCreateTable, w.view(), fault::Op::kPut, name,
                    0, /*retryIo=*/false, /*dedup=*/true);
    }
  } catch (...) {
    LockGuard lock(tablesMu_);
    tables_.erase(name);
    throw;
  }
  auto table =
      std::make_shared<RemoteTable>(this, name, std::move(normalized));
  LockGuard lock(tablesMu_);
  tables_[name] = table;
  return table;
}

kv::TablePtr RemoteStore::lookupTable(const std::string& name) {
  LockGuard lock(tablesMu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

void RemoteStore::dropTable(const std::string& name) {
  // Unregister first, wire-drop after: the registry lock is never held
  // across blocking socket I/O (see createTable).
  {
    LockGuard lock(tablesMu_);
    tables_.erase(name);
  }
  ByteWriter w(name.size() + 8);
  w.putBytes(name);
  for (std::size_t e = 0; e < placement_.endpointCount(); ++e) {
    client_->call(e, Opcode::kDropTable, w.view(), fault::Op::kErase, name, 0,
                  /*retryIo=*/true);
  }
}

void RemoteStore::runInParts(const kv::Table& placement,
                             const std::function<void(std::uint32_t)>& fn) {
  const std::uint32_t parts = placement.numParts();
  std::vector<std::future<void>> futures;
  futures.reserve(parts);
  for (std::uint32_t p = 0; p < parts; ++p) {
    futures.push_back(executorAt(locationOf(p)).submit(
        atLocation(locationOf(p), [&fn, p] { fn(p); })));
  }
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

void RemoteStore::runInPart(const kv::Table& placement, std::uint32_t part,
                            const std::function<void()>& fn) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("RemoteStore: runInPart part " +
                            std::to_string(part) + " out of range");
  }
  const std::uint32_t location = locationOf(part);
  executorAt(location).run([this, location, &fn] {
    ScopedLocation scope(this, location);
    fn();
  });
}

void RemoteStore::postToPart(const kv::Table& placement, std::uint32_t part,
                             std::function<void()> fn) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("RemoteStore: postToPart part " +
                            std::to_string(part) + " out of range");
  }
  executorAt(locationOf(part)).execute(atLocation(locationOf(part),
                                                  std::move(fn)));
}

std::shared_ptr<void> RemoteStore::adoptPartThread(const kv::Table& placement,
                                                   std::uint32_t part) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("RemoteStore: adoptPartThread part " +
                            std::to_string(part) + " out of range");
  }
  return std::make_shared<ScopedLocation>(this, locationOf(part));
}

std::optional<int> parseEnvMs(const char* name, int minVal, int maxVal) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < minVal || value > maxVal) {
    RIPPLE_WARN << name << "='" << env << "' is not an integer in ["
                << minVal << ", " << maxVal << "]; ignoring";
    return std::nullopt;
  }
  return static_cast<int>(value);
}

NetTuning resolveNetTuning(NetTuning tuning) {
  if (tuning.timeoutMs == 0) {
    tuning.timeoutMs = parseEnvMs("RIPPLE_NET_TIMEOUT_MS", 1, 3600000)
                           .value_or(0);
  }
  if (tuning.redialMs == 0) {
    tuning.redialMs = parseEnvMs("RIPPLE_NET_REDIAL_MS", 1, 3600000)
                          .value_or(0);
  }
  if (tuning.queueWaitMs == 0) {
    tuning.queueWaitMs = parseEnvMs("RIPPLE_NET_QUEUE_WAIT_MS", 1, 60000)
                             .value_or(0);
  }
  return tuning;
}

namespace {

/// Apply resolved tuning onto client/store options (zero = keep default).
void applyTuning(const NetTuning& tuning, Client::Options& client,
                 std::uint32_t& queueWaitSliceMs) {
  if (tuning.timeoutMs != 0) {
    client.connectTimeoutMs = tuning.timeoutMs;
    client.requestTimeoutMs = tuning.timeoutMs;
  }
  if (tuning.redialMs != 0) {
    client.redialTimeoutMs = tuning.redialMs;
  }
  if (tuning.queueWaitMs != 0) {
    queueWaitSliceMs = static_cast<std::uint32_t>(tuning.queueWaitMs);
  }
}

}  // namespace

kv::KVStorePtr makeRemoteStoreFromEnv(std::uint32_t containers) {
  return makeRemoteStoreFromEnv(containers, NetTuning{});
}

kv::KVStorePtr makeRemoteStoreFromEnv(std::uint32_t containers,
                                      NetTuning tuning) {
  tuning = resolveNetTuning(tuning);
  const char* endpoints = std::getenv("RIPPLE_REMOTE_ENDPOINTS");
  if (endpoints != nullptr && *endpoints != '\0') {
    RemoteStore::Options options;
    options.client.endpoints = parseEndpointList(endpoints);
    options.locations = containers;
    applyTuning(tuning, options.client, options.queueWaitSliceMs);
    return RemoteStore::create(std::move(options));
  }

  // No servers given: spin an implicit in-process loopback fleet so
  // `RIPPLE_STORE=remote` works everywhere the other backends do.
  LoopbackOptions loopback;
  loopback.hostedContainers = containers;
  loopback.locations = containers;
  loopback.connectTimeoutMs = tuning.timeoutMs;
  loopback.requestTimeoutMs = tuning.timeoutMs;
  loopback.redialTimeoutMs = tuning.redialMs;
  loopback.maxQueueWaitMs =
      tuning.queueWaitMs > 0 ? static_cast<std::uint32_t>(tuning.queueWaitMs)
                             : 0;
  if (const char* hosted = std::getenv("RIPPLE_REMOTE_HOSTED");
      hosted != nullptr && *hosted != '\0') {
    std::optional<kv::StoreBackend> parsed = kv::parseStoreBackend(hosted);
    if (parsed && *parsed != kv::StoreBackend::kRemote) {
      loopback.hostedBackend = *parsed;
    } else {
      RIPPLE_WARN << "RIPPLE_REMOTE_HOSTED='" << hosted
                  << "' is not a hostable backend "
                     "(partitioned|shard|local|log); "
                     "using partitioned";
    }
  }
  if (const char* servers = std::getenv("RIPPLE_REMOTE_SERVERS");
      servers != nullptr && *servers != '\0') {
    char* end = nullptr;
    const long n = std::strtol(servers, &end, 10);
    if (end != servers && *end == '\0' && n >= 1 && n <= 64) {
      loopback.servers = static_cast<std::size_t>(n);
    } else {
      RIPPLE_WARN << "RIPPLE_REMOTE_SERVERS='" << servers
                  << "' is not a count in [1, 64]; using 1";
    }
  }
  return makeLoopbackStore(std::move(loopback));
}

RemoteStorePtr makeLoopbackStore(LoopbackOptions options) {
  if (options.servers == 0) {
    throw std::invalid_argument("makeLoopbackStore: need at least one server");
  }
  if (options.hostedBackend == kv::StoreBackend::kRemote) {
    throw std::invalid_argument(
        "makeLoopbackStore: a loopback server cannot host another remote "
        "store");
  }
  struct Keepalive {
    std::vector<kv::KVStorePtr> hosted;
    std::vector<std::unique_ptr<Server>> servers;
    ~Keepalive() {
      for (auto& server : servers) {
        server->stop();
      }
    }
  };
  auto keepalive = std::make_shared<Keepalive>();
  RemoteStore::Options storeOptions;
  for (std::size_t i = 0; i < options.servers; ++i) {
    kv::KVStorePtr hosted =
        kv::makeStore(options.hostedBackend, options.hostedContainers);
    Server::Options serverOptions;
    serverOptions.hosted = hosted;
    if (options.requestTimeoutMs > 0) {
      serverOptions.sendTimeoutMs = options.requestTimeoutMs;
    }
    if (options.maxQueueWaitMs > 0) {
      serverOptions.maxQueueWaitMs = options.maxQueueWaitMs;
    }
    auto server = std::make_unique<Server>(std::move(serverOptions));
    server->start();
    storeOptions.client.endpoints.push_back(
        Endpoint{"127.0.0.1", server->port()});
    keepalive->hosted.push_back(std::move(hosted));
    keepalive->servers.push_back(std::move(server));
  }
  storeOptions.client.retry = options.retry;
  storeOptions.client.injector = options.injector;
  storeOptions.client.clientId = options.clientId;
  storeOptions.client.chaos = std::move(options.chaos);
  if (options.connectTimeoutMs > 0) {
    storeOptions.client.connectTimeoutMs = options.connectTimeoutMs;
  }
  if (options.requestTimeoutMs > 0) {
    storeOptions.client.requestTimeoutMs = options.requestTimeoutMs;
  }
  if (options.redialTimeoutMs > 0) {
    storeOptions.client.redialTimeoutMs = options.redialTimeoutMs;
  }
  if (options.maxQueueWaitMs > 0) {
    storeOptions.queueWaitSliceMs = options.maxQueueWaitMs;
  }
  storeOptions.locations = options.locations;
  RemoteStorePtr store = RemoteStore::create(std::move(storeOptions));
  store->holdKeepalive(std::move(keepalive));
  return store;
}

}  // namespace ripple::net
