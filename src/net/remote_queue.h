// ripple::net — RemoteQueuing: the Message Queuing SPI over the wire
// transport (DESIGN.md §11).
//
// Queue sets live on the same servers as the store: queue q of a set is
// hosted by the server owning part q under the store's PlacementMap, so a
// queue stays collocated with its part.  Workers are driver-side threads
// (exactly like MemQueueSet's) whose reads become kQueueRead requests;
// the server bounds each blocking wait at kMaxServerQueueWaitMs and the
// client re-issues until the caller's deadline, so a close() from
// anywhere — or a server shutdown, surfacing as a clean ConnectionClosed —
// terminates blocked readers promptly instead of hanging them.
//
// Per-(sender, queue) FIFO survives the network because requests are
// synchronous: a sender's second put is not encoded until its first has
// been acknowledged by the owning server.

#pragma once

#include "kvstore/table.h"
#include "mq/queue.h"
#include "net/remote_store.h"

namespace ripple::net {

/// Queuing over `store`'s transport.  `store` must be a RemoteStore
/// (throws std::invalid_argument otherwise); the kv::KVStorePtr signature
/// matches the in-process factories so the conformance suites can treat
/// all backends uniformly.
[[nodiscard]] mq::QueuingPtr makeRemoteQueuing(kv::KVStorePtr store);

}  // namespace ripple::net
