#include "net/client.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace ripple::net {

namespace {

[[noreturn]] void throwTransient(fault::Op faultOp, const std::string& what) {
  if (faultOp == fault::Op::kEnqueue || faultOp == fault::Op::kDequeue) {
    throw fault::TransientQueueError(what);
  }
  throw fault::TransientStoreError(what);
}

}  // namespace

Client::Client(Options options) : options_(std::move(options)) {
  if (options_.endpoints.empty()) {
    throw std::invalid_argument("net::Client: at least one endpoint required");
  }
  pool_.resize(options_.endpoints.size());
}

Client::~Client() { closeAll(); }

void Client::bindRegistry(obs::MetricsRegistry& registry) {
  metrics_.bindRegistry(registry, "net");
  registry_.store(&registry, std::memory_order_release);
}

void Client::closeAll() {
  LockGuard lock(poolMu_);
  for (auto& idle : pool_) {
    idle.clear();
  }
}

std::unique_ptr<Client::Channel> Client::acquire(std::size_t endpoint) {
  {
    LockGuard lock(poolMu_);
    auto& idle = pool_.at(endpoint);
    if (!idle.empty()) {
      std::unique_ptr<Channel> channel = std::move(idle.back());
      idle.pop_back();
      return channel;
    }
  }
  auto channel = std::make_unique<Channel>();
  channel->sock =
      Socket::connect(options_.endpoints.at(endpoint), options_.connectTimeoutMs);
  metrics_.incReconnects();
  return channel;
}

void Client::release(std::size_t endpoint, std::unique_ptr<Channel> channel) {
  LockGuard lock(poolMu_);
  pool_.at(endpoint).push_back(std::move(channel));
}

Bytes Client::exchange(std::size_t endpoint, Opcode op, BytesView payload) {
  std::unique_ptr<Channel> channel = acquire(endpoint);
  const std::uint64_t requestId =
      nextRequestId_.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();

  std::optional<Frame> frame;
  try {
    const Bytes request = encodeFrame(op, 0, requestId, payload);
    channel->sock.sendAll(request, options_.requestTimeoutMs);
    metrics_.addTx(request.size());

    Bytes chunk;
    while (!(frame = channel->decoder.next())) {
      chunk.clear();
      const std::size_t n =
          channel->sock.recvSome(chunk, 64 * 1024, options_.requestTimeoutMs);
      if (n == 0) {
        throw ConnectionClosed("net::Client: connection closed mid-request");
      }
      metrics_.addRx(n);
      channel->decoder.feed(chunk);
    }
    if (frame->requestId != requestId ||
        frame->opcode != static_cast<std::uint8_t>(op)) {
      // A pooled channel never holds stale bytes (failed exchanges drop
      // the connection), so a mismatch is a protocol violation.
      throw NetError("net::Client: response id/opcode mismatch");
    }
  } catch (const FrameError& e) {
    metrics_.incDropped();
    throw NetError(std::string("net::Client: poisoned stream: ") + e.what());
  } catch (const NetError&) {
    metrics_.incDropped();
    throw;  // `channel` is destroyed here: the connection is not reused.
  }

  metrics_.incRequests();
  metrics_.recordRtt(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count());

  if (frame->isError()) {
    // The connection is healthy — the request failed server-side.
    const DecodedError error = decodeError(frame->payload);
    release(endpoint, std::move(channel));
    throwDecodedError(error);
  }
  release(endpoint, std::move(channel));
  return std::move(frame->payload);
}

void Client::noteRetrier(const fault::Retrier& retrier) {
  retries_.fetch_add(retrier.retries(), std::memory_order_relaxed);
  escalations_.fetch_add(retrier.escalations(), std::memory_order_relaxed);
}

Bytes Client::call(std::size_t endpoint, Opcode op, BytesView payload,
                   fault::Op faultOp, std::string_view name,
                   std::uint32_t part, bool retryIo) {
  // One Retrier per call: the jitter stream is single-consumer, and the
  // request id seed keeps backoff schedules deterministic per request.
  fault::Retrier retrier(options_.retry,
                         nextRequestId_.load(std::memory_order_relaxed));
  if (obs::MetricsRegistry* reg = registry_.load(std::memory_order_acquire)) {
    retrier.bindRegistry(reg);
  }
  try {
    Bytes response = retrier([&]() -> Bytes {
      if (options_.injector) {
        // Fail-before: a firing rule throws Transient* with nothing sent,
        // so the retry loop may always re-attempt it.
        options_.injector->onOp(faultOp, name, part);
      }
      try {
        return exchange(endpoint, op, payload);
      } catch (const NetError& e) {
        if (retryIo) {
          throwTransient(faultOp, e.what());
        }
        throw;
      }
    });
    noteRetrier(retrier);
    return response;
  } catch (const ConnectionClosed&) {
    // Non-idempotent request, peer gone: propagate the precise condition;
    // the SPI layer maps it (queue read → closed, queue put → rejected,
    // drain → transient for the engine recovery sites).
    noteRetrier(retrier);
    throw;
  } catch (const NetError& e) {
    // Non-idempotent request hit a real transport failure: surface it as
    // transient for the engines' recovery sites, but do not retry here —
    // the server may or may not have performed the operation.
    noteRetrier(retrier);
    throwTransient(faultOp, e.what());
  } catch (...) {
    noteRetrier(retrier);
    throw;
  }
}

}  // namespace ripple::net
