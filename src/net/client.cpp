#include "net/client.h"

#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/codec.h"

namespace ripple::net {

namespace {

[[noreturn]] void throwTransient(fault::Op faultOp, const std::string& what) {
  if (faultOp == fault::Op::kEnqueue || faultOp == fault::Op::kDequeue) {
    throw fault::TransientQueueError(what);
  }
  throw fault::TransientStoreError(what);
}

std::int64_t steadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process-unique, never zero.  Not cryptographic — the dedup cache only
/// needs distinct ids for concurrently-connected clients of one server
/// fleet.
std::uint64_t mintClientId() {
  static std::atomic<std::uint64_t> counter{0};
  const auto ticks = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const auto pid = static_cast<std::uint64_t>(::getpid());
  const std::uint64_t nonce =
      (counter.fetch_add(1, std::memory_order_relaxed) + 1) *
      0x9e3779b97f4a7c15ULL;
  return (ticks ^ (pid << 32) ^ nonce) | 1;
}

/// Nonzero while the current thread is running reseed hooks.  Lets the
/// reseeder's own exchanges bypass the reseed gate (they ARE the reseed)
/// and stops a restart observed mid-reseed from recursing.
thread_local int tlsReseedDepth = 0;

}  // namespace

Client::Client(Options options) : options_(std::move(options)) {
  if (options_.endpoints.empty()) {
    throw std::invalid_argument("net::Client: at least one endpoint required");
  }
  clientId_ = options_.clientId != 0 ? options_.clientId : mintClientId();
  endpointStates_.reserve(options_.endpoints.size());
  for (std::size_t i = 0; i < options_.endpoints.size(); ++i) {
    endpointStates_.push_back(std::make_unique<EndpointState>());
  }
  LockGuard lock(poolMu_);
  pool_.resize(options_.endpoints.size());
}

Client::~Client() { closeAll(); }

void Client::bindRegistry(obs::MetricsRegistry& registry) {
  metrics_.bindRegistry(registry, "net");
  registry_.store(&registry, std::memory_order_release);
}

void Client::addRestartHook(std::function<void(std::size_t)> hook) {
  LockGuard lock(hooksMu_);
  hooks_.push_back(std::move(hook));
}

void Client::closeAll() {
  LockGuard lock(poolMu_);
  for (auto& idle : pool_) {
    idle.clear();
  }
}

std::unique_ptr<Client::Channel> Client::acquire(std::size_t endpoint) {
  // Drain stale pooled connections before dialing: a connection to a
  // server that restarted (or went away) is dead on first reuse, and a
  // cheap poll probe catches that here instead of burning a retry on it.
  for (;;) {
    std::unique_ptr<Channel> channel;
    {
      LockGuard lock(poolMu_);
      auto& idle = pool_.at(endpoint);
      if (!idle.empty()) {
        channel = std::move(idle.back());
        idle.pop_back();
      }
    }
    if (!channel) {
      break;
    }
    if (!channel->sock.peerClosed()) {
      return channel;
    }
    metrics_.incPoolInvalidated();
  }
  return dial(endpoint);
}

std::unique_ptr<Client::Channel> Client::dial(std::size_t endpoint) {
  EndpointState& st = *endpointStates_.at(endpoint);
  const bool redial = st.everConnected.load(std::memory_order_acquire);
  // First dials fail fast (a server that never existed is a config error);
  // re-dials get a budget so a restarting server is bridged, not fatal.
  const std::int64_t deadline =
      steadyNowMs() + (redial ? options_.redialTimeoutMs : 0);
  for (;;) {
    // Breaker gate: wait out the cooldown before probing an endpoint that
    // keeps refusing, so a dead server is not hammered from every part.
    const std::int64_t openUntil =
        st.openUntilMs.load(std::memory_order_acquire);
    const std::int64_t now = steadyNowMs();
    if (openUntil > now) {
      if (openUntil > deadline) {
        throw NetError("net::Client: circuit breaker open for " +
                       endpointAt(endpoint).str());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(openUntil - now));
    }
    const bool probing =
        st.failures.load(std::memory_order_acquire) >=
        static_cast<std::uint32_t>(options_.breakerThreshold);
    try {
      auto channel = std::make_unique<Channel>();
      channel->sock = Socket::connect(options_.endpoints.at(endpoint),
                                      options_.connectTimeoutMs);
      metrics_.incDials();
      if (redial) {
        metrics_.incReconnects();
      }
      if (probing) {
        metrics_.incHalfOpenProbes();
      }
      // The endpoint is reachable: close the breaker before the handshake
      // so a StateLostError escalation leaves it healthy for recovery.
      st.failures.store(0, std::memory_order_release);
      st.openUntilMs.store(0, std::memory_order_release);
      st.everConnected.store(true, std::memory_order_release);
      handshake(*channel, endpoint);  // may throw fault::StateLostError
      return channel;
    } catch (const NetError&) {
      const std::uint32_t failures =
          st.failures.fetch_add(1, std::memory_order_acq_rel) + 1;
      const auto threshold =
          static_cast<std::uint32_t>(options_.breakerThreshold);
      if (failures >= threshold) {
        if (failures == threshold) {
          metrics_.incBreakerOpens();
        }
        const double cooldown = fault::scheduledBackoffMs(
            options_.breakerBackoff,
            static_cast<int>(failures - threshold) + 1);
        st.openUntilMs.store(
            steadyNowMs() + static_cast<std::int64_t>(cooldown),
            std::memory_order_release);
      }
      if (steadyNowMs() >= deadline) {
        throw;
      }
    }
  }
}

void Client::handshake(Channel& channel, std::size_t endpoint) {
  const std::uint64_t requestId =
      nextRequestId_.fetch_add(1, std::memory_order_relaxed);
  ByteWriter w(8);
  w.putFixed64(clientId_);
  const Bytes request = encodeFrame(Opcode::kHello, 0, requestId, w.take());
  std::optional<Frame> frame;
  try {
    channel.sock.sendAll(request, options_.connectTimeoutMs);
    metrics_.addTx(request.size());
    Bytes chunk;
    while (!(frame = channel.decoder.next())) {
      chunk.clear();
      const std::size_t n = channel.sock.recvSome(chunk, 64 * 1024,
                                                  options_.connectTimeoutMs);
      if (n == 0) {
        throw NetError("net::Client: connection closed during handshake");
      }
      metrics_.addRx(n);
      channel.decoder.feed(chunk);
    }
  } catch (const FrameError& e) {
    throw NetError(std::string("net::Client: poisoned handshake: ") +
                   e.what());
  }
  if (frame->requestId != requestId ||
      frame->opcode != static_cast<std::uint8_t>(Opcode::kHello) ||
      frame->isError() || (frame->flags & kFlagEpoch) == 0 ||
      frame->payload.size() < 8) {
    throw NetError("net::Client: malformed handshake response");
  }
  const std::uint64_t epoch = stripEpoch(frame->payload);
  noteEpoch(endpoint, epoch);  // may throw fault::StateLostError
}

void Client::noteEpoch(std::size_t endpoint, std::uint64_t observed) {
  EndpointState& st = *endpointStates_.at(endpoint);
  std::uint64_t known = st.epoch.load(std::memory_order_acquire);
  while (known != observed) {
    if (st.epoch.compare_exchange_weak(known, observed,
                                       std::memory_order_acq_rel)) {
      if (known == 0) {
        // First contact with this endpoint: nothing to reseed.
        st.seededEpoch.store(observed, std::memory_order_release);
        return;
      }
      onEpochChange(endpoint, known, observed);
    }
    // CAS failure reloaded `known`: a concurrent observer recorded the
    // epoch first, so the restart is theirs to escalate; this exchange's
    // result is discarded by the recovery it triggers.
  }
}

void Client::onEpochChange(std::size_t endpoint, std::uint64_t oldEpoch,
                           std::uint64_t newEpoch) {
  metrics_.incEpochChanges();
  std::size_t stale = 0;
  {
    LockGuard lock(poolMu_);
    auto& idle = pool_.at(endpoint);
    stale = idle.size();
    idle.clear();
  }
  if (stale > 0) {
    metrics_.incPoolInvalidated(stale);
  }
  runRestartHooks(endpoint, oldEpoch);
  throw fault::StateLostError(
      "net::Client: endpoint " + endpointAt(endpoint).str() +
      " restarted (session epoch " + std::to_string(oldEpoch) + " -> " +
      std::to_string(newEpoch) + "); its in-memory parts are lost");
}

void Client::runRestartHooks(std::size_t endpoint, std::uint64_t oldEpoch) {
  // A restart observed while this thread is already reseeding (the server
  // bounced again mid-reseed) must not recurse.  Roll the recorded epoch
  // back so a later exchange re-detects the change and retries the
  // reseed, then let the caller's StateLostError escalate.
  EndpointState& st = *endpointStates_.at(endpoint);
  if (tlsReseedDepth > 0) {
    st.epoch.store(oldEpoch, std::memory_order_release);
    return;
  }
  std::vector<std::function<void(std::size_t)>> hooks;
  {
    LockGuard lock(hooksMu_);
    hooks = hooks_;
  }
  ++tlsReseedDepth;
  try {
    for (const auto& hook : hooks) {
      hook(endpoint);
    }
  } catch (...) {
    // Reseed incomplete (the endpoint flapped again): roll back so the
    // next observer retries, and let the escalation proceed.  seededEpoch
    // already equals the rolled-back epoch, so the gate reopens.
    --tlsReseedDepth;
    st.epoch.store(oldEpoch, std::memory_order_release);
    return;
  }
  --tlsReseedDepth;
  // Publish "reseed complete": the gate in exchange() reopens and held-off
  // traffic proceeds against the recreated registries.
  st.seededEpoch.store(st.epoch.load(std::memory_order_acquire),
                       std::memory_order_release);
  metrics_.incReseeds();
}

void Client::release(std::size_t endpoint, std::unique_ptr<Channel> channel) {
  LockGuard lock(poolMu_);
  pool_.at(endpoint).push_back(std::move(channel));
}

Bytes Client::exchange(std::size_t endpoint, Opcode op, BytesView payload,
                       std::uint64_t requestId, bool dedup) {
  std::unique_ptr<Channel> channel = acquire(endpoint);
  // Reseed gate.  Any channel to a fresh incarnation was handshaked, and
  // its handshake recorded the new epoch — so if a concurrent thread won
  // that race and is still replaying registry state (epoch != seededEpoch),
  // hold ordinary traffic here: an op racing ahead would find its tables
  // missing on the fresh server and die on a non-retriable application
  // error.  The reseeder's own exchanges bypass (they ARE the reseed); a
  // failed reseed rolls the epoch back, which also reopens the gate.
  if (tlsReseedDepth == 0) {
    const EndpointState& st = *endpointStates_.at(endpoint);
    while (st.epoch.load(std::memory_order_acquire) !=
           st.seededEpoch.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto start = std::chrono::steady_clock::now();

  std::optional<Frame> frame;
  std::uint64_t observedEpoch = 0;
  try {
    if (chaosFires(op, ChaosPoint::kBeforeSend)) {
      throw ConnectionClosed(
          "net::Client: connection severed before send (chaos)");
    }
    const Bytes request = encodeFrame(
        op, dedup ? kFlagDedup : std::uint16_t{0}, requestId, payload);
    channel->sock.sendAll(request, options_.requestTimeoutMs);
    metrics_.addTx(request.size());
    if (chaosFires(op, ChaosPoint::kAfterSend)) {
      throw ConnectionClosed(
          "net::Client: connection severed after send (chaos)");
    }

    Bytes chunk;
    while (!(frame = channel->decoder.next())) {
      chunk.clear();
      const std::size_t n =
          channel->sock.recvSome(chunk, 64 * 1024, options_.requestTimeoutMs);
      if (n == 0) {
        throw ConnectionClosed("net::Client: connection closed mid-request");
      }
      metrics_.addRx(n);
      channel->decoder.feed(chunk);
    }
    if (frame->requestId != requestId ||
        frame->opcode != static_cast<std::uint8_t>(op)) {
      // A pooled channel never holds stale bytes (failed exchanges drop
      // the connection), so a mismatch is a protocol violation.
      throw NetError("net::Client: response id/opcode mismatch");
    }
    if ((frame->flags & kFlagEpoch) != 0) {
      observedEpoch = stripEpoch(frame->payload);
    }
  } catch (const FrameError& e) {
    metrics_.incDropped();
    throw NetError(std::string("net::Client: poisoned stream: ") + e.what());
  } catch (const NetError&) {
    metrics_.incDropped();
    throw;  // `channel` is destroyed here: the connection is not reused.
  }

  metrics_.incRequests();
  metrics_.recordRtt(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count());
  if ((frame->flags & kFlagReplayed) != 0) {
    metrics_.incDedupReplays();
  }

  // kAfterReceive chaos drops the healthy connection instead of pooling
  // it — the next exchange sees a stale-pool scenario.
  const bool keep = !chaosFires(op, ChaosPoint::kAfterReceive);
  if (frame->isError()) {
    // The connection is healthy — the request failed server-side.
    const DecodedError error = decodeError(frame->payload);
    if (keep) {
      release(endpoint, std::move(channel));
    }
    if (observedEpoch != 0) {
      noteEpoch(endpoint, observedEpoch);
    }
    throwDecodedError(error);
  }
  if (keep) {
    release(endpoint, std::move(channel));
  }
  if (observedEpoch != 0) {
    noteEpoch(endpoint, observedEpoch);  // may throw fault::StateLostError
  }
  return std::move(frame->payload);
}

void Client::noteRetrier(const fault::Retrier& retrier) {
  retries_.fetch_add(retrier.retries(), std::memory_order_relaxed);
  escalations_.fetch_add(retrier.escalations(), std::memory_order_relaxed);
}

Bytes Client::call(std::size_t endpoint, Opcode op, BytesView payload,
                   fault::Op faultOp, std::string_view name,
                   std::uint32_t part, bool retryIo, bool dedup) {
  // One request id per call, stable across attempts: the server's dedup
  // cache keys on it, and it seeds the (single-consumer) jitter stream so
  // backoff schedules stay deterministic per request.
  const std::uint64_t requestId =
      nextRequestId_.fetch_add(1, std::memory_order_relaxed);
  fault::Retrier retrier(options_.retry, requestId);
  if (obs::MetricsRegistry* reg = registry_.load(std::memory_order_acquire)) {
    retrier.bindRegistry(reg);
  }
  try {
    Bytes response = retrier([&]() -> Bytes {
      if (options_.injector) {
        // Fail-before: a firing rule throws Transient* with nothing sent,
        // so the retry loop may always re-attempt it.
        options_.injector->onOp(faultOp, name, part);
      }
      try {
        return exchange(endpoint, op, payload, requestId, dedup);
      } catch (const ConnectionClosed& e) {
        if (dedup || retryIo) {
          // Re-send-safe: idempotent requests may simply re-execute, and
          // dedup requests either never executed or replay the recorded
          // response under (clientId, requestId).
          throwTransient(faultOp, e.what());
        }
        throw;
      } catch (const NetError& e) {
        if (retryIo || dedup) {
          throwTransient(faultOp, e.what());
        }
        throw;
      }
    });
    noteRetrier(retrier);
    return response;
  } catch (const ConnectionClosed&) {
    // Non-idempotent request, peer gone: propagate the precise condition;
    // the SPI layer maps it (queue read → closed, queue put → rejected,
    // drain → transient for the engine recovery sites).
    noteRetrier(retrier);
    throw;
  } catch (const NetError& e) {
    // Non-idempotent request hit a real transport failure: surface it as
    // transient for the engines' recovery sites, but do not retry here —
    // the server may or may not have performed the operation.
    noteRetrier(retrier);
    throwTransient(faultOp, e.what());
  } catch (...) {
    // Includes fault::StateLostError: the endpoint restarted; engines
    // escalate to checkpoint recovery, never per-op retry.
    noteRetrier(retrier);
    throw;
  }
}

}  // namespace ripple::net
