// ripple::net — transport accounting, following the StoreMetrics pattern
// (kvstore/table.h): the struct's own atomics are the source of truth for
// tests, and bindRegistry() mirrors future increments into `net.*`
// instruments of an obs::MetricsRegistry so wire traffic shows up in run
// reports next to the engine and store metrics.
//
// The failover group (`net.failover.*`) is the transport's fault ledger
// (DESIGN.md §11): every endpoint restart the client observes must be
// accounted as exactly one epoch change with a matching reseed, and every
// severed exchange as a dedup replay, a plain reconnect-and-retry, or an
// engine escalation.  bench_multiproc.sh --chaos asserts the ledger
// closes.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace ripple::net {

struct NetMetrics {
  std::atomic<std::uint64_t> bytesTx{0};    // Frame bytes written.
  std::atomic<std::uint64_t> bytesRx{0};    // Frame bytes read.
  std::atomic<std::uint64_t> requests{0};   // Completed exchanges.
  std::atomic<std::uint64_t> dials{0};      // Fresh dials (incl. first).
  std::atomic<std::uint64_t> reconnects{0};  // Re-dials after a prior
                                             // successful connect.
  std::atomic<std::uint64_t> dropped{0};    // Connections discarded on error.

  // Failover ledger (net.failover.*).
  std::atomic<std::uint64_t> epochChanges{0};    // Server restarts observed.
  std::atomic<std::uint64_t> dedupReplays{0};    // Responses replayed from
                                                 // the server dedup cache.
  std::atomic<std::uint64_t> poolInvalidated{0};  // Pooled connections
                                                  // dropped as stale.
  std::atomic<std::uint64_t> breakerOpens{0};    // Circuit breaker openings.
  std::atomic<std::uint64_t> halfOpenProbes{0};  // Dial attempts while the
                                                 // breaker was open.
  std::atomic<std::uint64_t> reseeds{0};         // Endpoint reseed hook runs.

  void addTx(std::uint64_t bytes) {
    bytesTx.fetch_add(bytes, std::memory_order_relaxed);
    forward(fwdTx_, bytes);
  }

  void addRx(std::uint64_t bytes) {
    bytesRx.fetch_add(bytes, std::memory_order_relaxed);
    forward(fwdRx_, bytes);
  }

  void incRequests(std::uint64_t n = 1) {
    requests.fetch_add(n, std::memory_order_relaxed);
    forward(fwdRequests_, n);
  }

  void incDials(std::uint64_t n = 1) {
    dials.fetch_add(n, std::memory_order_relaxed);
    forward(fwdDials_, n);
  }

  void incReconnects(std::uint64_t n = 1) {
    reconnects.fetch_add(n, std::memory_order_relaxed);
    forward(fwdReconnects_, n);
  }

  void incDropped(std::uint64_t n = 1) {
    dropped.fetch_add(n, std::memory_order_relaxed);
    forward(fwdDropped_, n);
  }

  void incEpochChanges(std::uint64_t n = 1) {
    epochChanges.fetch_add(n, std::memory_order_relaxed);
    forward(fwdEpochChanges_, n);
  }

  void incDedupReplays(std::uint64_t n = 1) {
    dedupReplays.fetch_add(n, std::memory_order_relaxed);
    forward(fwdDedupReplays_, n);
  }

  void incPoolInvalidated(std::uint64_t n = 1) {
    poolInvalidated.fetch_add(n, std::memory_order_relaxed);
    forward(fwdPoolInvalidated_, n);
  }

  void incBreakerOpens(std::uint64_t n = 1) {
    breakerOpens.fetch_add(n, std::memory_order_relaxed);
    forward(fwdBreakerOpens_, n);
  }

  void incHalfOpenProbes(std::uint64_t n = 1) {
    halfOpenProbes.fetch_add(n, std::memory_order_relaxed);
    forward(fwdHalfOpenProbes_, n);
  }

  void incReseeds(std::uint64_t n = 1) {
    reseeds.fetch_add(n, std::memory_order_relaxed);
    forward(fwdReseeds_, n);
  }

  /// Round-trip latency of one exchange, milliseconds.
  void recordRtt(double ms) {
    if (obs::Histogram* h = fwdRtt_.load(std::memory_order_acquire)) {
      h->record(ms);
    }
  }

  /// Mirror future increments into `<prefix>.bytes_tx`, `<prefix>.bytes_rx`,
  /// `<prefix>.requests`, `<prefix>.dials`, `<prefix>.reconnects`,
  /// `<prefix>.dropped`, the `<prefix>.failover.*` ledger counters, and the
  /// `<prefix>.rtt_ms` histogram.  The registry must outlive the client.
  void bindRegistry(obs::MetricsRegistry& registry,
                    const std::string& prefix = "net") {
    fwdTx_.store(&registry.counter(prefix + ".bytes_tx"),
                 std::memory_order_release);
    fwdRx_.store(&registry.counter(prefix + ".bytes_rx"),
                 std::memory_order_release);
    fwdRequests_.store(&registry.counter(prefix + ".requests"),
                       std::memory_order_release);
    fwdDials_.store(&registry.counter(prefix + ".dials"),
                    std::memory_order_release);
    fwdReconnects_.store(&registry.counter(prefix + ".reconnects"),
                         std::memory_order_release);
    fwdDropped_.store(&registry.counter(prefix + ".dropped"),
                      std::memory_order_release);
    fwdEpochChanges_.store(&registry.counter(prefix + ".failover.epoch_changes"),
                           std::memory_order_release);
    fwdDedupReplays_.store(&registry.counter(prefix + ".failover.dedup_replays"),
                           std::memory_order_release);
    fwdPoolInvalidated_.store(
        &registry.counter(prefix + ".failover.pool_invalidated"),
        std::memory_order_release);
    fwdBreakerOpens_.store(&registry.counter(prefix + ".failover.breaker_opens"),
                           std::memory_order_release);
    fwdHalfOpenProbes_.store(
        &registry.counter(prefix + ".failover.half_open_probes"),
        std::memory_order_release);
    fwdReseeds_.store(&registry.counter(prefix + ".failover.reseeds"),
                      std::memory_order_release);
    fwdRtt_.store(&registry.histogram(prefix + ".rtt_ms"),
                  std::memory_order_release);
  }

  void unbind() {
    fwdTx_.store(nullptr, std::memory_order_release);
    fwdRx_.store(nullptr, std::memory_order_release);
    fwdRequests_.store(nullptr, std::memory_order_release);
    fwdDials_.store(nullptr, std::memory_order_release);
    fwdReconnects_.store(nullptr, std::memory_order_release);
    fwdDropped_.store(nullptr, std::memory_order_release);
    fwdEpochChanges_.store(nullptr, std::memory_order_release);
    fwdDedupReplays_.store(nullptr, std::memory_order_release);
    fwdPoolInvalidated_.store(nullptr, std::memory_order_release);
    fwdBreakerOpens_.store(nullptr, std::memory_order_release);
    fwdHalfOpenProbes_.store(nullptr, std::memory_order_release);
    fwdReseeds_.store(nullptr, std::memory_order_release);
    fwdRtt_.store(nullptr, std::memory_order_release);
  }

 private:
  static void forward(const std::atomic<obs::Counter*>& target,
                      std::uint64_t n) {
    if (obs::Counter* c = target.load(std::memory_order_acquire)) {
      c->add(n);
    }
  }

  std::atomic<obs::Counter*> fwdTx_{nullptr};
  std::atomic<obs::Counter*> fwdRx_{nullptr};
  std::atomic<obs::Counter*> fwdRequests_{nullptr};
  std::atomic<obs::Counter*> fwdDials_{nullptr};
  std::atomic<obs::Counter*> fwdReconnects_{nullptr};
  std::atomic<obs::Counter*> fwdDropped_{nullptr};
  std::atomic<obs::Counter*> fwdEpochChanges_{nullptr};
  std::atomic<obs::Counter*> fwdDedupReplays_{nullptr};
  std::atomic<obs::Counter*> fwdPoolInvalidated_{nullptr};
  std::atomic<obs::Counter*> fwdBreakerOpens_{nullptr};
  std::atomic<obs::Counter*> fwdHalfOpenProbes_{nullptr};
  std::atomic<obs::Counter*> fwdReseeds_{nullptr};
  std::atomic<obs::Histogram*> fwdRtt_{nullptr};
};

}  // namespace ripple::net
