// ripple::net — transport accounting, following the StoreMetrics pattern
// (kvstore/table.h): the struct's own atomics are the source of truth for
// tests, and bindRegistry() mirrors future increments into `net.*`
// instruments of an obs::MetricsRegistry so wire traffic shows up in run
// reports next to the engine and store metrics.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace ripple::net {

struct NetMetrics {
  std::atomic<std::uint64_t> bytesTx{0};      // Frame bytes written.
  std::atomic<std::uint64_t> bytesRx{0};      // Frame bytes read.
  std::atomic<std::uint64_t> requests{0};     // Completed exchanges.
  std::atomic<std::uint64_t> reconnects{0};   // Fresh dials (incl. first).
  std::atomic<std::uint64_t> dropped{0};      // Connections discarded on error.

  void addTx(std::uint64_t bytes) {
    bytesTx.fetch_add(bytes, std::memory_order_relaxed);
    forward(fwdTx_, bytes);
  }

  void addRx(std::uint64_t bytes) {
    bytesRx.fetch_add(bytes, std::memory_order_relaxed);
    forward(fwdRx_, bytes);
  }

  void incRequests(std::uint64_t n = 1) {
    requests.fetch_add(n, std::memory_order_relaxed);
    forward(fwdRequests_, n);
  }

  void incReconnects(std::uint64_t n = 1) {
    reconnects.fetch_add(n, std::memory_order_relaxed);
    forward(fwdReconnects_, n);
  }

  void incDropped(std::uint64_t n = 1) {
    dropped.fetch_add(n, std::memory_order_relaxed);
    forward(fwdDropped_, n);
  }

  /// Round-trip latency of one exchange, milliseconds.
  void recordRtt(double ms) {
    if (obs::Histogram* h = fwdRtt_.load(std::memory_order_acquire)) {
      h->record(ms);
    }
  }

  /// Mirror future increments into `<prefix>.bytes_tx`, `<prefix>.bytes_rx`,
  /// `<prefix>.requests`, `<prefix>.reconnects`, `<prefix>.dropped`, and the
  /// `<prefix>.rtt_ms` histogram.  The registry must outlive the client.
  void bindRegistry(obs::MetricsRegistry& registry,
                    const std::string& prefix = "net") {
    fwdTx_.store(&registry.counter(prefix + ".bytes_tx"),
                 std::memory_order_release);
    fwdRx_.store(&registry.counter(prefix + ".bytes_rx"),
                 std::memory_order_release);
    fwdRequests_.store(&registry.counter(prefix + ".requests"),
                       std::memory_order_release);
    fwdReconnects_.store(&registry.counter(prefix + ".reconnects"),
                         std::memory_order_release);
    fwdDropped_.store(&registry.counter(prefix + ".dropped"),
                      std::memory_order_release);
    fwdRtt_.store(&registry.histogram(prefix + ".rtt_ms"),
                  std::memory_order_release);
  }

  void unbind() {
    fwdTx_.store(nullptr, std::memory_order_release);
    fwdRx_.store(nullptr, std::memory_order_release);
    fwdRequests_.store(nullptr, std::memory_order_release);
    fwdReconnects_.store(nullptr, std::memory_order_release);
    fwdDropped_.store(nullptr, std::memory_order_release);
    fwdRtt_.store(nullptr, std::memory_order_release);
  }

 private:
  static void forward(const std::atomic<obs::Counter*>& target,
                      std::uint64_t n) {
    if (obs::Counter* c = target.load(std::memory_order_acquire)) {
      c->add(n);
    }
  }

  std::atomic<obs::Counter*> fwdTx_{nullptr};
  std::atomic<obs::Counter*> fwdRx_{nullptr};
  std::atomic<obs::Counter*> fwdRequests_{nullptr};
  std::atomic<obs::Counter*> fwdReconnects_{nullptr};
  std::atomic<obs::Counter*> fwdDropped_{nullptr};
  std::atomic<obs::Histogram*> fwdRtt_{nullptr};
};

}  // namespace ripple::net
