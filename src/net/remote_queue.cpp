#include "net/remote_queue.h"

#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "net/server.h"

namespace ripple::net {

namespace {

class RemoteQueueSet : public mq::QueueSet {
 public:
  RemoteQueueSet(std::string name, RemoteStorePtr store,
                 kv::TablePtr placement)
      : name_(std::move(name)), store_(std::move(store)),
        placement_(std::move(placement)),
        numQueues_(placement_->numParts()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }

  [[nodiscard]] std::uint32_t numQueues() const override {
    return numQueues_;
  }

  bool put(std::uint32_t queue, Bytes message) override {
    if (queue >= numQueues_) {
      throw std::out_of_range("RemoteQueueSet: queue " +
                              std::to_string(queue) + " out of range");
    }
    ByteWriter w(name_.size() + message.size() + 16);
    w.putBytes(name_);
    w.putFixed32(queue);
    w.putBytes(message);
    try {
      // Non-idempotent (a duplicate put duplicates the message), so it
      // rides the dedup cache: a re-sent request id replays the recorded
      // answer instead of enqueuing twice.
      const Bytes response = store_->client().call(
          store_->placement().endpointOf(queue), Opcode::kQueuePut, w.view(),
          fault::Op::kEnqueue, name_, queue, /*retryIo=*/false,
          /*dedup=*/true);
      return ByteReader(response).getBool();
    } catch (const std::invalid_argument&) {
      // Unknown set on the server: it was deleted.  A deleted set behaves
      // like a closed one (matching MemQueuing, where a deleted set's
      // still-held handle is simply closed).
      return false;
    } catch (const fault::TransientError&) {
      // Transport down (or injected-fault budget exhausted): the put
      // contract already has a refusal channel, so use it rather than
      // making every caller wrap put in a try block.
      return false;
    }
  }

  void runWorkers(
      const std::function<void(mq::WorkerContext&)>& body) override {
    runWorkers(body, numQueues());
  }

  void runWorkers(const std::function<void(mq::WorkerContext&)>& body,
                  std::uint32_t workerBudget) override {
    // Same shape as MemQueueSet: dedicated driver-side threads (a looping
    // worker would starve a shared executor), each adopted into its
    // primary part's location; worker w owns the striped queues
    // {w, w + workers, ...}.
    const std::uint32_t workers =
        (workerBudget == 0 || workerBudget > numQueues()) ? numQueues()
                                                          : workerBudget;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    RankedMutex<LockRank::kExecutor> failMu;
    std::exception_ptr failure;
    for (std::uint32_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        auto token = store_->adoptPartThread(*placement_, w);
        Context ctx(this, w, workers);
        try {
          body(ctx);
        } catch (...) {
          LockGuard lock(failMu);
          if (!failure) {
            failure = std::current_exception();
          }
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    if (failure) {
      std::rethrow_exception(failure);
    }
  }

  void close() override {
    ByteWriter w(name_.size() + 8);
    w.putBytes(name_);
    for (std::size_t e = 0; e < store_->placement().endpointCount(); ++e) {
      try {
        store_->client().call(e, Opcode::kQueueClose, w.view(),
                              fault::Op::kEnqueue, name_, 0,
                              /*retryIo=*/true);
      } catch (const fault::TransientError&) {
        // Unreachable server: its queues died with it.  close() stays
        // idempotent and non-throwing either way.
      }
    }
  }

  [[nodiscard]] std::uint64_t backlog() const override {
    ByteWriter w(name_.size() + 8);
    w.putBytes(name_);
    std::uint64_t total = 0;
    for (std::size_t e = 0; e < store_->placement().endpointCount(); ++e) {
      const Bytes response = store_->client().call(
          e, Opcode::kQueueBacklog, w.view(), fault::Op::kDequeue, name_, 0,
          /*retryIo=*/true);
      total += ByteReader(response).getFixed64();
    }
    return total;
  }

 private:
  // kQueueRead response status byte.
  static constexpr std::uint8_t kStatusMessage = 0;
  static constexpr std::uint8_t kStatusEmpty = 1;
  static constexpr std::uint8_t kStatusClosedDrained = 2;

  struct ReadResult {
    std::uint8_t status;
    std::optional<Bytes> message;
  };

  /// One kQueueRead round trip.  mode: 0 = timed pop (bounded server-side
  /// at the server's queue-wait cap), 1 = tryPop, 2 = trySteal.  Reads are
  /// destructive, so they ride the dedup cache (a lost response replays
  /// the recorded message instead of popping twice).  A server that stays
  /// unreachable past the retry budget is gone for good — report
  /// closed-and-drained and let the worker terminate — while a server that
  /// RESTARTED raises fault::StateLostError through here so the engines
  /// escalate to recovery instead of silently dropping queued state.
  ReadResult readOnce(std::uint32_t queue, std::uint32_t waitMs,
                      std::uint8_t mode) {
    ByteWriter w(name_.size() + 20);
    w.putBytes(name_);
    w.putFixed32(queue);
    w.putFixed32(waitMs);
    w.putU8(mode);
    Bytes response;
    try {
      response = store_->client().call(
          store_->placement().endpointOf(queue), Opcode::kQueueRead,
          w.view(), fault::Op::kDequeue, name_, queue, /*retryIo=*/false,
          /*dedup=*/true);
    } catch (const fault::TransientError&) {
      // Transport down past the budget: the owning server shut down and
      // its queues died with it.
      return ReadResult{kStatusClosedDrained, std::nullopt};
    } catch (const std::invalid_argument&) {
      // Set deleted server-side while a worker was still polling.
      return ReadResult{kStatusClosedDrained, std::nullopt};
    }
    ByteReader r(response);
    const std::uint8_t status = r.getU8();
    if (status == kStatusMessage) {
      return ReadResult{status, Bytes{r.getBytes()}};
    }
    return ReadResult{status, std::nullopt};
  }

  class Context : public mq::WorkerContext {
   public:
    Context(RemoteQueueSet* set, std::uint32_t queue, std::uint32_t stride)
        : set_(set), queue_(queue), stride_(stride) {
      for (std::uint32_t q = queue; q < set->numQueues(); q += stride) {
        owned_.push_back(q);
      }
      terminal_.assign(owned_.size(), false);
    }

    [[nodiscard]] std::uint32_t queueIndex() const override {
      return queue_;
    }

    std::optional<Bytes> read(std::chrono::milliseconds timeout) override {
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      for (;;) {
        if (auto msg = tryRead()) {
          return msg;
        }
        if (allTerminal()) {
          return std::nullopt;
        }
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          return tryRead();  // Final drain against a racing put.
        }
        const auto remainingMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count();
        // One bounded blocking wait on the next live queue.  With a single
        // owned queue the store's configured slice is the only cap;
        // multiplexed workers keep waits short so one idle queue cannot
        // mask traffic on its siblings.
        const long long slice = set_->store_->queueWaitSliceMs();
        const long long cap =
            owned_.size() == 1 ? slice : std::min<long long>(slice, 50);
        const auto waitMs = static_cast<std::uint32_t>(
            std::max<long long>(1, std::min<long long>(remainingMs, cap)));
        std::size_t at = cursor_ % owned_.size();
        while (terminal_[at]) {
          at = (at + 1) % owned_.size();
        }
        const ReadResult result = set_->readOnce(owned_[at], waitMs, 0);
        cursor_ = (at + 1) % owned_.size();
        if (result.status == kStatusMessage) {
          return result.message;
        }
        if (result.status == kStatusClosedDrained) {
          terminal_[at] = true;
        }
      }
    }

    std::optional<Bytes> tryRead() override {
      for (std::size_t i = 0; i < owned_.size(); ++i) {
        const std::size_t at = (cursor_ + i) % owned_.size();
        if (terminal_[at]) {
          continue;
        }
        const ReadResult result = set_->readOnce(owned_[at], 0, 1);
        if (result.status == kStatusMessage) {
          cursor_ = (at + 1) % owned_.size();
          return result.message;
        }
        if (result.status == kStatusClosedDrained) {
          terminal_[at] = true;
        }
      }
      return std::nullopt;
    }

    std::optional<Bytes> trySteal(std::uint32_t fromQueue) override {
      if (fromQueue >= set_->numQueues() || owned(fromQueue)) {
        return std::nullopt;
      }
      return set_->readOnce(fromQueue, 0, 2).message;
    }

    std::optional<Bytes> tryReadFrom(std::uint32_t fromQueue) override {
      if (fromQueue >= set_->numQueues() || owned(fromQueue)) {
        return std::nullopt;
      }
      return set_->readOnce(fromQueue, 0, 1).message;
    }

   private:
    [[nodiscard]] bool owned(std::uint32_t q) const {
      return q % stride_ == queue_ % stride_;
    }

    [[nodiscard]] bool allTerminal() const {
      return std::all_of(terminal_.begin(), terminal_.end(),
                         [](bool t) { return t; });
    }

    RemoteQueueSet* set_;
    std::uint32_t queue_;
    std::uint32_t stride_;
    std::vector<std::uint32_t> owned_;
    // A queue observed closed-and-drained stays that way (puts fail after
    // close), so readers stop polling it.
    std::vector<bool> terminal_;
    std::size_t cursor_ = 0;
  };

  std::string name_;
  RemoteStorePtr store_;
  kv::TablePtr placement_;
  std::uint32_t numQueues_;
};

class RemoteQueuing : public mq::Queuing {
 public:
  explicit RemoteQueuing(RemoteStorePtr store) : store_(std::move(store)) {}

  mq::QueueSetPtr createQueueSet(const std::string& name,
                                 const kv::TablePtr& placement) override {
    // Reserve under the lock, create over the wire UNLOCKED, publish
    // under the lock again: the registry mutex must never be held across
    // blocking socket I/O (same discipline as RemoteStore::createTable).
    {
      LockGuard lock(mu_);
      if (!sets_.emplace(name, nullptr).second) {
        throw std::invalid_argument("RemoteQueuing: queue set '" + name +
                                    "' already exists");
      }
    }
    ByteWriter w(name.size() + 12);
    w.putBytes(name);
    w.putVarint(placement->numParts());
    try {
      // Every server hosts the full queue array of the set; only the
      // queues it owns under the placement map ever see traffic.  Creation
      // is non-idempotent ("already exists"), so it rides the dedup cache.
      for (std::size_t e = 0; e < store_->placement().endpointCount(); ++e) {
        store_->client().call(e, Opcode::kQueueCreate, w.view(),
                              fault::Op::kEnqueue, name, 0,
                              /*retryIo=*/false, /*dedup=*/true);
      }
    } catch (...) {
      LockGuard lock(mu_);
      sets_.erase(name);
      throw;
    }
    auto set = std::make_shared<RemoteQueueSet>(name, store_, placement);
    LockGuard lock(mu_);
    sets_[name] = set;
    return set;
  }

  /// Client restart hook: recreate every registered queue set on the
  /// restarted endpoint's fresh incarnation.  The messages it held are
  /// gone — engine recovery owns re-deriving those — but the sets must
  /// exist again before replay traffic reaches them.  Same discipline as
  /// createQueueSet: snapshot under the lock, wire calls unlocked.
  void reseedEndpoint(std::size_t endpoint) {
    std::vector<std::pair<std::string, std::uint32_t>> snapshot;
    {
      LockGuard lock(mu_);
      snapshot.reserve(sets_.size());
      for (const auto& [name, set] : sets_) {
        if (set != nullptr) {  // Skip in-flight reservations.
          snapshot.emplace_back(name, set->numQueues());
        }
      }
    }
    std::sort(snapshot.begin(), snapshot.end());
    for (const auto& [name, queues] : snapshot) {
      ByteWriter w(name.size() + 12);
      w.putBytes(name);
      w.putVarint(queues);
      try {
        store_->client().call(endpoint, Opcode::kQueueCreate, w.view(),
                              fault::Op::kEnqueue, name, 0,
                              /*retryIo=*/false, /*dedup=*/true);
      } catch (const std::invalid_argument&) {
        // Already recreated by a racing reseed (or survived): fine.
      }
    }
  }

  void deleteQueueSet(const std::string& name) override {
    std::shared_ptr<RemoteQueueSet> set;
    {
      LockGuard lock(mu_);
      auto it = sets_.find(name);
      if (it == sets_.end() || it->second == nullptr) {
        // Unknown, or a createQueueSet reservation still in flight — a
        // delete racing an unfinished create is the caller's bug; don't
        // tear down a half-created set under it.
        return;
      }
      set = it->second;
      sets_.erase(it);
    }
    // Close first so blocked readers drain and terminate before the
    // server-side sets disappear.
    set->close();
    ByteWriter w(name.size() + 8);
    w.putBytes(name);
    for (std::size_t e = 0; e < store_->placement().endpointCount(); ++e) {
      try {
        store_->client().call(e, Opcode::kQueueDelete, w.view(),
                              fault::Op::kEnqueue, name, 0,
                              /*retryIo=*/true);
      } catch (const fault::TransientError&) {
        // Best-effort on an unreachable server, like close().
      }
    }
  }

 private:
  RemoteStorePtr store_;
  // A queuing-registry rank, matching MemQueuing/TableQueuing: no wire
  // call ever runs under this lock (see createQueueSet/deleteQueueSet).
  RankedMutex<LockRank::kQueue> mu_;
  std::unordered_map<std::string, std::shared_ptr<RemoteQueueSet>> sets_
      RIPPLE_GUARDED_BY(mu_);
};

}  // namespace

mq::QueuingPtr makeRemoteQueuing(kv::KVStorePtr store) {
  auto remote = std::dynamic_pointer_cast<RemoteStore>(std::move(store));
  if (!remote) {
    throw std::invalid_argument(
        "makeRemoteQueuing: store is not a net::RemoteStore");
  }
  auto queuing = std::make_shared<RemoteQueuing>(remote);
  // weak_ptr: the queuing plane may be torn down while the store (and its
  // client, which owns the hook list) lives on.
  remote->client().addRestartHook(
      [weak = std::weak_ptr<RemoteQueuing>(queuing)](std::size_t endpoint) {
        if (auto queuing = weak.lock()) {
          queuing->reseedEndpoint(endpoint);
        }
      });
  return queuing;
}

}  // namespace ripple::net
