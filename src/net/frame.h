// ripple::net — length-prefixed TCP frame codec (DESIGN.md §11).
//
// Everything that crosses a process boundary in Ripple travels in frames:
// a fixed 20-byte header (magic, version, opcode, flags, request id,
// payload length — every integer explicit little-endian) followed by a
// payload encoded with the same ByteWriter/ByteReader serde the in-process
// engines already use.  The header is deliberately boring: a codec this
// low in the stack must be fuzz-round-trippable, reject garbage without
// undefined behavior, and never change meaning across platforms.
//
// Decoding is incremental.  A FrameDecoder is fed raw bytes in whatever
// chunks the socket produces (split headers, coalesced frames, one byte at
// a time) and yields complete frames; malformed input (bad magic, unknown
// version, oversized payload) throws FrameError, at which point the
// connection is poisoned and must be dropped.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/bytes.h"

namespace ripple::net {

/// Malformed frame input: wrong magic, unsupported version, or a length
/// beyond kMaxPayloadBytes.  The stream cannot be resynchronized; callers
/// drop the connection.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

/// Wire opcodes.  Requests and responses share the opcode (a response
/// echoes its request's); kFlagError marks an error response.
enum class Opcode : std::uint8_t {
  kPing = 1,

  // Store plane.  Keys travel with an explicit part index: partitioning
  // is decided client-side (the SPI's consistent-partitioning contract
  // lives with the job), the server is a dumb data plane.
  kCreateTable = 2,
  kDropTable = 3,
  kGet = 4,
  kPut = 5,
  kErase = 6,
  kPutBatch = 7,
  kPartSize = 8,
  kTableSize = 9,
  kScanPart = 10,
  kDrainPart = 11,
  kClearPart = 12,

  // Queue plane.
  kQueueCreate = 13,
  kQueueDelete = 14,
  kQueuePut = 15,
  kQueueRead = 16,
  kQueueClose = 17,
  kQueueBacklog = 18,

  // Control plane.
  kShutdown = 19,

  // Session handshake (DESIGN.md §11 failover).  Sent once per fresh
  // connection; the request payload carries the client's fixed64 id (the
  // dedup-cache key prefix), the response carries the server's session
  // epoch like every other response (kFlagEpoch prefix).
  kHello = 20,
};

/// True for the opcodes this protocol version defines.
[[nodiscard]] bool validOpcode(std::uint8_t raw);

inline constexpr std::uint32_t kMagic = 0x31707052;  // "Rpp1" on the wire.
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;

/// Refuse to buffer absurd frames; a corrupt length must not allocate
/// gigabytes before the magic check of the NEXT frame would catch it.
inline constexpr std::uint32_t kMaxPayloadBytes = 256u * 1024 * 1024;

/// Header flag bits.
inline constexpr std::uint16_t kFlagError = 0x1;

/// Response payload is prefixed with the server's fixed64 session epoch
/// (minted once per server incarnation).  A client that observes a
/// different epoch than it recorded for the endpoint knows the process
/// restarted and its in-memory parts are gone.
inline constexpr std::uint16_t kFlagEpoch = 0x2;

/// Request flag: the sender wants this (non-idempotent) request recorded
/// in the server's dedup cache under (client id, request id), so a re-send
/// after ConnectionClosed replays the recorded response instead of
/// re-executing the op.
inline constexpr std::uint16_t kFlagDedup = 0x4;

/// Response flag: this response was replayed from the dedup cache.
inline constexpr std::uint16_t kFlagReplayed = 0x8;

/// Prefix `payload` with the fixed64 session epoch (kFlagEpoch layout).
[[nodiscard]] Bytes prependEpoch(std::uint64_t epoch, BytesView payload);

/// Strip and return the fixed64 epoch prefix from a kFlagEpoch payload,
/// leaving the inner payload behind.  Throws FrameError when the payload
/// is too short to carry the prefix.
[[nodiscard]] std::uint64_t stripEpoch(Bytes& payload);

/// One decoded frame.
struct Frame {
  std::uint8_t opcode = 0;
  std::uint16_t flags = 0;
  std::uint64_t requestId = 0;
  Bytes payload;

  [[nodiscard]] bool isError() const { return (flags & kFlagError) != 0; }
};

/// Encode a complete frame (header + payload) ready for the socket.
[[nodiscard]] Bytes encodeFrame(Opcode opcode, std::uint16_t flags,
                                std::uint64_t requestId, BytesView payload);

/// Kinds of server-side errors carried in an error payload, so the client
/// can rethrow the same std exception type the in-process backends throw
/// (the SPI conformance suite asserts exception types, not just failure).
enum class ErrorKind : std::uint8_t {
  kRuntime = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kLogic = 3,
};

/// Payload of an error response: kind tag + human-readable message.
[[nodiscard]] Bytes encodeError(ErrorKind kind, const std::string& message);

struct DecodedError {
  ErrorKind kind = ErrorKind::kRuntime;
  std::string message;
};

/// Decode an error payload; malformed error payloads degrade to kRuntime
/// with a placeholder message (an error path must not throw CodecError).
[[nodiscard]] DecodedError decodeError(BytesView payload);

/// Throw the std exception matching a decoded error payload.
[[noreturn]] void throwDecodedError(const DecodedError& error);

/// Incremental frame decoder.  feed() bytes as they arrive; next() yields
/// complete frames until the buffer runs dry.  Throws FrameError on
/// malformed input (the header is validated as soon as 20 bytes are
/// buffered, before any payload is awaited).
class FrameDecoder {
 public:
  void feed(BytesView data);

  /// Next complete frame, or nullopt if more bytes are needed.
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes currently buffered but not yet consumed (diagnostics).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Bytes buf_;
  std::size_t pos_ = 0;
};

}  // namespace ripple::net
