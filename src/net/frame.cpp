#include "net/frame.h"

#include <stdexcept>

namespace ripple::net {

namespace {

/// Little-endian header writes, spelled out byte by byte: the frame
/// boundary is the one place host-endian or size_t-width encoding would
/// silently break cross-machine runs (ISSUE satellite: serde portability).
void putU16le(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void putU32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void putU64le(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t getU16le(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint8_t>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[1])) << 8));
}

std::uint32_t getU32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t getU64le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

bool validOpcode(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(Opcode::kPing) &&
         raw <= static_cast<std::uint8_t>(Opcode::kHello);
}

Bytes prependEpoch(std::uint64_t epoch, BytesView payload) {
  Bytes out;
  out.reserve(8 + payload.size());
  putU64le(out, epoch);
  out.append(payload.data(), payload.size());
  return out;
}

std::uint64_t stripEpoch(Bytes& payload) {
  if (payload.size() < 8) {
    throw FrameError("stripEpoch: payload too short for epoch prefix");
  }
  const std::uint64_t epoch = getU64le(payload.data());
  payload.erase(0, 8);
  return epoch;
}

Bytes encodeFrame(Opcode opcode, std::uint16_t flags, std::uint64_t requestId,
                  BytesView payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw FrameError("encodeFrame: payload exceeds kMaxPayloadBytes");
  }
  Bytes out;
  out.reserve(kHeaderBytes + payload.size());
  putU32le(out, kMagic);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(opcode));
  putU16le(out, flags);
  putU64le(out, requestId);
  putU32le(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

Bytes encodeError(ErrorKind kind, const std::string& message) {
  ByteWriter w(message.size() + 4);
  w.putU8(static_cast<std::uint8_t>(kind));
  w.putBytes(message);
  return w.take();
}

DecodedError decodeError(BytesView payload) {
  DecodedError error;
  try {
    ByteReader r(payload);
    const std::uint8_t kind = r.getU8();
    if (kind > static_cast<std::uint8_t>(ErrorKind::kLogic)) {
      error.kind = ErrorKind::kRuntime;
    } else {
      error.kind = static_cast<ErrorKind>(kind);
    }
    error.message = Bytes(r.getBytes());
  } catch (const CodecError&) {
    error.kind = ErrorKind::kRuntime;
    error.message = "remote error (malformed error payload)";
  }
  return error;
}

void throwDecodedError(const DecodedError& error) {
  switch (error.kind) {
    case ErrorKind::kInvalidArgument:
      throw std::invalid_argument(error.message);
    case ErrorKind::kOutOfRange:
      throw std::out_of_range(error.message);
    case ErrorKind::kLogic:
      throw std::logic_error(error.message);
    case ErrorKind::kRuntime:
      break;
  }
  throw std::runtime_error(error.message);
}

void FrameDecoder::feed(BytesView data) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data.data(), data.size());
}

std::optional<Frame> FrameDecoder::next() {
  if (buffered() < kHeaderBytes) {
    return std::nullopt;
  }
  const char* h = buf_.data() + pos_;
  const std::uint32_t magic = getU32le(h);
  if (magic != kMagic) {
    throw FrameError("FrameDecoder: bad magic");
  }
  const auto version = static_cast<std::uint8_t>(h[4]);
  if (version != kVersion) {
    throw FrameError("FrameDecoder: unsupported version " +
                     std::to_string(version));
  }
  const auto opcode = static_cast<std::uint8_t>(h[5]);
  if (!validOpcode(opcode)) {
    throw FrameError("FrameDecoder: unknown opcode " + std::to_string(opcode));
  }
  const std::uint32_t length = getU32le(h + 16);
  if (length > kMaxPayloadBytes) {
    throw FrameError("FrameDecoder: payload length " + std::to_string(length) +
                     " exceeds cap");
  }
  if (buffered() < kHeaderBytes + length) {
    return std::nullopt;
  }
  Frame frame;
  frame.opcode = opcode;
  frame.flags = getU16le(h + 6);
  frame.requestId = getU64le(h + 8);
  frame.payload.assign(buf_.data() + pos_ + kHeaderBytes, length);
  pos_ += kHeaderBytes + length;
  return frame;
}

}  // namespace ripple::net
