#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

namespace ripple::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

/// Resolve a dotted-quad (or "localhost") into a sockaddr_in.  Ripple's
/// multi-process story is localhost worker fleets; a DNS resolver is out
/// of scope, so anything that is not an IPv4 literal is rejected.
sockaddr_in resolve(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  const std::string host =
      endpoint.host == "localhost" ? "127.0.0.1" : endpoint.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("cannot resolve host '" + endpoint.host +
                   "' (IPv4 literals only)");
  }
  return addr;
}

void setNonBlocking(int fd, bool nonBlocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    throwErrno("fcntl(F_GETFL)");
  }
  const int next = nonBlocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) {
    throwErrno("fcntl(F_SETFL)");
  }
}

/// Wait for readiness; returns false on timeout, throws on poll error.
bool waitReady(int fd, short events, int timeoutMs) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeoutMs);
    if (rc > 0) {
      return true;
    }
    if (rc == 0) {
      return false;
    }
    if (errno == EINTR) {
      continue;
    }
    throwErrno("poll");
  }
}

}  // namespace

Endpoint parseEndpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    throw std::invalid_argument("bad endpoint '" + spec +
                                "' (expected host:port)");
  }
  Endpoint endpoint;
  endpoint.host = spec.substr(0, colon);
  const std::string portStr = spec.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(portStr.c_str(), &end, 10);
  if (end == portStr.c_str() || *end != '\0' || port <= 0 || port > 65535) {
    throw std::invalid_argument("bad port in endpoint '" + spec + "'");
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

std::vector<Endpoint> parseEndpointList(const std::string& spec) {
  std::vector<Endpoint> endpoints;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(start, comma - start);
    if (!item.empty()) {
      endpoints.push_back(parseEndpoint(item));
    }
    start = comma + 1;
  }
  if (endpoints.empty()) {
    throw std::invalid_argument("empty endpoint list '" + spec + "'");
  }
  return endpoints;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect(const Endpoint& endpoint, int timeoutMs) {
  const sockaddr_in addr = resolve(endpoint);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throwErrno("socket");
  }
  Socket sock(fd);
  setNonBlocking(fd, true);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      throwErrno("connect to " + endpoint.str());
    }
    if (!waitReady(fd, POLLOUT, timeoutMs)) {
      throw NetError("connect to " + endpoint.str() + ": timed out");
    }
    int soError = 0;
    socklen_t len = sizeof(soError);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0) {
      throwErrno("getsockopt(SO_ERROR)");
    }
    if (soError != 0) {
      throw NetError("connect to " + endpoint.str() + ": " +
                     std::strerror(soError));
    }
  }
  setNonBlocking(fd, false);
  // Request/response frames are small; Nagle would add 40ms stalls.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void Socket::sendAll(BytesView data, int timeoutMs) {
  if (!valid()) {
    throw NetError("sendAll on closed socket");
  }
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!waitReady(fd_, POLLOUT, timeoutMs)) {
        throw NetError("send: timed out");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    throwErrno("send");
  }
}

std::size_t Socket::recvSome(Bytes& out, std::size_t capacity, int timeoutMs) {
  if (!valid()) {
    throw NetError("recvSome on closed socket");
  }
  char buf[16 * 1024];
  const std::size_t want = capacity < sizeof(buf) ? capacity : sizeof(buf);
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, want, MSG_DONTWAIT);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      return static_cast<std::size_t>(n);
    }
    if (n == 0) {
      return 0;  // Clean EOF.
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!waitReady(fd_, POLLIN, timeoutMs)) {
        throw NetError("recv: timed out");
      }
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    throwErrno("recv");
  }
}

bool Socket::peerClosed() const {
  if (fd_ < 0) {
    return true;
  }
  pollfd p{};
  p.fd = fd_;
  p.events = POLLIN;
  const int r = ::poll(&p, 1, 0);
  if (r <= 0) {
    // Nothing pending (or a transient poll hiccup): assume alive — the
    // exchange path handles a late failure anyway.
    return false;
  }
  if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    return true;
  }
  if ((p.revents & POLLIN) != 0) {
    char probe = 0;
    const ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    // 0 = EOF queued; >0 = unsolicited bytes on an idle connection.
    return n >= 0;
  }
  return false;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdownBoth() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Listener::open(const Endpoint& endpoint, int backlog) {
  close();
  const sockaddr_in addr = resolve(endpoint);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throwErrno("socket");
  }
  fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int savedErrno = errno;
    close();
    errno = savedErrno;
    throwErrno("bind " + endpoint.str());
  }
  if (::listen(fd, backlog) != 0) {
    const int savedErrno = errno;
    close();
    errno = savedErrno;
    throwErrno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int savedErrno = errno;
    close();
    errno = savedErrno;
    throwErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

std::optional<Socket> Listener::accept(int timeoutMs) {
  if (!valid()) {
    throw NetError("accept on closed listener");
  }
  if (!waitReady(fd_, POLLIN, timeoutMs)) {
    return std::nullopt;
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return std::nullopt;
    }
    throwErrno("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ripple::net
