// ripple::net — the request/response client (DESIGN.md §11).
//
// A Client owns a small pool of connections per endpoint and performs
// synchronous exchanges: encode request frame, send, read frames until the
// response with the matching request id arrives.  Concurrency comes from
// callers: any number of threads may call() at once; each exchange checks
// a connection out of the pool (dialing when empty) and returns it only if
// the exchange left it healthy.
//
// Fault integration is the load-bearing part.  Three failure planes exist:
//   * Server-side application errors travel in error frames with an
//     ErrorKind tag and are rethrown as the SAME std exception type the
//     in-process backends throw (invalid_argument, out_of_range,
//     logic_error, runtime_error).  These are never retried — a duplicate
//     table is a duplicate table no matter how often you ask.
//   * Transport failures (refused, reset, timeout, poisoned stream) and
//     client-side injected faults (FaultInjector, fail-before) become
//     fault::TransientStoreError / TransientQueueError and go through a
//     bounded per-request fault::Retrier.  Injected faults fire BEFORE any
//     bytes are sent, so retrying them is always safe; real socket errors
//     are retried when the caller marks the request idempotent (retryIo)
//     or dedup-protected (dedup: the request id is recorded server-side,
//     so a re-send replays the recorded response instead of re-executing).
//   * State loss.  Every fresh connection performs a kHello handshake and
//     records the server's session epoch; a changed epoch means the
//     process restarted and its in-memory parts are gone.  The client
//     invalidates the endpoint's pool, runs registered reseed hooks (the
//     SPI layers recreate their registries on the fresh incarnation), and
//     throws fault::StateLostError — never a Transient — so the engines
//     escalate to checkpoint recovery instead of blindly retrying.
//
// Endpoint health: each endpoint keeps a consecutive-dial-failure count;
// at `breakerThreshold` the circuit breaker opens and further probes wait
// out a bounded backoff (schedule reused from fault::RetryPolicy).  First
// dials fail fast; re-dials of an endpoint that has connected before get
// a `redialTimeoutMs` budget, which is what bridges a server restart.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "fault/fault.h"
#include "fault/retry.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "net/frame.h"
#include "net/net_metrics.h"
#include "net/socket.h"

namespace ripple::net {

/// Exchange boundaries where the test-only chaos hook may sever the
/// connection (tests/net coverage of ConnectionClosed at every boundary).
enum class ChaosPoint : std::uint8_t {
  kBeforeSend,    // Nothing sent; the server never saw the request.
  kAfterSend,     // Request delivered; the response is lost.
  kAfterReceive,  // Exchange complete; the pooled connection dies after.
};

/// Returns true to sever the connection at `point`.  Never invoked for the
/// kHello handshake.
using ChaosHook = std::function<bool(Opcode, ChaosPoint)>;

/// Breaker probe schedule: attempts/jitter are ignored (the redial
/// deadline bounds attempts; probes are deterministic), only the
/// exponential curve and its hard cap are used.
[[nodiscard]] inline fault::RetryPolicy defaultBreakerBackoff() {
  fault::RetryPolicy policy;
  policy.maxAttempts = 1;
  policy.initialBackoffMs = 5.0;
  policy.backoffMultiplier = 2.0;
  policy.maxBackoffMs = 100.0;
  policy.jitter = 0.0;
  return policy;
}

class Client {
 public:
  struct Options {
    /// Servers, indexed by the PlacementMap.  Required non-empty.
    std::vector<Endpoint> endpoints;

    int connectTimeoutMs = 5000;

    /// Bound on each send/recv wait within one exchange.
    int requestTimeoutMs = 30000;

    /// Total budget for re-dialing an endpoint that has connected before
    /// (this is what bridges a server restart; RIPPLE_NET_REDIAL_MS).
    /// First dials always fail fast.
    int redialTimeoutMs = 250;

    /// Consecutive dial failures before the endpoint's circuit breaker
    /// opens and probes start waiting out the breaker backoff.
    int breakerThreshold = 3;

    /// Cooldown schedule between half-open probes of an open breaker.
    fault::RetryPolicy breakerBackoff = defaultBreakerBackoff();

    /// Budget for transparent retries of transient failures.
    fault::RetryPolicy retry{};

    /// Optional deterministic fault injection, consulted fail-before on
    /// every request (nothing is sent when a rule fires).
    fault::FaultInjectorPtr injector;

    /// Dedup-cache identity sent in the kHello handshake; 0 mints a
    /// process-unique id.
    std::uint64_t clientId = 0;

    /// Test-only connection chaos (see ChaosHook).
    ChaosHook chaos;
  };

  explicit Client(Options options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] std::size_t endpointCount() const {
    return options_.endpoints.size();
  }
  [[nodiscard]] const Endpoint& endpointAt(std::size_t index) const {
    return options_.endpoints.at(index);
  }

  /// One request/response exchange against `endpoint` with bounded retry.
  /// `faultOp`/`name`/`part` describe the operation to the fault injector
  /// and select which Transient* type transport failures map to.
  /// `retryIo` = the request is idempotent, so lost-response socket errors
  /// may be retried transparently (injected faults are always retried).
  /// `dedup` = the request is non-idempotent but re-send-safe: it carries
  /// kFlagDedup and a stable request id across attempts, so the server
  /// replays the recorded response if the first send did execute.
  /// Throws TransientStoreError/TransientQueueError once the budget is
  /// exhausted, fault::StateLostError when the endpoint restarted, or the
  /// server's rethrown std exception.
  Bytes call(std::size_t endpoint, Opcode op, BytesView payload,
             fault::Op faultOp, std::string_view name, std::uint32_t part,
             bool retryIo = true, bool dedup = false);

  /// Register a reseed hook, run (with no client locks held) after an
  /// epoch change is detected on `endpoint` and before StateLostError is
  /// thrown.  Hooks recreate endpoint-local registry state (tables, queue
  /// sets) on the fresh incarnation so engine-level recovery can restore
  /// data into it.  Hooks may call back into this client.
  void addRestartHook(std::function<void(std::size_t)> hook);

  /// Mirror transport counters into `net.*` and retry counters into
  /// `fault.*` instruments.  The registry must outlive the client.
  void bindRegistry(obs::MetricsRegistry& registry);

  [[nodiscard]] NetMetrics& metrics() { return metrics_; }

  /// Aggregate retry ledger across all calls (the injected-fault ledger
  /// closes as injector.injectedFailures() == retries() + escalations()
  /// when no real socket faults occur).
  [[nodiscard]] std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t escalations() const {
    return escalations_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Options& options() const { return options_; }

  /// Dedup identity sent in every handshake.
  [[nodiscard]] std::uint64_t clientId() const { return clientId_; }

  /// Last session epoch observed for `endpoint` (0 = never connected).
  [[nodiscard]] std::uint64_t knownEpoch(std::size_t endpoint) const {
    return endpointStates_.at(endpoint)->epoch.load(
        std::memory_order_acquire);
  }

  /// Drop every pooled connection (teardown; in-flight exchanges keep
  /// their checked-out connections).
  void closeAll();

 private:
  struct Channel {
    Socket sock;
    FrameDecoder decoder;
  };

  /// Per-endpoint health: the observed session epoch plus the circuit
  /// breaker state.  All atomics — dials race benignly; the epoch CAS in
  /// noteEpoch() elects exactly one restart-handling winner.
  struct EndpointState {
    std::atomic<std::uint64_t> epoch{0};
    /// Epoch whose reseed hooks have completed.  While epoch !=
    /// seededEpoch a reseed is in flight, and ordinary exchanges wait
    /// (see the reseed gate in exchange()) — an op racing ahead would
    /// find its tables missing on the fresh incarnation and die on a
    /// non-retriable application error.
    std::atomic<std::uint64_t> seededEpoch{0};
    std::atomic<bool> everConnected{false};
    std::atomic<std::uint32_t> failures{0};     // Consecutive dial failures.
    std::atomic<std::int64_t> openUntilMs{0};   // Steady-clock ms gate.
  };

  std::unique_ptr<Channel> acquire(std::size_t endpoint);
  std::unique_ptr<Channel> dial(std::size_t endpoint);
  void release(std::size_t endpoint, std::unique_ptr<Channel> channel);

  /// kHello on a fresh connection: sends the client id, records the
  /// server epoch.  Throws NetError on transport failure and
  /// fault::StateLostError when the epoch changed.
  void handshake(Channel& channel, std::size_t endpoint);

  /// Record an observed epoch; on change: invalidate the endpoint pool,
  /// run reseed hooks, throw fault::StateLostError.
  void noteEpoch(std::size_t endpoint, std::uint64_t observed);
  [[noreturn]] void onEpochChange(std::size_t endpoint, std::uint64_t oldEpoch,
                                  std::uint64_t newEpoch);
  void runRestartHooks(std::size_t endpoint, std::uint64_t oldEpoch);

  /// One un-retried exchange.  Throws NetError on transport failure (the
  /// channel is dropped), or the server's std exception on error frames.
  Bytes exchange(std::size_t endpoint, Opcode op, BytesView payload,
                 std::uint64_t requestId, bool dedup);

  [[nodiscard]] bool chaosFires(Opcode op, ChaosPoint point) const {
    return options_.chaos && op != Opcode::kHello &&
           options_.chaos(op, point);
  }

  void noteRetrier(const fault::Retrier& retrier);

  Options options_;
  std::uint64_t clientId_ = 0;
  NetMetrics metrics_;
  std::atomic<obs::MetricsRegistry*> registry_{nullptr};
  std::atomic<std::uint64_t> nextRequestId_{1};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> escalations_{0};

  std::vector<std::unique_ptr<EndpointState>> endpointStates_;

  RankedMutex<LockRank::kNetClient> poolMu_;
  std::vector<std::vector<std::unique_ptr<Channel>>> pool_
      RIPPLE_GUARDED_BY(poolMu_);

  // Never held together with poolMu_ (hooks are copied out, then invoked
  // with no locks so they may call back into this client).
  RankedMutex<LockRank::kNetClient> hooksMu_;
  std::vector<std::function<void(std::size_t)>> hooks_
      RIPPLE_GUARDED_BY(hooksMu_);
};

using ClientPtr = std::shared_ptr<Client>;

}  // namespace ripple::net
