// ripple::net — the request/response client (DESIGN.md §11).
//
// A Client owns a small pool of connections per endpoint and performs
// synchronous exchanges: encode request frame, send, read frames until the
// response with the matching request id arrives.  Concurrency comes from
// callers: any number of threads may call() at once; each exchange checks
// a connection out of the pool (dialing when empty) and returns it only if
// the exchange left it healthy.
//
// Fault integration is the load-bearing part.  Two failure planes exist:
//   * Server-side application errors travel in error frames with an
//     ErrorKind tag and are rethrown as the SAME std exception type the
//     in-process backends throw (invalid_argument, out_of_range,
//     logic_error, runtime_error).  These are never retried — a duplicate
//     table is a duplicate table no matter how often you ask.
//   * Transport failures (refused, reset, timeout, poisoned stream) and
//     client-side injected faults (FaultInjector, fail-before) become
//     fault::TransientStoreError / TransientQueueError and go through a
//     bounded per-request fault::Retrier.  Injected faults fire BEFORE any
//     bytes are sent, so retrying them is always safe; real socket errors
//     are retried only when the caller marks the request idempotent
//     (retryIo) — a destructive read whose response was lost must surface
//     to the engine-level recovery sites instead.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "fault/fault.h"
#include "fault/retry.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "net/frame.h"
#include "net/net_metrics.h"
#include "net/socket.h"

namespace ripple::net {

class Client {
 public:
  struct Options {
    /// Servers, indexed by the PlacementMap.  Required non-empty.
    std::vector<Endpoint> endpoints;

    int connectTimeoutMs = 5000;

    /// Bound on each send/recv wait within one exchange.
    int requestTimeoutMs = 30000;

    /// Budget for transparent retries of transient failures.
    fault::RetryPolicy retry{};

    /// Optional deterministic fault injection, consulted fail-before on
    /// every request (nothing is sent when a rule fires).
    fault::FaultInjectorPtr injector;
  };

  explicit Client(Options options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] std::size_t endpointCount() const {
    return options_.endpoints.size();
  }
  [[nodiscard]] const Endpoint& endpointAt(std::size_t index) const {
    return options_.endpoints.at(index);
  }

  /// One request/response exchange against `endpoint` with bounded retry.
  /// `faultOp`/`name`/`part` describe the operation to the fault injector
  /// and select which Transient* type transport failures map to.
  /// `retryIo` = the request is idempotent, so lost-response socket errors
  /// may be retried transparently (injected faults are always retried).
  /// Throws TransientStoreError/TransientQueueError once the budget is
  /// exhausted, or the server's rethrown std exception.
  Bytes call(std::size_t endpoint, Opcode op, BytesView payload,
             fault::Op faultOp, std::string_view name, std::uint32_t part,
             bool retryIo = true);

  /// Mirror transport counters into `net.*` and retry counters into
  /// `fault.*` instruments.  The registry must outlive the client.
  void bindRegistry(obs::MetricsRegistry& registry);

  [[nodiscard]] NetMetrics& metrics() { return metrics_; }

  /// Aggregate retry ledger across all calls (the injected-fault ledger
  /// closes as injector.injectedFailures() == retries() + escalations()
  /// when no real socket faults occur).
  [[nodiscard]] std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t escalations() const {
    return escalations_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Options& options() const { return options_; }

  /// Drop every pooled connection (teardown; in-flight exchanges keep
  /// their checked-out connections).
  void closeAll();

 private:
  struct Channel {
    Socket sock;
    FrameDecoder decoder;
  };

  std::unique_ptr<Channel> acquire(std::size_t endpoint);
  void release(std::size_t endpoint, std::unique_ptr<Channel> channel);

  /// One un-retried exchange.  Throws NetError on transport failure (the
  /// channel is dropped), or the server's std exception on error frames.
  Bytes exchange(std::size_t endpoint, Opcode op, BytesView payload);

  void noteRetrier(const fault::Retrier& retrier);

  Options options_;
  NetMetrics metrics_;
  std::atomic<obs::MetricsRegistry*> registry_{nullptr};
  std::atomic<std::uint64_t> nextRequestId_{1};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> escalations_{0};

  RankedMutex<LockRank::kNetClient> poolMu_;
  std::vector<std::vector<std::unique_ptr<Channel>>> pool_;
};

using ClientPtr = std::shared_ptr<Client>;

}  // namespace ripple::net
