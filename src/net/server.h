// ripple::net — the data-plane server (DESIGN.md §11).
//
// A Server hosts an existing in-process KVStore backend plus a set of
// blocking message queues and serves them to remote clients over the
// frame protocol.  It is deliberately a *dumb* data plane: partitioning
// decisions stay with the client (every store request carries an explicit
// part index), mobile code never crosses the wire (processParts /
// enumerate run client-side against scanned pairs), and the server's only
// jobs are byte-faithful storage and FIFO queues.
//
// Part routing on the hosted store works by key prefixing: the server
// stores pairs under a 4-byte big-endian part-index prefix and creates
// hosted tables with a partitioner that reads that prefix back, so
// `partOf = prefix % parts = prefix` — any in-process backend then places
// a remote part exactly where the client asked, and because all keys of
// one part share a prefix, byte-lexicographic order of prefixed keys
// within a part equals the order of the client's keys (preserving the
// sorted-drain SPI contract end to end).
//
// Shutdown contract (ISSUE satellite 3): stop() is idempotent and safe
// while connections are mid-request — the accept loop is woken by a flag,
// blocked connection reads are woken by shutdown(2), and in-flight queue
// waits are bounded (the server caps per-request queue waits; clients
// slice long waits into bounded polls).  A kShutdown frame only *requests*
// stop (observable via waitUntilStopRequested) so the hosting process
// controls teardown order.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "kvstore/table.h"
#include "net/socket.h"

namespace ripple::net {

/// Upper bound the server applies to one kQueueRead wait; clients slice
/// longer timeouts into repeated bounded requests, which keeps server
/// connection threads joinable within this bound during stop().
inline constexpr std::uint32_t kMaxServerQueueWaitMs = 250;

class Server {
 public:
  struct Options {
    /// Listen address; port 0 binds an ephemeral port (read via port()).
    Endpoint listenOn{};

    /// The in-process backend that holds the data.  Required.
    kv::KVStorePtr hosted;

    /// Send timeout for responses, ms.
    int sendTimeoutMs = 30000;
  };

  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start the accept loop.  Throws NetError.
  void start();

  /// Stop accepting, wake and join every connection, close the listener.
  /// Idempotent; also called by the destructor.
  void stop();

  /// Bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// True between start() and stop().
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Ask the hosting process to stop (set by a kShutdown frame or
  /// directly).  Does not tear anything down by itself.
  void requestStop();

  [[nodiscard]] bool stopRequested() const {
    return stopRequested_.load(std::memory_order_acquire);
  }

  /// Block until requestStop() (used by the apps server binary).
  void waitUntilStopRequested();

  /// Live connection count (diagnostics / tests).
  [[nodiscard]] std::size_t connectionCount() const;

 private:
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  struct HostedTable {
    kv::TablePtr table;    // Hosted backend table (prefix-partitioned).
    std::uint32_t parts;   // Client-visible part count.
  };

  struct HostedQueueSet;

  void acceptLoop();
  void serve(Conn& conn);
  void reapFinishedConnections();

  /// Execute one request; returns the response payload, or an encoded
  /// error payload with `isError` set.
  Bytes dispatch(std::uint8_t opcode, BytesView payload, bool& isError);

  Bytes handleStore(std::uint8_t opcode, BytesView payload);
  Bytes handleQueue(std::uint8_t opcode, BytesView payload);

  [[nodiscard]] HostedTable lookupHosted(const std::string& name) const;
  [[nodiscard]] std::shared_ptr<HostedQueueSet> lookupQueueSet(
      const std::string& name) const;

  Options options_;
  RankedMutex<LockRank::kNetLifecycle> lifecycleMu_;  // Serializes start()/stop().
  Listener listener_;
  std::thread acceptThread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<bool> stopRequested_{false};
  mutable RankedMutex<LockRank::kNetConn> stopMu_;
  std::condition_variable_any stopCv_;

  mutable RankedMutex<LockRank::kNetConn> connMu_;
  std::vector<std::unique_ptr<Conn>> conns_ RIPPLE_GUARDED_BY(connMu_);

  mutable RankedMutex<LockRank::kNetRegistry> tablesMu_;
  std::unordered_map<std::string, HostedTable> tables_
      RIPPLE_GUARDED_BY(tablesMu_);

  mutable RankedMutex<LockRank::kNetRegistry> queuesMu_;
  std::unordered_map<std::string, std::shared_ptr<HostedQueueSet>> queues_
      RIPPLE_GUARDED_BY(queuesMu_);
};

}  // namespace ripple::net
