// ripple::net — the data-plane server (DESIGN.md §11).
//
// A Server hosts an existing in-process KVStore backend plus a set of
// blocking message queues and serves them to remote clients over the
// frame protocol.  It is deliberately a *dumb* data plane: partitioning
// decisions stay with the client (every store request carries an explicit
// part index), mobile code never crosses the wire (processParts /
// enumerate run client-side against scanned pairs), and the server's only
// jobs are byte-faithful storage and FIFO queues.
//
// Part routing on the hosted store works by key prefixing: the server
// stores pairs under a 4-byte big-endian part-index prefix and creates
// hosted tables with a partitioner that reads that prefix back, so
// `partOf = prefix % parts = prefix` — any in-process backend then places
// a remote part exactly where the client asked, and because all keys of
// one part share a prefix, byte-lexicographic order of prefixed keys
// within a part equals the order of the client's keys (preserving the
// sorted-drain SPI contract end to end).
//
// Shutdown contract (ISSUE satellite 3): stop() is idempotent and safe
// while connections are mid-request — the accept loop is woken by a flag,
// blocked connection reads are woken by shutdown(2), and in-flight queue
// waits are bounded (the server caps per-request queue waits; clients
// slice long waits into bounded polls).  A kShutdown frame only *requests*
// stop (observable via waitUntilStopRequested) so the hosting process
// controls teardown order.
//
// Failover contract (DESIGN.md §11): start() mints a session epoch (the
// incarnation id) and every response is prefixed with it (kFlagEpoch), so
// clients can tell a connection blip from a restart that lost in-memory
// parts.  Requests flagged kFlagDedup have their responses recorded in a
// bounded per-client dedup cache keyed by (client id from the kHello
// handshake, request id); a re-sent request id replays the recorded
// response (kFlagReplayed) instead of re-executing the op, which is what
// makes ConnectionClosed mid-request safely retriable for non-idempotent
// ops.  The cache is bounded three ways (entries and bytes per client,
// client count) with FIFO eviction per client and least-recently-active
// eviction across clients; an evicted entry simply degrades a replay into
// a re-execution, never into wrong data for idempotent ops, and the
// entry budget (256) far exceeds any client's in-flight window (one
// pooled connection per thread, one request per connection).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "kvstore/table.h"
#include "net/socket.h"

namespace ripple::net {

/// Upper bound the server applies to one kQueueRead wait; clients slice
/// longer timeouts into repeated bounded requests, which keeps server
/// connection threads joinable within this bound during stop().
inline constexpr std::uint32_t kMaxServerQueueWaitMs = 250;

/// Dedup-cache bounds (DESIGN.md §11): per-client FIFO entry/byte caps
/// plus a client-count cap with least-recently-active eviction.
inline constexpr std::size_t kDedupEntriesPerClient = 256;
inline constexpr std::size_t kDedupBytesPerClient = 8u << 20;
inline constexpr std::size_t kDedupClients = 64;

class Server {
 public:
  struct Options {
    /// Listen address; port 0 binds an ephemeral port (read via port()).
    Endpoint listenOn{};

    /// The in-process backend that holds the data.  Required.
    kv::KVStorePtr hosted;

    /// Send timeout for responses, ms.
    int sendTimeoutMs = 30000;

    /// Upper bound applied to one kQueueRead wait (clients slice longer
    /// waits into repeated bounded polls; RIPPLE_NET_QUEUE_WAIT_MS).
    std::uint32_t maxQueueWaitMs = kMaxServerQueueWaitMs;
  };

  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start the accept loop.  Throws NetError.
  void start();

  /// Stop accepting, wake and join every connection, close the listener.
  /// Idempotent; also called by the destructor.
  void stop();

  /// Bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// True between start() and stop().
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Ask the hosting process to stop (set by a kShutdown frame or
  /// directly).  Does not tear anything down by itself.
  void requestStop();

  [[nodiscard]] bool stopRequested() const {
    return stopRequested_.load(std::memory_order_acquire);
  }

  /// Block until requestStop() (used by the apps server binary).
  void waitUntilStopRequested();

  /// Live connection count (diagnostics / tests).
  [[nodiscard]] std::size_t connectionCount() const;

  /// Session epoch minted by start(); nonzero while running.  A client
  /// observing a different value than it recorded knows this process
  /// restarted and its in-memory parts are gone.
  [[nodiscard]] std::uint64_t incarnation() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
    // Set by the kHello handshake; only the connection's serve thread
    // touches it.
    std::uint64_t clientId = 0;
  };

  struct HostedTable {
    kv::TablePtr table;    // Hosted backend table (prefix-partitioned).
    std::uint32_t parts;   // Client-visible part count.
  };

  struct HostedQueueSet;

  struct DedupEntry {
    Bytes payload;
    bool isError = false;
  };

  /// One client's recorded responses: FIFO order for eviction, byte total
  /// for the per-client byte cap, lastTouch for cross-client eviction.
  struct ClientDedup {
    std::unordered_map<std::uint64_t, DedupEntry> byId;
    std::deque<std::uint64_t> order;
    std::size_t bytes = 0;
    std::uint64_t lastTouch = 0;
  };

  void acceptLoop();
  void serve(Conn& conn);
  void reapFinishedConnections();

  /// Execute one request; returns the response payload, or an encoded
  /// error payload with `isError` set.
  Bytes dispatch(std::uint8_t opcode, BytesView payload, bool& isError);

  Bytes handleStore(std::uint8_t opcode, BytesView payload);
  Bytes handleQueue(std::uint8_t opcode, BytesView payload);

  [[nodiscard]] std::optional<DedupEntry> lookupDedup(
      std::uint64_t clientId, std::uint64_t requestId);
  void recordDedup(std::uint64_t clientId, std::uint64_t requestId,
                   const Bytes& payload, bool isError);

  [[nodiscard]] HostedTable lookupHosted(const std::string& name) const;
  [[nodiscard]] std::shared_ptr<HostedQueueSet> lookupQueueSet(
      const std::string& name) const;

  Options options_;
  RankedMutex<LockRank::kNetLifecycle> lifecycleMu_;  // Serializes start()/stop().
  Listener listener_;
  std::thread acceptThread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<bool> stopRequested_{false};
  mutable RankedMutex<LockRank::kNetConn> stopMu_;
  std::condition_variable_any stopCv_;

  mutable RankedMutex<LockRank::kNetConn> connMu_;
  std::vector<std::unique_ptr<Conn>> conns_ RIPPLE_GUARDED_BY(connMu_);

  mutable RankedMutex<LockRank::kNetRegistry> tablesMu_;
  std::unordered_map<std::string, HostedTable> tables_
      RIPPLE_GUARDED_BY(tablesMu_);

  mutable RankedMutex<LockRank::kNetRegistry> queuesMu_;
  std::unordered_map<std::string, std::shared_ptr<HostedQueueSet>> queues_
      RIPPLE_GUARDED_BY(queuesMu_);

  /// Session epoch; minted by start(), echoed in every response.
  std::atomic<std::uint64_t> epoch_{0};

  // Same rank as the other registries and never held together with them:
  // the dedup lookup happens before dispatch, the record after, both with
  // the dispatch locks released.
  mutable RankedMutex<LockRank::kNetRegistry> dedupMu_;
  std::unordered_map<std::uint64_t, ClientDedup> dedup_
      RIPPLE_GUARDED_BY(dedupMu_);
  std::uint64_t dedupTouch_ RIPPLE_GUARDED_BY(dedupMu_) = 0;
};

}  // namespace ripple::net
