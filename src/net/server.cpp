#include "net/server.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/hash.h"
#include "common/queue.h"
#include "net/frame.h"

namespace ripple::net {

namespace {

/// Server-side keys carry a 4-byte big-endian part-index prefix so any
/// hosted backend places the pair exactly where the client asked (see the
/// header comment).  Big-endian keeps numeric part order lexicographic.
Bytes prefixedKey(std::uint32_t part, BytesView key) {
  Bytes out;
  out.reserve(4 + key.size());
  out.push_back(static_cast<char>((part >> 24) & 0xff));
  out.push_back(static_cast<char>((part >> 16) & 0xff));
  out.push_back(static_cast<char>((part >> 8) & 0xff));
  out.push_back(static_cast<char>(part & 0xff));
  out.append(key.data(), key.size());
  return out;
}

BytesView stripPartPrefix(BytesView key) {
  return key.size() >= 4 ? key.substr(4) : BytesView{};
}

std::uint64_t partPrefixHash(BytesView key) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 4 && i < key.size(); ++i) {
    v = (v << 8) | static_cast<std::uint8_t>(key[i]);
  }
  return v;
}

/// Incarnation ids need only be distinct across restarts of one logical
/// endpoint (and never zero); clock ticks + pid + a process counter are
/// plenty.
std::uint64_t mintIncarnation() {
  static std::atomic<std::uint64_t> counter{0};
  const auto ticks = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const auto pid = static_cast<std::uint64_t>(::getpid());
  const std::uint64_t nonce =
      (counter.fetch_add(1, std::memory_order_relaxed) + 1) *
      0x9e3779b97f4a7c15ULL;
  return (ticks ^ (pid << 32) ^ nonce) | 1;
}

void checkPart(std::uint32_t part, std::uint32_t parts,
               const std::string& table) {
  if (part >= parts) {
    throw std::out_of_range("net::Server: part " + std::to_string(part) +
                            " out of range for table '" + table + "' (" +
                            std::to_string(parts) + " parts)");
  }
}

/// Collects one part's pairs (prefix stripped) into a scan/drain response:
/// varint count followed by length-prefixed key/value pairs.  Enumeration
/// within one part preserves the hosted backend's order; for ordered
/// tables and for drains that order is ascending in the client's keys
/// because all keys of a part share the same prefix.
class CollectingConsumer : public kv::PairConsumer {
 public:
  bool consume(std::uint32_t part, kv::KeyView key,
               kv::ValueView value) override {
    (void)part;
    ++count_;
    pairs_.putBytes(stripPartPrefix(key));
    pairs_.putBytes(value);
    return true;
  }

  [[nodiscard]] Bytes take() {
    ByteWriter out(pairs_.size() + 10);
    out.putVarint(count_);
    out.putRaw(pairs_.view());
    return out.take();
  }

 private:
  std::uint64_t count_ = 0;
  ByteWriter pairs_;
};

}  // namespace

struct Server::HostedQueueSet {
  explicit HostedQueueSet(std::uint32_t n) : queues(n) {
    for (auto& q : queues) {
      q = std::make_unique<BlockingQueue<Bytes>>();
    }
  }

  BlockingQueue<Bytes>& queueAt(std::uint32_t index,
                                const std::string& name) {
    if (index >= queues.size()) {
      throw std::out_of_range("net::Server: queue " + std::to_string(index) +
                              " out of range for set '" + name + "'");
    }
    return *queues[index];
  }

  void close() {
    for (auto& q : queues) {
      q->close();  // BlockingQueue::close is idempotent.
    }
  }

  std::vector<std::unique_ptr<BlockingQueue<Bytes>>> queues;
};

Server::Server(Options options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  LockGuard lock(lifecycleMu_);
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  if (!options_.hosted) {
    throw std::invalid_argument("net::Server: a hosted store is required");
  }
  stopping_.store(false, std::memory_order_release);
  // Fresh incarnation: new session epoch, and recorded responses of the
  // previous incarnation must not replay against it.
  epoch_.store(mintIncarnation(), std::memory_order_release);
  {
    LockGuard dedupLock(dedupMu_);
    dedup_.clear();
  }
  listener_.open(options_.listenOn);
  running_.store(true, std::memory_order_release);
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void Server::stop() {
  LockGuard lock(lifecycleMu_);
  stopping_.store(true, std::memory_order_release);
  requestStop();
  if (acceptThread_.joinable()) {
    acceptThread_.join();
  }
  std::vector<std::unique_ptr<Conn>> conns;
  {
    LockGuard connLock(connMu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    // Wake a handler blocked in recv without racing its use of the fd.
    conn->sock.shutdownBoth();
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
  listener_.close();
  running_.store(false, std::memory_order_release);
}

void Server::requestStop() {
  {
    LockGuard lock(stopMu_);
    stopRequested_.store(true, std::memory_order_release);
  }
  stopCv_.notify_all();
}

void Server::waitUntilStopRequested() {
  UniqueLock lock(stopMu_);
  stopCv_.wait(lock,
               [&] { return stopRequested_.load(std::memory_order_acquire); });
}

std::size_t Server::connectionCount() const {
  LockGuard lock(connMu_);
  std::size_t live = 0;
  for (const auto& conn : conns_) {
    if (!conn->done.load(std::memory_order_acquire)) {
      ++live;
    }
  }
  return live;
}

void Server::acceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::optional<Socket> sock;
    try {
      sock = listener_.accept(/*timeoutMs=*/50);
    } catch (const NetError&) {
      break;  // Listener torn down underneath us.
    }
    if (!sock) {
      reapFinishedConnections();
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(*sock);
    Conn* raw = conn.get();
    {
      LockGuard lock(connMu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serve(*raw); });
  }
}

void Server::reapFinishedConnections() {
  LockGuard lock(connMu_);
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) {
        (*it)->thread.join();
      }
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::serve(Conn& conn) {
  FrameDecoder decoder;
  Bytes chunk;
  try {
    for (;;) {
      chunk.clear();
      // Infinite timeout: stop() wakes us with shutdown(2) → clean EOF.
      const std::size_t n =
          conn.sock.recvSome(chunk, 64 * 1024, /*timeoutMs=*/-1);
      if (n == 0) {
        break;  // Client closed (or stop()); clean EOF, no error.
      }
      decoder.feed(chunk);
      while (std::optional<Frame> frame = decoder.next()) {
        bool isError = false;
        bool replayed = false;
        Bytes payload;
        if (static_cast<Opcode>(frame->opcode) == Opcode::kHello) {
          // Handshake: record the connection's dedup identity.  Malformed
          // hellos leave it at 0 (dedup disabled for the connection).
          try {
            conn.clientId = ByteReader(frame->payload).getFixed64();
          } catch (const std::exception& e) {
            isError = true;
            payload = encodeError(ErrorKind::kInvalidArgument, e.what());
          }
        } else if ((frame->flags & kFlagDedup) != 0 && conn.clientId != 0) {
          if (std::optional<DedupEntry> hit =
                  lookupDedup(conn.clientId, frame->requestId)) {
            payload = std::move(hit->payload);
            isError = hit->isError;
            replayed = true;
          } else {
            payload = dispatch(frame->opcode, frame->payload, isError);
            recordDedup(conn.clientId, frame->requestId, payload, isError);
          }
        } else {
          payload = dispatch(frame->opcode, frame->payload, isError);
        }
        std::uint16_t flags = kFlagEpoch;
        if (isError) {
          flags |= kFlagError;
        }
        if (replayed) {
          flags |= kFlagReplayed;
        }
        conn.sock.sendAll(
            encodeFrame(static_cast<Opcode>(frame->opcode), flags,
                        frame->requestId,
                        prependEpoch(epoch_.load(std::memory_order_relaxed),
                                     payload)),
            options_.sendTimeoutMs);
      }
    }
  } catch (const FrameError&) {
    // Poisoned stream: drop the connection; the client reconnects.
  } catch (const NetError&) {
    // Peer reset / send timeout: drop the connection.
  }
  // Signal the peer but do NOT release the fd here: stop() may still call
  // shutdownBoth() on this socket concurrently, and a close here could let
  // the kernel reuse the fd number for an unrelated socket in that window.
  // The fd is released when the Conn is destroyed, after this thread is
  // joined (reapFinishedConnections or stop).
  conn.sock.shutdownBoth();
  conn.done.store(true, std::memory_order_release);
}

Bytes Server::dispatch(std::uint8_t opcode, BytesView payload,
                       bool& isError) {
  isError = false;
  try {
    switch (static_cast<Opcode>(opcode)) {
      case Opcode::kPing:
        return {};
      case Opcode::kShutdown:
        requestStop();
        return {};
      case Opcode::kCreateTable:
      case Opcode::kDropTable:
      case Opcode::kGet:
      case Opcode::kPut:
      case Opcode::kErase:
      case Opcode::kPutBatch:
      case Opcode::kPartSize:
      case Opcode::kTableSize:
      case Opcode::kScanPart:
      case Opcode::kDrainPart:
      case Opcode::kClearPart:
        return handleStore(opcode, payload);
      case Opcode::kQueueCreate:
      case Opcode::kQueueDelete:
      case Opcode::kQueuePut:
      case Opcode::kQueueRead:
      case Opcode::kQueueClose:
      case Opcode::kQueueBacklog:
        return handleQueue(opcode, payload);
    }
    throw std::runtime_error("net::Server: unhandled opcode " +
                             std::to_string(opcode));
  } catch (const std::invalid_argument& e) {
    isError = true;
    return encodeError(ErrorKind::kInvalidArgument, e.what());
  } catch (const std::out_of_range& e) {
    isError = true;
    return encodeError(ErrorKind::kOutOfRange, e.what());
  } catch (const std::logic_error& e) {
    isError = true;
    return encodeError(ErrorKind::kLogic, e.what());
  } catch (const std::exception& e) {
    isError = true;
    return encodeError(ErrorKind::kRuntime, e.what());
  }
}

std::optional<Server::DedupEntry> Server::lookupDedup(
    std::uint64_t clientId, std::uint64_t requestId) {
  LockGuard lock(dedupMu_);
  auto it = dedup_.find(clientId);
  if (it == dedup_.end()) {
    return std::nullopt;
  }
  it->second.lastTouch = ++dedupTouch_;
  auto hit = it->second.byId.find(requestId);
  if (hit == it->second.byId.end()) {
    return std::nullopt;
  }
  return hit->second;
}

void Server::recordDedup(std::uint64_t clientId, std::uint64_t requestId,
                         const Bytes& payload, bool isError) {
  LockGuard lock(dedupMu_);
  auto [it, inserted] = dedup_.try_emplace(clientId);
  if (inserted && dedup_.size() > kDedupClients) {
    // Evict the least-recently-active other client (bounded scan: the
    // client cap is small).
    auto victim = dedup_.end();
    for (auto c = dedup_.begin(); c != dedup_.end(); ++c) {
      if (c->first == clientId) {
        continue;
      }
      if (victim == dedup_.end() ||
          c->second.lastTouch < victim->second.lastTouch) {
        victim = c;
      }
    }
    if (victim != dedup_.end()) {
      dedup_.erase(victim);
    }
  }
  ClientDedup& cd = it->second;
  cd.lastTouch = ++dedupTouch_;
  if (cd.byId.contains(requestId)) {
    return;  // Already recorded (a replayed re-send raced the record).
  }
  cd.byId.emplace(requestId, DedupEntry{payload, isError});
  cd.order.push_back(requestId);
  cd.bytes += payload.size();
  // FIFO eviction under both per-client caps.  An evicted entry degrades
  // a future replay into a re-execution; it never corrupts data.
  while (!cd.order.empty() && (cd.order.size() > kDedupEntriesPerClient ||
                               cd.bytes > kDedupBytesPerClient)) {
    const std::uint64_t oldest = cd.order.front();
    cd.order.pop_front();
    auto old = cd.byId.find(oldest);
    if (old != cd.byId.end()) {
      cd.bytes -= old->second.payload.size();
      cd.byId.erase(old);
    }
  }
}

Server::HostedTable Server::lookupHosted(const std::string& name) const {
  LockGuard lock(tablesMu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("net::Server: unknown table '" + name + "'");
  }
  return it->second;
}

std::shared_ptr<Server::HostedQueueSet> Server::lookupQueueSet(
    const std::string& name) const {
  LockGuard lock(queuesMu_);
  auto it = queues_.find(name);
  if (it == queues_.end()) {
    throw std::invalid_argument("net::Server: unknown queue set '" + name +
                                "'");
  }
  return it->second;
}

Bytes Server::handleStore(std::uint8_t opcode, BytesView payload) {
  ByteReader r(payload);
  const Bytes name{r.getBytes()};

  if (static_cast<Opcode>(opcode) == Opcode::kCreateTable) {
    const auto parts = static_cast<std::uint32_t>(r.getVarint());
    const bool ordered = r.getBool();
    r.getBool();  // ubiquitous: client-side concern (it forces parts == 1).
    if (parts == 0) {
      throw std::invalid_argument("net::Server: table '" + name +
                                  "' needs at least one part");
    }
    LockGuard lock(tablesMu_);
    if (tables_.contains(name)) {
      throw std::invalid_argument("net::Server: table '" + name +
                                  "' already exists");
    }
    kv::TableOptions hostedOptions;
    hostedOptions.parts = parts;
    hostedOptions.ordered = ordered;
    hostedOptions.partitioner =
        std::make_shared<const Partitioner>(parts, partPrefixHash);
    HostedTable hosted{options_.hosted->createTable(name, hostedOptions),
                       parts};
    tables_.emplace(name, hosted);
    return {};
  }

  if (static_cast<Opcode>(opcode) == Opcode::kDropTable) {
    LockGuard lock(tablesMu_);
    if (tables_.erase(name) > 0) {
      options_.hosted->dropTable(name);
    }
    return {};
  }

  if (static_cast<Opcode>(opcode) == Opcode::kTableSize) {
    const HostedTable hosted = lookupHosted(name);
    ByteWriter w;
    w.putFixed64(hosted.table->size());
    return w.take();
  }

  if (static_cast<Opcode>(opcode) == Opcode::kPutBatch) {
    const HostedTable hosted = lookupHosted(name);
    const std::uint64_t count = r.getVarint();
    std::vector<std::pair<kv::Key, kv::Value>> entries;
    entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint32_t entryPart = r.getFixed32();
      checkPart(entryPart, hosted.parts, name);
      Bytes key = prefixedKey(entryPart, r.getBytes());
      entries.emplace_back(std::move(key), Bytes{r.getBytes()});
    }
    hosted.table->putBatch(entries);
    return {};
  }

  // Every remaining store op addresses one explicit part.
  const HostedTable hosted = lookupHosted(name);
  const std::uint32_t part = r.getFixed32();
  checkPart(part, hosted.parts, name);

  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kGet: {
      const Bytes key = prefixedKey(part, r.getBytes());
      std::optional<kv::Value> value = hosted.table->get(key);
      ByteWriter w;
      w.putBool(value.has_value());
      if (value) {
        w.putBytes(*value);
      }
      return w.take();
    }
    case Opcode::kPut: {
      const Bytes key = prefixedKey(part, r.getBytes());
      hosted.table->put(key, r.getBytes());
      return {};
    }
    case Opcode::kErase: {
      const Bytes key = prefixedKey(part, r.getBytes());
      ByteWriter w;
      w.putBool(hosted.table->erase(key));
      return w.take();
    }
    case Opcode::kPartSize: {
      ByteWriter w;
      w.putFixed64(hosted.table->partSize(part));
      return w.take();
    }
    case Opcode::kScanPart: {
      CollectingConsumer consumer;
      hosted.table->enumeratePart(part, consumer);
      return consumer.take();
    }
    case Opcode::kDrainPart: {
      const auto pairs = hosted.table->drainPart(part);
      ByteWriter pairsW;
      for (const auto& [key, value] : pairs) {
        pairsW.putBytes(stripPartPrefix(key));
        pairsW.putBytes(value);
      }
      ByteWriter w(pairsW.size() + 10);
      w.putVarint(pairs.size());
      w.putRaw(pairsW.view());
      return w.take();
    }
    case Opcode::kClearPart: {
      ByteWriter w;
      w.putFixed64(hosted.table->clearPart(part));
      return w.take();
    }
    default:
      break;
  }
  throw std::runtime_error("net::Server: unhandled store opcode " +
                           std::to_string(opcode));
}

Bytes Server::handleQueue(std::uint8_t opcode, BytesView payload) {
  ByteReader r(payload);
  const Bytes name{r.getBytes()};

  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kQueueCreate: {
      const auto numQueues = static_cast<std::uint32_t>(r.getVarint());
      if (numQueues == 0) {
        throw std::invalid_argument("net::Server: queue set '" + name +
                                    "' needs at least one queue");
      }
      LockGuard lock(queuesMu_);
      if (queues_.contains(name)) {
        throw std::invalid_argument("net::Server: queue set '" + name +
                                    "' already exists");
      }
      queues_.emplace(name, std::make_shared<HostedQueueSet>(numQueues));
      return {};
    }
    case Opcode::kQueueDelete: {
      std::shared_ptr<HostedQueueSet> set;
      {
        LockGuard lock(queuesMu_);
        auto it = queues_.find(name);
        if (it != queues_.end()) {
          set = it->second;
          queues_.erase(it);
        }
      }
      if (set) {
        set->close();  // Wake readers of the deleted set.
      }
      return {};
    }
    case Opcode::kQueuePut: {
      auto set = lookupQueueSet(name);
      const std::uint32_t queue = r.getFixed32();
      ByteWriter w;
      w.putBool(set->queueAt(queue, name).push(Bytes{r.getBytes()}));
      return w.take();
    }
    case Opcode::kQueueRead: {
      auto set = lookupQueueSet(name);
      const std::uint32_t queue = r.getFixed32();
      const std::uint32_t waitMs =
          std::min(r.getFixed32(), options_.maxQueueWaitMs);
      const std::uint8_t mode = r.getU8();
      BlockingQueue<Bytes>& q = set->queueAt(queue, name);
      std::optional<Bytes> message;
      switch (mode) {
        case 0:
          message = q.popFor(std::chrono::milliseconds(waitMs));
          break;
        case 1:
          message = q.tryPop();
          break;
        case 2:
          message = q.trySteal();
          break;
        default:
          throw std::invalid_argument("net::Server: bad queue-read mode " +
                                      std::to_string(mode));
      }
      ByteWriter w;
      if (message) {
        w.putU8(0);  // Message follows.
        w.putBytes(*message);
      } else if (q.closed() && q.empty()) {
        w.putU8(2);  // Closed and drained: the client stops waiting.
      } else {
        w.putU8(1);  // Empty for now; the client may poll again.
      }
      return w.take();
    }
    case Opcode::kQueueClose: {
      // Idempotent by construction: close on a closed set is a no-op, and
      // an unknown name (already deleted) is not an error.
      std::shared_ptr<HostedQueueSet> set;
      {
        LockGuard lock(queuesMu_);
        auto it = queues_.find(name);
        if (it != queues_.end()) {
          set = it->second;
        }
      }
      if (set) {
        set->close();
      }
      return {};
    }
    case Opcode::kQueueBacklog: {
      auto set = lookupQueueSet(name);
      std::uint64_t total = 0;
      for (const auto& q : set->queues) {
        total += q->size();
      }
      ByteWriter w;
      w.putFixed64(total);
      return w.take();
    }
    default:
      break;
  }
  throw std::runtime_error("net::Server: unhandled queue opcode " +
                           std::to_string(opcode));
}

}  // namespace ripple::net
