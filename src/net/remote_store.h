// ripple::net — RemoteStore: the K/V store SPI over the wire transport
// (DESIGN.md §11).
//
// A RemoteStore is a *driver-side* view of data held by N net::Server
// processes.  The division of labor follows the paper's architecture: the
// servers are portable substrate (dumb byte-faithful storage + queues),
// while everything the SPI calls "mobile code" — PairConsumer /
// PartConsumer bodies, runInParts closures, queue workers — executes in
// the driver process on per-location SerialExecutors that mirror
// PartitionedStore's containers.  Part placement is decided entirely
// client-side: a PlacementMap shards parts across the endpoints
// (part % servers), and every wire request carries its explicit part
// index, so consistent partitioning (shared Partitioner instances) keeps
// exactly the same meaning it has in-process.
//
// Conformance posture: RemoteStore passes the same 32-contract SPI suite
// as the in-process backends, bare and fault-decorated.  Notable
// contract carriers:
//   * drainPart order — the server's per-part key prefix preserves the
//     client's byte-lexicographic order, so drains are sorted end to end;
//   * read-only sealing — enforced client-side via Table::checkWritable
//     before any bytes are sent;
//   * error types — server exceptions cross the wire with an ErrorKind
//     tag and rethrow as the same std exception types;
//   * local/remote accounting — a thread adopted into a part's location
//     (adoptPartThread, or mobile code running on that location's
//     executor) counts ops on co-placed parts as localOps.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "fault/retry.h"
#include "kvstore/store_factory.h"
#include "kvstore/table.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "net/client.h"
#include "net/socket.h"

namespace ripple {
class SerialExecutor;
}  // namespace ripple

namespace ripple::net {

class Server;

/// part → endpoint index.  Round-robin (part % servers): co-placed parts
/// of consistently-partitioned tables land on the same server, and every
/// server hosts an even share of parts regardless of table part counts.
class PlacementMap {
 public:
  explicit PlacementMap(std::size_t endpoints) : endpoints_(endpoints) {
    if (endpoints == 0) {
      throw std::invalid_argument("PlacementMap: need at least one endpoint");
    }
  }

  [[nodiscard]] std::size_t endpointOf(std::uint32_t part) const {
    return part % endpoints_;
  }

  [[nodiscard]] std::size_t endpointCount() const { return endpoints_; }

 private:
  std::size_t endpoints_;
};

class RemoteTable;

/// Wire-timeout tuning for makeRemoteStoreFromEnv.  Zero fields fall back
/// to the RIPPLE_NET_* environment, then to the built-in defaults.
struct NetTuning {
  /// Connect + per-exchange send/recv bound (RIPPLE_NET_TIMEOUT_MS).
  int timeoutMs = 0;
  /// Redial budget bridging a server restart (RIPPLE_NET_REDIAL_MS).
  int redialMs = 0;
  /// Server-side cap on one queue wait AND the client-side blocking wait
  /// slice (RIPPLE_NET_QUEUE_WAIT_MS).
  int queueWaitMs = 0;
};

/// Strict env-int parsing (same discipline as resolveThreads): nullopt
/// when `name` is unset; warns and returns nullopt when the value is not
/// an integer in [minVal, maxVal].
[[nodiscard]] std::optional<int> parseEnvMs(const char* name, int minVal,
                                            int maxVal);

/// Resolve a NetTuning: explicit nonzero fields win, then the RIPPLE_NET_*
/// environment, then zeros (meaning "keep built-in defaults").
[[nodiscard]] NetTuning resolveNetTuning(NetTuning tuning);

class RemoteStore : public kv::KVStore,
                    public std::enable_shared_from_this<RemoteStore> {
 public:
  struct Options {
    Client::Options client;

    /// Client-side executor domains hosting mobile code (the analogue of
    /// PartitionedStore's containers).  Part p runs at location
    /// p % locations.
    std::uint32_t locations = 4;

    /// Bound on one client-side blocking queue wait, ms.  Should mirror
    /// the hosting servers' Options::maxQueueWaitMs (the server caps any
    /// longer request at its own bound anyway).
    std::uint32_t queueWaitSliceMs = 250;
  };

  static std::shared_ptr<RemoteStore> create(Options options);

  ~RemoteStore() override;

  RemoteStore(const RemoteStore&) = delete;
  RemoteStore& operator=(const RemoteStore&) = delete;

  kv::TablePtr createTable(const std::string& name,
                           kv::TableOptions options) override;
  kv::TablePtr lookupTable(const std::string& name) override;
  void dropTable(const std::string& name) override;

  void runInParts(const kv::Table& placement,
                  const std::function<void(std::uint32_t)>& fn) override;
  void runInPart(const kv::Table& placement, std::uint32_t part,
                 const std::function<void()>& fn) override;
  void postToPart(const kv::Table& placement, std::uint32_t part,
                  std::function<void()> fn) override;
  std::shared_ptr<void> adoptPartThread(const kv::Table& placement,
                                        std::uint32_t part) override;

  kv::StoreMetrics& metrics() override { return metrics_; }
  [[nodiscard]] const char* backendName() const override { return "remote"; }

  [[nodiscard]] Client& client() { return *client_; }
  [[nodiscard]] const PlacementMap& placement() const { return placement_; }
  [[nodiscard]] std::uint32_t locationCount() const;
  [[nodiscard]] std::uint32_t queueWaitSliceMs() const {
    return options_.queueWaitSliceMs;
  }

  /// Keep an implicit in-process server (and its hosted backend) alive
  /// for this store's lifetime; released at shutdown after the client
  /// pool closes.
  void holdKeepalive(std::shared_ptr<void> keepalive);

  /// Drain client-side executors and close pooled connections.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// True when the calling thread is adopted into (or running mobile code
  /// at) `location` of THIS store — the localOps accounting predicate.
  [[nodiscard]] bool onLocation(std::uint32_t location) const;

  /// Location hosting `part`.
  [[nodiscard]] std::uint32_t locationOf(std::uint32_t part) const;

 private:
  explicit RemoteStore(Options options);

  /// Client restart hook (DESIGN.md §11): after `endpoint` restarted with
  /// empty in-memory state, re-issue kCreateTable for every registered
  /// table so engine-level recovery has somewhere to restore data into.
  /// Snapshots the registry under tablesMu_, then does the wire calls
  /// UNLOCKED; "already exists" answers are tolerated (another thread, or
  /// a surviving creation from before the snapshot, won the race).
  void reseedEndpoint(std::size_t endpoint);

  SerialExecutor& executorAt(std::uint32_t location);

  /// Wrap `fn` so it runs with the calling thread marked as located at
  /// `location` (restores the previous mark afterwards).
  std::function<void()> atLocation(std::uint32_t location,
                                   std::function<void()> fn);

  std::shared_ptr<void> keepalive_;  // Declared first: destroyed last.
  Options options_;
  std::shared_ptr<Client> client_;
  PlacementMap placement_;
  std::vector<std::unique_ptr<SerialExecutor>> locations_;
  bool shutdown_ = false;
  RankedMutex<LockRank::kNetLifecycle> lifecycleMu_;

  // A STORE registry rank, not a net rank: driver-side RemoteStore is a
  // kv backend, and callers (e.g. table-backed queue sets) nest it under
  // queue-plane locks exactly like the local backends.  Sound because no
  // wire call ever runs under this lock (see createTable/dropTable).
  RankedMutex<LockRank::kStoreTableMap> tablesMu_;
  std::unordered_map<std::string, kv::TablePtr> tables_
      RIPPLE_GUARDED_BY(tablesMu_);
  kv::StoreMetrics metrics_;

  friend class RemoteTable;
};

using RemoteStorePtr = std::shared_ptr<RemoteStore>;

/// Build a RemoteStore from the environment (the `--store remote` /
/// `RIPPLE_STORE=remote` path used by kv::makeStore):
///   * RIPPLE_REMOTE_ENDPOINTS="host:port,host:port" — connect to running
///     servers (scripts/bench_multiproc.sh sets this);
///   * unset — spin an implicit in-process loopback server (hosted
///     backend from RIPPLE_REMOTE_HOSTED, default "partitioned";
///     RIPPLE_REMOTE_SERVERS loopback server count, default 1) kept
///     alive by the returned store.
/// `containers` sizes both the client-side locations and any implicit
/// hosted backend.  `tuning` (then the RIPPLE_NET_* environment) overrides
/// the wire timeouts.  Two overloads, not a default argument: the 1-arg
/// form is also forward-declared by kvstore/store_factory.cpp, which must
/// stay include-acyclic with the net layer.
[[nodiscard]] kv::KVStorePtr makeRemoteStoreFromEnv(std::uint32_t containers);
[[nodiscard]] kv::KVStorePtr makeRemoteStoreFromEnv(std::uint32_t containers,
                                                    NetTuning tuning);

/// Test/bench helper: spin `servers` in-process loopback servers (each
/// hosting a fresh `hostedBackend` store) and return a RemoteStore wired
/// to them.  The servers live exactly as long as the returned store.
struct LoopbackOptions {
  std::size_t servers = 1;
  kv::StoreBackend hostedBackend = kv::StoreBackend::kPartitioned;
  std::uint32_t hostedContainers = 4;
  std::uint32_t locations = 4;
  fault::RetryPolicy retry{};
  fault::FaultInjectorPtr injector;

  /// Wire timeouts; zero = client/server defaults.
  int connectTimeoutMs = 0;
  int requestTimeoutMs = 0;
  int redialTimeoutMs = 0;
  std::uint32_t maxQueueWaitMs = 0;  // Server cap AND client wait slice.

  /// Dedup identity for the client (0 mints a process-unique id).
  std::uint64_t clientId = 0;

  /// Test-only connection chaos, passed through to Client::Options.
  ChaosHook chaos;
};

[[nodiscard]] RemoteStorePtr makeLoopbackStore(LoopbackOptions options = {});

}  // namespace ripple::net
