// Incremental single-source shortest paths on a time-varying undirected
// graph — the paper's §V-C evaluation pair.
//
// Two variants, both on the same engine:
//  * selective enablement — each vertex caches the distance value most
//    recently received from each neighbor; distance messages carry the
//    sender's id and are NOT combined.  After a batch of structural
//    changes only the affected vertices are enabled, and updates ripple
//    outward exactly as far as they must.  "Extra bookkeeping to support
//    incrementality."
//  * full scan — MapReduce-style: each update wave is a series of
//    two-step jobs, each enabling EVERY vertex, shuffling full state
//    plus distance messages, and writing the whole state table back; a
//    "changed" aggregator drives an external loop until quiescence.  If
//    the batch includes edge deletions the update takes two waves: first
//    invalidate (raise to +inf distances that critically depended on a
//    removed edge), then relax.

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ebsp/engine.h"
#include "graph/graph_gen.h"

namespace ripple::apps {

/// Distance value for "unreachable".
inline constexpr std::int32_t kSsspInf = std::numeric_limits<std::int32_t>::max();

struct SsspOptions {
  graph::VertexId source = 0;
  std::string stateTable = "sssp_state";
  std::uint32_t parts = 6;

  /// Use the selective-enablement variant (false = full scan).
  bool selective = true;

  /// Distances >= cap are treated as +inf (bounds the count-to-infinity
  /// behaviour of distance increases through cycles).  Set to the vertex
  /// count by the driver.
  std::int32_t distanceCap = kSsspInf;
};

/// Accumulated cost of one update (initialization or one change batch).
struct SsspUpdateStats {
  int jobs = 0;            // EBSP jobs run (full-scan waves iterate).
  std::uint64_t steps = 0;
  std::uint64_t invocations = 0;
  std::uint64_t messages = 0;
  double elapsedSeconds = 0;
  double virtualMakespan = 0;

  void accumulate(const ebsp::JobResult& r);
};

/// Maintains the distance annotations.  Usage:
///   SsspDriver driver(engine, options);
///   driver.loadGraph(g);
///   driver.initialize();             // BFS from the source
///   driver.applyBatch(changes);      // repeatedly
///   auto dist = driver.distances(n); // kSsspInf = unreachable
class SsspDriver {
 public:
  SsspDriver(ebsp::Engine& engine, SsspOptions options);

  /// Create and populate the state table from an undirected graph.
  void loadGraph(const graph::Graph& graph);

  /// Compute the initial annotations (all vertices start at +inf; the
  /// source's update ripples out).
  SsspUpdateStats initialize();

  /// Apply a batch of primitive changes and update the annotations.
  /// No-op changes (per the paper, batches are generated "without regard
  /// to which already exist") are detected and skipped.
  SsspUpdateStats applyBatch(const std::vector<graph::GraphChange>& batch);

  /// Read back all distance annotations (kSsspInf = unreachable).
  [[nodiscard]] std::vector<std::int32_t> distances(std::size_t vertexCount);

  [[nodiscard]] const SsspOptions& options() const { return options_; }

 private:
  class Impl;
  SsspUpdateStats runSelective(
      const std::vector<graph::GraphChange>& effective, bool initialize);
  SsspUpdateStats runFullScan(bool hadDeletions);

  ebsp::Engine& engine_;
  SsspOptions options_;
  kv::TablePtr table_;
};

}  // namespace ripple::apps
