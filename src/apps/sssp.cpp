#include "apps/sssp.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "ebsp/job.h"
#include "kvstore/store_util.h"

namespace ripple::apps {

namespace {

using graph::GraphChange;
using graph::VertexId;

constexpr const char* kChangedAggregator = "changed";

std::int32_t safePlusOne(std::int32_t d, std::int32_t cap) {
  if (d >= cap || d == kSsspInf) {
    return kSsspInf;
  }
  const std::int32_t next = d + 1;
  return next >= cap ? kSsspInf : next;
}

// ---------------------------------------------------------------------
// Selective-enablement variant.
// ---------------------------------------------------------------------

/// Vertex record: neighbors plus the distance value most recently
/// received from each (parallel arrays), and the vertex's own distance.
struct SelRecord {
  std::vector<VertexId> nbr;
  std::vector<std::int32_t> nbrDist;
  std::int32_t dist = kSsspInf;

  void encodeTo(ByteWriter& w) const {
    w.putVarint(nbr.size());
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      w.putVarint(nbr[i]);
      w.putVarintSigned(nbrDist[i]);
    }
    w.putVarintSigned(dist);
  }

  static SelRecord decodeFrom(ByteReader& r) {
    SelRecord rec;
    const auto n = static_cast<std::size_t>(r.getVarint());
    rec.nbr.reserve(n);
    rec.nbrDist.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      rec.nbr.push_back(static_cast<VertexId>(r.getVarint()));
      rec.nbrDist.push_back(static_cast<std::int32_t>(r.getVarintSigned()));
    }
    rec.dist = static_cast<std::int32_t>(r.getVarintSigned());
    return rec;
  }

  [[nodiscard]] std::int32_t minNeighborDist() const {
    std::int32_t best = kSsspInf;
    for (const std::int32_t d : nbrDist) {
      best = std::min(best, d);
    }
    return best;
  }
};

/// Distance message: carries the sender's id (the job's combiner "does
/// not combine these messages").
struct SelMsg {
  VertexId sender = 0;
  std::int32_t dist = kSsspInf;

  void encodeTo(ByteWriter& w) const {
    w.putVarint(sender);
    w.putVarintSigned(dist);
  }

  static SelMsg decodeFrom(ByteReader& r) {
    SelMsg m;
    m.sender = static_cast<VertexId>(r.getVarint());
    m.dist = static_cast<std::int32_t>(r.getVarintSigned());
    return m;
  }
};

class SelectiveCompute : public ebsp::Compute<VertexId, SelRecord, SelMsg> {
 public:
  SelectiveCompute(VertexId source, std::int32_t cap)
      : source_(source), cap_(cap) {}

  bool compute(Context& ctx) override {
    auto rec = ctx.readState();
    if (!rec) {
      return false;  // Message to a vertex deleted in this batch.
    }
    bool stateChanged = false;
    for (const SelMsg& m : ctx.inputMessages()) {
      for (std::size_t i = 0; i < rec->nbr.size(); ++i) {
        if (rec->nbr[i] == m.sender) {
          if (rec->nbrDist[i] != m.dist) {
            rec->nbrDist[i] = m.dist;
            stateChanged = true;
          }
          break;
        }
      }
    }
    const std::int32_t nd = ctx.key() == source_
                                ? 0
                                : safePlusOne(rec->minNeighborDist(), cap_);
    if (nd != rec->dist) {
      rec->dist = nd;
      stateChanged = true;
      SelMsg update;
      update.sender = ctx.key();
      update.dist = nd;
      for (const VertexId v : rec->nbr) {
        ctx.sendMessage(v, update);
      }
    }
    if (stateChanged) {
      ctx.writeState(*rec);
    }
    return false;
  }

 private:
  VertexId source_;
  std::int32_t cap_;
};

class SelectiveJob : public ebsp::Job<VertexId, SelRecord, SelMsg> {
 public:
  SelectiveJob(const SsspOptions& options, std::vector<Bytes> seeds)
      : options_(options), seeds_(std::move(seeds)) {}

  std::vector<std::string> stateTableNames() const override {
    return {options_.stateTable};
  }

  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<SelectiveCompute>(options_.source,
                                              options_.distanceCap);
  }

  std::string referenceTable() const override { return options_.stateTable; }

  std::vector<ebsp::RawLoaderPtr> loaders() const override {
    auto loader = std::make_shared<ebsp::VectorLoader>();
    for (const Bytes& key : seeds_) {
      loader->enable(key);
    }
    return {loader};
  }

 private:
  const SsspOptions& options_;
  std::vector<Bytes> seeds_;
};

// ---------------------------------------------------------------------
// Full-scan (MapReduce-style) variant.
// ---------------------------------------------------------------------

struct FullRecord {
  std::vector<VertexId> nbr;
  std::int32_t dist = kSsspInf;

  void encodeTo(ByteWriter& w) const {
    w.putVarint(nbr.size());
    for (const VertexId v : nbr) {
      w.putVarint(v);
    }
    w.putVarintSigned(dist);
  }

  static FullRecord decodeFrom(ByteReader& r) {
    FullRecord rec;
    const auto n = static_cast<std::size_t>(r.getVarint());
    rec.nbr.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      rec.nbr.push_back(static_cast<VertexId>(r.getVarint()));
    }
    rec.dist = static_cast<std::int32_t>(r.getVarintSigned());
    return rec;
  }
};

/// Full-scan message: a plain distance, or the self-addressed full state
/// (which carries "the current distance value and the minimum distance
/// value heard from a neighbor" as it is combined).
struct FullMsg {
  enum class Kind : std::uint8_t { kDist = 0, kSelf = 1 };

  Kind kind = Kind::kDist;
  std::int32_t dist = kSsspInf;   // kDist: sender distance; kSelf: own.
  std::int32_t minIn = kSsspInf;  // kSelf: min combined neighbor distance.
  std::vector<VertexId> nbr;      // kSelf.

  void encodeTo(ByteWriter& w) const {
    w.putU8(static_cast<std::uint8_t>(kind));
    w.putVarintSigned(dist);
    if (kind == Kind::kSelf) {
      w.putVarintSigned(minIn);
      w.putVarint(nbr.size());
      for (const VertexId v : nbr) {
        w.putVarint(v);
      }
    }
  }

  static FullMsg decodeFrom(ByteReader& r) {
    FullMsg m;
    m.kind = static_cast<Kind>(r.getU8());
    m.dist = static_cast<std::int32_t>(r.getVarintSigned());
    if (m.kind == Kind::kSelf) {
      m.minIn = static_cast<std::int32_t>(r.getVarintSigned());
      const auto n = static_cast<std::size_t>(r.getVarint());
      m.nbr.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        m.nbr.push_back(static_cast<VertexId>(r.getVarint()));
      }
    }
    return m;
  }
};

class FullScanCompute : public ebsp::Compute<VertexId, FullRecord, FullMsg> {
 public:
  FullScanCompute(VertexId source, std::int32_t cap, bool invalidateWave)
      : source_(source), cap_(cap), invalidate_(invalidateWave) {}

  bool compute(Context& ctx) override {
    if (ctx.stepNum() % 2 == 1) {
      // Map-like step: read the table, shuffle messages.
      auto rec = ctx.readState();
      if (!rec) {
        return false;
      }
      FullMsg self;
      self.kind = FullMsg::Kind::kSelf;
      self.dist = rec->dist;
      self.nbr = rec->nbr;
      ctx.sendMessage(ctx.key(), self);
      FullMsg update;
      update.kind = FullMsg::Kind::kDist;
      update.dist = rec->dist;
      for (const VertexId v : rec->nbr) {
        ctx.sendMessage(v, update);
      }
      return false;
    }

    // Reduce-like step: the combiner has produced one message holding the
    // full state plus the min incoming distance.
    const auto& messages = ctx.inputMessages();
    if (messages.size() != 1 || messages[0].kind != FullMsg::Kind::kSelf) {
      // A vertex that only received neighbor distances (it was deleted
      // mid-batch) — nothing to update.
      return false;
    }
    const FullMsg& in = messages[0];
    const std::int32_t prev = in.dist;
    std::int32_t nd;
    if (ctx.key() == source_) {
      nd = 0;
    } else if (invalidate_) {
      // Keep the previous annotation only if some remaining neighbor
      // justifies a value <= prev; otherwise it critically depended on a
      // removed edge.
      nd = (safePlusOne(in.minIn, cap_) <= prev) ? prev : kSsspInf;
    } else {
      nd = std::min(prev, safePlusOne(in.minIn, cap_));
    }
    if (nd != prev) {
      ctx.aggregate(kChangedAggregator, std::uint64_t{1});
    }
    FullRecord rec;
    rec.nbr = in.nbr;
    rec.dist = nd;
    ctx.writeState(rec);
    return false;
  }

  /// "This job has a combiner with an obvious implementation": distances
  /// fold by min; a distance folds into the self message's minIn.
  FullMsg combineMessages(const VertexId&, const FullMsg& a,
                          const FullMsg& b) override {
    if (a.kind == FullMsg::Kind::kDist && b.kind == FullMsg::Kind::kDist) {
      FullMsg m = a;
      m.dist = std::min(a.dist, b.dist);
      return m;
    }
    if (a.kind == FullMsg::Kind::kSelf && b.kind == FullMsg::Kind::kSelf) {
      throw std::logic_error("SSSP(full): two self messages for one vertex");
    }
    FullMsg m = a.kind == FullMsg::Kind::kSelf ? a : b;
    const FullMsg& d = a.kind == FullMsg::Kind::kDist ? a : b;
    m.minIn = std::min(m.minIn, d.dist);
    return m;
  }

  /// In-place fold avoiding neighbor-array copies per distance message.
  void combineMessagesInto(const VertexId&, FullMsg& acc,
                           const FullMsg& next) override {
    if (next.kind == FullMsg::Kind::kSelf) {
      if (acc.kind == FullMsg::Kind::kSelf) {
        throw std::logic_error(
            "SSSP(full): two self messages for one vertex");
      }
      const std::int32_t incoming = acc.dist;
      acc = next;
      acc.minIn = std::min(acc.minIn, incoming);
      return;
    }
    if (acc.kind == FullMsg::Kind::kSelf) {
      acc.minIn = std::min(acc.minIn, next.dist);
    } else {
      acc.dist = std::min(acc.dist, next.dist);
    }
  }

  bool hasMessageCombiner() const override { return true; }

 private:
  VertexId source_;
  std::int32_t cap_;
  bool invalidate_;
};

class FullScanJob : public ebsp::Job<VertexId, FullRecord, FullMsg> {
 public:
  FullScanJob(const SsspOptions& options, kv::TablePtr table,
              bool invalidateWave)
      : options_(options), table_(std::move(table)),
        invalidate_(invalidateWave) {}

  std::vector<std::string> stateTableNames() const override {
    return {options_.stateTable};
  }

  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<FullScanCompute>(options_.source,
                                             options_.distanceCap,
                                             invalidate_);
  }

  std::vector<ebsp::AggregatorDecl> aggregators() const override {
    return {{kChangedAggregator, ebsp::sumAggregator<std::uint64_t>()}};
  }

  std::string referenceTable() const override { return options_.stateTable; }

  std::vector<ebsp::RawLoaderPtr> loaders() const override {
    // Full scan: enable every vertex.
    kv::TablePtr table = table_;
    return {std::make_shared<ebsp::FunctionLoader>(
        [table](ebsp::LoaderContext& ctx) {
          for (auto& [k, v] : kv::readAll(*table)) {
            ctx.enableComponent(k);
          }
        })};
  }

 private:
  const SsspOptions& options_;
  kv::TablePtr table_;
  bool invalidate_;
};

}  // namespace

void SsspUpdateStats::accumulate(const ebsp::JobResult& r) {
  ++jobs;
  steps += static_cast<std::uint64_t>(r.steps);
  invocations += r.metrics.computeInvocations;
  messages += r.metrics.messagesSent;
  elapsedSeconds += r.elapsedSeconds;
  virtualMakespan += r.virtualMakespan;
}

SsspDriver::SsspDriver(ebsp::Engine& engine, SsspOptions options)
    : engine_(engine), options_(std::move(options)) {}

void SsspDriver::loadGraph(const graph::Graph& graph) {
  kv::TableOptions tableOptions;
  tableOptions.parts = options_.parts;
  table_ = engine_.store()->createTable(options_.stateTable,
                                        std::move(tableOptions));
  if (options_.distanceCap == kSsspInf) {
    options_.distanceCap =
        static_cast<std::int32_t>(graph.vertexCount()) + 1;
  }
  std::vector<std::pair<kv::Key, kv::Value>> batch;
  batch.reserve(graph.vertexCount());
  for (VertexId u = 0; u < graph.vertexCount(); ++u) {
    if (options_.selective) {
      SelRecord rec;
      rec.nbr = graph.adj[u];
      rec.nbrDist.assign(rec.nbr.size(), kSsspInf);
      batch.emplace_back(encodeToBytes(u), encodeToBytes(rec));
    } else {
      FullRecord rec;
      rec.nbr = graph.adj[u];
      batch.emplace_back(encodeToBytes(u), encodeToBytes(rec));
    }
  }
  table_->putBatch(batch);
}

SsspUpdateStats SsspDriver::initialize() {
  if (options_.selective) {
    return runSelective({}, /*initialize=*/true);
  }
  return runFullScan(/*hadDeletions=*/false);
}

SsspUpdateStats SsspDriver::applyBatch(
    const std::vector<GraphChange>& batch) {
  if (!table_) {
    throw std::logic_error("SsspDriver: loadGraph first");
  }
  // Apply structural changes to the state table from the client side,
  // remembering the endpoints of effective (non-no-op) changes.
  std::vector<GraphChange> effective;
  bool hadDeletions = false;

  auto structural = [&](auto decode, auto encode) {
    for (const GraphChange& c : batch) {
      auto rawU = table_->get(encodeToBytes(c.u));
      auto rawV = table_->get(encodeToBytes(c.v));
      if (!rawU || !rawV) {
        continue;
      }
      auto recU = decode(*rawU);
      auto recV = decode(*rawV);
      const auto itU =
          std::find(recU.nbr.begin(), recU.nbr.end(), c.v);
      const bool exists = itU != recU.nbr.end();
      if (c.add == exists) {
        continue;  // No-op.
      }
      if (c.add) {
        encode(recU, recV, c, /*add=*/true);
      } else {
        encode(recU, recV, c, /*add=*/false);
        hadDeletions = true;
      }
      table_->put(encodeToBytes(c.u), encodeToBytes(recU));
      table_->put(encodeToBytes(c.v), encodeToBytes(recV));
      effective.push_back(c);
    }
  };

  if (options_.selective) {
    structural(
        [](const kv::Value& v) { return decodeFromBytes<SelRecord>(v); },
        [&](SelRecord& u, SelRecord& v, const GraphChange& c, bool add) {
          if (add) {
            u.nbr.push_back(c.v);
            u.nbrDist.push_back(v.dist);
            v.nbr.push_back(c.u);
            v.nbrDist.push_back(u.dist);
          } else {
            const auto iu = std::find(u.nbr.begin(), u.nbr.end(), c.v) -
                            u.nbr.begin();
            u.nbr.erase(u.nbr.begin() + iu);
            u.nbrDist.erase(u.nbrDist.begin() + iu);
            const auto iv = std::find(v.nbr.begin(), v.nbr.end(), c.u) -
                            v.nbr.begin();
            v.nbr.erase(v.nbr.begin() + iv);
            v.nbrDist.erase(v.nbrDist.begin() + iv);
          }
        });
    return runSelective(effective, /*initialize=*/false);
  }

  structural(
      [](const kv::Value& v) { return decodeFromBytes<FullRecord>(v); },
      [&](FullRecord& u, FullRecord& v, const GraphChange& c, bool add) {
        if (add) {
          u.nbr.push_back(c.v);
          v.nbr.push_back(c.u);
        } else {
          u.nbr.erase(std::find(u.nbr.begin(), u.nbr.end(), c.v));
          v.nbr.erase(std::find(v.nbr.begin(), v.nbr.end(), c.u));
        }
      });
  if (effective.empty()) {
    return {};
  }
  return runFullScan(hadDeletions);
}

SsspUpdateStats SsspDriver::runSelective(
    const std::vector<GraphChange>& effective, bool initialize) {
  std::unordered_set<VertexId> seedSet;
  if (initialize) {
    seedSet.insert(options_.source);
  } else {
    for (const GraphChange& c : effective) {
      seedSet.insert(c.u);
      seedSet.insert(c.v);
    }
  }
  std::vector<Bytes> seeds;
  seeds.reserve(seedSet.size());
  for (const VertexId v : seedSet) {
    seeds.push_back(encodeToBytes(v));
  }

  SsspUpdateStats stats;
  if (seeds.empty()) {
    return stats;
  }
  SelectiveJob job(options_, std::move(seeds));
  stats.accumulate(ebsp::runJob(engine_, job));
  return stats;
}

SsspUpdateStats SsspDriver::runFullScan(bool hadDeletions) {
  SsspUpdateStats stats;
  auto runWave = [&](bool invalidate) {
    for (;;) {
      FullScanJob job(options_, table_, invalidate);
      ebsp::JobResult r = ebsp::runJob(engine_, job);
      stats.accumulate(r);
      const auto changed = r.aggregate<std::uint64_t>(kChangedAggregator);
      if (!changed || *changed == 0) {
        break;
      }
    }
  };
  // "If the batch of changes includes no edge deletions then the solution
  // is updated by one wave of breadth-first updates, otherwise it is two."
  if (hadDeletions) {
    runWave(/*invalidate=*/true);
  }
  runWave(/*invalidate=*/false);
  return stats;
}

std::vector<std::int32_t> SsspDriver::distances(std::size_t vertexCount) {
  std::vector<std::int32_t> dist(vertexCount, kSsspInf);
  if (options_.selective) {
    kv::TypedTable<VertexId, SelRecord> typed(table_);
    typed.forEach([&dist](const VertexId& u, const SelRecord& rec) {
      if (u < dist.size()) {
        dist[u] = rec.dist;
      }
      return true;
    });
  } else {
    kv::TypedTable<VertexId, FullRecord> typed(table_);
    typed.forEach([&dist](const VertexId& u, const FullRecord& rec) {
      if (u < dist.size()) {
        dist[u] = rec.dist;
      }
      return true;
    });
  }
  return dist;
}

}  // namespace ripple::apps
