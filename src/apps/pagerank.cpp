#include "apps/pagerank.h"

#include <stdexcept>

#include "ebsp/job.h"
#include "kvstore/store_util.h"

namespace ripple::apps {

namespace {

using graph::VertexId;

constexpr const char* kSinkAggregator = "sink";

/// BSP message: either a rank contribution along an edge, or the
/// self-addressed structure+rank message.  The combiner folds
/// contributions into each other and into the self message's accumulator,
/// so each component receives exactly one combined message per step.
struct PrMsg {
  enum class Kind : std::uint8_t { kContrib = 0, kSelf = 1 };

  Kind kind = Kind::kContrib;
  double contrib = 0;  // Contribution value / accumulated contributions.
  double rank = 0;     // kSelf: rank last computed.
  std::vector<VertexId> edges;  // kSelf: structure.

  void encodeTo(ByteWriter& w) const {
    w.putU8(static_cast<std::uint8_t>(kind));
    w.putDouble(contrib);
    if (kind == Kind::kSelf) {
      w.putDouble(rank);
      w.putVarint(edges.size());
      for (const VertexId e : edges) {
        w.putVarint(e);
      }
    }
  }

  static PrMsg decodeFrom(ByteReader& r) {
    PrMsg m;
    m.kind = static_cast<Kind>(r.getU8());
    m.contrib = r.getDouble();
    if (m.kind == Kind::kSelf) {
      m.rank = r.getDouble();
      const auto n = static_cast<std::size_t>(r.getVarint());
      m.edges.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        m.edges.push_back(static_cast<VertexId>(r.getVarint()));
      }
    }
    return m;
  }
};

PrMsg combinePrMsgs(const PrMsg& a, const PrMsg& b) {
  if (a.kind == PrMsg::Kind::kContrib && b.kind == PrMsg::Kind::kContrib) {
    PrMsg m = a;
    m.contrib += b.contrib;
    return m;
  }
  if (a.kind == PrMsg::Kind::kSelf && b.kind == PrMsg::Kind::kSelf) {
    throw std::logic_error("PageRank: two self messages for one vertex");
  }
  PrMsg m = a.kind == PrMsg::Kind::kSelf ? a : b;
  const PrMsg& contrib = a.kind == PrMsg::Kind::kContrib ? a : b;
  m.contrib += contrib.contrib;
  return m;
}

struct FoldedInput {
  bool hasSelf = false;
  double accum = 0;
  double rank = 0;
  std::vector<VertexId> edges;
};

FoldedInput foldInput(const std::vector<PrMsg>& messages) {
  FoldedInput in;
  for (const PrMsg& m : messages) {
    if (m.kind == PrMsg::Kind::kSelf) {
      if (in.hasSelf) {
        throw std::logic_error("PageRank: duplicate self message");
      }
      in.hasSelf = true;
      in.rank = m.rank;
      in.edges = m.edges;
    }
    in.accum += m.contrib;
  }
  return in;
}

class PrComputeBase : public ebsp::Compute<VertexId, PrRecord, PrMsg> {
 public:
  PrComputeBase(std::uint64_t vertices, double damping, int iterations)
      : n_(static_cast<double>(vertices)), d_(damping),
        iterations_(iterations) {}

  PrMsg combineMessages(const VertexId&, const PrMsg& a,
                        const PrMsg& b) override {
    return combinePrMsgs(a, b);
  }

  /// In-place fold: contributions accumulate without ever copying the
  /// structure-carrying self message (the paper's Java combiner mutates
  /// objects; copying the hub vertices' edge arrays per contribution
  /// would be quadratic in hub degree).
  void combineMessagesInto(const VertexId&, PrMsg& acc,
                           const PrMsg& next) override {
    if (next.kind == PrMsg::Kind::kSelf) {
      if (acc.kind == PrMsg::Kind::kSelf) {
        throw std::logic_error("PageRank: two self messages for one vertex");
      }
      const double contrib = acc.contrib;
      acc = next;  // One structure copy per key per combining run.
      acc.contrib += contrib;
      return;
    }
    acc.contrib += next.contrib;
  }

  bool hasMessageCombiner() const override { return true; }

 protected:
  /// Send this iteration's outputs: rank contributions along edges (or
  /// the sink-aggregator contribution for dangling vertices) plus the
  /// self-addressed structure+rank message.
  void emitRound(Context& ctx, const std::vector<VertexId>& edges,
                 double rank) {
    if (!edges.empty()) {
      PrMsg contrib;
      contrib.kind = PrMsg::Kind::kContrib;
      contrib.contrib = rank / static_cast<double>(edges.size());
      for (const VertexId e : edges) {
        ctx.sendMessage(e, contrib);
      }
    } else {
      ctx.aggregate(kSinkAggregator, rank / n_);
    }
    PrMsg self;
    self.kind = PrMsg::Kind::kSelf;
    self.rank = rank;
    self.edges = edges;
    ctx.sendMessage(ctx.key(), self);
  }

  [[nodiscard]] double newRank(Context& ctx, double accum) const {
    const double sink =
        ctx.aggregateResult<double>(kSinkAggregator).value_or(0.0);
    return (1.0 - d_) / n_ + d_ * (accum + sink);
  }

  double n_;
  double d_;
  int iterations_;
};

/// Direct variant: one step per iteration.
class DirectCompute : public PrComputeBase {
 public:
  using PrComputeBase::PrComputeBase;

  bool compute(Context& ctx) override {
    if (ctx.stepNum() == 1) {
      // "The first step begins by reading a table holding the graph
      // structure."
      auto record = ctx.readState();
      if (!record) {
        throw std::logic_error("PageRank: vertex missing from graph table");
      }
      emitRound(ctx, record->edges, 1.0 / n_);
      return false;
    }
    const FoldedInput in = foldInput(ctx.inputMessages());
    if (!in.hasSelf) {
      throw std::logic_error("PageRank: no self message at step " +
                             std::to_string(ctx.stepNum()));
    }
    const double rank = newRank(ctx, in.accum);
    if (ctx.stepNum() <= iterations_) {
      emitRound(ctx, in.edges, rank);
    } else {
      // "The last step replaces each entry in that table with an
      // enhanced vertex object that holds its rank as well as its
      // structure."
      PrRecord record;
      record.edges = in.edges;
      record.ranked = true;
      record.rank = rank;
      ctx.writeState(record);
    }
    return false;
  }
};

/// MapReduce-emulation variant: two steps per iteration; structure+rank
/// stored to the state table between reduce and the following map.
class MapReduceCompute : public PrComputeBase {
 public:
  using PrComputeBase::PrComputeBase;

  bool compute(Context& ctx) override {
    const int step = ctx.stepNum();
    if (step % 2 == 1) {
      // Map-like step: read from the K/V table, shuffle messages.
      auto record = ctx.readState();
      if (!record) {
        throw std::logic_error("PageRank(MR): vertex missing from table");
      }
      const double rank = record->ranked ? record->rank : 1.0 / n_;
      emitRound(ctx, record->edges, rank);
      return false;
    }
    // Reduce-like step: combine inputs, write structure+rank back.
    const FoldedInput in = foldInput(ctx.inputMessages());
    if (!in.hasSelf) {
      throw std::logic_error("PageRank(MR): no self message in reduce");
    }
    PrRecord record;
    record.edges = in.edges;
    record.ranked = true;
    record.rank = newRank(ctx, in.accum);
    ctx.writeState(record);
    // The continue signal enables the next map-like step.
    return step / 2 < iterations_;
  }
};

class PageRankJob : public ebsp::Job<VertexId, PrRecord, PrMsg> {
 public:
  PageRankJob(const PageRankOptions& options, kv::KVStore& store,
              std::uint64_t vertices)
      : options_(options), store_(store), vertices_(vertices) {}

  std::vector<std::string> stateTableNames() const override {
    return {options_.graphTable};
  }

  std::shared_ptr<ComputeType> getCompute() override {
    if (options_.mapReduceVariant) {
      return std::make_shared<MapReduceCompute>(vertices_, options_.damping,
                                                options_.iterations);
    }
    return std::make_shared<DirectCompute>(vertices_, options_.damping,
                                           options_.iterations);
  }

  std::vector<ebsp::AggregatorDecl> aggregators() const override {
    return {{kSinkAggregator, ebsp::sumAggregator<double>()}};
  }

  std::string referenceTable() const override { return options_.graphTable; }

  std::vector<ebsp::RawLoaderPtr> loaders() const override {
    kv::TablePtr table = store_.lookupTable(options_.graphTable);
    // Enable every vertex for the first (scan-like) step.
    return {std::make_shared<ebsp::FunctionLoader>(
        [table](ebsp::LoaderContext& ctx) {
          for (auto& [k, v] : kv::readAll(*table)) {
            ctx.enableComponent(k);
          }
        })};
  }

 private:
  const PageRankOptions& options_;
  kv::KVStore& store_;
  std::uint64_t vertices_;
};

}  // namespace

void PrRecord::encodeTo(ByteWriter& w) const {
  w.putBool(ranked);
  if (ranked) {
    w.putDouble(rank);
  }
  w.putVarint(edges.size());
  for (const VertexId e : edges) {
    w.putVarint(e);
  }
}

PrRecord PrRecord::decodeFrom(ByteReader& r) {
  PrRecord rec;
  rec.ranked = r.getBool();
  if (rec.ranked) {
    rec.rank = r.getDouble();
  }
  const auto n = static_cast<std::size_t>(r.getVarint());
  rec.edges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rec.edges.push_back(static_cast<VertexId>(r.getVarint()));
  }
  return rec;
}

kv::TablePtr loadPageRankGraph(kv::KVStore& store,
                               const std::string& tableName,
                               const graph::Graph& graph,
                               std::uint32_t parts) {
  kv::TableOptions options;
  options.parts = parts;
  kv::TablePtr table = store.createTable(tableName, std::move(options));
  std::vector<std::pair<kv::Key, kv::Value>> batch;
  batch.reserve(graph.vertexCount());
  for (VertexId u = 0; u < graph.vertexCount(); ++u) {
    PrRecord rec;
    rec.edges = graph.adj[u];
    batch.emplace_back(encodeToBytes(u), encodeToBytes(rec));
  }
  table->putBatch(batch);
  return table;
}

PageRankResult runPageRank(ebsp::Engine& engine,
                           const PageRankOptions& options) {
  kv::KVStore& store = *engine.store();
  kv::TablePtr table = store.lookupTable(options.graphTable);
  if (!table) {
    throw std::invalid_argument("runPageRank: graph table '" +
                                options.graphTable + "' does not exist");
  }
  const std::uint64_t vertices = table->size();
  PageRankJob job(options, store, vertices);

  PageRankResult result;
  result.job = ebsp::runJob(engine, job);

  // Validation sum.
  kv::TypedTable<VertexId, PrRecord> typed(table);
  double sum = 0;
  typed.forEach([&sum](const VertexId&, const PrRecord& rec) {
    sum += rec.ranked ? rec.rank : 0.0;
    return true;
  });
  result.rankSum = sum;
  return result;
}

std::vector<double> readRanks(kv::KVStore& store, const std::string& tableName,
                              std::size_t vertexCount) {
  std::vector<double> ranks(vertexCount, 0.0);
  kv::TypedTable<VertexId, PrRecord> typed(store.lookupTable(tableName));
  typed.forEach([&ranks](const VertexId& u, const PrRecord& rec) {
    if (u < ranks.size() && rec.ranked) {
      ranks[u] = rec.rank;
    }
    return true;
  });
  return ranks;
}

std::vector<double> referencePageRank(const graph::Graph& graph,
                                      double damping, int iterations) {
  const std::size_t n = graph.vertexCount();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    double sink = 0;
    for (std::size_t u = 0; u < n; ++u) {
      if (graph.adj[u].empty()) {
        sink += rank[u] / static_cast<double>(n);
      }
    }
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t u = 0; u < n; ++u) {
      const auto& edges = graph.adj[u];
      if (edges.empty()) {
        continue;
      }
      const double share = rank[u] / static_cast<double>(edges.size());
      for (const VertexId v : edges) {
        next[v] += share;
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      rank[v] = (1.0 - damping) / static_cast<double>(n) +
                damping * (next[v] + sink);
    }
  }
  return rank;
}

}  // namespace ripple::apps
