// PageRank on K/V EBSP — the paper's §V-A evaluation pair.
//
// Two variants, both on the same engine:
//  * direct — one BSP step per iteration of the PageRank equations; the
//    graph structure and ranking state ride in BSP messages (a
//    self-addressed structure+rank message plus rank contributions along
//    edges); the state table is read in the first step and written in the
//    last.  One synchronization + one state-table I/O round per run of
//    the iteration space.
//  * MapReduce emulation — two BSP steps per iteration (map-like and
//    reduce-like); structure and rank ride in messages only from map to
//    reduce (the shuffle), and are written to / re-read from the state
//    table between reduce and the following map.  Two synchronizations +
//    two I/O rounds per iteration: "purely inferior ... doing strictly
//    more work".
//
// Dangling vertices (out-degree 0) contribute rank/|V| to a sink-rank
// aggregator; every vertex folds the previous step's sink value into its
// new rank, implementing the A' matrix of the paper.

#pragma once

#include <string>
#include <vector>

#include "ebsp/engine.h"
#include "graph/graph_gen.h"

namespace ripple::apps {

struct PageRankOptions {
  double damping = 0.85;

  /// Iterations of the PageRank equations.
  int iterations = 10;

  /// Graph/state table (created by loadPageRankGraph).
  std::string graphTable = "pr_graph";

  /// Run the MapReduce-emulation variant instead of the direct one.
  bool mapReduceVariant = false;
};

struct PageRankResult {
  ebsp::JobResult job;

  /// Sum of final ranks (should be ~1).
  double rankSum = 0;
};

/// Graph/rank record stored in the graph table: the out-edge array, plus
/// the rank once the job has "enhanced" the record.
struct PrRecord {
  std::vector<graph::VertexId> edges;
  bool ranked = false;
  double rank = 0;

  void encodeTo(ByteWriter& w) const;
  static PrRecord decodeFrom(ByteReader& r);
};

/// Create `tableName` with `parts` parts and populate it with plain
/// (unranked) vertex records.
kv::TablePtr loadPageRankGraph(kv::KVStore& store,
                               const std::string& tableName,
                               const graph::Graph& graph,
                               std::uint32_t parts);

/// Rank the graph previously loaded into options.graphTable.  On return
/// the table holds enhanced records carrying final ranks.
PageRankResult runPageRank(ebsp::Engine& engine,
                           const PageRankOptions& options);

/// Read final ranks back from the graph table (indexed by vertex id).
std::vector<double> readRanks(kv::KVStore& store,
                              const std::string& tableName,
                              std::size_t vertexCount);

/// Serial reference implementation for validation.
std::vector<double> referencePageRank(const graph::Graph& graph,
                                      double damping, int iterations);

}  // namespace ripple::apps
