// The typed K/V EBSP programming model — the C++ rendering of the paper's
// Listings 1 (Job), 2 (Compute), and 3 (ComputeContext).
//
// A job is parameterized by its component Key type, State type, Message
// type, and the direct-job-output key/value types.  All types cross the
// engine boundary through Codec<T> (common/codec.h).
//
//   struct MyCompute : ebsp::Compute<int, double, double> {
//     bool compute(Context& ctx) override { ... }
//   };
//   struct MyJob : ebsp::Job<int, double, double> { ... };
//   ebsp::Engine engine(store);
//   ebsp::JobResult r = ebsp::runJob(engine, myJob);

#pragma once

#include <memory>
#include <vector>

#include "common/codec.h"
#include "ebsp/engine.h"
#include "ebsp/library.h"
#include "ebsp/raw_job.h"

namespace ripple::ebsp {

/// Typed view over RawComputeContext (paper Listing 3).  Constructed per
/// compute invocation; the input messages are decoded once, eagerly.
template <typename Key, typename State, typename Message,
          typename OutKey = Bytes, typename OutValue = Bytes>
class TypedComputeContext {
 public:
  explicit TypedComputeContext(RawComputeContext& raw)
      : raw_(raw), key_(decodeFromBytes<Key>(raw.key())) {
    const auto& rawMessages = raw.inputMessages();
    messages_.reserve(rawMessages.size());
    for (const Bytes& m : rawMessages) {
      messages_.push_back(decodeFromBytes<Message>(m));
    }
  }

  [[nodiscard]] int stepNum() const { return raw_.stepNum(); }
  [[nodiscard]] const Key& key() const { return key_; }

  [[nodiscard]] std::optional<State> readState(int tabIdx = 0) {
    auto raw = raw_.readState(tabIdx);
    if (!raw) {
      return std::nullopt;
    }
    return decodeFromBytes<State>(*raw);
  }

  void writeState(const State& state, int tabIdx = 0) {
    raw_.writeState(tabIdx, encodeToBytes(state));
  }

  /// Read-modify-write convenience (the paper's readWriteState): reads
  /// the state, applies fn, writes the result back.  fn receives a
  /// default-constructed State when no entry exists.
  template <typename Fn>
  void readWriteState(Fn&& fn, int tabIdx = 0) {
    State s = readState(tabIdx).value_or(State{});
    fn(s);
    writeState(s, tabIdx);
  }

  void deleteState(int tabIdx = 0) { raw_.deleteState(tabIdx); }

  /// Request creation of another component's state (merged at the next
  /// barrier through Compute::combineStates on conflicts).
  void createState(const Key& key, const State& state, int tabIdx = 0) {
    raw_.createState(tabIdx, encodeToBytes(key), encodeToBytes(state));
  }

  [[nodiscard]] const std::vector<Message>& inputMessages() const {
    return messages_;
  }

  /// Send a message for delivery in the following step.
  void sendMessage(const Key& destKey, const Message& message) {
    raw_.outputMessage(encodeToBytes(destKey), encodeToBytes(message));
  }

  template <typename V>
  void aggregate(const std::string& name, const V& value) {
    raw_.aggregateValue(name, encodeToBytes(value));
  }

  /// The previous step's final value of a named aggregator.
  template <typename V>
  [[nodiscard]] std::optional<V> aggregateResult(
      const std::string& name) const {
    auto raw = raw_.aggregateResult(name);
    if (!raw) {
      return std::nullopt;
    }
    return decodeFromBytes<V>(*raw);
  }

  /// Read a broadcast datum from the job's ubiquitous table.
  template <typename BV, typename BK>
  [[nodiscard]] std::optional<BV> broadcast(const BK& key) {
    auto raw = raw_.broadcastDatum(encodeToBytes(key));
    if (!raw) {
      return std::nullopt;
    }
    return decodeFromBytes<BV>(*raw);
  }

  void directOutput(const OutKey& key, const OutValue& value) {
    raw_.directOutput(encodeToBytes(key), encodeToBytes(value));
  }

  /// True when this run takes barrier checkpoints; see
  /// RawComputeContext::checkpointed for the live-state write-back
  /// obligation this creates.
  [[nodiscard]] bool checkpointed() const { return raw_.checkpointed(); }

  /// Escape hatch for advanced uses.
  [[nodiscard]] RawComputeContext& raw() { return raw_; }

 private:
  RawComputeContext& raw_;
  Key key_;
  std::vector<Message> messages_;
};

/// Typed Compute (paper Listing 2).
template <typename Key, typename State, typename Message,
          typename OutKey = Bytes, typename OutValue = Bytes>
class Compute {
 public:
  using Context = TypedComputeContext<Key, State, Message, OutKey, OutValue>;

  virtual ~Compute() = default;

  /// Component execution; the returned value is the continue signal.
  virtual bool compute(Context& ctx) = 0;

  /// Pairwise message combiner; only consulted when hasMessageCombiner()
  /// is true.  Must be commutative and associative.
  virtual Message combineMessages(const Key& key, const Message& m1,
                                  const Message& m2) {
    (void)key;
    (void)m1;
    (void)m2;
    throw std::logic_error("combineMessages not implemented");
  }

  /// In-place combining: fold `next` into the accumulator.  The default
  /// delegates to combineMessages; override when the message carries bulk
  /// data and copying it per fold would be wasteful (e.g. PageRank's
  /// structure-carrying self message accumulating rank contributions).
  virtual void combineMessagesInto(const Key& key, Message& acc,
                                   const Message& next) {
    acc = combineMessages(key, acc, next);
  }

  /// Merge of conflicting created states; only consulted when
  /// hasStateCombiner() is true.
  virtual State combineStates(const Key& key, const State& s1,
                              const State& s2) {
    (void)key;
    (void)s1;
    (void)s2;
    throw std::logic_error("combineStates not implemented");
  }

  /// Declares whether the job supplies a message combiner.  The engine
  /// behaves differently with one (eager sender-side combining; single
  /// combined message per key), so presence is declared, not probed.
  [[nodiscard]] virtual bool hasMessageCombiner() const { return false; }

  [[nodiscard]] virtual bool hasStateCombiner() const { return false; }

  /// Called after the engine restores from a checkpoint.  Override to
  /// drop any live state cached between invocations — cached objects are
  /// ahead of the restored tables and would corrupt the replay (see
  /// RawCompute::onRecovery).
  virtual void onRecovery() {}
};

/// Typed Job (paper Listing 1).
template <typename Key, typename State, typename Message,
          typename OutKey = Bytes, typename OutValue = Bytes>
class Job {
 public:
  using ComputeType = Compute<Key, State, Message, OutKey, OutValue>;

  virtual ~Job() = default;

  /// Names of the job's state tables; compute addresses them by index
  /// into this list.
  [[nodiscard]] virtual std::vector<std::string> stateTableNames() const = 0;

  [[nodiscard]] virtual std::shared_ptr<ComputeType> getCompute() = 0;

  /// Named aggregators ("getAggregators" + "getComputeAggregate").
  [[nodiscard]] virtual std::vector<AggregatorDecl> aggregators() const {
    return {};
  }

  /// Table whose partitioning places the job's components.
  [[nodiscard]] virtual std::string referenceTable() const = 0;

  /// Ubiquitous table holding broadcast data; empty for none.
  [[nodiscard]] virtual std::string broadcastTable() const { return {}; }

  [[nodiscard]] virtual JobProperties properties() const { return {}; }

  /// Early-termination callback; null = no aborter (no-client-sync).
  [[nodiscard]] virtual Aborter aborter() const { return nullptr; }

  [[nodiscard]] virtual std::vector<RawLoaderPtr> loaders() const {
    return {};
  }

  /// Exporters keyed by state-table index ("getWriters").
  [[nodiscard]] virtual std::map<int, RawExporterPtr> writers() const {
    return {};
  }

  [[nodiscard]] virtual RawExporterPtr directOutputter() const {
    return nullptr;
  }
};

/// Adapt a typed job to the raw representation the engines execute.  The
/// compute object is shared; the raw job holds callbacks into it ("mobile
/// code ... distributed by Ripple and invoked near its data").
template <typename Key, typename State, typename Message, typename OutKey,
          typename OutValue>
RawJob toRawJob(Job<Key, State, Message, OutKey, OutValue>& job) {
  using C = Compute<Key, State, Message, OutKey, OutValue>;
  std::shared_ptr<C> compute = job.getCompute();
  if (!compute) {
    throw std::invalid_argument("toRawJob: job supplies no Compute");
  }

  RawJob raw;
  raw.stateTableNames = job.stateTableNames();
  raw.referenceTable = job.referenceTable();
  raw.broadcastTable = job.broadcastTable();
  raw.properties = job.properties();
  raw.aborter = job.aborter();
  raw.loaders = job.loaders();
  raw.writers = job.writers();
  raw.directOutputter = job.directOutputter();
  for (AggregatorDecl& decl : job.aggregators()) {
    raw.aggregators.emplace(std::move(decl.name), std::move(decl.technique));
  }

  raw.compute.compute = [compute](RawComputeContext& rctx) {
    TypedComputeContext<Key, State, Message, OutKey, OutValue> ctx(rctx);
    return compute->compute(ctx);
  };
  raw.compute.onRecovery = [compute] { compute->onRecovery(); };
  if (compute->hasMessageCombiner()) {
    raw.compute.combineMessages = [compute](BytesView key, BytesView m1,
                                            BytesView m2) {
      return encodeToBytes(compute->combineMessages(
          decodeFromBytes<Key>(key), decodeFromBytes<Message>(m1),
          decodeFromBytes<Message>(m2)));
    };
    // Accumulator form: decode once, fold in place, encode once.
    raw.compute.combineBegin = [](BytesView, BytesView first)
        -> RawCompute::CombineAcc {
      return std::make_shared<Message>(decodeFromBytes<Message>(first));
    };
    raw.compute.combineAdd = [compute](const RawCompute::CombineAcc& acc,
                                       BytesView key, BytesView next) {
      compute->combineMessagesInto(decodeFromBytes<Key>(key),
                                   *std::static_pointer_cast<Message>(acc),
                                   decodeFromBytes<Message>(next));
    };
    raw.compute.combineFinish = [](const RawCompute::CombineAcc& acc,
                                   BytesView) {
      return encodeToBytes(*std::static_pointer_cast<Message>(acc));
    };
  }
  if (compute->hasStateCombiner()) {
    raw.compute.combineStates = [compute](BytesView key, BytesView s1,
                                          BytesView s2) {
      return encodeToBytes(compute->combineStates(
          decodeFromBytes<Key>(key), decodeFromBytes<State>(s1),
          decodeFromBytes<State>(s2)));
    };
  }
  return raw;
}

/// Run a typed job on an engine.
template <typename Key, typename State, typename Message, typename OutKey,
          typename OutValue>
JobResult runJob(Engine& engine,
                 Job<Key, State, Message, OutKey, OutValue>& job) {
  RawJob raw = toRawJob(job);
  return engine.run(raw);
}

/// Typed loader context sugar.
template <typename Key, typename Message>
class TypedLoader : public RawLoader {
 public:
  class Context {
   public:
    explicit Context(LoaderContext& raw) : raw_(raw) {}

    void emitMessage(const Key& destKey, const Message& message) {
      raw_.emitMessage(encodeToBytes(destKey), encodeToBytes(message));
    }

    void enableComponent(const Key& key) {
      raw_.enableComponent(encodeToBytes(key));
    }

    template <typename State>
    void putState(int tabIdx, const Key& key, const State& state) {
      raw_.putState(tabIdx, encodeToBytes(key), encodeToBytes(state));
    }

    template <typename V>
    void aggregateValue(const std::string& name, const V& value) {
      raw_.aggregateValue(name, encodeToBytes(value));
    }

   private:
    LoaderContext& raw_;
  };

  explicit TypedLoader(std::function<void(Context&)> fn)
      : fn_(std::move(fn)) {}

  void load(LoaderContext& raw) override {
    Context ctx(raw);
    fn_(ctx);
  }

 private:
  std::function<void(Context&)> fn_;
};

template <typename Key, typename Message>
RawLoaderPtr makeTypedLoader(
    std::function<void(typename TypedLoader<Key, Message>::Context&)> fn) {
  return std::make_shared<TypedLoader<Key, Message>>(std::move(fn));
}

}  // namespace ripple::ebsp
