#include "ebsp/async_engine.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <unordered_map>

#include "common/dyadic.h"
#include "common/logging.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "common/stats.h"
#include "ebsp/transport.h"
#include "fault/faulty_store.h"
#include "sim/cost_model.h"

namespace ripple::ebsp {

namespace {

std::string uniqueRunId() {
  static std::atomic<std::uint64_t> counter{0};
  return "a" + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

enum class EnvelopeKind : std::uint8_t {
  kMessage = 0,
  kEnable = 1,  // Continue signal / loader enablement: empty-input invoke.
  kCreate = 2,
  kBatch = 3,   // Wrapper: several sub-envelopes in one queue put.
};

struct Envelope {
  EnvelopeKind kind = EnvelopeKind::kMessage;
  Bytes destKey;
  Bytes payload;
  int tabIdx = 0;
  std::uint32_t senderPart = 0;
  DyadicWeight weight;
  double sendVt = 0;
};

Bytes encodeEnvelope(const Envelope& e) {
  ByteWriter w;
  w.putU8(static_cast<std::uint8_t>(e.kind));
  w.putBytes(e.destKey);
  w.putBytes(e.payload);
  w.putVarintSigned(e.tabIdx);
  w.putFixed32(e.senderPart);
  w.putVarint(e.weight.mantissa);
  w.putVarint(e.weight.exponent);
  w.putDouble(e.sendVt);
  return w.take();
}

Envelope decodeEnvelope(BytesView data) {
  ByteReader r(data);
  Envelope e;
  e.kind = static_cast<EnvelopeKind>(r.getU8());
  e.destKey = Bytes(r.getBytes());
  e.payload = Bytes(r.getBytes());
  e.tabIdx = static_cast<int>(r.getVarintSigned());
  e.senderPart = r.getFixed32();
  e.weight.mantissa = r.getVarint();
  e.weight.exponent = static_cast<std::uint32_t>(r.getVarint());
  e.sendVt = r.getDouble();
  if (!r.atEnd()) {
    throw CodecError("decodeEnvelope: trailing bytes");
  }
  return e;
}

/// One queue put carrying several envelopes bound for the same part.
/// Each sub-envelope keeps its own split weight and send stamp; the
/// wrapper itself carries no weight and is never credited.
Bytes encodeBatch(const std::vector<Envelope>& subs) {
  ByteWriter w;
  w.putU8(static_cast<std::uint8_t>(EnvelopeKind::kBatch));
  w.putVarint(subs.size());
  for (const Envelope& e : subs) {
    w.putBytes(encodeEnvelope(e));
  }
  return w.take();
}

}  // namespace

class AsyncEngine::Run {
 public:
  Run(kv::KVStorePtr store, const AsyncEngineOptions& options, RawJob& job)
      : store_(std::move(store)), options_(options), job_(job),
        props_(deriveProperties(job)), runId_(uniqueRunId()) {
    validateRawJob(job_);
    if (!props_.noSync()) {
      throw std::invalid_argument(
          "AsyncEngine: job properties do not permit no-sync execution "
          "(need ((one-msg & no-continue & no-ss-order) | incremental) & "
          "no-agg & no-client-sync); declared: " +
          props_.describe());
    }
    if (!options_.queuing) {
      throw std::invalid_argument("AsyncEngine: a Queuing factory is "
                                  "required");
    }
    if (options_.onBarrier) {
      // There are no barriers to hook: silently dropping the callback
      // would hide the caller's bug (e.g. a failure-injection hook that
      // never fires).  The unified front-end routes onBarrier jobs to the
      // synchronized strategy instead of here.
      throw std::invalid_argument(
          "AsyncEngine: onBarrier is set but no-sync execution has no "
          "barriers; use the synchronized strategy (or EngineOptions, "
          "which selects it automatically when onBarrier is set)");
    }
    resolveTables();
    if (options_.virtualTime) {
      vt_ = std::make_unique<sim::VirtualCluster>(parts_, options_.costModel);
    }
    queues_ = options_.queuing->createQueueSet("__ebsp_q_" + runId_, ref_);
    stealing_ = options_.workStealing && props_.runAnywhere();
    combiner_ = CombinerOps::fromCompute(job_.compute);
    // Worker topology: one worker per queue by default; an explicit
    // positive thread count below the part count multiplexes the striped
    // queues {w, w + workers, ...} onto worker w.
    workerCount_ = parts_;
    if (options_.threads > 0 &&
        static_cast<std::uint32_t>(options_.threads) < parts_) {
      workerCount_ = static_cast<std::uint32_t>(options_.threads);
    }
    partMetrics_.assign(workerCount_, PartMetrics{});
    partRetry_.reserve(workerCount_);
    for (std::uint32_t p = 0; p < workerCount_; ++p) {
      fault::Retrier retrier(options_.retry, p);
      retrier.bindRegistry(options_.metrics);
      retrier.bindVirtualTime(vt_.get(), p);
      partRetry_.push_back(std::move(retrier));
    }
    clientRetry_ = fault::Retrier(options_.retry, ~std::uint64_t{0});
    clientRetry_.bindRegistry(options_.metrics);
    dead_.assign(workerCount_, false);
    adoptedOf_.assign(workerCount_, {});
    aliveWorkers_ = workerCount_;
    // Broadcast data is read concurrently by every worker: seal it for
    // the run so a mid-run write throws instead of racing.
    broadcastSeal_ = kv::ScopedTableSeal(broadcast_);
  }

  ~Run() {
    broadcastSeal_.release();
    options_.queuing->deleteQueueSet("__ebsp_q_" + runId_);
  }

  JobResult execute() {
    Stopwatch wall;
    obs::Tracer* const tracer = options_.tracer;
    std::uint64_t initial = 0;
    {
      obs::Tracer::Scoped load(tracer, obs::Phase::kLoad);
      load->note = "no-sync";
      initial = loadInitial();
      load->messages = initial;
    }
    {
      obs::Tracer::Scoped compute(tracer, obs::Phase::kCompute, /*step=*/0);
      if (initial > 0) {
        queues_->runWorkers([this](mq::WorkerContext& ctx) { worker(ctx); },
                            workerCount_);
      }
      if (failure_) {
        compute->note = "failed";
        std::rethrow_exception(failure_);
      }
      {
        LockGuard lock(controlMu_);
        if (initial > 0 && !ledger_.complete()) {
          throw std::logic_error(
              "AsyncEngine: workers exited with incomplete weight (ledger "
              "at " + std::to_string(ledger_.approx()) + ")");
        }
      }
      accumulateMetrics();
      compute->invocations = metrics_.computeInvocations;
      compute->messages = metrics_.messagesSent;
      compute->stateReads = metrics_.stateReads;
      compute->stateWrites = metrics_.stateWrites;
      compute->virtualSeconds = vt_ ? vt_->makespan() : 0.0;
      compute->note = "no-sync drain";
    }
    if (options_.onStep) {
      options_.onStep(0, metrics_.computeInvocations);
    }
    {
      obs::Tracer::Scoped exp(tracer, obs::Phase::kExport);
      exportResults();
      directFinish();
    }

    JobResult result;
    result.steps = 0;  // No steps without barriers.
    result.virtualMakespan = vt_ ? vt_->makespan() : 0.0;
    result.elapsedSeconds = wall.elapsedSeconds();
    result.metrics = metrics_;
    if (options_.metrics != nullptr) {
      foldEngineMetrics(*options_.metrics, result.metrics);
      options_.metrics->gauge("exec.threads")
          .set(static_cast<double>(workerCount_));
      options_.metrics->counter("exec.steal_count")
          .add(result.metrics.stolenMessages);
      if (vt_) {
        options_.metrics->gauge("ebsp.virtual_makespan")
            .set(result.virtualMakespan);
      }
    }
    return result;
  }

 private:
  struct PartMetrics {
    std::uint64_t invocations = 0;
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t stateReads = 0;
    std::uint64_t stateWrites = 0;
    std::uint64_t creations = 0;
    std::uint64_t directs = 0;
    std::uint64_t stolen = 0;
    std::uint64_t combineIn = 0;
    std::uint64_t combineOut = 0;
  };

  /// Per-invocation context: buffers outputs so the engine can split the
  /// carried weight across them after compute returns.
  class Context : public RawComputeContext {
   public:
    Context(Run& run, std::uint32_t part, PartMetrics& metrics)
        : run_(run), part_(part), metrics_(metrics) {}

    /// `vtBase` is the part's virtual clock at invocation start; outgoing
    /// messages are stamped with vtBase plus the CPU time consumed up to
    /// the outputMessage call, so a send issued early in an invocation is
    /// not artificially delayed behind later compute (this is what lets
    /// SUMMA-style pipelined forwards overlap with block arithmetic).
    void reset(BytesView key, std::vector<Bytes>* messages, double vtBase) {
      key_ = key;
      messages_ = messages;
      outgoing_.clear();
      creations_.clear();
      continueSignal_ = false;
      vtBase_ = vtBase;
      cpuStart_ = sim::threadCpuSeconds();
    }

    [[nodiscard]] int stepNum() const override { return 0; }
    [[nodiscard]] BytesView key() const override { return key_; }

    std::optional<Bytes> readState(int tabIdx) override {
      ++metrics_.stateReads;
      return run_.partRetry_[part_](
          [&] { return run_.stateTable(tabIdx).get(key_); });
    }

    void writeState(int tabIdx, BytesView state) override {
      ++metrics_.stateWrites;
      run_.partRetry_[part_](
          [&] { run_.stateTable(tabIdx).put(key_, state); });
    }

    void deleteState(int tabIdx) override {
      ++metrics_.stateWrites;
      run_.partRetry_[part_]([&] { run_.stateTable(tabIdx).erase(key_); });
    }

    void createState(int tabIdx, BytesView key, BytesView state) override {
      run_.stateTable(tabIdx);  // Range check.
      ++metrics_.creations;
      creations_.push_back({tabIdx, Bytes(key), Bytes(state)});
    }

    [[nodiscard]] const std::vector<Bytes>& inputMessages() const override {
      return *messages_;
    }

    void outputMessage(BytesView destKey, BytesView payload) override {
      Outgoing out;
      out.destKey = Bytes(destKey);
      out.payload = Bytes(payload);
      out.sendVt = vtBase_ + (sim::threadCpuSeconds() - cpuStart_);
      outgoing_.push_back(std::move(out));
    }

    void aggregateValue(const std::string&, BytesView) override {
      throw std::logic_error(
          "AsyncEngine: individual aggregators are not available under "
          "no-sync execution (no-agg is required)");
    }

    [[nodiscard]] std::optional<Bytes> aggregateResult(
        const std::string&) const override {
      return std::nullopt;
    }

    std::optional<Bytes> broadcastDatum(BytesView key) override {
      if (!run_.broadcast_) {
        return std::nullopt;
      }
      return run_.broadcast_->get(key);
    }

    void directOutput(BytesView key, BytesView value) override {
      ++metrics_.directs;
      run_.directOutput(key, value);
    }

    void setContinue(bool value) { continueSignal_ = value; }

    struct Creation {
      int tabIdx;
      Bytes key;
      Bytes state;
    };

    struct Outgoing {
      Bytes destKey;
      Bytes payload;
      double sendVt = 0;
    };

    std::vector<Outgoing> outgoing_;
    std::vector<Creation> creations_;
    bool continueSignal_ = false;

   private:
    Run& run_;
    std::uint32_t part_;
    PartMetrics& metrics_;
    BytesView key_;
    std::vector<Bytes>* messages_ = nullptr;
    double vtBase_ = 0;
    double cpuStart_ = 0;
  };

  void resolveTables() {
    ref_ = store_->lookupTable(job_.referenceTable);
    if (!ref_) {
      throw std::invalid_argument("AsyncEngine: reference table '" +
                                  job_.referenceTable + "' does not exist");
    }
    parts_ = ref_->numParts();
    for (const std::string& name : job_.stateTableNames) {
      kv::TablePtr t = store_->lookupTable(name);
      if (!t) {
        t = store_->createConsistentTable(name, *ref_);
      } else if (t->numParts() != parts_) {
        throw std::invalid_argument(
            "AsyncEngine: state table '" + name +
            "' is not consistently partitioned with the reference table");
      }
      stateTables_.push_back(std::move(t));
    }
    if (!job_.broadcastTable.empty()) {
      broadcast_ = store_->lookupTable(job_.broadcastTable);
      if (!broadcast_) {
        throw std::invalid_argument("AsyncEngine: broadcast table '" +
                                    job_.broadcastTable + "' does not exist");
      }
    }
  }

  kv::Table& stateTable(int tabIdx) {
    if (tabIdx < 0 || tabIdx >= static_cast<int>(stateTables_.size())) {
      throw std::out_of_range("AsyncEngine: state table index out of range");
    }
    return *stateTables_[static_cast<std::size_t>(tabIdx)];
  }

  /// Returns the number of initial envelopes enqueued.
  std::uint64_t loadInitial() {
    struct InitialContext : LoaderContext {
      explicit InitialContext(Run& run) : run(run) {}

      void emitMessage(BytesView destKey, BytesView payload) override {
        Envelope e;
        e.kind = EnvelopeKind::kMessage;
        e.destKey = Bytes(destKey);
        e.payload = Bytes(payload);
        envelopes.push_back(std::move(e));
      }

      void enableComponent(BytesView key) override {
        Envelope e;
        e.kind = EnvelopeKind::kEnable;
        e.destKey = Bytes(key);
        envelopes.push_back(std::move(e));
      }

      void putState(int tabIdx, BytesView key, BytesView state) override {
        states.emplace_back(tabIdx, std::make_pair(Bytes(key), Bytes(state)));
      }

      void aggregateValue(const std::string& name, BytesView) override {
        throw std::logic_error("AsyncEngine: loader aggregator input '" +
                               name + "' under no-sync execution");
      }

      Run& run;
      std::vector<Envelope> envelopes;
      std::vector<std::pair<int, std::pair<Bytes, Bytes>>> states;
    };

    InitialContext ctx(*this);
    for (const RawLoaderPtr& loader : job_.loaders) {
      loader->load(ctx);
    }

    std::vector<std::vector<std::pair<kv::Key, kv::Value>>> byTable(
        stateTables_.size());
    for (auto& [tabIdx, kv] : ctx.states) {
      stateTable(tabIdx);  // Range check.
      byTable[static_cast<std::size_t>(tabIdx)].push_back(std::move(kv));
    }
    // Under injection the retry must be per entry, not per batch: one
    // attempt of an N-entry batch needs all N injection draws to pass,
    // so for large batches every attempt fails and the budget always
    // exhausts.  Re-putting one key is idempotent either way.
    const bool injected =
        dynamic_cast<fault::FaultyStore*>(store_.get()) != nullptr;
    for (std::size_t i = 0; i < byTable.size(); ++i) {
      if (byTable[i].empty()) {
        continue;
      }
      if (injected) {
        for (const auto& [key, value] : byTable[i]) {
          clientRetry_([&] { stateTables_[i]->put(key, value); });
        }
      } else {
        stateTables_[i]->putBatch(byTable[i]);
      }
    }

    if (ctx.envelopes.empty()) {
      return 0;
    }
    // The controller hands out weight 1 across the initial envelopes and
    // keeps (credits) the remainder.
    const WeightSplit split =
        splitWeight(DyadicWeight::one(), ctx.envelopes.size());
    for (Envelope& e : ctx.envelopes) {
      e.weight = split.child;
      e.senderPart = ref_->partOf(e.destKey);  // Loader acts as local sender.
      const Bytes encoded = encodeEnvelope(e);
      clientRetry_(
          [&] { queues_->put(ref_->partOf(e.destKey), encoded); });
    }
    credit(split.remainder);
    return ctx.envelopes.size();
  }

  void worker(mq::WorkerContext& wctx) {
    // Worker id == primary queue index; under multiplexing the context
    // serves every queue congruent to it modulo workerCount_.
    const std::uint32_t part = wctx.queueIndex();
    PartMetrics& metrics = partMetrics_[part];
    Context ctx(*this, part, metrics);
    fault::Retrier& retry = partRetry_[part];
    std::uint32_t stealCursor = part;
    // Queues adopted from dead workers (see abandonWorker); refreshed
    // from adoptedOf_ whenever the takeover epoch moves.
    std::vector<std::uint32_t> adopted;
    std::uint64_t seenEpoch = 0;

    for (;;) {
      if (failed_.load(std::memory_order_acquire)) {
        return;
      }
      refreshAdopted(part, adopted, seenEpoch);
      std::optional<Bytes> raw;
      bool stolen = false;
      try {
        // Every dequeue path sits inside the kill/transient handler:
        // fail-before injection means a failed or killed pop consumed
        // nothing, so no message (and no termination-detection weight)
        // is lost when the worker is abandoned.
        raw = retry([&] { return wctx.tryRead(); });
        for (std::uint32_t q : adopted) {
          if (raw) {
            break;
          }
          // Front-pop keeps the dead worker's per-(sender, queue) FIFO
          // order intact, unlike trySteal's back-pop.
          raw = retry([&] { return wctx.tryReadFrom(q); });
        }
        if (!raw && stealing_) {
          for (std::uint32_t i = 1; i < parts_ && !raw; ++i) {
            stealCursor = (stealCursor + 1) % parts_;
            const std::uint32_t victim = stealCursor;
            raw = retry([&] { return wctx.trySteal(victim); });
          }
          stolen = raw.has_value();
        }
        if (!raw) {
          raw = retry([&] { return wctx.read(options_.pollTimeout); });
          if (!raw) {
            if (closed_.load(std::memory_order_acquire)) {
              return;
            }
            continue;
          }
        }
      } catch (const fault::WorkerKilled& e) {
        if (abandonWorker(part, e.what())) {
          return;
        }
        continue;  // Sole survivor: the kill is ignored.
      } catch (const fault::TransientError& e) {
        // Dequeue retry budget exhausted: treat the reader as gone for
        // good, same as a kill.
        if (abandonWorker(part, e.what())) {
          return;
        }
        continue;
      } catch (const fault::StateLostError&) {
        // A server restarted and the in-flight queue state died with it.
        // No-sync execution has no barrier checkpoint to replay from, so
        // fail the job with the typed error — the same escalation as a
        // mid-invocation loss.
        {
          LockGuard lock(controlMu_);
          if (!failure_) {
            failure_ = std::current_exception();
          }
        }
        failed_.store(true, std::memory_order_release);
        closeQueues();
        return;
      }
      if (stolen) {
        ++metrics.stolen;
      }
      try {
        ByteReader r(*raw);
        if (static_cast<EnvelopeKind>(r.getU8()) == EnvelopeKind::kBatch) {
          // Sub-envelopes process in batch order, preserving the
          // sender's per-(worker, queue) FIFO.
          const auto n = static_cast<std::size_t>(r.getVarint());
          for (std::size_t i = 0; i < n; ++i) {
            process(decodeEnvelope(r.getBytes()), part, ctx, metrics);
          }
          if (!r.atEnd()) {
            throw CodecError("batch envelope: trailing bytes");
          }
        } else {
          process(decodeEnvelope(*raw), part, ctx, metrics);
        }
      } catch (...) {
        // Includes TransientError escalations mid-invocation: the
        // envelope was already consumed, so redelivery would double-apply
        // its effects; fail the job instead.
        {
          LockGuard lock(controlMu_);
          if (!failure_) {
            failure_ = std::current_exception();
          }
        }
        failed_.store(true, std::memory_order_release);
        closeQueues();
        return;
      }
    }
  }

  /// Hand the dead worker's queue (and everything it had already
  /// adopted) to the next surviving worker, which front-pops it so
  /// per-(sender, queue) FIFO order is preserved.  Kill-before-pop means
  /// the dead worker lost no message and no weight, so termination
  /// detection completes once the heir drains the adopted queues.
  /// Returns true when the worker should exit; false for the sole
  /// survivor (someone must finish the drain, so its kill is ignored).
  bool abandonWorker(std::uint32_t part, const std::string& why) {
    LockGuard lock(takeoverMu_);
    if (aliveWorkers_ <= 1) {
      RIPPLE_INFO << "AsyncEngine: ignoring kill of sole surviving worker "
                  << part << " (" << why << ")";
      return false;
    }
    --aliveWorkers_;
    dead_[part] = true;
    std::uint32_t heir = (part + 1) % workerCount_;
    while (dead_[heir]) {
      heir = (heir + 1) % workerCount_;
    }
    auto& mine = adoptedOf_[part];
    auto& theirs = adoptedOf_[heir];
    // The heir adopts the dead worker's whole owned stripe plus whatever
    // that worker had itself adopted earlier.
    for (std::uint32_t q = part; q < parts_; q += workerCount_) {
      theirs.push_back(q);
    }
    theirs.insert(theirs.end(), mine.begin(), mine.end());
    mine.clear();
    ++recoveries_;
    adoptedEpoch_.fetch_add(1, std::memory_order_release);
    RIPPLE_INFO << "AsyncEngine: worker " << part << " abandoned (" << why
                << "); queue re-dispatched to worker " << heir;
    if (options_.tracer != nullptr) {
      obs::Span span;
      span.phase = obs::Phase::kRestore;
      span.thread = obs::currentThreadOrdinal();
      span.start = options_.tracer->elapsedSeconds();
      span.note = "no-sync takeover: worker " + std::to_string(part) +
                  " -> " + std::to_string(heir);
      options_.tracer->record(std::move(span));
    }
    return true;
  }

  void refreshAdopted(std::uint32_t part, std::vector<std::uint32_t>& adopted,
                      std::uint64_t& seenEpoch) {
    const std::uint64_t epoch =
        adoptedEpoch_.load(std::memory_order_acquire);
    if (epoch == seenEpoch) {
      return;
    }
    LockGuard lock(takeoverMu_);
    adopted = adoptedOf_[part];
    seenEpoch = epoch;
  }

  void process(Envelope env, std::uint32_t part, Context& ctx,
               PartMetrics& metrics) {
    double vtBase = 0;
    if (vt_) {
      vtBase = vt_->deliver(part, env.sendVt);
    }

    if (env.kind == EnvelopeKind::kCreate) {
      applyCreation(env, partRetry_[part]);
      credit(env.weight);
      return;
    }

    std::vector<Bytes> messages;
    if (env.kind == EnvelopeKind::kMessage) {
      messages.push_back(std::move(env.payload));
    }
    ctx.reset(env.destKey, &messages, vtBase);
    bool cont = false;
    {
      sim::ChargeScope charge(vt_.get(), part);
      cont = job_.compute.compute(ctx);
    }
    if (vt_ && options_.costModel.perMessageCost > 0) {
      vt_->charge(part, options_.costModel.perMessageCost *
                            static_cast<double>(messages.size()));
    }
    ++metrics.invocations;
    metrics.delivered += messages.size();

    if (cont && props_.declared.noContinue) {
      throw std::logic_error(
          "AsyncEngine: job declared no-continue but compute returned the "
          "positive continue signal");
    }

    // Sender-side combining runs BEFORE the weight split: dyadic weights
    // cannot be summed back together, so children are counted over the
    // post-combine output set.
    if (combiner_ && ctx.outgoing_.size() > 1) {
      combineOutgoing(ctx, metrics);
    }

    const std::uint64_t children = ctx.outgoing_.size() +
                                   ctx.creations_.size() +
                                   (cont ? 1 : 0);
    if (children == 0) {
      credit(env.weight);
      return;
    }

    const WeightSplit split = splitWeight(env.weight, children);
    const double sendVt = vt_ ? vt_->now(part) : 0.0;

    // Group messages by destination part (first-touch order preserves the
    // per-(worker, queue) send sequence) so one queue put carries a whole
    // batch instead of one record.
    std::vector<std::pair<std::uint32_t, std::vector<Envelope>>> byPart;
    std::unordered_map<std::uint32_t, std::size_t> partAt;
    for (auto& outgoing : ctx.outgoing_) {
      Envelope out;
      out.kind = EnvelopeKind::kMessage;
      out.destKey = std::move(outgoing.destKey);
      out.payload = std::move(outgoing.payload);
      out.senderPart = part;
      out.weight = split.child;
      out.sendVt = vt_ ? outgoing.sendVt : 0.0;
      const std::uint32_t destPart = ref_->partOf(out.destKey);
      const auto [at, inserted] = partAt.try_emplace(destPart, byPart.size());
      if (inserted) {
        byPart.emplace_back(destPart, std::vector<Envelope>{});
      }
      byPart[at->second].second.push_back(std::move(out));
      ++metrics.sent;
    }
    for (auto& [destPart, group] : byPart) {
      enqueueTo(destPart,
                group.size() == 1 ? encodeEnvelope(group.front())
                                  : encodeBatch(group),
                part);
    }
    for (auto& creation : ctx.creations_) {
      Envelope out;
      out.kind = EnvelopeKind::kCreate;
      out.destKey = std::move(creation.key);
      out.payload = std::move(creation.state);
      out.tabIdx = creation.tabIdx;
      out.senderPart = part;
      out.weight = split.child;
      out.sendVt = sendVt;
      enqueue(std::move(out));
    }
    if (cont) {
      Envelope out;
      out.kind = EnvelopeKind::kEnable;
      out.destKey = Bytes(ctx.key());
      out.senderPart = part;
      out.weight = split.child;
      out.sendVt = sendVt;
      enqueue(std::move(out));
    }
    credit(split.remainder);
  }

  void enqueue(Envelope&& env) {
    enqueueTo(ref_->partOf(env.destKey), encodeEnvelope(env),
              env.senderPart);
  }

  void enqueueTo(std::uint32_t destPart, const Bytes& encoded,
                 std::uint32_t senderWorker) {
    // Retried through the sender's retrier: a failed put enqueued
    // nothing (fail-before), so the re-put delivers exactly once.
    const bool ok = partRetry_[senderWorker](
        [&] { return queues_->put(destPart, encoded); });
    if (!ok) {
      throw std::logic_error("AsyncEngine: enqueue after close");
    }
  }

  /// Fold duplicate destination keys in the invocation's outgoing buffer
  /// through the job's combiner, keeping first-occurrence order (and the
  /// first occurrence's send stamp).
  void combineOutgoing(Context& ctx, PartMetrics& metrics) {
    std::vector<Context::Outgoing> folded;
    std::vector<CombineSlot> slots;
    std::unordered_map<Bytes, std::size_t> byKey;
    folded.reserve(ctx.outgoing_.size());
    for (auto& out : ctx.outgoing_) {
      const auto [at, inserted] = byKey.try_emplace(out.destKey,
                                                    folded.size());
      if (inserted) {
        folded.push_back(std::move(out));
        slots.emplace_back();
        continue;
      }
      CombineSlot& slot = slots[at->second];
      Context::Outgoing& first = folded[at->second];
      if (slot.empty()) {
        slot.addMessage(combiner_, first.destKey, first.payload);
      }
      slot.addMessage(combiner_, first.destKey, out.payload);
    }
    metrics.combineIn += ctx.outgoing_.size();
    metrics.combineOut += folded.size();
    for (std::size_t i = 0; i < folded.size(); ++i) {
      if (!slots[i].empty()) {
        folded[i].payload = slots[i].take(combiner_, folded[i].destKey);
      }
    }
    ctx.outgoing_ = std::move(folded);
  }

  /// Component creation applied at the owner, serialized by the owner's
  /// worker; merges with an existing state through combine2states.  Each
  /// get/put retries individually (a whole-function retry would re-merge
  /// after a partial write).
  void applyCreation(const Envelope& env, fault::Retrier& retry) {
    kv::Table& table = stateTable(env.tabIdx);
    const auto existing = retry([&] { return table.get(env.destKey); });
    if (existing) {
      if (!job_.compute.combineStates) {
        throw std::logic_error(
            "AsyncEngine: createState for an existing component but the job "
            "supplies no combine2states");
      }
      const Bytes combined =
          job_.compute.combineStates(env.destKey, *existing, env.payload);
      retry([&] { table.put(env.destKey, combined); });
    } else {
      retry([&] { table.put(env.destKey, env.payload); });
    }
  }

  void credit(DyadicWeight w) {
    bool complete = false;
    {
      LockGuard lock(controlMu_);
      ledger_.credit(w);
      complete = ledger_.complete();
    }
    if (complete) {
      closeQueues();
    }
  }

  void closeQueues() {
    closed_.store(true, std::memory_order_release);
    queues_->close();
  }

  void directOutput(BytesView key, BytesView value) {
    if (!job_.directOutputter) {
      return;
    }
    if (job_.directOutputter->wantsSerial()) {
      LockGuard lock(directMu_);
      job_.directOutputter->consume(key, value);
    } else {
      job_.directOutputter->consume(key, value);
    }
  }

  void directFinish() {
    if (job_.directOutputter) {
      job_.directOutputter->finish();
    }
  }

  void exportResults() {
    for (const auto& [tabIdx, writer] : job_.writers) {
      class Export : public kv::PairConsumer {
       public:
        Export(RawExporter& exporter, RankedMutex<LockRank::kEngineControl>& mu)
            : exporter_(exporter), mu_(mu) {}
        bool consume(std::uint32_t, kv::KeyView k, kv::ValueView v) override {
          if (exporter_.wantsSerial()) {
            LockGuard lock(mu_);
            exporter_.consume(k, v);
          } else {
            exporter_.consume(k, v);
          }
          return true;
        }

       private:
        RawExporter& exporter_;
        RankedMutex<LockRank::kEngineControl>& mu_;
      };
      RankedMutex<LockRank::kEngineControl> mu;
      Export consumer(*writer, mu);
      stateTables_[static_cast<std::size_t>(tabIdx)]->enumerate(consumer);
      writer->finish();
    }
  }

  void accumulateMetrics() {
    metrics_.recoveries += recoveries_;
    for (const PartMetrics& m : partMetrics_) {
      metrics_.computeInvocations += m.invocations;
      metrics_.messagesSent += m.sent;
      metrics_.messagesDelivered += m.delivered;
      metrics_.stateReads += m.stateReads;
      metrics_.stateWrites += m.stateWrites;
      metrics_.creations += m.creations;
      metrics_.directOutputs += m.directs;
      metrics_.stolenMessages += m.stolen;
      metrics_.combineIn += m.combineIn;
      metrics_.combineOut += m.combineOut;
    }
  }

  kv::KVStorePtr store_;
  const AsyncEngineOptions& options_;
  RawJob& job_;
  EffectiveProperties props_;
  std::string runId_;

  kv::TablePtr ref_;
  std::vector<kv::TablePtr> stateTables_;
  kv::TablePtr broadcast_;
  kv::ScopedTableSeal broadcastSeal_;
  std::uint32_t parts_ = 0;
  // Worker threads actually spawned; below parts_ when options_.threads
  // caps it, in which case worker w multiplexes the striped queues
  // {w, w + workerCount_, ...} and every per-worker array is sized by it.
  std::uint32_t workerCount_ = 0;
  mq::QueueSetPtr queues_;
  bool stealing_ = false;
  CombinerOps combiner_;

  std::unique_ptr<sim::VirtualCluster> vt_;

  RankedMutex<LockRank::kEngineControl> controlMu_;
  WeightLedger ledger_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> failed_{false};
  std::exception_ptr failure_;

  // Transient-error absorption and worker-failure takeover state.
  std::vector<fault::Retrier> partRetry_;
  fault::Retrier clientRetry_;
  RankedMutex<LockRank::kEngineControl> takeoverMu_;
  std::vector<bool> dead_;                          // Guarded by takeoverMu_.
  std::vector<std::vector<std::uint32_t>> adoptedOf_;  // Guarded by takeoverMu_.
  std::uint32_t aliveWorkers_ = 0;                  // Guarded by takeoverMu_.
  std::uint64_t recoveries_ = 0;                    // Guarded by takeoverMu_.
  std::atomic<std::uint64_t> adoptedEpoch_{0};

  RankedMutex<LockRank::kEngineControl> directMu_;
  std::vector<PartMetrics> partMetrics_;
  EngineMetrics metrics_;
};

AsyncEngine::AsyncEngine(kv::KVStorePtr store, AsyncEngineOptions options)
    : store_(std::move(store)), options_(std::move(options)) {}

JobResult AsyncEngine::run(RawJob& job) {
  Run run(store_, options_, job);
  return run.execute();
}

}  // namespace ripple::ebsp
