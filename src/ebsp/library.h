// Library loaders and exporters (paper §II: "A client can implement its
// own Loader or use one provided in the Ripple library").

#pragma once

#include <utility>
#include <vector>

#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "ebsp/raw_job.h"

namespace ripple::ebsp {

/// Loader producing initial messages / enables / state / aggregator input
/// from in-memory vectors.
class VectorLoader : public RawLoader {
 public:
  VectorLoader& message(Bytes destKey, Bytes payload) {
    messages_.emplace_back(std::move(destKey), std::move(payload));
    return *this;
  }

  VectorLoader& enable(Bytes key) {
    enables_.push_back(std::move(key));
    return *this;
  }

  VectorLoader& state(int tabIdx, Bytes key, Bytes state) {
    states_.push_back({tabIdx, std::move(key), std::move(state)});
    return *this;
  }

  VectorLoader& aggregate(std::string name, Bytes value) {
    aggregates_.emplace_back(std::move(name), std::move(value));
    return *this;
  }

  void load(LoaderContext& ctx) override {
    for (const auto& [k, p] : messages_) {
      ctx.emitMessage(k, p);
    }
    for (const auto& k : enables_) {
      ctx.enableComponent(k);
    }
    for (const auto& s : states_) {
      ctx.putState(s.tabIdx, s.key, s.state);
    }
    for (const auto& [n, v] : aggregates_) {
      ctx.aggregateValue(n, v);
    }
  }

 private:
  struct StateEntry {
    int tabIdx;
    Bytes key;
    Bytes state;
  };
  std::vector<std::pair<Bytes, Bytes>> messages_;
  std::vector<Bytes> enables_;
  std::vector<StateEntry> states_;
  std::vector<std::pair<std::string, Bytes>> aggregates_;
};

/// Loader wrapping a callable: fn(LoaderContext&).
class FunctionLoader : public RawLoader {
 public:
  explicit FunctionLoader(std::function<void(LoaderContext&)> fn)
      : fn_(std::move(fn)) {}

  void load(LoaderContext& ctx) override { fn_(ctx); }

 private:
  std::function<void(LoaderContext&)> fn_;
};

/// Exporter collecting pairs into an in-memory vector (thread-safe).
class CollectingExporter : public RawExporter {
 public:
  void consume(BytesView key, BytesView value) override {
    LockGuard lock(mu_);
    pairs_.emplace_back(Bytes(key), Bytes(value));
  }

  [[nodiscard]] bool wantsSerial() const override { return false; }

  [[nodiscard]] std::vector<std::pair<Bytes, Bytes>> take() {
    LockGuard lock(mu_);
    return std::move(pairs_);
  }

  [[nodiscard]] std::size_t count() const {
    LockGuard lock(mu_);
    return pairs_.size();
  }

 private:
  mutable RankedMutex<LockRank::kEngineState> mu_;
  std::vector<std::pair<Bytes, Bytes>> pairs_;
};

/// Exporter wrapping a callable: fn(key, value).
class FunctionExporter : public RawExporter {
 public:
  explicit FunctionExporter(std::function<void(BytesView, BytesView)> fn)
      : fn_(std::move(fn)) {}

  void consume(BytesView key, BytesView value) override { fn_(key, value); }

 private:
  std::function<void(BytesView, BytesView)> fn_;
};

/// Exporter that drops everything (useful in benches).
class NullExporter : public RawExporter {
 public:
  void consume(BytesView, BytesView) override {}
  [[nodiscard]] bool wantsSerial() const override { return false; }
};

}  // namespace ripple::ebsp
