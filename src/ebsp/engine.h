// Engine front-end: selects the execution strategy from the job's
// properties (paper §II-A/§IV-A) and runs the job.

#pragma once

#include "ebsp/async_engine.h"
#include "ebsp/raw_job.h"
#include "ebsp/sync_engine.h"
#include "kvstore/store_factory.h"
#include "kvstore/table.h"
#include "mq/queue.h"

namespace ripple::ebsp {

enum class ExecutionMode {
  /// Use no-sync execution when the job's properties permit it,
  /// synchronized steps otherwise.
  kAuto,
  /// Always run with synchronization barriers.
  kSynchronized,
  /// Require no-sync execution; throws if the properties forbid it.
  kNoSync,
};

struct EngineOptions {
  ExecutionMode mode = ExecutionMode::kAuto;

  /// Store backend for makeEngineStore (the engine itself is handed a
  /// constructed store and never re-creates it).  kDefault resolves
  /// through RIPPLE_STORE; see kvstore/store_factory.h.
  kv::StoreBackend storeBackend = kv::StoreBackend::kDefault;

  /// Directory for the durable "log" backend, forwarded by
  /// makeEngineStore.  Empty resolves through RIPPLE_STORE_PATH, then an
  /// ephemeral temp directory.  Other backends ignore it.
  std::string storePath;

  /// Resident-memory budget for the "log" backend (out-of-core eviction,
  /// DESIGN.md §14), forwarded by makeEngineStore.  0 resolves through
  /// RIPPLE_STORE_MEM; unset = unbounded.  Other backends ignore it.
  std::size_t storeMemoryBytes = 0;

  sim::CostModel costModel = sim::CostModel::defaults();
  bool virtualTime = true;

  /// Worker threads, forwarded to whichever strategy runs.  For the
  /// synchronized strategy 0 additionally consults RIPPLE_THREADS (see
  /// SyncEngineOptions::threads); the no-sync strategy only honors an
  /// explicit positive value (see AsyncEngineOptions::threads).
  int threads = 0;

  // Synchronized strategy knobs.
  int maxSteps = 1'000'000;
  std::size_t spillBatch = 4096;
  CheckpointConfig checkpoint;

  /// Wire-timeout tuning for the "remote" backend, consumed by
  /// makeEngineStore (zero fields fall back to RIPPLE_NET_TIMEOUT_MS /
  /// RIPPLE_NET_REDIAL_MS / RIPPLE_NET_QUEUE_WAIT_MS, then defaults).
  /// netTimeoutMs bounds connects and per-exchange waits, netRedialMs is
  /// the re-dial budget bridging a server restart, netQueueWaitMs caps
  /// one blocking queue-wait slice on both sides of the wire.
  int netTimeoutMs = 0;
  int netRedialMs = 0;
  int netQueueWaitMs = 0;

  /// Transient-error retry budget, forwarded to whichever strategy runs
  /// (see src/fault/retry.h).
  fault::RetryPolicy retry;

  /// Invoked after each barrier with the completed step number; may throw
  /// SimulatedFailure to exercise recovery.  Setting it forces the
  /// synchronized strategy under kAuto (the no-sync strategy has no
  /// barriers, so the hook could never fire there; the AsyncEngine
  /// rejects it outright) and is an error combined with kNoSync.
  std::function<void(int step)> onBarrier;

  /// Step hook, unified across strategies: the synchronized engine fires
  /// it per superstep as (stepNum, invocations) after the step's compute
  /// span closes; the no-sync engine fires it exactly once after the
  /// queues drain, as (0, totalInvocations).
  std::function<void(int step, std::uint64_t invocations)> onStep;

  // No-sync strategy knobs.
  std::chrono::milliseconds pollTimeout{2};
  bool workStealing = true;

  /// Queue-set factory for no-sync execution; defaults to the in-memory
  /// implementation over the engine's store.
  mq::QueuingPtr queuing;

  /// Optional span collector, forwarded to whichever strategy runs (see
  /// obs/trace.h).  Not owned; must outlive run().
  obs::Tracer* tracer = nullptr;

  /// Optional metrics registry: engine counters fold in under `ebsp.*`
  /// when the run finishes.  Not owned; must outlive run().
  obs::MetricsRegistry* metrics = nullptr;
};

/// Build the store an Engine should run against: the backend is taken
/// from options.storeBackend (RIPPLE_STORE when kDefault), with
/// `containers` executor domains.  Convenience for harnesses/examples so
/// backend selection stays one flag away from the engine construction.
[[nodiscard]] kv::KVStorePtr makeEngineStore(const EngineOptions& options,
                                             std::uint32_t containers);

class Engine {
 public:
  explicit Engine(kv::KVStorePtr store, EngineOptions options = {});

  /// Run a job to completion; strategy chosen per `options.mode`.
  JobResult run(RawJob& job);

  /// Which strategy `run` would pick for this job.
  [[nodiscard]] bool wouldRunNoSync(const RawJob& job) const;

  [[nodiscard]] const kv::KVStorePtr& store() const { return store_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  kv::KVStorePtr store_;
  EngineOptions options_;
};

}  // namespace ripple::ebsp
