#include "ebsp/aggregator.h"

namespace ripple::ebsp {

RawAggregatorPtr countAggregator() {
  return makeAggregator<std::uint64_t>(
      0, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

RawAggregatorPtr boolAndAggregator() {
  return makeAggregator<bool>(true, [](bool a, bool b) { return a && b; });
}

RawAggregatorPtr boolOrAggregator() {
  return makeAggregator<bool>(false, [](bool a, bool b) { return a || b; });
}

void AggregatorSet::add(const std::string& name, BytesView value) {
  const RawAggregator& technique = techniqueFor(name);
  auto it = partials_.find(name);
  if (it == partials_.end()) {
    partials_.emplace(name, Bytes(value));
  } else {
    it->second = technique.combine(it->second, value);
  }
}

void AggregatorSet::merge(const AggregatorSet& other) {
  for (const auto& [name, value] : other.partials_) {
    add(name, value);
  }
}

std::map<std::string, Bytes> AggregatorSet::finalize() const {
  std::map<std::string, Bytes> out;
  if (techniques_ == nullptr) {
    return out;
  }
  for (const auto& [name, technique] : *techniques_) {
    auto it = partials_.find(name);
    out.emplace(name,
                it == partials_.end() ? technique->identity() : it->second);
  }
  return out;
}

const RawAggregator& AggregatorSet::techniqueFor(
    const std::string& name) const {
  if (techniques_ == nullptr) {
    throw std::invalid_argument("AggregatorSet: job declares no aggregators");
  }
  auto it = techniques_->find(name);
  if (it == techniques_->end()) {
    throw std::invalid_argument("AggregatorSet: unknown aggregator '" + name +
                                "'");
  }
  return *it->second;
}

}  // namespace ripple::ebsp
