// Individually defined aggregators (paper §II, as in Pregel).
//
// Each aggregator has a name and an aggregation technique.  Compute
// invocations feed values in by name; the results of a step's aggregation
// are readable, again by name, in the following step.  The engine runs
// partial aggregations independently per part while components execute
// and combines the partials at the barrier (paper §IV-A).

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/codec.h"

namespace ripple::ebsp {

/// Type-erased aggregation technique over encoded values.  Must be
/// commutative and associative; the engine combines partials in
/// unspecified order.
class RawAggregator {
 public:
  virtual ~RawAggregator() = default;

  /// Identity element (the result when no values were contributed).
  [[nodiscard]] virtual Bytes identity() const = 0;

  [[nodiscard]] virtual Bytes combine(BytesView a, BytesView b) const = 0;
};

using RawAggregatorPtr = std::shared_ptr<const RawAggregator>;

/// A named aggregator declaration.
struct AggregatorDecl {
  std::string name;
  RawAggregatorPtr technique;
};

/// Typed aggregator built from a binary function and an identity.
template <typename T, typename Fn>
class TypedAggregator : public RawAggregator {
 public:
  TypedAggregator(T identity, Fn fn)
      : identity_(std::move(identity)), fn_(std::move(fn)) {}

  [[nodiscard]] Bytes identity() const override {
    return encodeToBytes(identity_);
  }

  [[nodiscard]] Bytes combine(BytesView a, BytesView b) const override {
    return encodeToBytes(
        fn_(decodeFromBytes<T>(a), decodeFromBytes<T>(b)));
  }

 private:
  T identity_;
  Fn fn_;
};

template <typename T, typename Fn>
RawAggregatorPtr makeAggregator(T identity, Fn fn) {
  return std::make_shared<const TypedAggregator<T, Fn>>(std::move(identity),
                                                        std::move(fn));
}

/// Standard aggregator library.
template <typename T>
RawAggregatorPtr sumAggregator() {
  return makeAggregator<T>(T{}, [](T a, T b) { return a + b; });
}

template <typename T>
RawAggregatorPtr minAggregator(T identity) {
  return makeAggregator<T>(identity, [](T a, T b) { return a < b ? a : b; });
}

template <typename T>
RawAggregatorPtr maxAggregator(T identity) {
  return makeAggregator<T>(identity, [](T a, T b) { return a < b ? b : a; });
}

RawAggregatorPtr countAggregator();
RawAggregatorPtr boolAndAggregator();
RawAggregatorPtr boolOrAggregator();

/// Read-only view over a step's final aggregator values.
class AggregateReader {
 public:
  explicit AggregateReader(const std::map<std::string, Bytes>* finals)
      : finals_(finals) {}

  [[nodiscard]] std::optional<Bytes> raw(const std::string& name) const {
    if (finals_ == nullptr) {
      return std::nullopt;
    }
    auto it = finals_->find(name);
    if (it == finals_->end()) {
      return std::nullopt;
    }
    return it->second;
  }

  template <typename T>
  [[nodiscard]] std::optional<T> get(const std::string& name) const {
    auto r = raw(name);
    if (!r) {
      return std::nullopt;
    }
    return decodeFromBytes<T>(*r);
  }

 private:
  const std::map<std::string, Bytes>* finals_;
};

/// Mutable per-part partial aggregation state used inside a step.
class AggregatorSet {
 public:
  explicit AggregatorSet(
      const std::map<std::string, RawAggregatorPtr>* techniques)
      : techniques_(techniques) {}

  /// Contribute one value to the named aggregator.
  void add(const std::string& name, BytesView value);

  /// Merge another set's partials into this one.
  void merge(const AggregatorSet& other);

  /// Finalize: every declared aggregator gets a value (identity when no
  /// contributions were made).
  [[nodiscard]] std::map<std::string, Bytes> finalize() const;

  [[nodiscard]] bool empty() const { return partials_.empty(); }

 private:
  const RawAggregator& techniqueFor(const std::string& name) const;

  const std::map<std::string, RawAggregatorPtr>* techniques_;
  std::map<std::string, Bytes> partials_;
};

}  // namespace ripple::ebsp
