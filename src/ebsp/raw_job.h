// The raw (byte-level) job model the engines execute.
//
// Application code normally uses the typed layer in ebsp/job.h, which
// adapts a Job<Key, State, Message, OutK, OutV> down to this
// representation through Codec<T>.  Keeping the engines non-templated
// means they compile once, and the byte boundary is exactly the paper's
// K/V data model.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "ebsp/aggregator.h"
#include "ebsp/properties.h"
#include "obs/metrics.h"

namespace ripple::ebsp {

/// Facilities available to a compute invocation (paper Listing 3).
class RawComputeContext {
 public:
  virtual ~RawComputeContext() = default;

  /// Step number, starting at 1 for the first step.  The no-sync engine
  /// reports 0 (there are no steps without barriers).
  [[nodiscard]] virtual int stepNum() const = 0;

  /// The component's key.
  [[nodiscard]] virtual BytesView key() const = 0;

  /// Read this component's entry in state table `tabIdx` (index into the
  /// job's state table list).
  [[nodiscard]] virtual std::optional<Bytes> readState(int tabIdx) = 0;

  /// Write this component's entry in state table `tabIdx`.
  virtual void writeState(int tabIdx, BytesView state) = 0;

  /// Delete this component's entry in state table `tabIdx`.
  virtual void deleteState(int tabIdx) = 0;

  /// Request creation of ANOTHER component's state.  Applied at the next
  /// barrier; conflicting creations are merged by combine2states.
  virtual void createState(int tabIdx, BytesView key, BytesView state) = 0;

  /// Messages delivered to this component this step.
  [[nodiscard]] virtual const std::vector<Bytes>& inputMessages() const = 0;

  /// Send a message for delivery in the following step.
  virtual void outputMessage(BytesView destKey, BytesView payload) = 0;

  /// Contribute a value to a named aggregator.
  virtual void aggregateValue(const std::string& name, BytesView value) = 0;

  /// Read the previous step's final value of a named aggregator.
  [[nodiscard]] virtual std::optional<Bytes> aggregateResult(
      const std::string& name) const = 0;

  /// Read an entry of the job's broadcast (ubiquitous) table.
  [[nodiscard]] virtual std::optional<Bytes> broadcastDatum(
      BytesView key) = 0;

  /// Emit a direct-job-output pair (paper §II: "a distinct set of
  /// key-value pairs output by compute invocations and handled in a
  /// client-specified way").
  virtual void directOutput(BytesView key, BytesView value) = 0;

  /// True when this run takes barrier checkpoints.  The checkpoint
  /// captures the state tables, so a compute that caches live state
  /// outside them between invocations (the paper's "local operations do
  /// not marshal" contract) must write it back before returning — a
  /// checkpoint of a stale table would replay from the wrong state.
  [[nodiscard]] virtual bool checkpointed() const { return false; }
};

/// The compute triple (paper Listing 2).  combineMessages is optional
/// (empty std::function = no combiner; the engine then collects message
/// lists).  combineStates resolves conflicting createState requests.
///
/// Combining at the byte boundary re-encodes the full merged message per
/// pairwise call, which is quadratic for fan-in onto a message carrying
/// bulk data (e.g. PageRank's structure+rank self message).  The optional
/// accumulator API (combineBegin/Add/Finish) lets the typed layer keep a
/// decoded accumulator alive across a combining run and encode once — the
/// cost profile of an in-memory object store's combiner.  When set, the
/// engines prefer it; combineMessages remains the semantic definition.
struct RawCompute {
  using CombineAcc = std::shared_ptr<void>;

  /// Returns the continue signal: true to be enabled next step.
  std::function<bool(RawComputeContext&)> compute;

  /// Pairwise message combiner (key, m1, m2) -> combined message.  The
  /// platform may apply it at arbitrary times and places.
  std::function<Bytes(BytesView key, BytesView m1, BytesView m2)>
      combineMessages;

  /// Accumulator combining: begin(key, first) opens an accumulator from
  /// the first message; add folds further messages in place; finish
  /// encodes the combined message.
  std::function<CombineAcc(BytesView key, BytesView first)> combineBegin;
  std::function<void(const CombineAcc&, BytesView key, BytesView next)>
      combineAdd;
  std::function<Bytes(const CombineAcc&, BytesView key)> combineFinish;

  /// Merge of conflicting new component states (key, s1, s2) -> merged.
  std::function<Bytes(BytesView key, BytesView s1, BytesView s2)>
      combineStates;

  /// Called after the engine restores from a checkpoint, before any
  /// replayed invocation.  A compute that caches live state between
  /// invocations must drop the cache here: the cached objects are AHEAD
  /// of the restored tables (they remember sends and multiplies whose
  /// messages died with the failure), and replaying against them would
  /// skip the re-sends the restored state calls for.  Optional.
  std::function<void()> onRecovery;

  [[nodiscard]] bool hasCombiner() const {
    return static_cast<bool>(combineMessages) ||
           static_cast<bool>(combineBegin);
  }
};

/// Aborter: invoked between steps with the step's aggregate results;
/// returning true stops execution immediately (paper §II).
using Aborter = std::function<bool(const AggregateReader&, int stepNum)>;

/// What a loader may do while establishing a job's initial condition
/// (paper §II: initial message set, table population, enabling additional
/// components, aggregator input).
class LoaderContext {
 public:
  virtual ~LoaderContext() = default;

  virtual void emitMessage(BytesView destKey, BytesView payload) = 0;
  virtual void enableComponent(BytesView key) = 0;
  virtual void putState(int tabIdx, BytesView key, BytesView state) = 0;
  virtual void aggregateValue(const std::string& name, BytesView value) = 0;
};

/// A source of initial condition data (marker interface Loader in the
/// paper; this is the method every concrete loader interface shares).
class RawLoader {
 public:
  virtual ~RawLoader() = default;
  virtual void load(LoaderContext& ctx) = 0;
};

using RawLoaderPtr = std::shared_ptr<RawLoader>;

/// Consumes final key/value pairs of a state table, or direct job output
/// (paper §II: Exporter "specifies what to do with each key-value pair").
/// consume may be called from multiple threads; implementations either
/// synchronize or request serial delivery via wantsSerial().
class RawExporter {
 public:
  virtual ~RawExporter() = default;
  virtual void consume(BytesView key, BytesView value) = 0;
  virtual void finish() {}
  [[nodiscard]] virtual bool wantsSerial() const { return true; }
};

using RawExporterPtr = std::shared_ptr<RawExporter>;

/// The raw job description (paper Listing 1).
struct RawJob {
  /// State tables, by name; compute addresses them by index into this
  /// list.  They are created by the engine (consistently partitioned with
  /// the reference table) if they do not already exist.
  std::vector<std::string> stateTableNames;

  RawCompute compute;

  /// Named aggregators.
  std::map<std::string, RawAggregatorPtr> aggregators;

  /// The table whose partitioning places the job's components.  Must
  /// exist, or be listed in stateTableNames (it is then created).
  std::string referenceTable;

  /// Ubiquitous table holding the job's immutable broadcast data; empty
  /// if none.
  std::string broadcastTable;

  /// Declared properties (the detected pair is derived by the engine).
  JobProperties properties;

  /// Optional early-termination callback; null = no-client-sync.
  Aborter aborter;

  /// Initial condition sources.
  std::vector<RawLoaderPtr> loaders;

  /// Exporters for final state tables: map from state table index to the
  /// exporter for that table's final contents.
  std::map<int, RawExporterPtr> writers;

  /// Exporter for direct job output; null if the job emits none.
  RawExporterPtr directOutputter;
};

/// Per-run metrics (message/IO accounting referenced by EXPERIMENTS.md).
struct EngineMetrics {
  std::uint64_t steps = 0;
  std::uint64_t computeInvocations = 0;
  std::uint64_t messagesSent = 0;
  std::uint64_t messagesDelivered = 0;
  std::uint64_t combinerCalls = 0;
  std::uint64_t spillsWritten = 0;
  std::uint64_t spillBytes = 0;
  std::uint64_t stateReads = 0;
  std::uint64_t stateWrites = 0;
  std::uint64_t barriers = 0;
  std::uint64_t directOutputs = 0;
  std::uint64_t creations = 0;
  std::uint64_t stolenMessages = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;
  /// Messages into / combined records out of the sender-side combining
  /// stage (both 0 when the job declares no combiner).
  std::uint64_t combineIn = 0;
  std::uint64_t combineOut = 0;
};

/// Execution results (paper §II: final aggregator results and the number
/// of steps taken are supplied to the client; final states live in the
/// K/V store and are also pushed through writers).
struct JobResult {
  int steps = 0;
  std::map<std::string, Bytes> aggregatorFinals;
  bool aborted = false;

  /// Virtual-cluster makespan in seconds (see src/sim/), 0 when disabled.
  double virtualMakespan = 0;

  /// Wall-clock seconds of the run.
  double elapsedSeconds = 0;

  EngineMetrics metrics;

  template <typename T>
  [[nodiscard]] std::optional<T> aggregate(const std::string& name) const {
    AggregateReader reader(&aggregatorFinals);
    return reader.get<T>(name);
  }
};

/// Throws std::invalid_argument on malformed jobs.
void validateRawJob(const RawJob& job);

/// Combine the declared properties with the detected pair (no-agg,
/// no-client-sync).
[[nodiscard]] EffectiveProperties deriveProperties(const RawJob& job);

/// Fold a finished run's EngineMetrics into `registry` counters under the
/// `ebsp.*` naming scheme (ebsp.steps, ebsp.invocations, ...).  Both
/// engines call this once per run; counters accumulate across runs that
/// share a registry.
void foldEngineMetrics(obs::MetricsRegistry& registry,
                       const EngineMetrics& metrics);

}  // namespace ripple::ebsp
