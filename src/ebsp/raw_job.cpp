#include "ebsp/raw_job.h"

#include <stdexcept>

namespace ripple::ebsp {

void validateRawJob(const RawJob& job) {
  if (!job.compute.compute) {
    throw std::invalid_argument("RawJob: compute function is required");
  }
  if (job.referenceTable.empty()) {
    throw std::invalid_argument("RawJob: referenceTable is required");
  }
  for (const auto& [idx, writer] : job.writers) {
    if (idx < 0 || idx >= static_cast<int>(job.stateTableNames.size())) {
      throw std::invalid_argument("RawJob: writer index out of range");
    }
    if (!writer) {
      throw std::invalid_argument("RawJob: null writer");
    }
  }
  for (const auto& [name, agg] : job.aggregators) {
    if (!agg) {
      throw std::invalid_argument("RawJob: null aggregator '" + name + "'");
    }
  }
}

EffectiveProperties deriveProperties(const RawJob& job) {
  EffectiveProperties p;
  p.declared = job.properties;
  p.noAgg = job.aggregators.empty();
  p.noClientSync = !static_cast<bool>(job.aborter);
  return p;
}

void foldEngineMetrics(obs::MetricsRegistry& registry,
                       const EngineMetrics& metrics) {
  registry.counter("ebsp.steps").add(metrics.steps);
  registry.counter("ebsp.invocations").add(metrics.computeInvocations);
  registry.counter("ebsp.messages_sent").add(metrics.messagesSent);
  registry.counter("ebsp.messages_delivered").add(metrics.messagesDelivered);
  registry.counter("ebsp.combiner_calls").add(metrics.combinerCalls);
  registry.counter("ebsp.spills").add(metrics.spillsWritten);
  registry.counter("ebsp.spill_bytes").add(metrics.spillBytes);
  registry.counter("ebsp.state_reads").add(metrics.stateReads);
  registry.counter("ebsp.state_writes").add(metrics.stateWrites);
  registry.counter("ebsp.barriers").add(metrics.barriers);
  registry.counter("ebsp.direct_outputs").add(metrics.directOutputs);
  registry.counter("ebsp.creations").add(metrics.creations);
  registry.counter("ebsp.stolen_messages").add(metrics.stolenMessages);
  registry.counter("ebsp.checkpoints").add(metrics.checkpoints);
  registry.counter("ebsp.recoveries").add(metrics.recoveries);
  registry.counter("combine.in").add(metrics.combineIn);
  registry.counter("combine.out").add(metrics.combineOut);
}

}  // namespace ripple::ebsp
