#include "ebsp/raw_job.h"

#include <stdexcept>

namespace ripple::ebsp {

void validateRawJob(const RawJob& job) {
  if (!job.compute.compute) {
    throw std::invalid_argument("RawJob: compute function is required");
  }
  if (job.referenceTable.empty()) {
    throw std::invalid_argument("RawJob: referenceTable is required");
  }
  for (const auto& [idx, writer] : job.writers) {
    if (idx < 0 || idx >= static_cast<int>(job.stateTableNames.size())) {
      throw std::invalid_argument("RawJob: writer index out of range");
    }
    if (!writer) {
      throw std::invalid_argument("RawJob: null writer");
    }
  }
  for (const auto& [name, agg] : job.aggregators) {
    if (!agg) {
      throw std::invalid_argument("RawJob: null aggregator '" + name + "'");
    }
  }
}

EffectiveProperties deriveProperties(const RawJob& job) {
  EffectiveProperties p;
  p.declared = job.properties;
  p.noAgg = job.aggregators.empty();
  p.noClientSync = !static_cast<bool>(job.aborter);
  return p;
}

}  // namespace ripple::ebsp
