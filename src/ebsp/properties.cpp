#include "ebsp/properties.h"

#include <sstream>

namespace ripple::ebsp {

std::string EffectiveProperties::describe() const {
  std::ostringstream out;
  auto flag = [&](const char* name, bool v) {
    if (v) {
      out << name << ' ';
    }
  };
  flag("needs-order", declared.needsOrder);
  flag("no-continue", declared.noContinue);
  flag("one-msg", declared.oneMsg);
  flag("rare-state", declared.rareState);
  flag("no-ss-order", declared.noSsOrder);
  flag("incremental", declared.incremental);
  flag("deterministic", declared.deterministic);
  flag("no-agg", noAgg);
  flag("no-client-sync", noClientSync);
  out << "=> ";
  flag("no-sort", noSort());
  flag("no-collect", noCollect());
  flag("run-anywhere", runAnywhere());
  flag("no-sync", noSync());
  flag("fast-recovery", fastRecovery());
  return out.str();
}

}  // namespace ripple::ebsp
