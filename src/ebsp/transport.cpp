#include "ebsp/transport.h"

#include <utility>

namespace ripple::ebsp {

PartitionerPtr makeTransportPartitioner(std::uint32_t parts) {
  return std::make_shared<const Partitioner>(
      parts, [](BytesView key) -> std::uint64_t {
        ByteReader r(key);
        return r.getFixed32();
      });
}

kv::Key makeSpillKey(std::uint32_t destPart, std::uint32_t senderPart,
                     std::uint64_t seq) {
  ByteWriter w(16);
  w.putFixed32(destPart);
  w.putFixed32(senderPart);
  w.putFixed64(seq);
  return w.take();
}

bool spillKeyLess(BytesView a, BytesView b) {
  ByteReader ra(a);
  ByteReader rb(b);
  ra.getFixed32();  // Skip destPart: callers compare within one part.
  rb.getFixed32();
  const std::uint32_t senderA = ra.getFixed32();
  const std::uint32_t senderB = rb.getFixed32();
  if (senderA != senderB) {
    return senderA < senderB;
  }
  return ra.getFixed64() < rb.getFixed64();
}

Bytes encodeSpill(const std::vector<TransportRecord>& records) {
  ByteWriter w;
  w.putVarint(records.size());
  for (const TransportRecord& rec : records) {
    w.putU8(static_cast<std::uint8_t>(rec.kind));
    w.putBytes(rec.key);
    switch (rec.kind) {
      case RecordKind::kMessage:
        w.putBytes(rec.payload);
        break;
      case RecordKind::kEnable:
        break;
      case RecordKind::kCreate:
        w.putVarintSigned(rec.tabIdx);
        w.putBytes(rec.payload);
        break;
    }
  }
  return w.take();
}

void decodeSpill(BytesView spill,
                 const std::function<void(TransportRecord&&)>& sink) {
  ByteReader r(spill);
  const auto n = static_cast<std::size_t>(r.getVarint());
  for (std::size_t i = 0; i < n; ++i) {
    TransportRecord rec;
    rec.kind = static_cast<RecordKind>(r.getU8());
    rec.key = Bytes(r.getBytes());
    switch (rec.kind) {
      case RecordKind::kMessage:
        rec.payload = Bytes(r.getBytes());
        break;
      case RecordKind::kEnable:
        break;
      case RecordKind::kCreate:
        rec.tabIdx = static_cast<int>(r.getVarintSigned());
        rec.payload = Bytes(r.getBytes());
        break;
      default:
        throw CodecError("decodeSpill: unknown record kind");
    }
    sink(std::move(rec));
  }
  if (!r.atEnd()) {
    throw CodecError("decodeSpill: trailing bytes");
  }
}

void CombineSlot::addMessage(const CombinerOps& ops, BytesView key,
                             BytesView payload) {
  if (empty()) {
    hasFirst_ = true;
    first_ = Bytes(payload);
    return;
  }
  if (ops.accumulating()) {
    if (!acc_) {
      acc_ = ops.begin(key, first_);
      hasFirst_ = false;
      first_.clear();
    }
    ops.add(acc_, key, payload);
    return;
  }
  first_ = ops.pairwise(key, first_, payload);
}

Bytes CombineSlot::take(const CombinerOps& ops, BytesView key) {
  if (acc_) {
    Bytes out = ops.finish(acc_, key);
    acc_.reset();
    return out;
  }
  hasFirst_ = false;
  return std::move(first_);
}

SpillWriter::SpillWriter(kv::Table& transport, std::uint32_t senderPart,
                         PartitionerPtr refPartitioner, CombinerOps combiner,
                         std::size_t maxBatch)
    : transport_(transport), senderPart_(senderPart),
      refPartitioner_(std::move(refPartitioner)),
      combiner_(std::move(combiner)), maxBatch_(maxBatch),
      buffers_(transport.numParts()), combined_(transport.numParts()) {}

void SpillWriter::addMessage(BytesView destKey, BytesView payload) {
  ++messages_;
  const std::uint32_t destPart = destPartOf_(destKey);
  if (combiner_) {
    ++combineIn_;
    auto& m = combined_[destPart];
    auto it = m.find(Bytes(destKey));
    if (it == m.end()) {
      it = m.emplace(Bytes(destKey), CombineSlot{}).first;
    } else {
      ++combinerCalls_;
    }
    it->second.addMessage(combiner_, destKey, payload);
    return;
  }
  TransportRecord rec;
  rec.kind = RecordKind::kMessage;
  rec.key = Bytes(destKey);
  rec.payload = Bytes(payload);
  add(destPart, std::move(rec));
}

void SpillWriter::addEnable(BytesView destKey) {
  TransportRecord rec;
  rec.kind = RecordKind::kEnable;
  rec.key = Bytes(destKey);
  add(destPartOf_(destKey), std::move(rec));
}

void SpillWriter::addCreate(int tabIdx, BytesView destKey, BytesView state) {
  TransportRecord rec;
  rec.kind = RecordKind::kCreate;
  rec.key = Bytes(destKey);
  rec.payload = Bytes(state);
  rec.tabIdx = tabIdx;
  add(destPartOf_(destKey), std::move(rec));
}

void SpillWriter::add(std::uint32_t destPart, TransportRecord record) {
  auto& buf = buffers_[destPart];
  buf.push_back(std::move(record));
  if (buf.size() >= maxBatch_) {
    flushPart(destPart);
  }
}

void SpillWriter::flushPart(std::uint32_t destPart) {
  auto& buf = buffers_[destPart];
  if (buf.empty()) {
    return;
  }
  const Bytes spill = encodeSpill(buf);
  const kv::Key key = makeSpillKey(destPart, senderPart_, seq_++);
  if (retrier_ != nullptr) {
    (*retrier_)([&] { transport_.put(key, spill); });
  } else {
    transport_.put(key, spill);
  }
  bytes_ += spill.size();
  ++spills_;
  buf.clear();
}

void SpillWriter::flushAll() {
  // Move combined messages into the record buffers first.
  for (std::uint32_t part = 0; part < combined_.size(); ++part) {
    for (auto& [key, slot] : combined_[part]) {
      TransportRecord rec;
      rec.kind = RecordKind::kMessage;
      rec.key = key;
      rec.payload = slot.take(combiner_, key);
      ++combineOut_;
      buffers_[part].push_back(std::move(rec));
      if (buffers_[part].size() >= maxBatch_) {
        flushPart(part);
      }
    }
    combined_[part].clear();
  }
  for (std::uint32_t part = 0;
       part < static_cast<std::uint32_t>(buffers_.size()); ++part) {
    flushPart(part);
  }
}

Bytes encodeCollected(const CollectedValue& v) {
  ByteWriter w;
  w.putBool(v.enabled);
  w.putVarint(v.messages.size());
  for (const Bytes& m : v.messages) {
    w.putBytes(m);
  }
  return w.take();
}

CollectedValue decodeCollected(BytesView data) {
  ByteReader r(data);
  CollectedValue v;
  v.enabled = r.getBool();
  const auto n = static_cast<std::size_t>(r.getVarint());
  v.messages.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.messages.emplace_back(r.getBytes());
  }
  return v;
}

}  // namespace ripple::ebsp
