// Failure recovery for synchronized jobs (paper §IV-A outline).
//
// "Add a table that maps shard ID to completed step number, and commit
// transactions in the right order; recover from primary shard failure by
// deleting writes done by the failed shard(s) and retry."
//
// This implementation snapshots each part's state tables and collection
// table at a barrier (the snapshot plays the role of the replicated
// shard), records the completed step per shard, and on failure restores
// every part from the snapshot and replays forward.  The ordering rule is
// respected by writing all shadow data before the shard-step record.
//
// The `deterministic` job property (paper §II-A) enables the fast-recovery
// optimization: deterministic jobs may checkpoint every k-th barrier and
// replay the gap (replayed steps recompute identical results); jobs
// without the property are checkpointed at every barrier so that no
// nondeterministic step is ever re-executed.

#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "kvstore/table.h"
#include "obs/trace.h"

namespace ripple::ebsp {

struct CheckpointConfig {
  bool enabled = false;

  /// Checkpoint every `interval` barriers.  Forced to 1 for jobs that are
  /// not declared deterministic.
  int interval = 1;

  /// Keep the snapshot in DRIVER memory instead of shadow tables.  Shadow
  /// tables shard onto the same place as their primaries, so on a remote
  /// backend a server crash loses a part's primary and shadow together;
  /// the driver-side mirror survives the crash and restore() re-seeds the
  /// restarted server's fresh incarnation.  Forced on when the engine's
  /// store backend is "remote".
  bool driverMirror = false;

  /// Stable checkpoint identity.  Empty derives one from the engine's
  /// process-local run counter, which is fine within a process; a run
  /// that should be resumable across a process restart (durable store)
  /// must pin an explicit id so the restarted run finds the shadows the
  /// crashed one left behind.
  std::string jobId;

  /// Adopt a pre-existing on-store checkpoint: before loading initial
  /// state the engine probes hasCheckpoint() and, when one is complete,
  /// restores it and resumes from the recorded step instead of starting
  /// over.  Requires a stable `jobId`.  With no checkpoint present the
  /// run starts from scratch — resume is idempotent over fresh stores.
  bool resume = false;
};

/// Thrown by failure-injection hooks; the engine catches it and recovers.
class SimulatedFailure : public std::runtime_error {
 public:
  explicit SimulatedFailure(const std::string& what)
      : std::runtime_error(what) {}
};

class Checkpointer {
 public:
  /// `tables` is every table whose content defines the job's restartable
  /// state: the job's state tables plus the engine's collection table.
  /// `driverMirror` selects the in-memory snapshot (see CheckpointConfig).
  Checkpointer(kv::KVStorePtr store, std::string jobId,
               std::vector<kv::TablePtr> tables, kv::TablePtr placement,
               bool driverMirror = false);

  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Optional span collector: checkpoint() and restore() record
  /// checkpoint/restore spans carrying the step and the bytes copied.
  /// Null (the default) disables tracing; not owned.
  void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Snapshot all tables and record `completedStep` plus the aggregator
  /// finals.  Called at a barrier, after the collection for step
  /// completedStep+1 has been built.
  void checkpoint(int completedStep,
                  const std::map<std::string, Bytes>& aggFinals);

  /// True if a complete checkpoint exists.
  [[nodiscard]] bool hasCheckpoint() const;

  /// Restore all tables from the snapshot; returns the recorded step and
  /// outputs the aggregator finals.  Throws if no checkpoint exists.
  int restore(std::map<std::string, Bytes>& aggFinals);

  /// Drop all shadow tables.
  void cleanup();

 private:
  using PartSnapshot = std::vector<std::pair<kv::Key, kv::Value>>;

  [[nodiscard]] std::string shadowName(std::size_t i) const;

  void checkpointToMirror(int completedStep,
                          const std::map<std::string, Bytes>& aggFinals,
                          std::atomic<std::uint64_t>& bytesCopied);
  int restoreFromMirror(std::map<std::string, Bytes>& aggFinals,
                        std::atomic<std::uint64_t>& bytesCopied);

  kv::KVStorePtr store_;
  std::string jobId_;
  std::vector<kv::TablePtr> tables_;
  std::vector<kv::TablePtr> shadows_;
  kv::TablePtr placement_;
  kv::TablePtr meta_;  // shard -> completed step; plus aggregator finals.

  // Driver-mirror mode: the snapshot lives here instead of shadow tables.
  // mirror_[table][part] holds that part's pairs in enumeration order.
  // Staged per-part under runInParts (distinct slots, no data race), then
  // committed by swap — a checkpoint that dies mid-copy (e.g. a server
  // crash during enumeratePart) leaves the previous snapshot intact.
  const bool driverMirror_;
  std::vector<std::vector<PartSnapshot>> mirror_;
  std::map<std::string, Bytes> mirrorAggs_;
  int mirrorStep_ = -1;
  // Bumped per checkpoint; see epoch markers.  Atomic so checkpoint and
  // escalation paths racing under an engine pool read a coherent epoch.
  std::atomic<std::uint64_t> epoch_{0};
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace ripple::ebsp
