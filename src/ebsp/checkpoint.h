// Failure recovery for synchronized jobs (paper §IV-A outline).
//
// "Add a table that maps shard ID to completed step number, and commit
// transactions in the right order; recover from primary shard failure by
// deleting writes done by the failed shard(s) and retry."
//
// This implementation snapshots each part's state tables and collection
// table at a barrier (the snapshot plays the role of the replicated
// shard), records the completed step per shard, and on failure restores
// every part from the snapshot and replays forward.  The ordering rule is
// respected by writing all shadow data before the shard-step record.
//
// The `deterministic` job property (paper §II-A) enables the fast-recovery
// optimization: deterministic jobs may checkpoint every k-th barrier and
// replay the gap (replayed steps recompute identical results); jobs
// without the property are checkpointed at every barrier so that no
// nondeterministic step is ever re-executed.

#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "kvstore/table.h"
#include "obs/trace.h"

namespace ripple::ebsp {

struct CheckpointConfig {
  bool enabled = false;

  /// Checkpoint every `interval` barriers.  Forced to 1 for jobs that are
  /// not declared deterministic.
  int interval = 1;
};

/// Thrown by failure-injection hooks; the engine catches it and recovers.
class SimulatedFailure : public std::runtime_error {
 public:
  explicit SimulatedFailure(const std::string& what)
      : std::runtime_error(what) {}
};

class Checkpointer {
 public:
  /// `tables` is every table whose content defines the job's restartable
  /// state: the job's state tables plus the engine's collection table.
  Checkpointer(kv::KVStorePtr store, std::string jobId,
               std::vector<kv::TablePtr> tables, kv::TablePtr placement);

  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Optional span collector: checkpoint() and restore() record
  /// checkpoint/restore spans carrying the step and the bytes copied.
  /// Null (the default) disables tracing; not owned.
  void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Snapshot all tables and record `completedStep` plus the aggregator
  /// finals.  Called at a barrier, after the collection for step
  /// completedStep+1 has been built.
  void checkpoint(int completedStep,
                  const std::map<std::string, Bytes>& aggFinals);

  /// True if a complete checkpoint exists.
  [[nodiscard]] bool hasCheckpoint() const;

  /// Restore all tables from the snapshot; returns the recorded step and
  /// outputs the aggregator finals.  Throws if no checkpoint exists.
  int restore(std::map<std::string, Bytes>& aggFinals);

  /// Drop all shadow tables.
  void cleanup();

 private:
  [[nodiscard]] std::string shadowName(std::size_t i) const;

  kv::KVStorePtr store_;
  std::string jobId_;
  std::vector<kv::TablePtr> tables_;
  std::vector<kv::TablePtr> shadows_;
  kv::TablePtr placement_;
  kv::TablePtr meta_;  // shard -> completed step; plus aggregator finals.
  // Bumped per checkpoint; see epoch markers.  Atomic so checkpoint and
  // escalation paths racing under an engine pool read a coherent epoch.
  std::atomic<std::uint64_t> epoch_{0};
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace ripple::ebsp
