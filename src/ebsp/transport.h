// Transport-table spill machinery (paper §IV-A).
//
// "BSP messages are transported in batches called spills.  Our prototype
// implementation uses a table, called the transport table, to move the
// spills between parts.  Each spill from part S to part D is written to
// the transport table with a new unique key that is constructed to be
// located in part D."
//
// Three record kinds cross a barrier: ordinary messages, enablement
// control records (the continue signal transformed into "a special kind
// of BSP message"), and deferred component-creation requests.

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "ebsp/raw_job.h"
#include "fault/retry.h"
#include "kvstore/table.h"

namespace ripple::ebsp {

/// The combining strategy extracted from a RawCompute: the accumulator
/// API when available, the pairwise function otherwise.
struct CombinerOps {
  std::function<Bytes(BytesView, BytesView, BytesView)> pairwise;
  std::function<RawCompute::CombineAcc(BytesView, BytesView)> begin;
  std::function<void(const RawCompute::CombineAcc&, BytesView, BytesView)>
      add;
  std::function<Bytes(const RawCompute::CombineAcc&, BytesView)> finish;

  CombinerOps() = default;

  /// Pairwise-only (convenience for tests/benches).
  CombinerOps(  // NOLINT(google-explicit-constructor)
      std::function<Bytes(BytesView, BytesView, BytesView)> p)
      : pairwise(std::move(p)) {}

  [[nodiscard]] static CombinerOps fromCompute(const RawCompute& compute) {
    CombinerOps ops;
    ops.pairwise = compute.combineMessages;
    ops.begin = compute.combineBegin;
    ops.add = compute.combineAdd;
    ops.finish = compute.combineFinish;
    return ops;
  }

  [[nodiscard]] explicit operator bool() const {
    return static_cast<bool>(pairwise) || accumulating();
  }

  [[nodiscard]] bool accumulating() const {
    return begin && add && finish;
  }
};

/// Per-destination-key combining state: the first message is kept as raw
/// bytes; a second message opens the accumulator (or folds pairwise), so
/// singleton destinations never pay a decode/encode round trip.
class CombineSlot {
 public:
  void addMessage(const CombinerOps& ops, BytesView key, BytesView payload);

  /// The combined message.  Leaves the slot empty.
  [[nodiscard]] Bytes take(const CombinerOps& ops, BytesView key);

  [[nodiscard]] bool empty() const { return !hasFirst_ && !acc_; }

 private:
  bool hasFirst_ = false;
  Bytes first_;
  RawCompute::CombineAcc acc_;
};

enum class RecordKind : std::uint8_t {
  kMessage = 0,
  kEnable = 1,
  kCreate = 2,
};

struct TransportRecord {
  RecordKind kind = RecordKind::kMessage;
  Bytes key;      // Destination component key.
  Bytes payload;  // Message payload / created state (empty for kEnable).
  int tabIdx = 0; // State table index for kCreate.
};

/// Partitioner for the transport table: keys carry their destination part
/// in the leading 4 bytes.
[[nodiscard]] PartitionerPtr makeTransportPartitioner(std::uint32_t parts);

/// Construct a spill key located in `destPart`.
[[nodiscard]] kv::Key makeSpillKey(std::uint32_t destPart,
                                   std::uint32_t senderPart,
                                   std::uint64_t seq);

/// Canonical spill order within one destination part: (sender part,
/// sender sequence).  Parallel senders interleave their transport puts
/// arbitrarily, so the collect phase sorts drained spills with this
/// comparator before folding — the merge order (and therefore every
/// combiner fold and FP sum downstream) is identical at any thread count.
[[nodiscard]] bool spillKeyLess(BytesView a, BytesView b);

/// Encode/decode a batch of records (one spill value).
[[nodiscard]] Bytes encodeSpill(const std::vector<TransportRecord>& records);
void decodeSpill(BytesView spill,
                 const std::function<void(TransportRecord&&)>& sink);

/// Accumulates one source part's outgoing records for a step, batching
/// them into spills.  When a message combiner is supplied, messages to the
/// same destination key are combined eagerly at the sender ("the platform
/// may combine some of them ... at arbitrary times and places").
class SpillWriter {
 public:
  /// `refPartitioner` maps destination COMPONENT keys to parts (the
  /// reference table's partitioner); `maxBatch` counts records per
  /// destination part before a flush.
  SpillWriter(kv::Table& transport, std::uint32_t senderPart,
              PartitionerPtr refPartitioner, CombinerOps combiner,
              std::size_t maxBatch = 4096);

  void addMessage(BytesView destKey, BytesView payload);
  void addEnable(BytesView destKey);
  void addCreate(int tabIdx, BytesView destKey, BytesView state);

  /// Retry each transport put through `retrier` (not owned; null
  /// disables).  A retried put is safe: a failed put wrote nothing
  /// (fail-before injection) and spill keys are unique, so the re-put is
  /// exact.
  void setRetrier(fault::Retrier* retrier) { retrier_ = retrier; }

  /// Write out all buffered records.  Must be called before the barrier.
  void flushAll();

  [[nodiscard]] std::uint64_t messagesAdded() const { return messages_; }
  [[nodiscard]] std::uint64_t combinerCalls() const { return combinerCalls_; }
  [[nodiscard]] std::uint64_t spillsWritten() const { return spills_; }
  [[nodiscard]] std::uint64_t bytesWritten() const { return bytes_; }

  /// Messages that entered the sender-side combining stage, and combined
  /// records that left it (their difference is the traffic saved).  Both
  /// stay 0 when the job declares no combiner.
  [[nodiscard]] std::uint64_t combineIn() const { return combineIn_; }
  [[nodiscard]] std::uint64_t combineOut() const { return combineOut_; }

 private:
  void add(std::uint32_t destPart, TransportRecord record);
  void flushPart(std::uint32_t destPart);

  [[nodiscard]] std::uint32_t destPartOf_(BytesView destKey) const {
    return refPartitioner_->partOf(destKey);
  }

  kv::Table& transport_;
  fault::Retrier* retrier_ = nullptr;
  std::uint32_t senderPart_;
  PartitionerPtr refPartitioner_;
  CombinerOps combiner_;
  std::size_t maxBatch_;
  std::uint64_t seq_ = 0;

  // Per destination part: plain record buffer, and (when combining) a
  // destKey -> combining slot map for kMessage records.
  std::vector<std::vector<TransportRecord>> buffers_;
  std::vector<std::unordered_map<Bytes, CombineSlot>> combined_;

  std::uint64_t messages_ = 0;
  std::uint64_t combinerCalls_ = 0;
  std::uint64_t spills_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t combineIn_ = 0;
  std::uint64_t combineOut_ = 0;
};

/// Value stored in the collection table for one component: the enablement
/// flag plus the collected message list.
struct CollectedValue {
  bool enabled = false;
  std::vector<Bytes> messages;
};

[[nodiscard]] Bytes encodeCollected(const CollectedValue& v);
[[nodiscard]] CollectedValue decodeCollected(BytesView data);

}  // namespace ripple::ebsp
