#include "ebsp/engine.h"

#include "common/logging.h"
#include "net/remote_queue.h"
#include "net/remote_store.h"

namespace ripple::ebsp {

kv::KVStorePtr makeEngineStore(const EngineOptions& options,
                               std::uint32_t containers) {
  if (kv::resolveStoreBackend(options.storeBackend) ==
      kv::StoreBackend::kRemote) {
    // Route through the net-aware factory so the engine's wire-timeout
    // knobs reach the client/server options (makeStore has no channel
    // for them).
    net::NetTuning tuning;
    tuning.timeoutMs = options.netTimeoutMs;
    tuning.redialMs = options.netRedialMs;
    tuning.queueWaitMs = options.netQueueWaitMs;
    return net::makeRemoteStoreFromEnv(containers, tuning);
  }
  return kv::makeStore(options.storeBackend, containers, options.storePath,
                       options.storeMemoryBytes);
}

Engine::Engine(kv::KVStorePtr store, EngineOptions options)
    : store_(std::move(store)), options_(std::move(options)) {
  if (!options_.queuing) {
    // A remote store's queues must live on its servers (an in-memory set
    // would keep messages driver-local and break multi-process runs).
    if (std::dynamic_pointer_cast<net::RemoteStore>(store_)) {
      options_.queuing = net::makeRemoteQueuing(store_);
    } else {
      options_.queuing = mq::makeMemQueuing(store_);
    }
  }
}

bool Engine::wouldRunNoSync(const RawJob& job) const {
  switch (options_.mode) {
    case ExecutionMode::kSynchronized:
      return false;
    case ExecutionMode::kNoSync:
      return true;
    case ExecutionMode::kAuto:
      // An onBarrier hook must be able to fire, and only the synchronized
      // strategy has barriers.  (kNoSync + onBarrier is rejected by the
      // AsyncEngine itself.)
      if (options_.onBarrier) {
        return false;
      }
      return deriveProperties(job).noSync();
  }
  return false;
}

JobResult Engine::run(RawJob& job) {
  if (wouldRunNoSync(job)) {
    RIPPLE_DEBUG << "Engine: no-sync execution ("
                 << deriveProperties(job).describe() << ")";
    AsyncEngineOptions async;
    async.costModel = options_.costModel;
    async.virtualTime = options_.virtualTime;
    async.threads = options_.threads;
    async.pollTimeout = options_.pollTimeout;
    async.workStealing = options_.workStealing;
    async.queuing = options_.queuing;
    async.retry = options_.retry;
    async.onStep = options_.onStep;
    async.onBarrier = options_.onBarrier;
    async.tracer = options_.tracer;
    async.metrics = options_.metrics;
    AsyncEngine engine(store_, async);
    return engine.run(job);
  }
  RIPPLE_DEBUG << "Engine: synchronized execution ("
               << deriveProperties(job).describe() << ")";
  SyncEngineOptions sync;
  sync.costModel = options_.costModel;
  sync.virtualTime = options_.virtualTime;
  sync.threads = options_.threads;
  sync.maxSteps = options_.maxSteps;
  sync.spillBatch = options_.spillBatch;
  sync.checkpoint = options_.checkpoint;
  sync.retry = options_.retry;
  sync.onBarrier = options_.onBarrier;
  sync.onStep = options_.onStep;
  sync.tracer = options_.tracer;
  sync.metrics = options_.metrics;
  SyncEngine engine(store_, sync);
  return engine.run(job);
}

}  // namespace ripple::ebsp
