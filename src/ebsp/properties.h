// Job properties and the execution optimizations they enable (paper §II-A).
//
// Nine properties are defined.  Two (no-agg, no-client-sync) are detected
// by Ripple from the job itself before execution; the other seven are
// explicit declarations by the job.  Combinations of properties enable the
// five optimization areas: no-sort, no-collect, run-anywhere, no-sync, and
// deterministic (fast) failure recovery.

#pragma once

#include <string>

namespace ripple::ebsp {

/// Explicitly declared job properties.  Defaults are the conservative
/// choices (every optimization off).
struct JobProperties {
  /// needs-order: collocated compute invocations must be ordered by key.
  bool needsOrder = false;

  /// no-continue: the compute method always returns the negative
  /// continue signal (components are driven purely by messages).
  bool noContinue = false;

  /// one-msg: for a given destination key and step, there is at most one
  /// message.
  bool oneMsg = false;

  /// rare-state: the bandwidth of state access is much less than the
  /// bandwidth of messaging.
  bool rareState = false;

  /// no-ss-order: compute invocations for a given key need not be in
  /// step order.
  bool noSsOrder = false;

  /// incremental: messages for a component may be delivered in any order
  /// and grouping, with no regard for steps, provided per-(sender,
  /// receiver) order is preserved.
  bool incremental = false;

  /// deterministic: the compute function is deterministic, enabling
  /// faster failure recovery.
  bool deterministic = false;
};

/// Properties Ripple detects itself plus the declared ones; the engine
/// front-end fills in the detected pair (paper: "The first two properties
/// can easily be detected by Ripple before it starts actually running the
/// job").
struct EffectiveProperties {
  JobProperties declared;

  /// no-agg: the job has no individual aggregators (detected).
  bool noAgg = false;

  /// no-client-sync: the job has no aborter (detected).
  bool noClientSync = false;

  /// (not needs-order) => the implementation does not need to sort.
  [[nodiscard]] bool noSort() const { return !declared.needsOrder; }

  /// one-msg and no-continue => no collecting of message lists.
  [[nodiscard]] bool noCollect() const {
    return declared.oneMsg && declared.noContinue;
  }

  /// no-collect and rare-state => work can run anywhere (work stealing).
  [[nodiscard]] bool runAnywhere() const {
    return noCollect() && declared.rareState;
  }

  /// (no-collect and no-ss-order, or incremental) and no-agg and
  /// no-client-sync => no synchronization barrier needed.
  [[nodiscard]] bool noSync() const {
    return ((noCollect() && declared.noSsOrder) || declared.incremental) &&
           noAgg && noClientSync;
  }

  /// deterministic => optimized failure recovery.
  [[nodiscard]] bool fastRecovery() const { return declared.deterministic; }

  /// Human-readable summary for logs and DESIGN/EXPERIMENTS appendices.
  [[nodiscard]] std::string describe() const;
};

}  // namespace ripple::ebsp
