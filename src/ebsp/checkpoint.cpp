#include "ebsp/checkpoint.h"

#include <atomic>
#include <stdexcept>

#include "common/codec.h"

namespace ripple::ebsp {

namespace {

/// Copies one part of a table into another, tallying payload bytes.
class Copier : public kv::PairConsumer {
 public:
  Copier(kv::Table& dst, std::atomic<std::uint64_t>& bytes)
      : dst_(dst), bytes_(bytes) {}
  bool consume(std::uint32_t, kv::KeyView k, kv::ValueView v) override {
    bytes_.fetch_add(k.size() + v.size(), std::memory_order_relaxed);
    dst_.put(k, v);
    return true;
  }

 private:
  kv::Table& dst_;
  std::atomic<std::uint64_t>& bytes_;
};

/// Collects one part of a table into a driver-memory pair vector.
class Collector : public kv::PairConsumer {
 public:
  Collector(std::vector<std::pair<kv::Key, kv::Value>>& out,
            std::atomic<std::uint64_t>& bytes)
      : out_(out), bytes_(bytes) {}
  bool consume(std::uint32_t, kv::KeyView k, kv::ValueView v) override {
    bytes_.fetch_add(k.size() + v.size(), std::memory_order_relaxed);
    out_.emplace_back(kv::Key{k}, kv::Value{v});
    return true;
  }

 private:
  std::vector<std::pair<kv::Key, kv::Value>>& out_;
  std::atomic<std::uint64_t>& bytes_;
};

constexpr std::string_view kStepKeyPrefix = "step/";
constexpr std::string_view kAggKey = "aggs";
// Torn-checkpoint detection (the §IV-A "commit transactions in the right
// order" rule, made checkable): "epoch/begin" is bumped and written
// BEFORE any shadow data, "epoch/commit" is written last.  A checkpoint
// is complete only when both exist and agree — an overwrite interrupted
// anywhere between them leaves begin > commit and the whole checkpoint
// is treated as absent (the half-overwritten shadows must not be
// restored).
constexpr std::string_view kEpochBeginKey = "epoch/begin";
constexpr std::string_view kEpochCommitKey = "epoch/commit";

Bytes encodeAggFinals(const std::map<std::string, Bytes>& finals) {
  ByteWriter w;
  w.putVarint(finals.size());
  for (const auto& [name, value] : finals) {
    w.putBytes(name);
    w.putBytes(value);
  }
  return w.take();
}

std::map<std::string, Bytes> decodeAggFinals(BytesView data) {
  ByteReader r(data);
  std::map<std::string, Bytes> finals;
  const auto n = static_cast<std::size_t>(r.getVarint());
  for (std::size_t i = 0; i < n; ++i) {
    Bytes name(r.getBytes());
    finals.emplace(std::move(name), Bytes(r.getBytes()));
  }
  return finals;
}

}  // namespace

Checkpointer::Checkpointer(kv::KVStorePtr store, std::string jobId,
                           std::vector<kv::TablePtr> tables,
                           kv::TablePtr placement, bool driverMirror)
    : store_(std::move(store)), jobId_(std::move(jobId)),
      tables_(std::move(tables)), placement_(std::move(placement)),
      driverMirror_(driverMirror) {
  if (driverMirror_) {
    return;  // No shadow/meta tables: the snapshot lives in driver memory.
  }
  // Lookup-or-create: on a durable store reopened after a crash the
  // shadows of the interrupted run are already on disk (they ARE the
  // checkpoint a resuming run restores from), so adopt them instead of
  // throwing "already exists".
  shadows_.reserve(tables_.size());
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (kv::TablePtr existing = store_->lookupTable(shadowName(i))) {
      shadows_.push_back(std::move(existing));
    } else {
      shadows_.push_back(
          store_->createConsistentTable(shadowName(i), *tables_[i],
                                        tables_[i]->options().ordered));
    }
  }
  const std::string metaName = "__ck_" + jobId_ + "_meta";
  if (kv::TablePtr existing = store_->lookupTable(metaName)) {
    meta_ = std::move(existing);
  } else {
    kv::TableOptions metaOptions;
    metaOptions.parts = 1;
    meta_ = store_->createTable(metaName, metaOptions);
  }
}

Checkpointer::~Checkpointer() {
  try {
    cleanup();
  } catch (...) {
    // Destructor must not throw; shadow tables are store-lifetime private.
  }
}

std::string Checkpointer::shadowName(std::size_t i) const {
  return "__ck_" + jobId_ + "_" + std::to_string(i);
}

void Checkpointer::checkpoint(int completedStep,
                              const std::map<std::string, Bytes>& aggFinals) {
  obs::Tracer::Scoped span(tracer_, obs::Phase::kCheckpoint, completedStep);
  std::atomic<std::uint64_t> bytesCopied{0};
  if (driverMirror_) {
    checkpointToMirror(completedStep, aggFinals, bytesCopied);
    span->bytes = bytesCopied.load();
    return;
  }
  // Invalidate any previous checkpoint before touching its shadows.
  const std::uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  meta_->put(Bytes(kEpochBeginKey), encodeToBytes<std::uint64_t>(epoch));
  // Copy each part of each table into its shadow, collocated with the
  // part's container.  All shadow writes complete before the shard-step
  // records are written (the paper's "commit transactions in the right
  // order").
  store_->runInParts(*placement_, [&](std::uint32_t part) {
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      shadows_[i]->clearPart(part);
      Copier copier(*shadows_[i], bytesCopied);
      tables_[i]->enumeratePart(part, copier);
    }
  });
  for (std::uint32_t part = 0; part < placement_->numParts(); ++part) {
    meta_->put(Bytes(kStepKeyPrefix) + std::to_string(part),
               encodeToBytes<std::int64_t>(completedStep));
  }
  meta_->put(Bytes(kAggKey), encodeAggFinals(aggFinals));
  meta_->put(Bytes(kEpochCommitKey), encodeToBytes<std::uint64_t>(epoch));
  span->bytes = bytesCopied.load();
}

void Checkpointer::checkpointToMirror(
    int completedStep, const std::map<std::string, Bytes>& aggFinals,
    std::atomic<std::uint64_t>& bytesCopied) {
  const std::uint32_t parts = placement_->numParts();
  std::vector<std::vector<PartSnapshot>> staging(tables_.size());
  for (auto& table : staging) {
    table.resize(parts);
  }
  // Stage each part collocated with its container; distinct (table, part)
  // slots, so the concurrent fills don't race.
  store_->runInParts(*placement_, [&](std::uint32_t part) {
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      Collector collector(staging[i][part], bytesCopied);
      tables_[i]->enumeratePart(part, collector);
    }
  });
  // Commit by swap only once every part copied cleanly; an enumerate that
  // threw (crashed server) leaves the previous snapshot untouched.
  mirror_ = std::move(staging);
  mirrorAggs_ = aggFinals;
  mirrorStep_ = completedStep;
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

int Checkpointer::restoreFromMirror(std::map<std::string, Bytes>& aggFinals,
                                    std::atomic<std::uint64_t>& bytesCopied) {
  store_->runInParts(*placement_, [&](std::uint32_t part) {
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      // Delete the failed shard's writes, then reinstate the snapshot.
      tables_[i]->clearPart(part);
      const PartSnapshot& snapshot = mirror_[i][part];
      if (!snapshot.empty()) {
        tables_[i]->putBatch(snapshot);
        for (const auto& [key, value] : snapshot) {
          bytesCopied.fetch_add(key.size() + value.size(),
                                std::memory_order_relaxed);
        }
      }
    }
  });
  aggFinals = mirrorAggs_;
  return mirrorStep_;
}

bool Checkpointer::hasCheckpoint() const {
  if (driverMirror_) {
    return mirrorStep_ >= 0;
  }
  // Complete iff the epoch markers bracket the shadow data (no torn
  // overwrite) and every shard records the same completed step.
  const auto begin = meta_->get(Bytes(kEpochBeginKey));
  const auto commit = meta_->get(Bytes(kEpochCommitKey));
  if (!begin || !commit ||
      decodeFromBytes<std::uint64_t>(*begin) !=
          decodeFromBytes<std::uint64_t>(*commit)) {
    return false;
  }
  std::optional<std::int64_t> step;
  for (std::uint32_t part = 0; part < placement_->numParts(); ++part) {
    auto v = meta_->get(Bytes(kStepKeyPrefix) + std::to_string(part));
    if (!v) {
      return false;
    }
    const auto s = decodeFromBytes<std::int64_t>(*v);
    if (step && *step != s) {
      return false;
    }
    step = s;
  }
  return step.has_value();
}

int Checkpointer::restore(std::map<std::string, Bytes>& aggFinals) {
  if (!hasCheckpoint()) {
    throw std::runtime_error("Checkpointer: no complete checkpoint");
  }
  obs::Tracer::Scoped span(tracer_, obs::Phase::kRestore);
  std::atomic<std::uint64_t> bytesCopied{0};
  if (driverMirror_) {
    const int restored = restoreFromMirror(aggFinals, bytesCopied);
    span->step = restored;
    span->bytes = bytesCopied.load();
    return restored;
  }
  store_->runInParts(*placement_, [&](std::uint32_t part) {
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      // Delete the failed shard's writes, then reinstate the snapshot.
      tables_[i]->clearPart(part);
      Copier copier(*tables_[i], bytesCopied);
      shadows_[i]->enumeratePart(part, copier);
    }
  });
  const auto aggs = meta_->get(Bytes(kAggKey));
  aggFinals = aggs ? decodeAggFinals(*aggs) : std::map<std::string, Bytes>{};
  const auto step = meta_->get(Bytes(kStepKeyPrefix) + "0");
  const int restored = static_cast<int>(decodeFromBytes<std::int64_t>(*step));
  span->step = restored;
  span->bytes = bytesCopied.load();
  return restored;
}

void Checkpointer::cleanup() {
  mirror_.clear();
  mirrorAggs_.clear();
  mirrorStep_ = -1;
  for (std::size_t i = 0; i < shadows_.size(); ++i) {
    store_->dropTable(shadowName(i));
  }
  shadows_.clear();
  if (meta_) {
    store_->dropTable(meta_->name());
    meta_.reset();
  }
}

}  // namespace ripple::ebsp
