// The synchronized execution strategy (paper §IV-A): a series of steps
// separated by global barriers, messages moved between parts as spills
// through the transport table, and (key -> value list) collection tables
// driving the following step's compute invocations.

#pragma once

#include <functional>
#include <memory>

#include "ebsp/checkpoint.h"
#include "ebsp/raw_job.h"
#include "fault/retry.h"
#include "kvstore/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/virtual_time.h"

namespace ripple::ebsp {

struct SyncEngineOptions {
  /// Virtual-cluster cost model (see src/sim/virtual_time.h).
  sim::CostModel costModel = sim::CostModel::defaults();

  /// Track virtual time (small per-invocation clock_gettime cost).
  bool virtualTime = true;

  /// Safety valve against non-terminating jobs.
  int maxSteps = 1'000'000;

  /// Records per spill before the sender flushes to the transport table.
  std::size_t spillBatch = 4096;

  /// Width of the engine's work-stealing compute pool: per-part compute
  /// and collect invocations run concurrently on it, with each pool
  /// thread adopting the part's location first.  0 consults the
  /// RIPPLE_THREADS environment variable; if that also resolves to 0 the
  /// engine keeps the legacy store-collocated dispatch.  Results are
  /// bit-identical at any width (sorted-collect canonical merge order).
  int threads = 0;

  CheckpointConfig checkpoint;

  /// Transient-error absorption (see src/fault/retry.h): every store
  /// access on the spill/collect/state/load paths runs under a bounded
  /// retry with deterministic backoff.  When a part's budget is
  /// exhausted the step fails and the engine recovers from the latest
  /// checkpoint (or the whole run fails when checkpointing is off).
  fault::RetryPolicy retry;

  /// Test/diagnostics hook invoked after each barrier with the completed
  /// step number.  May throw SimulatedFailure to exercise recovery.
  std::function<void(int step)> onBarrier;

  /// Hook invoked as each step starts: (stepNum, enabledComponentCount).
  /// Used by the Table II instrumentation.  Fires after the step's compute
  /// span closes, so a tracer passed below has already recorded the step
  /// the hook describes.
  std::function<void(int step, std::uint64_t invocations)> onStep;

  /// Optional span collector.  The engine emits load/compute/spill/
  /// barrier/collect/checkpoint/restore/export spans (see obs/trace.h);
  /// null disables tracing.  Not owned; must outlive run().
  obs::Tracer* tracer = nullptr;

  /// Optional metrics registry.  The engine folds its counters in under
  /// `ebsp.*` names and the store can be bound under `kv.*` (see
  /// StoreMetrics::bindRegistry).  Not owned; must outlive run().
  obs::MetricsRegistry* metrics = nullptr;
};

/// Runs a RawJob to completion with barriers.  One engine instance runs
/// one job at a time; the private transport/collection tables carry a
/// unique run id so concurrent engines on one store do not collide.
class SyncEngine {
 public:
  SyncEngine(kv::KVStorePtr store, SyncEngineOptions options);

  JobResult run(RawJob& job);

 private:
  class Run;
  kv::KVStorePtr store_;
  SyncEngineOptions options_;
};

}  // namespace ripple::ebsp
