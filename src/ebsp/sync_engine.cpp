#include "ebsp/sync_engine.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "common/executor.h"
#include "common/logging.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "common/stats.h"
#include "ebsp/transport.h"
#include "fault/faulty_store.h"
#include "kvstore/log_store.h"
#include "sim/cost_model.h"

namespace ripple::ebsp {

namespace {

std::string uniqueRunId() {
  static std::atomic<std::uint64_t> counter{0};
  return std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

void addAtomic(std::atomic<double>& acc, double delta) {
  double cur = acc.load();
  while (!acc.compare_exchange_weak(cur, cur + delta)) {
  }
}

/// Serializes exporter access when the exporter asks for it.
class ExporterSink {
 public:
  explicit ExporterSink(RawExporter* exporter) : exporter_(exporter) {}

  void consume(BytesView key, BytesView value) {
    if (exporter_ == nullptr) {
      return;
    }
    if (exporter_->wantsSerial()) {
      LockGuard lock(mu_);
      exporter_->consume(key, value);
    } else {
      exporter_->consume(key, value);
    }
  }

  void finish() {
    if (exporter_ != nullptr) {
      exporter_->finish();
    }
  }

  [[nodiscard]] bool present() const { return exporter_ != nullptr; }

 private:
  RawExporter* exporter_;
  RankedMutex<LockRank::kEngineControl> mu_;
};

}  // namespace

class SyncEngine::Run {
 public:
  Run(kv::KVStorePtr store, const SyncEngineOptions& options, RawJob& job)
      : store_(std::move(store)), options_(options), job_(job),
        props_(deriveProperties(job)), runId_(uniqueRunId()),
        directSink_(job.directOutputter.get()) {
    validateRawJob(job_);
    resolveTables();
    const int threads = resolveThreads(options_.threads);
    if (threads > 0) {
      pool_ = std::make_unique<WorkStealingPool>(
          static_cast<std::size_t>(threads), "sync-engine");
    }
    if (options_.virtualTime) {
      vt_ = std::make_unique<sim::VirtualCluster>(parts_, options_.costModel);
    }
    // One retrier per part (a part's work runs on one thread at a time,
    // pool or not) plus one for client-thread phases (load, checkpoint,
    // restore).
    partRetry_.reserve(parts_);
    for (std::uint32_t p = 0; p < parts_; ++p) {
      fault::Retrier retrier(options_.retry, p);
      retrier.bindRegistry(options_.metrics);
      retrier.bindVirtualTime(vt_.get(), p);
      partRetry_.push_back(std::move(retrier));
    }
    clientRetry_ = fault::Retrier(options_.retry, ~std::uint64_t{0});
    clientRetry_.bindRegistry(options_.metrics);
    // Step scoping for FaultPlan rules with a step filter.
    if (auto* faulty = dynamic_cast<fault::FaultyStore*>(store_.get())) {
      injector_ = faulty->injector().get();
    }
    // On a durable backend every successful checkpoint is sealed with a
    // store epoch commit, so the on-disk state a kill -9 recovers to is
    // always a checkpoint boundary.
    durable_ = dynamic_cast<kv::DurableStore*>(store_.get());
    if (options_.checkpoint.enabled) {
      if (directSink_.present() && !props_.declared.deterministic) {
        throw std::invalid_argument(
            "SyncEngine: checkpointing a job with direct output requires the "
            "deterministic property (replay would duplicate output)");
      }
      std::vector<kv::TablePtr> restartable = stateTables_;
      restartable.push_back(collection_);
      // A remote backend's shadow tables would shard onto the same
      // servers as the primaries and die with them; keep the snapshot in
      // driver memory instead (DESIGN.md §11 failover).
      driverMirror_ = options_.checkpoint.driverMirror ||
                      std::string_view(store_->backendName()) == "remote";
      // A stable jobId pins the shadow-table names across process
      // restarts (durable resume); the default run-counter id is only
      // unique within one process.
      const std::string jobId = options_.checkpoint.jobId.empty()
                                    ? "job" + runId_
                                    : options_.checkpoint.jobId;
      checkpointer_ = std::make_unique<Checkpointer>(
          store_, jobId, std::move(restartable), ref_, driverMirror_);
      checkpointer_->setTracer(options_.tracer);
      // Non-deterministic steps must never re-execute: checkpoint every
      // barrier (the fast-recovery optimization of the deterministic
      // property is a wider interval).
      checkpointInterval_ =
          props_.fastRecovery() ? std::max(1, options_.checkpoint.interval)
                                : 1;
    }
    // The broadcast table is read-only for the whole run: compute may
    // read it from any part concurrently, so a mid-superstep write would
    // be racy and schedule-dependent.  Seal it so such writes throw.
    broadcastSeal_ = kv::ScopedTableSeal(broadcast_);
  }

  ~Run() {
    broadcastSeal_.release();
    // Private engine tables are dropped even on exceptions.
    store_->dropTable(transport_->name());
    store_->dropTable(collection_->name());
  }

  JobResult execute() {
    Stopwatch wall;
    obs::Tracer* const tracer = options_.tracer;
    std::uint64_t pending = 0;
    int step = 0;
    bool aborted = false;

    if (checkpointer_ && options_.checkpoint.resume &&
        clientRetry_([&] { return checkpointer_->hasCheckpoint(); })) {
      // Restart-resume: a complete checkpoint survives from an earlier
      // incarnation of this job (durable store reopened after a crash).
      // Adopt it instead of reloading: restore the state tables and the
      // collection, and continue from the recorded step.  Direct output
      // is NOT suppressed — whatever the dead process emitted died with
      // its sink, so the replayed steps' output is the first delivery.
      step = clientRetry_([&] { return checkpointer_->restore(aggFinals_); });
      if (job_.compute.onRecovery) {
        job_.compute.onRecovery();
      }
      pending = collection_->size();
      ++metrics_.recoveries;
      RIPPLE_INFO << "SyncEngine: resumed from checkpoint at completed step "
                  << step;
    } else {
      {
        obs::Tracer::Scoped load(tracer, obs::Phase::kLoad);
        load->note = "synchronized";
        loadInitial();
        load->messages = collection_->size();
      }

      // Driver-mirror checkpointing snapshots the loaded state up front so
      // a server crash BEFORE the first interval boundary is recoverable
      // (shadow-table mode skips this: the store outlives the servers
      // there, and tests pin exact checkpoint counts).  A durable store
      // takes the same up-front snapshot so a kill before the first
      // interval boundary resumes instead of reloading.
      if (checkpointer_ && (driverMirror_ || durable_ != nullptr)) {
        try {
          clientRetry_([&] { checkpointer_->checkpoint(0, aggFinals_); });
        } catch (const fault::TransientError& e) {
          throw std::runtime_error(
              std::string("SyncEngine: initial checkpoint failed after "
                          "retries: ") +
              e.what());
        }
        ++metrics_.checkpoints;
        commitDurableEpoch();
      }

      pending = collection_->size();
    }

    while (pending > 0 && step < options_.maxSteps) {
      ++step;
      // Deterministic replay after recovery: steps up to the failed step
      // re-emit direct output already delivered; suppression lifts when
      // execution passes the failure point.
      if (replayBoundary_ > 0 && step > replayBoundary_) {
        suppressDirectOutput_.store(false, std::memory_order_relaxed);
        replayBoundary_ = 0;
      }
      const int runStep = step;
      Stopwatch stepWatch;
      if (injector_ != nullptr) {
        injector_->setStep(runStep);
      }

      try {
      // --- Superstep: every part runs its enabled components. ---
      partOutcomes_.assign(parts_, PartOutcome{});
      for (auto& o : partOutcomes_) {
        o.aggs = AggregatorSet(&job_.aggregators);
      }
      std::uint64_t invocationsThisStep = 0;
      const double flushBefore = phaseFlush_.load();
      {
        obs::Tracer::Scoped compute(tracer, obs::Phase::kCompute, runStep);
        const double vtBefore = vt_ ? vt_->makespan() : 0.0;
        runParts([&](std::uint32_t part) { processPart(part, runStep); });
        PartOutcome totals{};
        for (const auto& o : partOutcomes_) {
          totals.invocations += o.invocations;
          totals.messages += o.messages;
          totals.spillBytes += o.spillBytes;
          totals.stateReads += o.stateReads;
          totals.stateWrites += o.stateWrites;
        }
        invocationsThisStep = totals.invocations;
        compute->invocations = totals.invocations;
        compute->messages = totals.messages;
        compute->bytes = totals.spillBytes;
        compute->stateReads = totals.stateReads;
        compute->stateWrites = totals.stateWrites;
        compute->virtualSeconds = vt_ ? vt_->makespan() - vtBefore : 0.0;
      }
      if (tracer != nullptr) {
        // The spill phase runs inside the per-part compute work; report
        // it as its own span with summed sender-side CPU seconds.
        obs::Span spill;
        spill.phase = obs::Phase::kSpill;
        spill.step = runStep;
        spill.start = tracer->elapsedSeconds();
        spill.virtualSeconds = phaseFlush_.load() - flushBefore;
        for (const auto& o : partOutcomes_) {
          spill.messages += o.spills;
          spill.bytes += o.spillBytes;
        }
        spill.note = "vt is summed sender cpu seconds";
        tracer->record(std::move(spill));
      }
      if (options_.onStep) {
        options_.onStep(runStep, invocationsThisStep);
      }
      accumulateMetrics();

      // --- Barrier. ---
      {
        obs::Tracer::Scoped barrier(tracer, obs::Phase::kBarrier, runStep);
        if (vt_) {
          if (log::enabled(log::Level::kDebug)) {
            std::ostringstream clocks;
            for (std::uint32_t p = 0; p < parts_; ++p) {
              clocks << ' ' << vt_->now(p);
            }
            RIPPLE_DEBUG << "step " << step << " vt clocks:" << clocks.str()
                         << " inv=" << invocationsThisStep;
          }
          vt_->barrier();
        }
        ++metrics_.barriers;
      }

      // --- Collect: move spills into the next step's collection. ---
      {
        obs::Tracer::Scoped collect(tracer, obs::Phase::kCollect, runStep);
        std::vector<std::uint64_t> collected(parts_, 0);
        runParts([&](std::uint32_t part) { collected[part] = collectPart(part); });
        pending = 0;
        for (const std::uint64_t c : collected) {
          pending += c;
        }
        collect->messages = pending;
      }
      if (options_.metrics != nullptr) {
        options_.metrics->histogram("ebsp.step_seconds")
            .record(stepWatch.elapsedSeconds());
      }

      // --- Aggregation finals for the next step. ---
      AggregatorSet total(&job_.aggregators);
      for (const auto& o : partOutcomes_) {
        total.merge(o.aggs);
      }
      aggFinals_ = total.finalize();

      // --- Client sync (aborter). ---
      if (job_.aborter &&
          job_.aborter(AggregateReader(&aggFinals_), step)) {
        aborted = true;
        break;
      }

      // --- Checkpoint / failure hooks. ---
      if (checkpointer_ && step % checkpointInterval_ == 0) {
        try {
          clientRetry_([&] { checkpointer_->checkpoint(step, aggFinals_); });
        } catch (const fault::TransientError& e) {
          // The torn attempt invalidated the previous checkpoint (epoch
          // rule), so there is nothing left to recover from.
          throw std::runtime_error(
              std::string("SyncEngine: checkpoint failed after retries: ") +
              e.what());
        }
        ++metrics_.checkpoints;
        commitDurableEpoch();
      }
      if (options_.onBarrier) {
        try {
          options_.onBarrier(step);
        } catch (const SimulatedFailure& e) {
          const int failStep = step;
          step = recover(e.what());
          replayBoundary_ = failStep;
          pending = collection_->size();
        }
      }
      } catch (const fault::TransientError& e) {
        // A part exhausted its retry budget mid-step.  §IV-A recovery:
        // delete the failed step's writes and replay from the checkpoint.
        const int failStep = runStep;
        step = recover(e.what());
        replayBoundary_ = failStep;
        pending = collection_->size();
      } catch (const fault::StateLostError& e) {
        // A server restarted and its in-memory parts are gone.  The
        // client already reseeded the fresh incarnation's registries
        // (empty tables/queue sets), so restore from the driver-side
        // checkpoint and replay — digest-identical for deterministic
        // jobs.
        const int failStep = runStep;
        step = recoverFromStateLoss(e.what());
        replayBoundary_ = failStep;
        pending = collection_->size();
      }
    }
    if (injector_ != nullptr) {
      injector_->setStep(fault::kAnyStep);
    }
    if (pending > 0 && !aborted) {
      throw std::runtime_error("SyncEngine: maxSteps exceeded");
    }

    {
      obs::Tracer::Scoped exp(tracer, obs::Phase::kExport);
      exportResults();
      directSink_.finish();
    }
    RIPPLE_DEBUG << "phase cpu: drain=" << phaseDrain_.load()
                 << " flush=" << phaseFlush_.load()
                 << " collect=" << phaseCollect_.load();

    JobResult result;
    result.steps = step;
    result.aggregatorFinals = aggFinals_;
    result.aborted = aborted;
    result.virtualMakespan = vt_ ? vt_->makespan() : 0.0;
    result.elapsedSeconds = wall.elapsedSeconds();
    result.metrics = metrics_;
    result.metrics.steps = static_cast<std::uint64_t>(step);
    foldRegistry(result);
    return result;
  }

 private:
  struct PartOutcome {
    AggregatorSet aggs{nullptr};
    std::uint64_t invocations = 0;
    std::uint64_t messages = 0;
    std::uint64_t delivered = 0;
    std::uint64_t combinerCalls = 0;
    std::uint64_t spills = 0;
    std::uint64_t spillBytes = 0;
    std::uint64_t stateReads = 0;
    std::uint64_t stateWrites = 0;
    std::uint64_t creations = 0;
    std::uint64_t directs = 0;
    std::uint64_t combineIn = 0;
    std::uint64_t combineOut = 0;
  };

  /// RawComputeContext implementation for the synchronized engine.  One
  /// instance per part per step, reset per component invocation.
  class Context : public RawComputeContext {
   public:
    Context(Run& run, std::uint32_t part, int step, SpillWriter& writer,
            PartOutcome& outcome)
        : run_(run), part_(part), step_(step), writer_(writer),
          outcome_(outcome) {}

    void reset(BytesView key, const std::vector<Bytes>* messages) {
      key_ = key;
      messages_ = messages;
    }

    [[nodiscard]] int stepNum() const override { return step_; }
    [[nodiscard]] BytesView key() const override { return key_; }

    std::optional<Bytes> readState(int tabIdx) override {
      ++outcome_.stateReads;
      return run_.partRetry_[part_](
          [&] { return run_.stateTable(tabIdx).get(key_); });
    }

    void writeState(int tabIdx, BytesView state) override {
      ++outcome_.stateWrites;
      run_.partRetry_[part_](
          [&] { run_.stateTable(tabIdx).put(key_, state); });
    }

    void deleteState(int tabIdx) override {
      ++outcome_.stateWrites;
      run_.partRetry_[part_]([&] { run_.stateTable(tabIdx).erase(key_); });
    }

    void createState(int tabIdx, BytesView key, BytesView state) override {
      run_.stateTable(tabIdx);  // Range check.
      ++outcome_.creations;
      writer_.addCreate(tabIdx, key, state);
    }

    [[nodiscard]] const std::vector<Bytes>& inputMessages() const override {
      return *messages_;
    }

    void outputMessage(BytesView destKey, BytesView payload) override {
      writer_.addMessage(destKey, payload);
    }

    void aggregateValue(const std::string& name, BytesView value) override {
      outcome_.aggs.add(name, value);
    }

    [[nodiscard]] std::optional<Bytes> aggregateResult(
        const std::string& name) const override {
      return AggregateReader(&run_.aggFinals_).raw(name);
    }

    std::optional<Bytes> broadcastDatum(BytesView key) override {
      if (!run_.broadcast_) {
        return std::nullopt;
      }
      return run_.broadcast_->get(key);
    }

    void directOutput(BytesView key, BytesView value) override {
      ++outcome_.directs;
      if (run_.suppressDirectOutput_.load(std::memory_order_relaxed)) {
        return;  // Deterministic replay after recovery: already emitted.
      }
      run_.directSink_.consume(key, value);
    }

    [[nodiscard]] bool checkpointed() const override {
      return run_.checkpointer_ != nullptr;
    }

   private:
    Run& run_;
    std::uint32_t part_;
    int step_;
    SpillWriter& writer_;
    PartOutcome& outcome_;
    BytesView key_;
    const std::vector<Bytes>* messages_ = nullptr;
  };

  /// Fan per-part work out to the engine pool when one is configured (the
  /// pool thread adopts the part's location first, so store ops stay
  /// collocated), or fall back to the store's own dispatch.  Both paths
  /// run every part to completion and rethrow the first failure.
  void runParts(const std::function<void(std::uint32_t)>& fn) {
    if (!pool_) {
      store_->runInParts(*ref_, fn);
      return;
    }
    pool_->parallelFor(parts_, [&](std::size_t part) {
      const auto p = static_cast<std::uint32_t>(part);
      auto token = store_->adoptPartThread(*ref_, p);
      fn(p);
    });
  }

  void resolveTables() {
    ref_ = store_->lookupTable(job_.referenceTable);
    if (!ref_) {
      throw std::invalid_argument("SyncEngine: reference table '" +
                                  job_.referenceTable + "' does not exist");
    }
    parts_ = ref_->numParts();

    for (const std::string& name : job_.stateTableNames) {
      kv::TablePtr t = store_->lookupTable(name);
      if (!t) {
        t = store_->createConsistentTable(name, *ref_);
      } else if (t->numParts() != parts_) {
        throw std::invalid_argument(
            "SyncEngine: state table '" + name +
            "' is not consistently partitioned with the reference table");
      }
      stateTables_.push_back(std::move(t));
    }

    if (!job_.broadcastTable.empty()) {
      broadcast_ = store_->lookupTable(job_.broadcastTable);
      if (!broadcast_) {
        throw std::invalid_argument("SyncEngine: broadcast table '" +
                                    job_.broadcastTable + "' does not exist");
      }
    }

    // Drop-then-create: the run-counter id restarts with the process, so
    // on a recovered durable store the private tables of a crashed run
    // can collide by name.  Their content is transient (the collection is
    // restored from the checkpoint, the transport is cleared on
    // recovery), so stale incarnations are simply discarded.
    kv::TableOptions transportOptions;
    transportOptions.parts = parts_;
    transportOptions.partitioner = makeTransportPartitioner(parts_);
    store_->dropTable("__ebsp_tr_" + runId_);
    transport_ = store_->createTable("__ebsp_tr_" + runId_,
                                     std::move(transportOptions));
    store_->dropTable("__ebsp_col_" + runId_);
    collection_ = store_->createConsistentTable(
        "__ebsp_col_" + runId_, *ref_,
        /*ordered=*/props_.declared.needsOrder);
  }

  kv::Table& stateTable(int tabIdx) {
    if (tabIdx < 0 || tabIdx >= static_cast<int>(stateTables_.size())) {
      throw std::out_of_range("SyncEngine: state table index " +
                              std::to_string(tabIdx) + " out of range");
    }
    return *stateTables_[static_cast<std::size_t>(tabIdx)];
  }

  /// Run loaders on the client thread; build the step-1 collection and
  /// the initial aggregator finals.
  void loadInitial() {
    struct InitialContext : LoaderContext {
      explicit InitialContext(Run& run)
          : run(run), aggs(&run.job_.aggregators) {}

      void emitMessage(BytesView destKey, BytesView payload) override {
        auto& cv = pending[Bytes(destKey)];
        if (combiner && !cv.messages.empty()) {
          // Initial volumes are modest; pairwise-style fold through a
          // slot keeps the semantics identical to the engine's combining.
          CombineSlot slot;
          slot.addMessage(combiner, destKey, cv.messages[0]);
          slot.addMessage(combiner, destKey, payload);
          cv.messages[0] = slot.take(combiner, destKey);
        } else {
          cv.messages.emplace_back(payload);
        }
      }

      void enableComponent(BytesView key) override {
        pending[Bytes(key)].enabled = true;
      }

      void putState(int tabIdx, BytesView key, BytesView state) override {
        states.emplace_back(tabIdx, std::make_pair(Bytes(key), Bytes(state)));
      }

      void aggregateValue(const std::string& name, BytesView value) override {
        aggs.add(name, value);
      }

      Run& run;
      CombinerOps combiner = CombinerOps::fromCompute(run.job_.compute);
      std::unordered_map<Bytes, CollectedValue> pending;
      std::vector<std::pair<int, std::pair<Bytes, Bytes>>> states;
      AggregatorSet aggs;
    };

    InitialContext ctx(*this);
    for (const RawLoaderPtr& loader : job_.loaders) {
      loader->load(ctx);
    }

    // State population, grouped per table.
    std::vector<std::vector<std::pair<kv::Key, kv::Value>>> byTable(
        stateTables_.size());
    for (auto& [tabIdx, kv] : ctx.states) {
      stateTable(tabIdx);  // Range check.
      byTable[static_cast<std::size_t>(tabIdx)].push_back(std::move(kv));
    }
    // Under injection the retry must be per entry, not per batch: one
    // attempt of an N-entry batch needs all N injection draws to pass,
    // so for large batches every attempt fails and the budget always
    // exhausts.  Re-putting one key is idempotent either way.
    for (std::size_t i = 0; i < byTable.size(); ++i) {
      if (byTable[i].empty()) {
        continue;
      }
      if (injector_ != nullptr) {
        for (const auto& [key, value] : byTable[i]) {
          clientRetry_([&] { stateTables_[i]->put(key, value); });
        }
      } else {
        stateTables_[i]->putBatch(byTable[i]);
      }
    }

    // Step-1 collection entries, in canonical (key-sorted) order: the
    // loaders' emission order reflects however they enumerated their
    // sources, and the collection put order becomes the step-1 invocation
    // order, which in turn pins sender-side combiner fold order.  Sorting
    // here makes the whole run a pure function of the job's inputs.
    std::vector<std::pair<kv::Key, kv::Value>> entries;
    entries.reserve(ctx.pending.size());
    for (auto& [key, cv] : ctx.pending) {
      entries.emplace_back(key, encodeCollected(cv));
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (injector_ != nullptr) {
      for (const auto& [key, value] : entries) {
        clientRetry_([&] { collection_->put(key, value); });
      }
    } else {
      collection_->putBatch(entries);
    }

    // Initial aggregator values are readable during step 1.
    aggFinals_ = ctx.aggs.finalize();
  }

  void processPart(std::uint32_t part, int step) {
    PartOutcome& outcome = partOutcomes_[part];
    SpillWriter writer(*transport_, part, ref_->options().partitioner,
                       CombinerOps::fromCompute(job_.compute),
                       options_.spillBatch);
    writer.setRetrier(&partRetry_[part]);
    Context ctx(*this, part, step, writer, outcome);

    // The drain preserves key order for ordered collection tables, which
    // is how needs-order jobs get their sorted invocation sequence.  The
    // retried drain is safe: a failed drain consumed nothing
    // (fail-before injection).
    const double drainStart = sim::threadCpuSeconds();
    auto entries =
        partRetry_[part]([&] { return collection_->drainPart(part); });
    addAtomic(phaseDrain_, sim::threadCpuSeconds() - drainStart);
    for (auto& [key, encoded] : entries) {
      const CollectedValue cv = decodeCollected(encoded);
      ctx.reset(key, &cv.messages);
      bool cont = false;
      {
        sim::ChargeScope charge(vt_.get(), part);
        cont = job_.compute.compute(ctx);
      }
      if (vt_ && options_.costModel.perMessageCost > 0) {
        vt_->charge(part, options_.costModel.perMessageCost *
                              static_cast<double>(cv.messages.size()));
      }
      ++outcome.invocations;
      outcome.delivered += cv.messages.size();
      if (cont) {
        if (props_.declared.noContinue) {
          throw std::logic_error(
              "SyncEngine: job declared no-continue but compute returned "
              "the positive continue signal");
        }
        // The continue signal is a special kind of BSP message to self.
        writer.addEnable(key);
      }
    }
    const double flushStart = sim::threadCpuSeconds();
    writer.flushAll();
    addAtomic(phaseFlush_, sim::threadCpuSeconds() - flushStart);
    outcome.messages = writer.messagesAdded();
    outcome.combinerCalls = writer.combinerCalls();
    outcome.spills = writer.spillsWritten();
    outcome.spillBytes = writer.bytesWritten();
    outcome.combineIn = writer.combineIn();
    outcome.combineOut = writer.combineOut();
  }

  /// Drain this part's spills and build its slice of the next collection.
  /// Returns the number of components with pending work.
  std::uint64_t collectPart(std::uint32_t part) {
    const double collectStart = sim::threadCpuSeconds();
    struct PhaseGuard {
      std::atomic<double>* acc;
      double start;
      ~PhaseGuard() { addAtomic(*acc, sim::threadCpuSeconds() - start); }
    } guard{&phaseCollect_, collectStart};
    sim::ChargeScope charge(vt_.get(), part);
    fault::Retrier& retry = partRetry_[part];
    auto spills = retry([&] { return transport_->drainPart(part); });
    if (spills.empty()) {
      return 0;
    }
    // Canonical merge order (sorted collect): parallel senders interleave
    // their transport puts arbitrarily, so the drain order depends on the
    // schedule.  Sorting by (sender part, sender sequence) pins the fold
    // order — grouping, combiner folds, and FP sums are bit-identical at
    // any thread count.
    std::sort(spills.begin(), spills.end(),
              [](const auto& a, const auto& b) {
                return spillKeyLess(a.first, b.first);
              });

    if (props_.noCollect() && !props_.declared.needsOrder) {
      // one-msg + no-continue: no value lists, no grouping map; each
      // record becomes its own collection entry directly.
      std::uint64_t count = 0;
      for (const auto& [spillKey, spillValue] : spills) {
        decodeSpill(spillValue, [&](TransportRecord&& rec) {
          applyNoCollectRecord(std::move(rec), count, retry);
        });
      }
      return count;
    }

    const CombinerOps combiner = CombinerOps::fromCompute(job_.compute);
    struct GroupEntry {
      bool enabled = false;
      std::vector<Bytes> messages;  // Without a combiner.
      CombineSlot slot;             // With a combiner.
    };
    std::unordered_map<Bytes, GroupEntry> group;
    std::vector<std::pair<Bytes, std::pair<int, Bytes>>> creations;
    for (const auto& [spillKey, spillValue] : spills) {
      decodeSpill(spillValue, [&](TransportRecord&& rec) {
        switch (rec.kind) {
          case RecordKind::kMessage: {
            GroupEntry& entry = group[rec.key];
            if (combiner) {
              entry.slot.addMessage(combiner, rec.key, rec.payload);
            } else {
              entry.messages.push_back(std::move(rec.payload));
            }
            break;
          }
          case RecordKind::kEnable:
            group[rec.key].enabled = true;
            break;
          case RecordKind::kCreate:
            creations.emplace_back(std::move(rec.key),
                                   std::make_pair(rec.tabIdx,
                                                  std::move(rec.payload)));
            break;
        }
      });
    }

    applyCreations(creations, retry);

    for (auto& [key, entry] : group) {
      CollectedValue cv;
      cv.enabled = entry.enabled;
      if (!entry.slot.empty()) {
        cv.messages.push_back(entry.slot.take(combiner, key));
      } else {
        cv.messages = std::move(entry.messages);
      }
      // Retried put is safe: each collection key is written once per
      // collect and an overwrite with the same value is idempotent.
      retry([&] { collection_->put(key, encodeCollected(cv)); });
    }
    return group.size();
  }

  void applyNoCollectRecord(TransportRecord&& rec, std::uint64_t& count,
                            fault::Retrier& retry) {
    switch (rec.kind) {
      case RecordKind::kMessage: {
        CollectedValue cv;
        cv.messages.push_back(std::move(rec.payload));
        retry([&] { collection_->put(rec.key, encodeCollected(cv)); });
        ++count;
        break;
      }
      case RecordKind::kEnable: {
        // Only loaders produce enables under no-continue; handled in
        // loadInitial.  Seeing one here is a property violation.
        throw std::logic_error(
            "SyncEngine: enable record under no-collect execution");
      }
      case RecordKind::kCreate: {
        std::vector<std::pair<Bytes, std::pair<int, Bytes>>> one;
        one.emplace_back(std::move(rec.key),
                         std::make_pair(rec.tabIdx, std::move(rec.payload)));
        applyCreations(one, retry);
        break;
      }
    }
  }

  /// Apply deferred component creations, merging conflicts through
  /// combine2states.  A pre-existing state entry participates in the
  /// merge as the first operand.
  void applyCreations(
      std::vector<std::pair<Bytes, std::pair<int, Bytes>>>& creations,
      fault::Retrier& retry) {
    if (creations.empty()) {
      return;
    }
    std::unordered_map<Bytes, std::unordered_map<int, Bytes>> merged;
    for (auto& [key, entry] : creations) {
      auto& [tabIdx, state] = entry;
      auto& perTable = merged[key];
      auto it = perTable.find(tabIdx);
      if (it == perTable.end()) {
        perTable.emplace(tabIdx, std::move(state));
      } else {
        if (!job_.compute.combineStates) {
          throw std::logic_error(
              "SyncEngine: conflicting createState calls but the job "
              "supplies no combine2states");
        }
        it->second = job_.compute.combineStates(key, it->second, state);
      }
    }
    for (auto& [key, perTable] : merged) {
      for (auto& [tabIdx, state] : perTable) {
        kv::Table& table = stateTable(tabIdx);
        // Each get/put is retried individually: re-running the whole
        // merge after a partial write would fold `state` in twice.
        const auto existing = retry([&] { return table.get(key); });
        if (existing) {
          if (!job_.compute.combineStates) {
            throw std::logic_error(
                "SyncEngine: createState for an existing component but the "
                "job supplies no combine2states");
          }
          const Bytes combined =
              job_.compute.combineStates(key, *existing, state);
          retry([&] { table.put(key, combined); });
        } else {
          retry([&] { table.put(key, state); });
        }
      }
    }
  }

  /// recover() itself runs over the wire for a remote backend, so a
  /// SECOND restart mid-restore surfaces as another StateLostError (and
  /// rolls the client's reseed back); retry the whole recovery a bounded
  /// number of times before giving up.
  int recoverFromStateLoss(const std::string& why) {
    constexpr int kMaxStateLossRecoveries = 3;
    for (int attempt = 1;; ++attempt) {
      try {
        return recover(why);
      } catch (const fault::StateLostError& e) {
        if (attempt >= kMaxStateLossRecoveries) {
          throw;
        }
        RIPPLE_WARN << "SyncEngine: state lost again during recovery ("
                    << e.what() << "); retrying (" << attempt << "/"
                    << kMaxStateLossRecoveries << ")";
      }
    }
  }

  /// Seal the checkpoint that was just written into the durable store's
  /// on-disk state.  The commit covers the checkpoint shadows AND the
  /// primaries as of this barrier, so recovery lands exactly on a
  /// checkpoint boundary — never between a shadow write and its commit
  /// marker (the store-level begin/commit discipline subsumes the
  /// table-level one).
  void commitDurableEpoch() {
    if (durable_ != nullptr) {
      clientRetry_([&] { durable_->commitEpoch(); });
    }
  }

  int recover(const std::string& why) {
    const bool usable =
        checkpointer_ &&
        clientRetry_([&] { return checkpointer_->hasCheckpoint(); });
    if (!usable) {
      throw std::runtime_error(
          "SyncEngine: failure without a usable checkpoint (" + why + ")");
    }
    ++metrics_.recoveries;
    // Delete the failed step's writes (§IV-A): partial spills from the
    // aborted step would otherwise replay as duplicate messages.
    clientRetry_([&] {
      for (std::uint32_t p = 0; p < parts_; ++p) {
        transport_->clearPart(p);
      }
    });
    // Whole-restore retry is safe: restore is clear-then-copy, idempotent.
    const int resumeStep =
        clientRetry_([&] { return checkpointer_->restore(aggFinals_); });
    // Computes that cache live state between invocations must drop the
    // cache NOW: the cached objects are ahead of the restored tables and
    // replaying against them would skip re-sends the restored state
    // still owes (their originals died with the failed step).
    if (job_.compute.onRecovery) {
      job_.compute.onRecovery();
    }
    RIPPLE_INFO << "SyncEngine: recovered to completed step " << resumeStep
                << " (" << why << ")";
    // Deterministic jobs replay steps; suppress re-emission of direct
    // output until we pass the previously completed work.  (Engine-level
    // suppression is coarse: it clears at the end of the replayed
    // barrier.)
    if (directSink_.present()) {
      suppressDirectOutput_.store(true, std::memory_order_relaxed);
    }
    return resumeStep;
  }

  void exportResults() {
    for (const auto& [tabIdx, writer] : job_.writers) {
      class Export : public kv::PairConsumer {
       public:
        explicit Export(ExporterSink& sink) : sink_(sink) {}
        bool consume(std::uint32_t, kv::KeyView k, kv::ValueView v) override {
          sink_.consume(k, v);
          return true;
        }

       private:
        ExporterSink& sink_;
      };
      ExporterSink sink(writer.get());
      Export consumer(sink);
      stateTables_[static_cast<std::size_t>(tabIdx)]->enumerate(consumer);
      sink.finish();
    }
  }

  void foldRegistry(const JobResult& result) {
    if (options_.metrics == nullptr) {
      return;
    }
    foldEngineMetrics(*options_.metrics, result.metrics);
    options_.metrics->gauge("exec.threads")
        .set(pool_ ? static_cast<double>(pool_->threadCount()) : 0.0);
    if (pool_) {
      options_.metrics->counter("exec.steal_count").add(pool_->stealCount());
    }
    if (vt_) {
      options_.metrics->gauge("ebsp.virtual_makespan")
          .set(result.virtualMakespan);
    }
  }

  void accumulateMetrics() {
    for (const auto& o : partOutcomes_) {
      metrics_.computeInvocations += o.invocations;
      metrics_.messagesSent += o.messages;
      metrics_.messagesDelivered += o.delivered;
      metrics_.combinerCalls += o.combinerCalls;
      metrics_.spillsWritten += o.spills;
      metrics_.spillBytes += o.spillBytes;
      metrics_.stateReads += o.stateReads;
      metrics_.stateWrites += o.stateWrites;
      metrics_.creations += o.creations;
      metrics_.directOutputs += o.directs;
      metrics_.combineIn += o.combineIn;
      metrics_.combineOut += o.combineOut;
    }
  }

  kv::KVStorePtr store_;
  const SyncEngineOptions& options_;
  RawJob& job_;
  EffectiveProperties props_;
  std::string runId_;

  kv::TablePtr ref_;
  std::vector<kv::TablePtr> stateTables_;
  kv::TablePtr broadcast_;
  kv::ScopedTableSeal broadcastSeal_;
  kv::TablePtr transport_;
  kv::TablePtr collection_;
  std::uint32_t parts_ = 0;

  /// Engine-owned compute pool; null when threads resolve to 0 (legacy
  /// store-collocated dispatch via runInParts).
  std::unique_ptr<WorkStealingPool> pool_;

  std::unique_ptr<sim::VirtualCluster> vt_;
  std::unique_ptr<Checkpointer> checkpointer_;
  kv::DurableStore* durable_ = nullptr;
  bool driverMirror_ = false;
  int checkpointInterval_ = 1;
  int replayBoundary_ = 0;

  // Transient-error absorption: one retrier per part (parts are
  // single-threaded) plus one for client-thread phases.  The injector is
  // non-null only when the store is a FaultyStore; used to scope
  // step-filtered fault rules.
  std::vector<fault::Retrier> partRetry_;
  fault::Retrier clientRetry_;
  fault::FaultInjector* injector_ = nullptr;

  std::vector<PartOutcome> partOutcomes_;
  std::map<std::string, Bytes> aggFinals_;
  EngineMetrics metrics_;
  ExporterSink directSink_;
  std::atomic<bool> suppressDirectOutput_{false};

  // Phase CPU accounting, reported at debug log level.
  std::atomic<double> phaseDrain_{0};
  std::atomic<double> phaseFlush_{0};
  std::atomic<double> phaseCollect_{0};
};

SyncEngine::SyncEngine(kv::KVStorePtr store, SyncEngineOptions options)
    : store_(std::move(store)), options_(std::move(options)) {}

JobResult SyncEngine::run(RawJob& job) {
  Run run(store_, options_, job);
  return run.execute();
}

}  // namespace ripple::ebsp
