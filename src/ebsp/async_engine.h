// The no-sync execution strategy (paper §IV-A): "When synchronization is
// not needed, the job is instead executed in one dispatch of EBSP
// implementation code to a queue set, where its instances invoke
// components and exchange messages until there is no more work to do.  We
// detect distributed termination essentially by Huang's algorithm."
//
// Requirements (paper §II-A): ((one-msg ∧ no-continue ∧ no-ss-order) ∨
// incremental) ∧ no-agg ∧ no-client-sync.  Messages are delivered as they
// arrive, preserving order per (sender part, receiver queue); there are no
// steps and no barriers.  When the job additionally satisfies run-anywhere
// (no-collect ∧ rare-state), idle workers steal work from other queues.

#pragma once

#include <chrono>
#include <functional>
#include <memory>

#include "ebsp/raw_job.h"
#include "fault/retry.h"
#include "kvstore/table.h"
#include "mq/queue.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/virtual_time.h"

namespace ripple::ebsp {

struct AsyncEngineOptions {
  sim::CostModel costModel = sim::CostModel::defaults();
  bool virtualTime = true;

  /// Queue poll timeout for idle workers.
  std::chrono::milliseconds pollTimeout{2};

  /// Enable work stealing when the job's properties allow run-anywhere.
  bool workStealing = true;

  /// Worker threads.  0 (default) or >= the part count runs the classic
  /// one-worker-per-queue topology; a smaller positive count runs that
  /// many workers, each multiplexing the striped queues {w, w + threads,
  /// ...}.  Deliberately NOT env-driven (unlike SyncEngineOptions):
  /// the worker count is a placement and recovery-topology decision —
  /// adopted-queue accounting and steal targets are sized by it — so only
  /// an explicit setting changes it.
  int threads = 0;

  /// Queue-set factory; the engine front-end defaults this to the
  /// in-memory implementation.
  mq::QueuingPtr queuing;

  /// Unified step hook (same signature as SyncEngineOptions::onStep).
  /// No-sync execution has no supersteps: the hook fires exactly once,
  /// after the queues drain, as (0, totalInvocations).
  std::function<void(int step, std::uint64_t invocations)> onStep;

  /// Transient-error absorption (see src/fault/retry.h): dequeues, state
  /// accesses, and enqueues run under a bounded retry.  A worker whose
  /// DEQUEUE budget is exhausted (or that receives an injected kill) is
  /// abandoned and its queue re-dispatched to a surviving worker; an
  /// exhausted budget mid-invocation is fatal (the envelope was already
  /// consumed, so redelivery would double-apply it).
  fault::RetryPolicy retry;

  /// REJECTED, never silently ignored: no-sync execution has no barriers,
  /// so a barrier hook could never fire.  The engine throws
  /// std::invalid_argument when this is set; the unified front-end
  /// (EngineOptions) instead routes onBarrier jobs to the synchronized
  /// strategy.
  std::function<void(int step)> onBarrier;

  /// Optional span collector.  The no-sync engine emits a single
  /// step-0 compute span for the whole drain plus load/export spans;
  /// there are no spill/barrier/collect spans.  Not owned.
  obs::Tracer* tracer = nullptr;

  /// Optional metrics registry; counters folded in under `ebsp.*`.
  /// Not owned; must outlive run().
  obs::MetricsRegistry* metrics = nullptr;
};

class AsyncEngine {
 public:
  AsyncEngine(kv::KVStorePtr store, AsyncEngineOptions options);

  /// Runs a job without synchronization barriers.  Throws
  /// std::invalid_argument if the job's properties do not permit no-sync
  /// execution.
  JobResult run(RawJob& job);

 private:
  class Run;
  kv::KVStorePtr store_;
  AsyncEngineOptions options_;
};

}  // namespace ripple::ebsp
