#include "graph/graph_gen.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace ripple::graph {

namespace {

bool hasEdge(const Graph& g, VertexId u, VertexId v) {
  const auto& nbrs = g.adj[u];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

void removeEdgeOneWay(Graph& g, VertexId u, VertexId v) {
  auto& nbrs = g.adj[u];
  auto it = std::find(nbrs.begin(), nbrs.end(), v);
  if (it != nbrs.end()) {
    *it = nbrs.back();
    nbrs.pop_back();
  }
}

}  // namespace

Graph generatePowerLaw(const PowerLawOptions& options) {
  if (options.vertices == 0) {
    throw std::invalid_argument("generatePowerLaw: vertices must be > 0");
  }
  Rng rng(options.seed);
  PowerLawSampler sampler(options.vertices, options.alpha, rng);

  Graph g;
  g.adj.resize(options.vertices);

  // Light dedupe: a hash set of recent edges bounded to the edge count.
  std::unordered_set<std::uint64_t> seen;
  if (options.dedupe) {
    seen.reserve(static_cast<std::size_t>(options.edges) * 2);
  }

  for (std::uint64_t e = 0; e < options.edges; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    bool accepted = false;
    // Dense power-law graphs collide constantly around the hubs.  Retry
    // with progressively more uniform endpoint choices: pure power-law
    // first, then one uniform endpoint, then both — the bulk of the
    // distribution stays skewed while the edge count stays exact.
    for (int attempt = 0; attempt < 96 && !accepted; ++attempt) {
      if (attempt < 24) {
        u = static_cast<VertexId>(sampler.sample(rng));
        v = static_cast<VertexId>(sampler.sample(rng));
      } else if (attempt < 56) {
        u = static_cast<VertexId>(rng.nextBelow(options.vertices));
        v = static_cast<VertexId>(sampler.sample(rng));
      } else {
        u = static_cast<VertexId>(rng.nextBelow(options.vertices));
        v = static_cast<VertexId>(rng.nextBelow(options.vertices));
      }
      if (u == v) {
        continue;
      }
      if (!options.dedupe) {
        accepted = true;
        break;
      }
      const std::uint64_t code =
          (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
      if (seen.insert(code).second) {
        accepted = true;
      }
    }
    if (!accepted) {
      continue;  // Bounded retries exhausted; drop this edge.
    }
    g.adj[u].push_back(v);
    ++g.edges;
    if (options.undirected) {
      g.adj[v].push_back(u);
    }
  }
  return g;
}

std::vector<GraphChange> randomChangeBatch(std::size_t vertices,
                                           std::size_t count, double alpha,
                                           Rng& rng) {
  PowerLawSampler sampler(vertices, alpha, rng, /*shuffle=*/true);
  std::vector<GraphChange> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    GraphChange c;
    c.add = rng.nextBool(0.5);
    c.u = static_cast<VertexId>(sampler.sample(rng));
    do {
      c.v = static_cast<VertexId>(sampler.sample(rng));
    } while (c.v == c.u);
    batch.push_back(c);
  }
  return batch;
}

std::vector<GraphChange> applyChanges(Graph& g,
                                      const std::vector<GraphChange>& batch) {
  std::vector<GraphChange> effective;
  for (const GraphChange& c : batch) {
    if (c.u >= g.adj.size() || c.v >= g.adj.size()) {
      continue;
    }
    const bool exists = hasEdge(g, c.u, c.v);
    if (c.add && !exists) {
      g.adj[c.u].push_back(c.v);
      g.adj[c.v].push_back(c.u);
      ++g.edges;
      effective.push_back(c);
    } else if (!c.add && exists) {
      removeEdgeOneWay(g, c.u, c.v);
      removeEdgeOneWay(g, c.v, c.u);
      --g.edges;
      effective.push_back(c);
    }
  }
  return effective;
}

std::vector<std::int32_t> bfsDistances(const Graph& g, VertexId source) {
  std::vector<std::int32_t> dist(g.vertexCount(), -1);
  if (source >= g.vertexCount()) {
    return dist;
  }
  std::deque<VertexId> frontier;
  dist[source] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    for (const VertexId v : g.adj[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace ripple::graph
