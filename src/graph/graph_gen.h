// Random graph generation for the evaluation workloads.
//
// Table I graphs: "Each graph follows a biased power-law distribution for
// edge attachments."  SSSP graph: "about 1.8 million random edges ...
// source and destination randomly chosen according to a power law
// distribution", on 100,000 initially unconnected vertices, followed by
// batches of random edge additions and removals.

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace ripple::graph {

using VertexId = std::uint32_t;

/// Adjacency-list graph.  Directed: adj[u] holds out-neighbors.  The SSSP
/// workload uses it as undirected by inserting both directions.
struct Graph {
  std::vector<std::vector<VertexId>> adj;
  std::uint64_t edges = 0;

  [[nodiscard]] std::size_t vertexCount() const { return adj.size(); }
};

struct PowerLawOptions {
  std::size_t vertices = 0;
  std::uint64_t edges = 0;
  /// Exponent of the attachment distribution.
  double alpha = 1.8;
  std::uint64_t seed = 1;
  /// Insert both directions (for undirected workloads).
  bool undirected = false;
  /// Permit parallel edges/self loops to be retried away (keeps the edge
  /// count exact).  Retrying forever on dense graphs is avoided with a
  /// bounded retry, after which the duplicate is accepted.
  bool dedupe = true;
};

/// Generate a graph with power-law-biased endpoints.
[[nodiscard]] Graph generatePowerLaw(const PowerLawOptions& options);

/// A primitive change to a time-varying graph (paper §V-C: gaining or
/// losing an edge; vertex add/remove is expressed by edges only here
/// because an isolated vertex has no effect on distances).
struct GraphChange {
  bool add = true;
  VertexId u = 0;
  VertexId v = 0;
};

/// A batch of random primitive changes "generated without regard to which
/// already exist, so some of these changes will be no-ops".
[[nodiscard]] std::vector<GraphChange> randomChangeBatch(
    std::size_t vertices, std::size_t count, double alpha, Rng& rng);

/// Apply a change batch to an in-memory undirected graph (reference
/// implementation used by tests and by the driver's bookkeeping).
/// Returns the changes that were NOT no-ops.
std::vector<GraphChange> applyChanges(Graph& g,
                                      const std::vector<GraphChange>& batch);

/// Reference BFS distances (hop counts) from `source`; -1 for
/// unreachable.  Used to validate both SSSP variants.
[[nodiscard]] std::vector<std::int32_t> bfsDistances(const Graph& g,
                                                     VertexId source);

}  // namespace ripple::graph
