// Non-template pieces of the Graph EBSP layer.

#include "graph/pregel.h"

namespace ripple::graph {

// The Pregel layer is header-template code; this translation unit anchors
// the library target and hosts shared non-template helpers.

std::uint64_t totalOutDegree(const Graph& g) {
  std::uint64_t total = 0;
  for (const auto& nbrs : g.adj) {
    total += nbrs.size();
  }
  return total;
}

}  // namespace ripple::graph
