// Graph EBSP: a Pregel-style vertex-centric programming model layered on
// K/V EBSP (the Graph EBSP box in the paper's Fig. 2; related work:
// "Ripple's programming model is that of Pregel, simplified from graph
// based data to key/value data, and extended; the functionality of Pregel
// can be constructed atop Ripple's K/V EBSP").
//
// A vertex is an EBSP component keyed by VertexId; its state is a
// VertexState record in the job's single state table.  voteToHalt() maps
// to the negative continue signal; delivery of a message re-enables a
// halted vertex — exactly EBSP's enablement rule.

#pragma once

#include <string>
#include <vector>

#include "ebsp/job.h"
#include "graph/graph_gen.h"
#include "kvstore/store_util.h"

namespace ripple::graph {

/// Per-vertex record stored in the vertex table.
template <typename V>
struct VertexState {
  V value{};
  std::vector<VertexId> outEdges;

  void encodeTo(ByteWriter& w) const {
    Codec<V>::encode(w, value);
    w.putVarint(outEdges.size());
    for (const VertexId e : outEdges) {
      w.putVarint(e);
    }
  }

  static VertexState decodeFrom(ByteReader& r) {
    VertexState s;
    s.value = Codec<V>::decode(r);
    const auto n = static_cast<std::size_t>(r.getVarint());
    s.outEdges.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.outEdges.push_back(static_cast<VertexId>(r.getVarint()));
    }
    return s;
  }
};

/// A vertex program (user code).  V = vertex value, M = message.
template <typename V, typename M>
class VertexProgram {
 public:
  class Context;

  virtual ~VertexProgram() = default;

  /// Called once per superstep for each active vertex.
  virtual void compute(Context& ctx, const std::vector<M>& messages) = 0;

  /// Optional message combiner (declared, like EBSP's).
  [[nodiscard]] virtual bool hasCombiner() const { return false; }
  virtual M combine(VertexId to, const M& a, const M& b) {
    (void)to;
    (void)a;
    (void)b;
    throw std::logic_error("VertexProgram::combine not implemented");
  }

  [[nodiscard]] virtual std::vector<ebsp::AggregatorDecl> aggregators()
      const {
    return {};
  }

  class Context {
   public:
    using Ebsp = ebsp::TypedComputeContext<VertexId, VertexState<V>, M>;

    Context(Ebsp& inner, VertexState<V> state)
        : inner_(inner), state_(std::move(state)) {}

    [[nodiscard]] VertexId id() const { return inner_.key(); }
    [[nodiscard]] int superstep() const { return inner_.stepNum(); }

    [[nodiscard]] const V& value() const { return state_.value; }
    void setValue(V value) {
      state_.value = std::move(value);
      dirty_ = true;
    }

    [[nodiscard]] const std::vector<VertexId>& outEdges() const {
      return state_.outEdges;
    }

    void addEdge(VertexId target) {
      state_.outEdges.push_back(target);
      dirty_ = true;
    }

    bool removeEdge(VertexId target) {
      auto& edges = state_.outEdges;
      auto it = std::find(edges.begin(), edges.end(), target);
      if (it == edges.end()) {
        return false;
      }
      edges.erase(it);
      dirty_ = true;
      return true;
    }

    void sendMessage(VertexId target, const M& message) {
      inner_.sendMessage(target, message);
    }

    void sendToAllNeighbors(const M& message) {
      for (const VertexId e : state_.outEdges) {
        inner_.sendMessage(e, message);
      }
    }

    /// Halt until re-activated by a message.
    void voteToHalt() { halted_ = true; }

    template <typename T>
    void aggregate(const std::string& name, const T& value) {
      inner_.template aggregate<T>(name, value);
    }

    template <typename T>
    [[nodiscard]] std::optional<T> aggregateResult(
        const std::string& name) const {
      return inner_.template aggregateResult<T>(name);
    }

    [[nodiscard]] bool halted() const { return halted_; }
    [[nodiscard]] bool dirty() const { return dirty_; }
    [[nodiscard]] VertexState<V>& mutableState() { return state_; }

   private:
    Ebsp& inner_;
    VertexState<V> state_;
    bool halted_ = false;
    bool dirty_ = false;
  };
};

struct PregelOptions {
  /// Existing table of (VertexId -> VertexState<V>) records.
  std::string vertexTable;

  /// Hard superstep limit enforced through an aborter.
  int maxSupersteps = 10'000;

  /// If false, no vertex is enabled initially except those explicitly
  /// given initial messages via `initialMessages`.
  bool enableAllInitially = true;
};

struct PregelResult {
  ebsp::JobResult job;
};

namespace detail {

template <typename V, typename M>
class PregelJob : public ebsp::Job<VertexId, VertexState<V>, M> {
 public:
  using Base = ebsp::Job<VertexId, VertexState<V>, M>;

  PregelJob(VertexProgram<V, M>& program, kv::KVStore& store,
            PregelOptions options)
      : program_(program), store_(store), options_(std::move(options)) {}

  std::vector<std::string> stateTableNames() const override {
    return {options_.vertexTable};
  }

  std::shared_ptr<typename Base::ComputeType> getCompute() override {
    return std::make_shared<ComputeImpl>(program_);
  }

  std::vector<ebsp::AggregatorDecl> aggregators() const override {
    return program_.aggregators();
  }

  std::string referenceTable() const override { return options_.vertexTable; }

  ebsp::Aborter aborter() const override {
    const int limit = options_.maxSupersteps;
    return [limit](const ebsp::AggregateReader&, int step) {
      return step >= limit;
    };
  }

  std::vector<ebsp::RawLoaderPtr> loaders() const override {
    if (!options_.enableAllInitially) {
      return {};
    }
    kv::TablePtr table = store_.lookupTable(options_.vertexTable);
    if (!table) {
      throw std::invalid_argument("Pregel: vertex table '" +
                                  options_.vertexTable + "' does not exist");
    }
    return {std::make_shared<ebsp::FunctionLoader>(
        [table](ebsp::LoaderContext& ctx) {
          for (auto& [k, v] : kv::readAll(*table)) {
            ctx.enableComponent(k);
          }
        })};
  }

 private:
  class ComputeImpl : public Base::ComputeType {
   public:
    explicit ComputeImpl(VertexProgram<V, M>& program) : program_(program) {}

    bool compute(typename Base::ComputeType::Context& ctx) override {
      auto state = ctx.readState();
      if (!state) {
        // A message addressed to a vertex that does not exist; Pregel
        // semantics create it implicitly with default state.
        state = VertexState<V>{};
      }
      typename VertexProgram<V, M>::Context vctx(ctx, std::move(*state));
      program_.compute(vctx, ctx.inputMessages());
      if (vctx.dirty()) {
        ctx.writeState(vctx.mutableState());
      }
      return !vctx.halted();
    }

    M combineMessages(const VertexId& key, const M& a, const M& b) override {
      return program_.combine(key, a, b);
    }

    bool hasMessageCombiner() const override {
      return program_.hasCombiner();
    }

   private:
    VertexProgram<V, M>& program_;
  };

  VertexProgram<V, M>& program_;
  kv::KVStore& store_;
  PregelOptions options_;
};

}  // namespace detail

/// Run a vertex program over the vertex table.
template <typename V, typename M>
PregelResult runPregel(ebsp::Engine& engine, VertexProgram<V, M>& program,
                       PregelOptions options) {
  detail::PregelJob<V, M> job(program, *engine.store(), std::move(options));
  PregelResult result;
  result.job = ebsp::runJob(engine, job);
  return result;
}

/// Sum of out-degrees (== directed edge count).
[[nodiscard]] std::uint64_t totalOutDegree(const Graph& g);

/// Populate `tableName` with the graph's vertices, all valued `init`.
template <typename V>
kv::TablePtr loadVertexTable(kv::KVStore& store, const std::string& tableName,
                             const Graph& graph, std::uint32_t parts,
                             const V& init) {
  kv::TableOptions options;
  options.parts = parts;
  kv::TablePtr table = store.createTable(tableName, std::move(options));
  std::vector<std::pair<kv::Key, kv::Value>> batch;
  batch.reserve(graph.vertexCount());
  for (VertexId u = 0; u < graph.vertexCount(); ++u) {
    VertexState<V> s;
    s.value = init;
    s.outEdges = graph.adj[u];
    batch.emplace_back(encodeToBytes(u), encodeToBytes(s));
  }
  table->putBatch(batch);
  return table;
}

}  // namespace ripple::graph
