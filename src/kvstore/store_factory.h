// Backend selection for the K/V store SPI.
//
// Four backends ship (DESIGN.md §10–11); callers pick one per run via
// EngineOptions::storeBackend, the RIPPLE_STORE environment variable
// ("partitioned" | "shard" | "local" | "remote"), or a bench harness's
// --store flag.  The SPI conformance suite asserts the choice is
// behaviorally invisible: PageRank/SSSP/SUMMA snapshots are byte-identical
// across backends.  "remote" speaks the ripple::net wire protocol to one
// or more net::Server processes (RIPPLE_REMOTE_ENDPOINTS), spinning an
// implicit in-process loopback server when none are given.

#pragma once

#include <optional>
#include <string>

#include "kvstore/table.h"

namespace ripple::kv {

enum class StoreBackend {
  /// Resolve from RIPPLE_STORE, falling back to kPartitioned.
  kDefault,
  kPartitioned,
  kShard,
  kLocal,
  kRemote,
};

/// "partitioned" | "shard" | "local" | "remote" (case-sensitive); nullopt
/// otherwise.
[[nodiscard]] std::optional<StoreBackend> parseStoreBackend(
    const std::string& name);

/// Canonical name of a concrete backend
/// ("partitioned"/"shard"/"local"/"remote"); kDefault resolves first.
[[nodiscard]] const char* storeBackendName(StoreBackend backend);

/// Resolve kDefault through RIPPLE_STORE; unset picks kPartitioned, and a
/// garbage value logs a warning and picks kPartitioned (never throws: env
/// misconfiguration must not take down a run).  Concrete values pass
/// through untouched.
[[nodiscard]] StoreBackend resolveStoreBackend(StoreBackend requested);

/// Create a store of the resolved backend with `containers` locations
/// (executor domains).  PartitionedStore calls them containers,
/// ShardStore locations; LocalStore runs inline and ignores the count.
[[nodiscard]] KVStorePtr makeStore(StoreBackend backend,
                                   std::uint32_t containers);

}  // namespace ripple::kv
