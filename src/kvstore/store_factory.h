// Backend selection for the K/V store SPI.
//
// Five backends ship (DESIGN.md §10–11, §14); callers pick one per run
// via EngineOptions::storeBackend, the RIPPLE_STORE environment variable
// ("partitioned" | "shard" | "local" | "remote" | "log"), or a bench
// harness's --store flag.  The SPI conformance suite asserts the choice
// is behaviorally invisible: PageRank/SSSP/SUMMA snapshots are
// byte-identical across backends.  "remote" speaks the ripple::net wire
// protocol to one or more net::Server processes (RIPPLE_REMOTE_ENDPOINTS),
// spinning an implicit in-process loopback server when none are given.
// "log" is the durable log-structured backend; it persists into
// RIPPLE_STORE_PATH / --store-path / EngineOptions::storePath, or a
// throwaway temp directory when no path is given.

#pragma once

#include <optional>
#include <string>

#include "kvstore/table.h"

namespace ripple::kv {

enum class StoreBackend {
  /// Resolve from RIPPLE_STORE, falling back to kPartitioned.
  kDefault,
  kPartitioned,
  kShard,
  kLocal,
  kRemote,
  kLog,
};

/// "partitioned" | "shard" | "local" | "remote" | "log" (case-sensitive);
/// nullopt otherwise.
[[nodiscard]] std::optional<StoreBackend> parseStoreBackend(
    const std::string& name);

/// Canonical name of a concrete backend
/// ("partitioned"/"shard"/"local"/"remote"/"log"); kDefault resolves first.
[[nodiscard]] const char* storeBackendName(StoreBackend backend);

/// Resolve kDefault through RIPPLE_STORE; unset picks kPartitioned, and a
/// garbage value logs a warning and picks kPartitioned (never throws: env
/// misconfiguration must not take down a run).  Concrete values pass
/// through untouched.
[[nodiscard]] StoreBackend resolveStoreBackend(StoreBackend requested);

/// Create a store of the resolved backend with `containers` locations
/// (executor domains).  PartitionedStore calls them containers,
/// ShardStore locations; LocalStore runs inline and ignores the count.
/// The log backend persists into `storePath` (empty resolves through
/// RIPPLE_STORE_PATH, then a fresh temp directory deleted on close) and
/// bounds its resident working set to `memoryBudgetBytes` (0 resolves
/// through RIPPLE_STORE_MEM, unset = unbounded); other backends ignore
/// both.
[[nodiscard]] KVStorePtr makeStore(StoreBackend backend,
                                   std::uint32_t containers,
                                   const std::string& storePath = {},
                                   std::size_t memoryBudgetBytes = 0);

/// The store directory the log backend would use for `storePath`:
/// `storePath` itself when set, else RIPPLE_STORE_PATH, else "" (which
/// LogStore turns into an ephemeral temp directory).
[[nodiscard]] std::string resolveStorePath(const std::string& storePath);

/// Parse a byte-size spec like "8388608", "8192K", "8M", or "1G"
/// (suffixes are binary multiples, case-insensitive); nullopt on
/// anything malformed or overflowing.
[[nodiscard]] std::optional<std::size_t> parseByteSize(
    const std::string& spec);

/// The log backend's memory budget for `requested`: `requested` itself
/// when non-zero, else RIPPLE_STORE_MEM, else 0 (unbounded).  A garbage
/// env value logs a warning and resolves to unbounded (never throws: env
/// misconfiguration must not take down a run).
[[nodiscard]] std::size_t resolveStoreMemory(std::size_t requested);

}  // namespace ripple::kv
