#include "kvstore/manifest.h"

#include "kvstore/segment.h"

namespace ripple::kv::logstore {

namespace {

constexpr std::uint8_t kBegin = 1;
constexpr std::uint8_t kCommit = 2;

/// Parts per table and tables per store are bounded sanity caps, not
/// functional limits: a fuzzer-supplied count of 2^60 must not drive a
/// 2^60-iteration loop before the payload runs dry.
constexpr std::uint64_t kMaxTables = 1u << 20;
constexpr std::uint64_t kMaxParts = 1u << 20;

}  // namespace

Bytes encodeBeginRecord(std::uint64_t epoch) {
  ByteWriter w;
  w.putU8(kBegin);
  w.putVarint(epoch);
  return w.take();
}

Bytes encodeCommitRecord(const ManifestState& state) {
  ByteWriter w;
  w.putU8(kCommit);
  w.putVarint(state.epoch);
  w.putVarint(state.nextTableId);
  w.putVarint(state.tables.size());
  for (const TableState& t : state.tables) {
    w.putBytes(t.name);
    w.putVarint(t.id);
    w.putVarint(t.parts);
    w.putBool(t.ordered);
    w.putBool(t.ubiquitous);
    for (const PartState& p : t.partStates) {
      w.putVarint(p.logGen);
      w.putVarint(p.committedLen);
      w.putVarint(p.sealedGen);
      w.putVarint(p.liveEntries);
    }
  }
  return w.take();
}

std::optional<ManifestRecord> decodeManifestRecord(
    BytesView payload) noexcept {
  try {
    ByteReader r(payload);
    ManifestRecord rec;
    const std::uint8_t kind = r.getU8();
    if (kind == kBegin) {
      rec.epoch = r.getVarint();
      if (!r.atEnd()) {
        return std::nullopt;
      }
      return rec;
    }
    if (kind != kCommit) {
      return std::nullopt;
    }
    rec.isCommit = true;
    rec.state.epoch = rec.epoch = r.getVarint();
    rec.state.nextTableId = r.getVarint();
    const std::uint64_t nTables = r.getVarint();
    if (nTables > kMaxTables) {
      return std::nullopt;
    }
    rec.state.tables.reserve(static_cast<std::size_t>(nTables));
    for (std::uint64_t i = 0; i < nTables; ++i) {
      TableState t;
      t.name = Bytes(r.getBytes());
      t.id = r.getVarint();
      const std::uint64_t parts = r.getVarint();
      if (parts == 0 || parts > kMaxParts) {
        return std::nullopt;
      }
      t.parts = static_cast<std::uint32_t>(parts);
      t.ordered = r.getBool();
      t.ubiquitous = r.getBool();
      t.partStates.resize(static_cast<std::size_t>(parts));
      for (PartState& p : t.partStates) {
        p.logGen = r.getVarint();
        p.committedLen = r.getVarint();
        p.sealedGen = r.getVarint();
        p.liveEntries = r.getVarint();
      }
      if (t.id == 0 || t.id >= rec.state.nextTableId) {
        return std::nullopt;  // Ids are allocated below nextTableId.
      }
      rec.state.tables.push_back(std::move(t));
    }
    if (!r.atEnd()) {
      return std::nullopt;
    }
    return rec;
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

ManifestRecovery recoverManifest(BytesView manifest) noexcept {
  ManifestRecovery out;
  std::size_t pos = 0;
  bool sawRecordAfterCommit = false;
  while (pos < manifest.size()) {
    const std::optional<Frame> frame = readFrame(manifest, pos);
    if (!frame) {
      break;  // Torn tail: the stream ends at the last whole record.
    }
    const std::optional<ManifestRecord> rec =
        decodeManifestRecord(frame->payload);
    if (!rec) {
      break;  // A framed-but-meaningless record reads as corruption; stop.
    }
    if (rec->isCommit) {
      out.state = rec->state;
      out.hasCommit = true;
      out.validBytes = frame->end;
      sawRecordAfterCommit = false;
    } else {
      sawRecordAfterCommit = true;
    }
    pos = frame->end;
  }
  // Anything after the last commit — a lone begin, a torn frame, garbage
  // bytes — marks an epoch that died before committing.
  out.tornEpoch = sawRecordAfterCommit || pos < manifest.size();
  return out;
}

}  // namespace ripple::kv::logstore
