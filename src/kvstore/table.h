// The Key/Value Store SPI (paper §III-A).
//
// This is the narrow interface that makes the rest of Ripple
// store-independent: tables partitioned into parts, get/put/delete by key,
// part and pair enumeration with client call-backs, consistent
// partitioning across tables, ubiquitous (replicated-everywhere) tables,
// and — crucially — the ability to run mobile client code collocated with
// a part's data.  Three implementations ship: LocalStore (single-threaded
// debugging store), PartitionedStore (parallel store with per-part
// executors and a marshalling boundary between parts), and ShardStore
// (striped-lock open-addressing shards with append-only write buffers).
//
// The exact guarantees every implementation must provide are written down
// in DESIGN.md §10 ("Store SPI contract") and enforced by
// tests/kvstore/spi_conformance_test.cpp, which runs the whole suite —
// plus a differential PageRank/SSSP/SUMMA leg — against every backend.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "obs/metrics.h"

namespace ripple::kv {

using Key = Bytes;
using Value = Bytes;
using KeyView = BytesView;
using ValueView = BytesView;

/// Configuration for table creation.
struct TableOptions {
  /// Number of parts (partitions).  Ignored for ubiquitous tables (1).
  std::uint32_t parts = 1;

  /// Ordered tables enumerate each part's pairs in ascending key order
  /// (byte-lexicographic); unordered tables use a hash organization.  The
  /// engine requests ordering only when the job declares needs-order
  /// (the no-sort optimization, paper §II-A).
  bool ordered = false;

  /// Ubiquitous tables are quick to read and of limited size; the contents
  /// fit in every location where they are used (paper §III-A).  Implemented
  /// as a single fully-replicated part.
  bool ubiquitous = false;

  /// Partitioner mapping keys to parts.  Shared partitioner instances give
  /// consistent partitioning across tables (co-placement).  When null the
  /// store creates a default hash partitioner over `parts`.
  PartitionerPtr partitioner;
};

/// Counters exposed by store implementations; used by tests and by the
/// I/O-round accounting in EXPERIMENTS.md.
///
/// The struct's own atomics remain the source of truth (and what existing
/// tests read); bindRegistry() additionally mirrors every increment into
/// `ripple::obs` registry counters so store traffic shows up in run
/// reports next to the engine metrics.  Store code must go through the
/// inc*/add* methods rather than touching the atomics directly.
struct StoreMetrics {
  std::atomic<std::uint64_t> localOps{0};    // Ops served on the owner thread.
  std::atomic<std::uint64_t> remoteOps{0};   // Ops routed across parts.
  std::atomic<std::uint64_t> bytesMarshalled{0};
  std::atomic<std::uint64_t> scans{0};       // Part enumerations.
  // Ubiquitous-read cache traffic; only backends with a read cache (the
  // shard store's block cache) increment these.
  std::atomic<std::uint64_t> cacheHits{0};
  std::atomic<std::uint64_t> cacheMisses{0};

  void incLocal(std::uint64_t n = 1) {
    localOps.fetch_add(n, std::memory_order_relaxed);
    forward(fwdLocal_, n);
  }

  void incRemote(std::uint64_t n = 1) {
    remoteOps.fetch_add(n, std::memory_order_relaxed);
    forward(fwdRemote_, n);
  }

  void addMarshalled(std::uint64_t bytes) {
    bytesMarshalled.fetch_add(bytes, std::memory_order_relaxed);
    forward(fwdMarshalled_, bytes);
  }

  void incScans(std::uint64_t n = 1) {
    scans.fetch_add(n, std::memory_order_relaxed);
    forward(fwdScans_, n);
  }

  void incCacheHit(std::uint64_t n = 1) {
    cacheHits.fetch_add(n, std::memory_order_relaxed);
    forward(fwdCacheHits_, n);
  }

  void incCacheMiss(std::uint64_t n = 1) {
    cacheMisses.fetch_add(n, std::memory_order_relaxed);
    forward(fwdCacheMisses_, n);
  }

  /// Mirror future increments into `<prefix>.local_ops`,
  /// `<prefix>.remote_ops`, `<prefix>.bytes_marshalled`,
  /// `<prefix>.scans`, `<prefix>.cache_hits`, and
  /// `<prefix>.cache_misses` of `registry`.  The registry must outlive
  /// the store (or unbind() must be called first).
  void bindRegistry(obs::MetricsRegistry& registry,
                    const std::string& prefix = "kv") {
    fwdLocal_.store(&registry.counter(prefix + ".local_ops"),
                    std::memory_order_release);
    fwdRemote_.store(&registry.counter(prefix + ".remote_ops"),
                     std::memory_order_release);
    fwdMarshalled_.store(&registry.counter(prefix + ".bytes_marshalled"),
                         std::memory_order_release);
    fwdScans_.store(&registry.counter(prefix + ".scans"),
                    std::memory_order_release);
    fwdCacheHits_.store(&registry.counter(prefix + ".cache_hits"),
                        std::memory_order_release);
    fwdCacheMisses_.store(&registry.counter(prefix + ".cache_misses"),
                          std::memory_order_release);
  }

  void unbind() {
    fwdLocal_.store(nullptr, std::memory_order_release);
    fwdRemote_.store(nullptr, std::memory_order_release);
    fwdMarshalled_.store(nullptr, std::memory_order_release);
    fwdScans_.store(nullptr, std::memory_order_release);
    fwdCacheHits_.store(nullptr, std::memory_order_release);
    fwdCacheMisses_.store(nullptr, std::memory_order_release);
  }

  /// Resets the façade's own counters only; bound registry counters are
  /// cumulative across resets.
  void reset() {
    localOps = 0;
    remoteOps = 0;
    bytesMarshalled = 0;
    scans = 0;
    cacheHits = 0;
    cacheMisses = 0;
  }

 private:
  static void forward(const std::atomic<obs::Counter*>& target,
                      std::uint64_t n) {
    if (obs::Counter* c = target.load(std::memory_order_acquire)) {
      c->add(n);
    }
  }

  std::atomic<obs::Counter*> fwdLocal_{nullptr};
  std::atomic<obs::Counter*> fwdRemote_{nullptr};
  std::atomic<obs::Counter*> fwdMarshalled_{nullptr};
  std::atomic<obs::Counter*> fwdScans_{nullptr};
  std::atomic<obs::Counter*> fwdCacheHits_{nullptr};
  std::atomic<obs::Counter*> fwdCacheMisses_{nullptr};
};

/// Call-back for pair enumeration (paper §III-A).  One consumer instance
/// may be driven concurrently for different parts; implementations keep
/// per-part state keyed by the part index given to setupPart.
class PairConsumer {
 public:
  virtual ~PairConsumer() = default;

  /// Called once per part before any pairs from that part.
  virtual void setupPart(std::uint32_t part) { (void)part; }

  /// Called for each pair.  Return true to continue enumerating this
  /// part, false to stop after this pair.
  virtual bool consume(std::uint32_t part, KeyView key, ValueView value) = 0;

  /// Called once per part after its pairs; the returned result is
  /// combined with its peers via combine().
  virtual Bytes finalizePart(std::uint32_t part) {
    (void)part;
    return {};
  }

  /// Pairwise, associative combination of per-part results.
  virtual Bytes combine(Bytes a, Bytes b) {
    return a.empty() ? std::move(b) : std::move(a);
  }
};

class Table;

/// Call-back for part enumeration: processPart runs collocated with the
/// part (on the part's long-operation executor in PartitionedStore).
class PartConsumer {
 public:
  virtual ~PartConsumer() = default;

  virtual Bytes processPart(std::uint32_t part, Table& table) = 0;

  /// Pairwise, associative combination of per-part results.
  virtual Bytes combine(Bytes a, Bytes b) {
    return a.empty() ? std::move(b) : std::move(a);
  }
};

/// A partitioned key/value table.
///
/// Point operations (get/put/erase) may be called from any thread; when
/// called from the owning part's executor they are served locally without
/// marshalling, otherwise they are routed to the owner.  Batch and
/// enumeration entry points exist so that callers can amortize routing.
class Table {
 public:
  virtual ~Table() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual const TableOptions& options() const = 0;
  [[nodiscard]] virtual std::uint32_t numParts() const = 0;

  /// Read-only sealing.  The engines seal a job's broadcast (ubiquitous)
  /// table for the duration of a run: the paper's contract makes
  /// broadcast data immutable while supersteps read it, so a mid-step
  /// write is an SPI violation surfaced as std::logic_error rather than
  /// a silent data race.  Virtual so decorators (FaultyStore) forward the
  /// seal to the wrapped table.
  virtual void setReadOnly(bool readOnly) {
    readOnly_.store(readOnly, std::memory_order_release);
  }
  [[nodiscard]] virtual bool readOnly() const {
    return readOnly_.load(std::memory_order_acquire);
  }

  /// Part that owns `key` under this table's partitioner.
  [[nodiscard]] virtual std::uint32_t partOf(KeyView key) const = 0;

  [[nodiscard]] virtual std::optional<Value> get(KeyView key) = 0;
  virtual void put(KeyView key, ValueView value) = 0;

  /// Returns true if the key existed.
  virtual bool erase(KeyView key) = 0;

  /// Routed batch put; entries may target any mix of parts.
  virtual void putBatch(const std::vector<std::pair<Key, Value>>& entries);

  /// Total number of pairs (sums parts; approximate under concurrency).
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// Number of pairs in one part.
  [[nodiscard]] virtual std::uint64_t partSize(std::uint32_t part) const = 0;

  /// Enumerate every pair of every part, driving `consumer` per part
  /// (concurrently where the store supports it) and returning the
  /// combined finalize results.
  virtual Bytes enumerate(PairConsumer& consumer) = 0;

  /// Enumerate one part only, on the caller's thread of choice per the
  /// store (collocated where supported).  Returns finalizePart's result.
  virtual Bytes enumeratePart(std::uint32_t part, PairConsumer& consumer) = 0;

  /// Run mobile code per part (collocated), combining results.
  virtual Bytes processParts(PartConsumer& consumer) = 0;

  /// Remove every pair in one part; returns the number removed.  Used by
  /// transport-table draining and by failure injection in tests.
  virtual std::uint64_t clearPart(std::uint32_t part) = 0;

  /// Read-and-remove every pair of one part (the transport-table drain).
  /// Contract: pairs are returned in ascending byte-lexicographic key
  /// order on EVERY backend (not just ordered tables).  The synchronized
  /// engine drives compute invocations in drain order, and aggregators
  /// fold contributions in invocation order, so a backend-specific drain
  /// order would leak into FP results and break cross-backend
  /// byte-identity (see DESIGN.md §10).
  virtual std::vector<std::pair<Key, Value>> drainPart(std::uint32_t part) = 0;

 protected:
  /// Implementations call this at the top of every mutating operation
  /// (put/erase/putBatch/clearPart/drainPart).
  void checkWritable(const char* op) const {
    if (readOnly()) {
      throw std::logic_error("Table '" + name() + "': " + op +
                             " on a read-only (sealed ubiquitous) table");
    }
  }

 private:
  std::atomic<bool> readOnly_{false};
};

using TablePtr = std::shared_ptr<Table>;

/// The key/value store: create/drop/lookup tables, plus collocated
/// execution placed like a given table (the storage+compute fusion of
/// paper §III-A).
class KVStore {
 public:
  virtual ~KVStore() = default;

  /// Create a table.  Throws if the name exists.
  virtual TablePtr createTable(const std::string& name,
                               TableOptions options) = 0;

  /// Create a table guaranteed to be consistently partitioned with
  /// `like` (same parts, same partitioner), per paper §III-A.
  TablePtr createConsistentTable(const std::string& name, const Table& like,
                                 bool ordered = false);

  /// Null if absent.
  virtual TablePtr lookupTable(const std::string& name) = 0;

  virtual void dropTable(const std::string& name) = 0;

  /// Run `fn` for every part of `placement`, collocated with each part
  /// where supported, and wait for all to finish.  Exceptions from any
  /// part are rethrown (first one wins).
  virtual void runInParts(const Table& placement,
                          const std::function<void(std::uint32_t)>& fn) = 0;

  /// Run `fn` collocated with one part of `placement` and wait.
  virtual void runInPart(const Table& placement, std::uint32_t part,
                         const std::function<void()>& fn) = 0;

  /// Fire-and-forget collocated execution; completion observed via the
  /// caller's own synchronization.  Default implementation runs inline.
  virtual void postToPart(const Table& placement, std::uint32_t part,
                          std::function<void()> fn);

  /// Adopt the CALLING thread into the location hosting `part` of
  /// `placement` until the returned token is destroyed: operations on
  /// co-placed parts issued from this thread are then served locally.
  /// This is how long-lived mobile code (queue-set workers) runs adjacent
  /// to its data.  Default: no-op token.
  virtual std::shared_ptr<void> adoptPartThread(const Table& placement,
                                                std::uint32_t part);

  [[nodiscard]] virtual StoreMetrics& metrics() = 0;

  /// Number of parts a table created "like" `placement` would have.
  [[nodiscard]] virtual std::uint32_t partsOf(const Table& placement) const;

  /// Short backend identifier ("local", "partitioned", "shard");
  /// decorators forward the wrapped store's name.  Used for per-backend
  /// `store.<name>.*` metric prefixes and run-report labels.
  [[nodiscard]] virtual const char* backendName() const { return "kv"; }
};

using KVStorePtr = std::shared_ptr<KVStore>;

/// RAII seal: marks a table read-only for the scope's lifetime.  The
/// engines hold one over the job's broadcast table while a run is in
/// flight.
class ScopedTableSeal {
 public:
  ScopedTableSeal() = default;
  explicit ScopedTableSeal(TablePtr table) : table_(std::move(table)) {
    if (table_) {
      table_->setReadOnly(true);
    }
  }
  ~ScopedTableSeal() { release(); }
  ScopedTableSeal(const ScopedTableSeal&) = delete;
  ScopedTableSeal& operator=(const ScopedTableSeal&) = delete;
  ScopedTableSeal(ScopedTableSeal&& other) noexcept
      : table_(std::move(other.table_)) {
    other.table_.reset();
  }
  ScopedTableSeal& operator=(ScopedTableSeal&& other) noexcept {
    if (this != &other) {
      release();
      table_ = std::move(other.table_);
      other.table_.reset();
    }
    return *this;
  }

  /// Unseal now (idempotent; the destructor then does nothing).
  void release() {
    if (table_) {
      table_->setReadOnly(false);
      table_.reset();
    }
  }

 private:
  TablePtr table_;
};

}  // namespace ripple::kv
