#include "kvstore/log_store.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <stdexcept>

#include "common/logging.h"
#include "common/stats.h"

namespace ripple::kv {

namespace fs = std::filesystem;
using logstore::AppendFile;
using logstore::LogOp;
using logstore::SealedSegment;
using logstore::SegmentError;

namespace {

std::string partFileName(std::uint64_t tableId, std::uint32_t part,
                         std::uint64_t gen, const char* ext) {
  return "t" + std::to_string(tableId) + "_p" + std::to_string(part) + "_g" +
         std::to_string(gen) + ext;
}

constexpr const char* kManifestName = "MANIFEST";

/// Approximate heap cost of one buffered write beyond its payload bytes:
/// the BufferedWrite control block, the vector headers of key and value,
/// and the index hash-table slot.  The accounting is a budget, not an
/// allocator audit — a stable over-estimate keeps eviction honest.
constexpr std::size_t kEntryOverhead = 96;

/// Byte-lexicographic three-way compare, matching the order std::map
/// over Bytes and SealedSegment both use.
int compareKeys(BytesView a, BytesView b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n != 0) {
    const int c = std::memcmp(a.data(), b.data(), n);
    if (c != 0) {
      return c;
    }
  }
  if (a.size() == b.size()) {
    return 0;
  }
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace

// --- LogTable -------------------------------------------------------------

class LogStore::LogTable : public Table,
                           public std::enable_shared_from_this<LogTable> {
 public:
  struct BufferedWrite {
    Bytes key;
    Bytes value;
    bool tombstone = false;
  };

  /// One part = sealed past + buffered present.  `buffer` mirrors the
  /// not-yet-sealed log tail (ShardStore's append-only write-buffer
  /// discipline); `pending` holds the same records framed for disk,
  /// appended and fsynced at the next epoch commit.
  ///
  /// `sealed` is a shared_ptr so readers streaming the segment outside
  /// dataMu_ can pin the generation: a concurrent compaction swaps the
  /// pointer, and the superseded mapping stays alive until its last pin
  /// drops (POSIX keeps an unlinked mapping readable).
  ///
  /// `loaded` is the out-of-core switch: recovery under a memory budget
  /// records the committed log tail's length but defers its replay; the
  /// first touch (ensureLoaded) replays it through the sealed segment —
  /// the read-through path.  `bufferBytes` + `pending.size()` is the
  /// part's accounted resident footprint; `lastTouch` feeds LRU victim
  /// selection.
  struct Part {
    std::vector<BufferedWrite> buffer;
    std::unordered_map<Bytes, std::size_t> index;  // key -> newest buffer slot
    Bytes pending;
    bool sealedCleared = false;  // A clear record masks the sealed segment.
    bool loaded = true;          // Committed log tail replayed into buffer.
    std::shared_ptr<SealedSegment> sealed;
    AppendFile log;
    std::uint64_t logGen = 1;
    std::uint64_t sealedGen = 0;
    std::uint64_t committedLen = 0;
    std::uint64_t liveCount = 0;
    std::uint64_t bufferBytes = 0;  // Accounted buffer + index bytes.
    std::uint64_t lastTouch = 0;    // LRU clock snapshot.
  };

  /// Fresh table.
  LogTable(LogStore* store, std::string name, TableOptions options,
           std::uint64_t id)
      : store_(store), name_(std::move(name)), options_(std::move(options)),
        id_(id) {
    if (options_.ubiquitous) {
      options_.parts = 1;
    }
    if (!options_.partitioner) {
      options_.partitioner = makeDefaultPartitioner(options_.parts);
    }
    if (options_.partitioner->parts() != options_.parts) {
      throw std::invalid_argument("LogTable '" + name_ +
                                  "': partitioner/parts mismatch");
    }
    parts_.resize(options_.parts);
  }

  /// Recovered table: rebuild each part from its committed files.  A
  /// recovered table gets the default partitioner over the recorded part
  /// count — custom hash functions are code, not data, and cannot be
  /// persisted (DESIGN.md §14).
  LogTable(LogStore* store, const logstore::TableState& state,
           const std::string& dir)
      : store_(store), name_(state.name), id_(state.id) {
    options_.parts = state.parts;
    options_.ordered = state.ordered;
    options_.ubiquitous = state.ubiquitous;
    options_.partitioner = makeDefaultPartitioner(options_.parts);
    parts_.resize(options_.parts);
    const bool lazy = store_->options_.memoryBudgetBytes > 0;
    for (std::uint32_t i = 0; i < options_.parts; ++i) {
      Part& p = parts_[i];
      const logstore::PartState& ps = state.partStates.at(i);
      p.logGen = ps.logGen;
      p.sealedGen = ps.sealedGen;
      p.committedLen = ps.committedLen;
      if (ps.sealedGen != 0) {
        auto seg = std::make_shared<SealedSegment>();
        seg->open(dir + "/" + partFileName(id_, i, ps.sealedGen, ".seg"));
        p.sealed = std::move(seg);
        // Sealed entries are live until replay() erases/clears them; it
        // only counts net-new keys (exists() sees the sealed segment).
        p.liveCount = p.sealed->count();
      }
      const std::string logPath =
          dir + "/" + partFileName(id_, i, ps.logGen, ".log");
      if (ps.committedLen > 0) {
        if (lazy) {
          // Under a memory budget, materializing every part at open
          // would blow the budget before the first eviction could run;
          // defer the tail replay to first touch (ensureLoaded).  Fail
          // fast here on the one corruption shape that is cheap to
          // detect without reading the file; frame-level validation of
          // the committed prefix happens on load.
          std::error_code ec;
          const std::uintmax_t onDisk = fs::file_size(logPath, ec);
          if (ec || onDisk < ps.committedLen) {
            throw SegmentError("LogTable '" + name_ + "' part " +
                               std::to_string(i) +
                               ": log shorter than its committed length");
          }
          p.loaded = false;
          p.liveCount = ps.liveEntries;  // Manifest-recorded; exact.
        } else {
          const Bytes bytes = logstore::readFileBytes(logPath);
          if (bytes.size() < ps.committedLen) {
            throw SegmentError("LogTable '" + name_ + "' part " +
                               std::to_string(i) +
                               ": log shorter than its committed length");
          }
          replay(p, BytesView(bytes.data(), ps.committedLen));
        }
      }
      // Reopening truncated drops any torn tail past the committed length.
      p.log.openTruncated(logPath, ps.committedLen);
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const TableOptions& options() const override {
    return options_;
  }
  [[nodiscard]] std::uint32_t numParts() const override {
    return options_.parts;
  }
  [[nodiscard]] std::uint32_t partOf(KeyView key) const override {
    return options_.partitioner->partOf(key);
  }
  [[nodiscard]] std::uint64_t id() const { return id_; }

  void markDropped() { dropped_.store(true, std::memory_order_release); }
  [[nodiscard]] bool dropped() const {
    return dropped_.load(std::memory_order_acquire);
  }

  std::optional<Value> get(KeyView key) override {
    std::optional<Value> out;
    {
      LockGuard lock(store_->dataMu_);
      store_->metrics_.incLocal();
      Part& p = parts_[partOf(key)];
      ensureLoaded(p);
      touch(p);
      if (const auto it = p.index.find(Bytes(key)); it != p.index.end()) {
        const BufferedWrite& w = p.buffer[it->second];
        if (!w.tombstone) {
          out = w.value;
        }
      } else if (!p.sealedCleared && p.sealed) {
        // Read-through: the buffer has no verdict, so the mmap'd sealed
        // segment is the part's state — the whole of it once evicted.
        if (const auto v = p.sealed->find(key)) {
          out = Bytes(*v);
          store_->segReadHits_.fetch_add(1, std::memory_order_relaxed);
        } else {
          store_->segReadMisses_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    store_->enforceBudget();  // ensureLoaded may have grown the resident set.
    return out;
  }

  void put(KeyView key, ValueView value) override {
    checkWritable("put");
    const std::uint32_t part = partOf(key);
    bool overBudget = false;
    {
      LockGuard lock(store_->dataMu_);
      store_->metrics_.incLocal();
      Part& p = parts_[part];
      ensureLoaded(p);
      touch(p);
      apply(p, LogOp::kPut, key, value, /*writeLog=*/true);
      overBudget = p.pending.size() > store_->options_.compactBytes;
    }
    if (overBudget) {
      store_->scheduleCompaction(shared_from_this(), part);
    }
    store_->enforceBudget();
  }

  bool erase(KeyView key) override {
    checkWritable("erase");
    bool existed = false;
    {
      LockGuard lock(store_->dataMu_);
      store_->metrics_.incLocal();
      Part& p = parts_[partOf(key)];
      ensureLoaded(p);
      touch(p);
      existed = apply(p, LogOp::kErase, key, {}, /*writeLog=*/true);
    }
    store_->enforceBudget();
    return existed;
  }

  [[nodiscard]] std::uint64_t size() const override {
    LockGuard lock(store_->dataMu_);
    std::uint64_t total = 0;
    for (const Part& p : parts_) {
      total += p.liveCount;  // Exact even for unloaded parts (manifest).
    }
    return total;
  }

  [[nodiscard]] std::uint64_t partSize(std::uint32_t part) const override {
    LockGuard lock(store_->dataMu_);
    return parts_.at(part).liveCount;
  }

  Bytes enumerate(PairConsumer& consumer) override {
    Bytes result;
    bool first = true;
    for (std::uint32_t p = 0; p < numParts(); ++p) {
      Bytes r = enumeratePart(p, consumer);
      result = first ? std::move(r)
                     : consumer.combine(std::move(result), std::move(r));
      first = false;
    }
    return result;
  }

  Bytes enumeratePart(std::uint32_t part, PairConsumer& consumer) override {
    store_->metrics_.incScans();
    // Snapshot the dirty overlay and PIN the sealed generation under the
    // lock, then merge-stream outside it so callbacks can freely mutate
    // this or other tables.  Streaming (rather than folding a full copy)
    // is what keeps scans of an evicted part within the memory budget:
    // sealed entries are read straight from the mapping, one at a time.
    // The pin keeps that mapping alive if a concurrent compaction swaps
    // generations mid-stream — without it the views handed to the
    // consumer would dangle into munmap'd memory.
    std::shared_ptr<const SealedSegment> pinned;
    std::map<Bytes, std::optional<Bytes>> overlay;  // newest-wins dirty tail
    {
      LockGuard lock(store_->dataMu_);
      Part& p = parts_.at(part);
      ensureLoaded(p);
      touch(p);
      if (!p.sealedCleared) {
        pinned = p.sealed;
      }
      for (const BufferedWrite& w : p.buffer) {
        overlay.insert_or_assign(
            w.key, w.tombstone ? std::nullopt : std::optional<Bytes>(w.value));
      }
    }
    consumer.setupPart(part);
    auto it = overlay.begin();
    const std::uint64_t n = pinned ? pinned->count() : 0;
    std::uint64_t i = 0;
    bool more = true;
    while (more) {
      if (i < n) {
        const auto [sk, sv] = pinned->entry(i);
        int cmp = 1;  // Overlay exhausted: the segment entry goes next.
        if (it != overlay.end()) {
          cmp = compareKeys(it->first, sk);
        }
        if (cmp > 0) {
          more = consumer.consume(part, sk, sv);
          ++i;
          continue;
        }
        if (cmp == 0) {
          ++i;  // The overlay's newer verdict masks this sealed entry.
        }
      } else if (it == overlay.end()) {
        break;
      }
      if (it->second) {
        more = consumer.consume(part, it->first, *it->second);
      }
      ++it;  // Tombstones emit nothing but still advance.
    }
    store_->enforceBudget();
    return consumer.finalizePart(part);
  }

  Bytes processParts(PartConsumer& consumer) override {
    Bytes result;
    bool first = true;
    for (std::uint32_t p = 0; p < numParts(); ++p) {
      Bytes r = consumer.processPart(p, *this);
      result = first ? std::move(r)
                     : consumer.combine(std::move(result), std::move(r));
      first = false;
    }
    return result;
  }

  std::uint64_t clearPart(std::uint32_t part) override {
    checkWritable("clearPart");
    LockGuard lock(store_->dataMu_);
    Part& p = parts_.at(part);
    touch(p);
    // No ensureLoaded: the clear masks the unreplayed tail (apply marks
    // the part loaded), and liveCount is exact even while unloaded.
    const std::uint64_t n = p.liveCount;
    apply(p, LogOp::kClear, {}, {}, /*writeLog=*/true);
    return n;
  }

  std::vector<std::pair<Key, Value>> drainPart(std::uint32_t part) override {
    checkWritable("drainPart");
    std::vector<std::pair<Bytes, Bytes>> out;
    {
      LockGuard lock(store_->dataMu_);
      store_->metrics_.incScans();
      Part& p = parts_.at(part);
      ensureLoaded(p);
      touch(p);
      out = fold(p);
      apply(p, LogOp::kClear, {}, {}, /*writeLog=*/true);
    }
    store_->enforceBudget();
    return out;
  }

  // --- Store-internal surface (all called under store locks). ---

  /// Flush this table's pending records to its part logs and fsync; fill
  /// in the table's slice of the commit record.  Sets `createdFiles` when
  /// a part log was created (its directory entry still needs a syncDir
  /// before the commit record may reference it).  Caller holds
  /// manifestMu_ and dataMu_.
  logstore::TableState commitParts(const std::string& dir,
                                   bool& createdFiles) {
    logstore::TableState state;
    state.name = name_;
    state.id = id_;
    state.parts = options_.parts;
    state.ordered = options_.ordered;
    state.ubiquitous = options_.ubiquitous;
    state.partStates.resize(options_.parts);
    for (std::uint32_t i = 0; i < options_.parts; ++i) {
      Part& p = parts_[i];
      if (!p.pending.empty()) {
        if (!p.log.isOpen()) {
          // Only ever unopened before the part's first flush, so this
          // open creates the file.
          p.log.open(dir + "/" + partFileName(id_, i, p.logGen, ".log"));
          createdFiles = true;
        }
        const std::uint64_t flushed = p.pending.size();
        p.log.append(p.pending);
        p.pending.clear();
        store_->noteResident(-static_cast<std::int64_t>(flushed));
        p.log.sync();
        p.committedLen = p.log.size();
      }
      logstore::PartState& ps = state.partStates[i];
      ps.logGen = p.logGen;
      ps.committedLen = p.committedLen;
      ps.sealedGen = p.sealedGen;
      ps.liveEntries = p.liveCount;
    }
    return state;
  }

  /// Fold a part and swap in a new sealed generation + empty log.  Caller
  /// holds manifestMu_ and dataMu_.  Returns the superseded files (kept
  /// on disk until the next commit stops referencing them).
  ///
  /// This is also the eviction primitive: the in-memory fold is dropped
  /// only AFTER writeFileDurable has the new segment on disk, so dirty
  /// uncommitted data is never lost — it becomes sealed-and-readable
  /// immediately, and a crash before the next commit rolls back to the
  /// old generation the manifest still names.
  std::vector<std::string> compactPart(std::uint32_t part,
                                       const std::string& dir) {
    Part& p = parts_.at(part);
    if (p.buffer.empty() && !p.sealedCleared) {
      return {};  // Nothing buffered; the sealed segment is already folded.
    }
    std::vector<std::pair<Bytes, Bytes>> folded = fold(p);
    const std::uint64_t newGen = std::max(p.logGen, p.sealedGen) + 1;
    const std::string segPath =
        dir + "/" + partFileName(id_, part, newGen, ".seg");
    logstore::writeFileDurable(segPath, SealedSegment::encode(folded));

    std::vector<std::string> superseded;
    superseded.push_back(dir + "/" +
                         partFileName(id_, part, p.logGen, ".log"));
    if (p.sealedGen != 0) {
      superseded.push_back(dir + "/" +
                           partFileName(id_, part, p.sealedGen, ".seg"));
    }

    auto fresh = std::make_shared<SealedSegment>();
    fresh->open(segPath);
    // Swap, don't close: readers pinning the old generation keep its
    // mapping alive until their last reference drops.
    p.sealed = std::move(fresh);
    p.sealedGen = newGen;
    p.sealedCleared = false;
    const std::uint64_t wasResident = p.bufferBytes + p.pending.size();
    p.buffer.clear();
    p.index.clear();
    p.pending.clear();
    p.bufferBytes = 0;
    store_->noteResident(-static_cast<std::int64_t>(wasResident));
    p.log.close();
    p.log.open(dir + "/" + partFileName(id_, part, newGen, ".log"));
    p.logGen = newGen;
    p.committedLen = 0;
    p.liveCount = folded.size();
    p.loaded = true;  // The fresh log has no tail to replay.
    return superseded;
  }

  /// Coldest part with accounted resident bytes, for LRU eviction.
  /// Caller holds dataMu_.  Returns false when nothing is evictable.
  bool coldestResidentPart(std::uint64_t& bestTouch,
                           std::uint32_t& bestPart) const {
    bool found = false;
    for (std::uint32_t i = 0; i < parts_.size(); ++i) {
      const Part& p = parts_[i];
      if (p.bufferBytes + p.pending.size() == 0) {
        continue;
      }
      if (!found || p.lastTouch < bestTouch) {
        found = true;
        bestTouch = p.lastTouch;
        bestPart = i;
      }
    }
    return found;
  }

  /// File names the table's current generations occupy (for drop/stray
  /// accounting).  Caller holds dataMu_.
  std::vector<std::string> liveFileNames() const {
    std::vector<std::string> out;
    for (std::uint32_t i = 0; i < options_.parts; ++i) {
      const Part& p = parts_[i];
      out.push_back(partFileName(id_, i, p.logGen, ".log"));
      if (p.sealedGen != 0) {
        out.push_back(partFileName(id_, i, p.sealedGen, ".seg"));
      }
    }
    return out;
  }

  void accumulateStats(Stats& s) const {
    for (const Part& p : parts_) {
      if (p.sealed) {
        ++s.sealedSegments;
        s.sealedBytes += p.sealed->sizeBytes();
      }
      s.logBytes += p.committedLen;
      s.pendingBytes += p.pending.size();
    }
  }

 private:
  /// Stamp the part's LRU clock.  Caller holds dataMu_.
  void touch(Part& p) {
    p.lastTouch =
        store_->touchClock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Replay the committed log tail the recovery pass deferred (out-of-
  /// core open).  Caller holds dataMu_.  Throws SegmentError on corrupt
  /// committed records, exactly as eager recovery would have.
  void ensureLoaded(Part& p) {
    if (p.loaded) {
      return;
    }
    p.loaded = true;
    // Reset to the sealed baseline; replay re-derives the live count the
    // same way eager recovery does.
    p.liveCount = p.sealed ? p.sealed->count() : 0;
    const Bytes bytes = logstore::readFileBytes(p.log.path());
    if (bytes.size() < p.committedLen) {
      throw SegmentError("LogTable '" + name_ +
                         "': log shorter than its committed length");
    }
    replay(p, BytesView(bytes.data(), p.committedLen));
  }

  /// Apply one logical mutation: update the in-memory buffer/index/count
  /// and (writeLog) mirror it into the part's pending disk frames.
  /// Recovery replays committed records through the same path with
  /// writeLog=false.  Returns whether the key existed (for erase).
  bool apply(Part& p, LogOp op, KeyView key, ValueView value, bool writeLog) {
    const std::uint64_t before = p.bufferBytes + p.pending.size();
    bool result = true;
    if (op == LogOp::kClear) {
      if (writeLog) {
        logstore::appendFrame(p.pending,
                              logstore::encodeLogRecord(op, {}, {}));
      }
      p.buffer.clear();
      p.index.clear();
      p.bufferBytes = 0;
      p.sealedCleared = true;
      p.liveCount = 0;
      p.loaded = true;  // The clear masks any unreplayed committed tail.
    } else {
      const bool existed = exists(p, key);
      if (op == LogOp::kErase && !existed) {
        return false;  // Semantic no-op; nothing to log or buffer.
      }
      if (writeLog) {
        logstore::appendFrame(p.pending,
                              logstore::encodeLogRecord(op, key, value));
      }
      p.buffer.push_back(BufferedWrite{Bytes(key), Bytes(value),
                                       op == LogOp::kErase});
      p.index[Bytes(key)] = p.buffer.size() - 1;
      p.bufferBytes += key.size() + value.size() + kEntryOverhead;
      if (op == LogOp::kPut && !existed) {
        ++p.liveCount;
      } else if (op == LogOp::kErase) {
        --p.liveCount;
      }
      result = existed;
    }
    store_->noteResident(
        static_cast<std::int64_t>(p.bufferBytes + p.pending.size()) -
        static_cast<std::int64_t>(before));
    return result;
  }

  bool exists(const Part& p, KeyView key) const {
    if (const auto it = p.index.find(Bytes(key)); it != p.index.end()) {
      return !p.buffer[it->second].tombstone;
    }
    return !p.sealedCleared && p.sealed && p.sealed->find(key).has_value();
  }

  /// Replay a committed log prefix.  The prefix was fsynced before its
  /// commit record, so a malformed frame inside it is corruption of
  /// committed data, not a torn tail — fail loudly.
  void replay(Part& p, BytesView committed) {
    std::size_t pos = 0;
    while (pos < committed.size()) {
      const auto frame = logstore::readFrame(committed, pos);
      if (!frame) {
        throw SegmentError("LogTable '" + name_ +
                           "': corrupt record inside committed log prefix");
      }
      const auto rec = logstore::decodeLogRecord(frame->payload);
      if (!rec) {
        throw SegmentError("LogTable '" + name_ +
                           "': malformed record inside committed log prefix");
      }
      apply(p, rec->op, rec->key, rec->value, /*writeLog=*/false);
      pos = frame->end;
    }
  }

  /// Newest-wins fold of buffer over sealed segment into canonical
  /// ascending-key order (the SPI's drain contract, DESIGN.md §10).
  std::vector<std::pair<Bytes, Bytes>> fold(const Part& p) const {
    Stopwatch watch;
    std::map<Bytes, std::optional<Bytes>> merged;
    if (!p.sealedCleared && p.sealed) {
      for (std::uint64_t i = 0; i < p.sealed->count(); ++i) {
        const auto [k, v] = p.sealed->entry(i);
        merged.emplace(Bytes(k), Bytes(v));
      }
    }
    for (const BufferedWrite& w : p.buffer) {
      merged.insert_or_assign(
          w.key, w.tombstone ? std::nullopt : std::optional<Bytes>(w.value));
    }
    std::vector<std::pair<Bytes, Bytes>> out;
    out.reserve(merged.size());
    for (auto& [k, v] : merged) {
      if (v) {
        out.emplace_back(k, std::move(*v));
      }
    }
    store_->recordFold(watch.elapsedSeconds());
    return out;
  }

  LogStore* store_;
  std::string name_;
  TableOptions options_;
  std::uint64_t id_;
  std::vector<Part> parts_;
  std::atomic<bool> dropped_{false};
};

// --- LogStore -------------------------------------------------------------

std::shared_ptr<LogStore> LogStore::open(Options options) {
  return std::shared_ptr<LogStore>(new LogStore(std::move(options)));
}

LogStore::EphemeralDirGuard::~EphemeralDirGuard() {
  if (!path.empty()) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
}

LogStore::LogStore(Options options) : options_(std::move(options)) {
  if (options_.path.empty()) {
    std::string tmpl =
        (fs::temp_directory_path() / "ripple-log-XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw SegmentError("LogStore: cannot create ephemeral directory at " +
                         tmpl);
    }
    path_ = tmpl;
    ephemeral_ = true;
  } else {
    path_ = options_.path;
    ephemeral_ = options_.ephemeral;
    fs::create_directories(path_);
  }
  if (ephemeral_) {
    // Armed BEFORE recover(): if recovery throws, ~LogStore never runs,
    // but member destructors still do and the guard removes the
    // directory — the cleanup-on-destroy contract holds on the throwing
    // path too.
    ephemeralDir_.path = path_;
  }
  recover();
  if (options_.backgroundCompaction) {
    compactor_ = std::thread([this] { compactionLoop(); });
  }
}

LogStore::~LogStore() {
  {
    UniqueLock lock(queueMu_);
    stopping_ = true;
  }
  queueCv_.notify_all();
  if (compactor_.joinable()) {
    compactor_.join();
  }
  try {
    commitEpoch();  // Clean shutdown commits whatever is buffered.
  } catch (...) {
    // Destructor must not throw; an unflushed tail simply rolls back to
    // the previous epoch on the next open.
  }
  // An ephemeral directory is removed by ephemeralDir_'s destructor,
  // which runs after this body — and also when the constructor throws.
}

void LogStore::recover() {
  Stopwatch watch;
  const std::string manifestPath = path_ + "/" + kManifestName;
  logstore::ManifestRecovery rec;
  const bool manifestExists = fs::exists(manifestPath);
  if (manifestExists) {
    rec = logstore::recoverManifest(logstore::readFileBytes(manifestPath));
  }
  {
    LockGuard tl(tablesMu_);
    {
      LockGuard ml(manifestMu_);
      if (manifestExists) {
        // ALWAYS truncate back to the valid prefix — to zero when no
        // commit survived.  commitEpoch appends (O_APPEND); a torn begin
        // frame or garbage left in place would precede every future
        // commit, and the next recovery's front-to-back scan would stop
        // at it, never see those commits, and delete their files as
        // strays.
        manifest_.openTruncated(manifestPath, rec.validBytes);
      }
      if (rec.hasCommit) {
        nextTableId_ = rec.state.nextTableId;
      }
    }
    if (rec.hasCommit) {
      if (rec.tornEpoch) {
        RIPPLE_WARN << "LogStore '" << path_
                    << "': dropping epoch torn after commit "
                    << rec.state.epoch;
      }
      lastCommitted_.store(rec.state.epoch, std::memory_order_release);
      LockGuard dl(dataMu_);
      for (const logstore::TableState& ts : rec.state.tables) {
        tables_.emplace(ts.name, std::make_shared<LogTable>(this, ts, path_));
      }
    }
  }
  removeStrayFiles();
  lastRecoverySeconds_.store(watch.elapsedSeconds(),
                             std::memory_order_release);
}

void LogStore::removeStrayFiles() {
  // Anything the recovered (or empty) state does not reference is debris
  // from an epoch that never committed: logs/segments of rolled-back
  // creates and compactions.  Deleting them keeps generation numbers free
  // for reuse.
  std::vector<std::string> expected{kManifestName};
  {
    LockGuard tl(tablesMu_);
    LockGuard dl(dataMu_);
    for (const auto& [name, t] : tables_) {
      for (std::string& f : t->liveFileNames()) {
        expected.push_back(std::move(f));
      }
    }
  }
  bool removed = false;
  for (const auto& entry : fs::directory_iterator(path_)) {
    const std::string base = entry.path().filename().string();
    bool keep = false;
    for (const std::string& e : expected) {
      if (base == e) {
        keep = true;
        break;
      }
    }
    if (!keep) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
      removed = true;
    }
  }
  if (removed) {
    logstore::syncDir(path_);
  }
}

TablePtr LogStore::createTable(const std::string& name, TableOptions options) {
  LockGuard tl(tablesMu_);
  if (tables_.contains(name)) {
    throw std::invalid_argument("LogStore: table '" + name +
                                "' already exists");
  }
  std::uint64_t id = 0;
  {
    LockGuard ml(manifestMu_);
    id = nextTableId_++;
  }
  auto table = std::make_shared<LogTable>(this, name, std::move(options), id);
  tables_.emplace(name, table);
  return table;
}

TablePtr LogStore::lookupTable(const std::string& name) {
  LockGuard tl(tablesMu_);
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

void LogStore::dropTable(const std::string& name) {
  LockGuard tl(tablesMu_);
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return;
  }
  std::shared_ptr<LogTable> table = it->second;
  tables_.erase(it);
  table->markDropped();
  // The files stay on disk (and stay readable through held TablePtrs —
  // POSIX keeps unlinked mappings/fds alive) until the next commit's
  // catalog stops referencing them.
  std::vector<std::string> files;
  {
    LockGuard dl(dataMu_);
    files = table->liveFileNames();
  }
  LockGuard ml(manifestMu_);
  for (std::string& f : files) {
    obsoleteFiles_.push_back(path_ + "/" + std::move(f));
  }
}

void LogStore::runInParts(const Table& placement,
                          const std::function<void(std::uint32_t)>& fn) {
  for (std::uint32_t p = 0; p < placement.numParts(); ++p) {
    fn(p);
  }
}

void LogStore::runInPart(const Table& placement, std::uint32_t part,
                         const std::function<void()>& fn) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("LogStore::runInPart: bad part");
  }
  fn();
}

void LogStore::commitEpoch() {
  {
    LockGuard tl(tablesMu_);
    LockGuard ml(manifestMu_);
    const std::uint64_t epoch =
        lastCommitted_.load(std::memory_order_acquire) + 1;
    // recover() opened (and truncated) any pre-existing manifest, so an
    // unopened one here is a first commit creating the file.
    bool createdFiles = false;
    if (!manifest_.isOpen()) {
      manifest_.open(path_ + "/" + kManifestName);
      createdFiles = true;
    }
    // Torn-checkpoint discipline: the begin marker lands durably BEFORE
    // any data this epoch covers, the commit record strictly after all of
    // it — recovery treats begin-without-commit as "this epoch never
    // happened".
    Bytes begin;
    logstore::appendFrame(begin, logstore::encodeBeginRecord(epoch));
    manifest_.append(begin);
    manifest_.sync();

    logstore::ManifestState state;
    state.epoch = epoch;
    {
      LockGuard dl(dataMu_);
      state.nextTableId = nextTableId_;
      for (auto& [name, t] : tables_) {
        state.tables.push_back(t->commitParts(path_, createdFiles));
      }
    }
    // Directory entries of files created this epoch (part logs, the
    // MANIFEST itself) must be durable before the commit record
    // references them, or power loss can leave a committed epoch whose
    // files recovery cannot open.
    if (createdFiles) {
      logstore::syncDir(path_);
    }
    Bytes commit;
    logstore::appendFrame(commit, logstore::encodeCommitRecord(state));
    manifest_.append(commit);
    manifest_.sync();
    lastCommitted_.store(epoch, std::memory_order_release);
    commits_.fetch_add(1, std::memory_order_relaxed);

    // Files superseded by compaction/drop are unreferenced as of this
    // commit; now they can actually go.
    for (const std::string& f : obsoleteFiles_) {
      std::error_code ec;
      fs::remove(f, ec);
    }
    if (!obsoleteFiles_.empty()) {
      obsoleteFiles_.clear();
      logstore::syncDir(path_);
    }
  }
  refreshGauges();
}

std::uint64_t LogStore::lastCommittedEpoch() const {
  return lastCommitted_.load(std::memory_order_acquire);
}

void LogStore::noteResident(std::int64_t delta) {
  if (delta == 0) {
    return;
  }
  std::uint64_t now = 0;
  if (delta > 0) {
    const auto d = static_cast<std::uint64_t>(delta);
    now = resident_.fetch_add(d, std::memory_order_relaxed) + d;
  } else {
    const auto d = static_cast<std::uint64_t>(-delta);
    now = resident_.fetch_sub(d, std::memory_order_relaxed) - d;
  }
  std::uint64_t peak = residentPeak_.load(std::memory_order_relaxed);
  while (now > peak && !residentPeak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void LogStore::enforceBudget() {
  const std::size_t budget = options_.memoryBudgetBytes;
  if (budget == 0 || resident_.load(std::memory_order_relaxed) <= budget) {
    return;  // Fast path: unbounded, or already within budget.
  }
  bool evicted = false;
  {
    // tablesMu_ (30) pins the victim scan's table set; evictMu_ (28)
    // serializes evictors; each eviction then descends through
    // manifestMu_ (27) and dataMu_ (20) exactly like a compaction.
    LockGuard tl(tablesMu_);
    LockGuard el(evictMu_);
    while (resident_.load(std::memory_order_relaxed) > budget) {
      std::shared_ptr<LogTable> victim;
      std::uint32_t victimPart = 0;
      {
        LockGuard dl(dataMu_);
        std::uint64_t bestTouch = 0;
        for (const auto& [name, t] : tables_) {
          std::uint64_t partTouch = 0;
          std::uint32_t part = 0;
          if (t->coldestResidentPart(partTouch, part) &&
              (!victim || partTouch < bestTouch)) {
            victim = t;
            bestTouch = partTouch;
            victimPart = part;
          }
        }
      }
      if (!victim) {
        break;  // Nothing evictable (resident state all in dropped tables).
      }
      std::vector<std::string> superseded;
      {
        LockGuard ml(manifestMu_);
        {
          LockGuard dl(dataMu_);
          superseded = victim->compactPart(victimPart, path_);
        }
        if (!superseded.empty()) {
          logstore::syncDir(path_);
          for (std::string& f : superseded) {
            obsoleteFiles_.push_back(std::move(f));
          }
        }
      }
      if (superseded.empty()) {
        break;  // A racing compaction got there first and nothing else is
                // resident enough to matter; avoid spinning.
      }
      evicted = true;
      evictions_.fetch_add(1, std::memory_order_relaxed);
      compactions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (evicted) {
    refreshGauges();
  }
}

void LogStore::scheduleCompaction(std::shared_ptr<LogTable> table,
                                  std::uint32_t part) {
  if (!options_.backgroundCompaction) {
    return;
  }
  {
    UniqueLock lock(queueMu_);
    if (stopping_) {
      return;
    }
    for (const CompactionItem& item : queue_) {
      if (item.table == table && item.part == part) {
        return;  // Already queued; compaction is idempotent-enough.
      }
    }
    queue_.push_back(CompactionItem{std::move(table), part});
  }
  queueCv_.notify_one();
}

void LogStore::compactionLoop() {
  for (;;) {
    CompactionItem item;
    {
      UniqueLock lock(queueMu_);
      queueCv_.wait(lock, [&]() RIPPLE_REQUIRES(queueMu_) {
        return stopping_ || !queue_.empty();
      });
      if (stopping_) {
        return;  // Remaining compactions are optional work; commit will
                 // flush the same data through the logs.
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      compactOne(item.table, item.part);
    } catch (const std::exception& e) {
      RIPPLE_WARN << "LogStore: compaction of '" << path_ << "' failed: "
                  << e.what();
    }
    refreshGauges();
  }
}

void LogStore::compactOne(const std::shared_ptr<LogTable>& table,
                          std::uint32_t part) {
  if (table->dropped()) {
    return;
  }
  std::vector<std::string> superseded;
  {
    LockGuard ml(manifestMu_);
    {
      LockGuard dl(dataMu_);
      superseded = table->compactPart(part, path_);
    }
    if (superseded.empty()) {
      return;
    }
    logstore::syncDir(path_);
    for (const std::string& f : superseded) {
      obsoleteFiles_.push_back(f);
    }
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

void LogStore::compactNow() {
  std::vector<std::pair<std::shared_ptr<LogTable>, std::uint32_t>> work;
  {
    LockGuard tl(tablesMu_);
    for (const auto& [name, t] : tables_) {
      for (std::uint32_t p = 0; p < t->numParts(); ++p) {
        work.emplace_back(t, p);
      }
    }
  }
  for (const auto& [table, part] : work) {
    compactOne(table, part);
  }
  refreshGauges();
}

LogStore::Stats LogStore::stats() const {
  Stats s;
  {
    LockGuard tl(tablesMu_);
    LockGuard dl(dataMu_);
    for (const auto& [name, t] : tables_) {
      t->accumulateStats(s);
    }
  }
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.commits = commits_.load(std::memory_order_relaxed);
  s.residentBytes = resident_.load(std::memory_order_relaxed);
  s.residentPeakBytes = residentPeak_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.segmentReadHits = segReadHits_.load(std::memory_order_relaxed);
  s.segmentReadMisses = segReadMisses_.load(std::memory_order_relaxed);
  s.memoryBudgetBytes = options_.memoryBudgetBytes;
  s.lastRecoverySeconds = lastRecoverySeconds_.load(std::memory_order_acquire);
  return s;
}

void LogStore::bindLogMetrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) {
  logRegistry_ = &registry;
  logPrefix_ = prefix;
  // The recovery that already happened at open() lands in the histogram
  // retroactively; everything else updates as commits/compactions run.
  registry.histogram(prefix + ".recovery_seconds")
      .record(lastRecoverySeconds_.load(std::memory_order_acquire));
  refreshGauges();
}

void LogStore::recordFold(double seconds) {
  if (logRegistry_ != nullptr) {
    logRegistry_->histogram(logPrefix_ + ".fold_seconds").record(seconds);
  }
}

void LogStore::refreshGauges() {
  if (logRegistry_ == nullptr) {
    return;
  }
  const Stats s = stats();
  logRegistry_->gauge(logPrefix_ + ".segments")
      .set(static_cast<double>(s.sealedSegments));
  logRegistry_->gauge(logPrefix_ + ".segment_bytes")
      .set(static_cast<double>(s.sealedBytes));
  logRegistry_->gauge(logPrefix_ + ".log_bytes")
      .set(static_cast<double>(s.logBytes));
  logRegistry_->gauge(logPrefix_ + ".pending_bytes")
      .set(static_cast<double>(s.pendingBytes));
  logRegistry_->gauge(logPrefix_ + ".resident_bytes")
      .set(static_cast<double>(s.residentBytes));
  logRegistry_->gauge(logPrefix_ + ".resident_peak_bytes")
      .set(static_cast<double>(s.residentPeakBytes));
  logRegistry_->gauge(logPrefix_ + ".memory_budget_bytes")
      .set(static_cast<double>(s.memoryBudgetBytes));
  logRegistry_->gauge(logPrefix_ + ".evictions")
      .set(static_cast<double>(s.evictions));
  logRegistry_->gauge(logPrefix_ + ".segment_read_hits")
      .set(static_cast<double>(s.segmentReadHits));
  logRegistry_->gauge(logPrefix_ + ".segment_read_misses")
      .set(static_cast<double>(s.segmentReadMisses));
  logRegistry_->gauge(logPrefix_ + ".epoch")
      .set(static_cast<double>(lastCommitted_.load(std::memory_order_acquire)));
  logRegistry_->gauge(logPrefix_ + ".compactions")
      .set(static_cast<double>(s.compactions));
  logRegistry_->gauge(logPrefix_ + ".commits")
      .set(static_cast<double>(s.commits));
}

}  // namespace ripple::kv
