#include "kvstore/log_store.h"

#include <cstdlib>
#include <filesystem>
#include <map>
#include <stdexcept>

#include "common/logging.h"
#include "common/stats.h"

namespace ripple::kv {

namespace fs = std::filesystem;
using logstore::AppendFile;
using logstore::LogOp;
using logstore::SealedSegment;
using logstore::SegmentError;

namespace {

std::string partFileName(std::uint64_t tableId, std::uint32_t part,
                         std::uint64_t gen, const char* ext) {
  return "t" + std::to_string(tableId) + "_p" + std::to_string(part) + "_g" +
         std::to_string(gen) + ext;
}

constexpr const char* kManifestName = "MANIFEST";

}  // namespace

// --- LogTable -------------------------------------------------------------

class LogStore::LogTable : public Table,
                           public std::enable_shared_from_this<LogTable> {
 public:
  struct BufferedWrite {
    Bytes key;
    Bytes value;
    bool tombstone = false;
  };

  /// One part = sealed past + buffered present.  `buffer` mirrors the
  /// not-yet-sealed log tail (ShardStore's append-only write-buffer
  /// discipline); `pending` holds the same records framed for disk,
  /// appended and fsynced at the next epoch commit.
  struct Part {
    std::vector<BufferedWrite> buffer;
    std::unordered_map<Bytes, std::size_t> index;  // key -> newest buffer slot
    Bytes pending;
    bool sealedCleared = false;  // A clear record masks the sealed segment.
    SealedSegment sealed;
    AppendFile log;
    std::uint64_t logGen = 1;
    std::uint64_t sealedGen = 0;
    std::uint64_t committedLen = 0;
    std::uint64_t liveCount = 0;
  };

  /// Fresh table.
  LogTable(LogStore* store, std::string name, TableOptions options,
           std::uint64_t id)
      : store_(store), name_(std::move(name)), options_(std::move(options)),
        id_(id) {
    if (options_.ubiquitous) {
      options_.parts = 1;
    }
    if (!options_.partitioner) {
      options_.partitioner = makeDefaultPartitioner(options_.parts);
    }
    if (options_.partitioner->parts() != options_.parts) {
      throw std::invalid_argument("LogTable '" + name_ +
                                  "': partitioner/parts mismatch");
    }
    parts_.resize(options_.parts);
  }

  /// Recovered table: rebuild each part from its committed files.  A
  /// recovered table gets the default partitioner over the recorded part
  /// count — custom hash functions are code, not data, and cannot be
  /// persisted (DESIGN.md §14).
  LogTable(LogStore* store, const logstore::TableState& state,
           const std::string& dir)
      : store_(store), name_(state.name), id_(state.id) {
    options_.parts = state.parts;
    options_.ordered = state.ordered;
    options_.ubiquitous = state.ubiquitous;
    options_.partitioner = makeDefaultPartitioner(options_.parts);
    parts_.resize(options_.parts);
    for (std::uint32_t i = 0; i < options_.parts; ++i) {
      Part& p = parts_[i];
      const logstore::PartState& ps = state.partStates.at(i);
      p.logGen = ps.logGen;
      p.sealedGen = ps.sealedGen;
      p.committedLen = ps.committedLen;
      if (ps.sealedGen != 0) {
        p.sealed.open(dir + "/" + partFileName(id_, i, ps.sealedGen, ".seg"));
        // Sealed entries are live until replay() erases/clears them; it
        // only counts net-new keys (exists() sees the sealed segment).
        p.liveCount = p.sealed.count();
      }
      const std::string logPath =
          dir + "/" + partFileName(id_, i, ps.logGen, ".log");
      if (ps.committedLen > 0) {
        const Bytes bytes = logstore::readFileBytes(logPath);
        if (bytes.size() < ps.committedLen) {
          throw SegmentError("LogTable '" + name_ + "' part " +
                             std::to_string(i) +
                             ": log shorter than its committed length");
        }
        replay(p, BytesView(bytes.data(), ps.committedLen));
      }
      // Reopening truncated drops any torn tail past the committed length.
      p.log.openTruncated(logPath, ps.committedLen);
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const TableOptions& options() const override {
    return options_;
  }
  [[nodiscard]] std::uint32_t numParts() const override {
    return options_.parts;
  }
  [[nodiscard]] std::uint32_t partOf(KeyView key) const override {
    return options_.partitioner->partOf(key);
  }
  [[nodiscard]] std::uint64_t id() const { return id_; }

  void markDropped() { dropped_.store(true, std::memory_order_release); }
  [[nodiscard]] bool dropped() const {
    return dropped_.load(std::memory_order_acquire);
  }

  std::optional<Value> get(KeyView key) override {
    LockGuard lock(store_->dataMu_);
    store_->metrics_.incLocal();
    Part& p = parts_[partOf(key)];
    if (const auto it = p.index.find(Bytes(key)); it != p.index.end()) {
      const BufferedWrite& w = p.buffer[it->second];
      if (w.tombstone) {
        return std::nullopt;
      }
      return w.value;
    }
    if (!p.sealedCleared && p.sealed.isOpen()) {
      if (const auto v = p.sealed.find(key)) {
        return Bytes(*v);
      }
    }
    return std::nullopt;
  }

  void put(KeyView key, ValueView value) override {
    checkWritable("put");
    const std::uint32_t part = partOf(key);
    bool overBudget = false;
    {
      LockGuard lock(store_->dataMu_);
      store_->metrics_.incLocal();
      Part& p = parts_[part];
      apply(p, LogOp::kPut, key, value, /*writeLog=*/true);
      overBudget = p.pending.size() > store_->options_.compactBytes;
    }
    if (overBudget) {
      store_->scheduleCompaction(shared_from_this(), part);
    }
  }

  bool erase(KeyView key) override {
    checkWritable("erase");
    LockGuard lock(store_->dataMu_);
    store_->metrics_.incLocal();
    return apply(parts_[partOf(key)], LogOp::kErase, key, {},
                 /*writeLog=*/true);
  }

  [[nodiscard]] std::uint64_t size() const override {
    LockGuard lock(store_->dataMu_);
    std::uint64_t total = 0;
    for (const Part& p : parts_) {
      total += p.liveCount;
    }
    return total;
  }

  [[nodiscard]] std::uint64_t partSize(std::uint32_t part) const override {
    LockGuard lock(store_->dataMu_);
    return parts_.at(part).liveCount;
  }

  Bytes enumerate(PairConsumer& consumer) override {
    Bytes result;
    bool first = true;
    for (std::uint32_t p = 0; p < numParts(); ++p) {
      Bytes r = enumeratePart(p, consumer);
      result = first ? std::move(r)
                     : consumer.combine(std::move(result), std::move(r));
      first = false;
    }
    return result;
  }

  Bytes enumeratePart(std::uint32_t part, PairConsumer& consumer) override {
    store_->metrics_.incScans();
    // Fold under the lock; callbacks run outside it so they can freely
    // mutate this or other tables.
    std::vector<std::pair<Bytes, Bytes>> snapshot;
    {
      LockGuard lock(store_->dataMu_);
      snapshot = fold(parts_.at(part));
    }
    consumer.setupPart(part);
    for (const auto& [k, v] : snapshot) {
      if (!consumer.consume(part, k, v)) {
        break;
      }
    }
    return consumer.finalizePart(part);
  }

  Bytes processParts(PartConsumer& consumer) override {
    Bytes result;
    bool first = true;
    for (std::uint32_t p = 0; p < numParts(); ++p) {
      Bytes r = consumer.processPart(p, *this);
      result = first ? std::move(r)
                     : consumer.combine(std::move(result), std::move(r));
      first = false;
    }
    return result;
  }

  std::uint64_t clearPart(std::uint32_t part) override {
    checkWritable("clearPart");
    LockGuard lock(store_->dataMu_);
    Part& p = parts_.at(part);
    const std::uint64_t n = p.liveCount;
    apply(p, LogOp::kClear, {}, {}, /*writeLog=*/true);
    return n;
  }

  std::vector<std::pair<Key, Value>> drainPart(std::uint32_t part) override {
    checkWritable("drainPart");
    LockGuard lock(store_->dataMu_);
    store_->metrics_.incScans();
    Part& p = parts_.at(part);
    std::vector<std::pair<Bytes, Bytes>> out = fold(p);
    apply(p, LogOp::kClear, {}, {}, /*writeLog=*/true);
    return out;
  }

  // --- Store-internal surface (all called under store locks). ---

  /// Flush this table's pending records to its part logs and fsync; fill
  /// in the table's slice of the commit record.  Sets `createdFiles` when
  /// a part log was created (its directory entry still needs a syncDir
  /// before the commit record may reference it).  Caller holds
  /// manifestMu_ and dataMu_.
  logstore::TableState commitParts(const std::string& dir,
                                   bool& createdFiles) {
    logstore::TableState state;
    state.name = name_;
    state.id = id_;
    state.parts = options_.parts;
    state.ordered = options_.ordered;
    state.ubiquitous = options_.ubiquitous;
    state.partStates.resize(options_.parts);
    for (std::uint32_t i = 0; i < options_.parts; ++i) {
      Part& p = parts_[i];
      if (!p.pending.empty()) {
        if (!p.log.isOpen()) {
          // Only ever unopened before the part's first flush, so this
          // open creates the file.
          p.log.open(dir + "/" + partFileName(id_, i, p.logGen, ".log"));
          createdFiles = true;
        }
        p.log.append(p.pending);
        p.pending.clear();
        p.log.sync();
        p.committedLen = p.log.size();
      }
      logstore::PartState& ps = state.partStates[i];
      ps.logGen = p.logGen;
      ps.committedLen = p.committedLen;
      ps.sealedGen = p.sealedGen;
    }
    return state;
  }

  /// Fold a part and swap in a new sealed generation + empty log.  Caller
  /// holds manifestMu_ and dataMu_.  Returns the superseded files (kept
  /// on disk until the next commit stops referencing them).
  std::vector<std::string> compactPart(std::uint32_t part,
                                       const std::string& dir) {
    Part& p = parts_.at(part);
    if (p.buffer.empty() && !p.sealedCleared) {
      return {};  // Nothing buffered; the sealed segment is already folded.
    }
    std::vector<std::pair<Bytes, Bytes>> folded = fold(p);
    const std::uint64_t newGen = std::max(p.logGen, p.sealedGen) + 1;
    const std::string segPath =
        dir + "/" + partFileName(id_, part, newGen, ".seg");
    logstore::writeFileDurable(segPath, SealedSegment::encode(folded));

    std::vector<std::string> superseded;
    superseded.push_back(dir + "/" +
                         partFileName(id_, part, p.logGen, ".log"));
    if (p.sealedGen != 0) {
      superseded.push_back(dir + "/" +
                           partFileName(id_, part, p.sealedGen, ".seg"));
    }

    p.sealed.close();
    p.sealed.open(segPath);
    p.sealedGen = newGen;
    p.sealedCleared = false;
    p.buffer.clear();
    p.index.clear();
    p.pending.clear();
    p.log.close();
    p.log.open(dir + "/" + partFileName(id_, part, newGen, ".log"));
    p.logGen = newGen;
    p.committedLen = 0;
    p.liveCount = folded.size();
    return superseded;
  }

  /// File names the table's current generations occupy (for drop/stray
  /// accounting).  Caller holds dataMu_.
  std::vector<std::string> liveFileNames() const {
    std::vector<std::string> out;
    for (std::uint32_t i = 0; i < options_.parts; ++i) {
      const Part& p = parts_[i];
      out.push_back(partFileName(id_, i, p.logGen, ".log"));
      if (p.sealedGen != 0) {
        out.push_back(partFileName(id_, i, p.sealedGen, ".seg"));
      }
    }
    return out;
  }

  void accumulateStats(Stats& s) const {
    for (const Part& p : parts_) {
      if (p.sealed.isOpen()) {
        ++s.sealedSegments;
        s.sealedBytes += p.sealed.sizeBytes();
      }
      s.logBytes += p.committedLen;
      s.pendingBytes += p.pending.size();
    }
  }

 private:
  /// Apply one logical mutation: update the in-memory buffer/index/count
  /// and (writeLog) mirror it into the part's pending disk frames.
  /// Recovery replays committed records through the same path with
  /// writeLog=false.  Returns whether the key existed (for erase).
  bool apply(Part& p, LogOp op, KeyView key, ValueView value, bool writeLog) {
    if (op == LogOp::kClear) {
      if (writeLog) {
        logstore::appendFrame(p.pending,
                              logstore::encodeLogRecord(op, {}, {}));
      }
      p.buffer.clear();
      p.index.clear();
      p.sealedCleared = true;
      p.liveCount = 0;
      return true;
    }
    const bool existed = exists(p, key);
    if (op == LogOp::kErase && !existed) {
      return false;  // Semantic no-op; nothing to log or buffer.
    }
    if (writeLog) {
      logstore::appendFrame(p.pending,
                            logstore::encodeLogRecord(op, key, value));
    }
    p.buffer.push_back(BufferedWrite{Bytes(key), Bytes(value),
                                     op == LogOp::kErase});
    p.index[Bytes(key)] = p.buffer.size() - 1;
    if (op == LogOp::kPut && !existed) {
      ++p.liveCount;
    } else if (op == LogOp::kErase) {
      --p.liveCount;
    }
    return existed;
  }

  bool exists(const Part& p, KeyView key) const {
    if (const auto it = p.index.find(Bytes(key)); it != p.index.end()) {
      return !p.buffer[it->second].tombstone;
    }
    return !p.sealedCleared && p.sealed.isOpen() &&
           p.sealed.find(key).has_value();
  }

  /// Replay a committed log prefix.  The prefix was fsynced before its
  /// commit record, so a malformed frame inside it is corruption of
  /// committed data, not a torn tail — fail loudly.
  void replay(Part& p, BytesView committed) {
    std::size_t pos = 0;
    while (pos < committed.size()) {
      const auto frame = logstore::readFrame(committed, pos);
      if (!frame) {
        throw SegmentError("LogTable '" + name_ +
                           "': corrupt record inside committed log prefix");
      }
      const auto rec = logstore::decodeLogRecord(frame->payload);
      if (!rec) {
        throw SegmentError("LogTable '" + name_ +
                           "': malformed record inside committed log prefix");
      }
      apply(p, rec->op, rec->key, rec->value, /*writeLog=*/false);
      pos = frame->end;
    }
  }

  /// Newest-wins fold of buffer over sealed segment into canonical
  /// ascending-key order (the SPI's drain contract, DESIGN.md §10).
  std::vector<std::pair<Bytes, Bytes>> fold(const Part& p) const {
    Stopwatch watch;
    std::map<Bytes, std::optional<Bytes>> merged;
    if (!p.sealedCleared && p.sealed.isOpen()) {
      for (std::uint64_t i = 0; i < p.sealed.count(); ++i) {
        const auto [k, v] = p.sealed.entry(i);
        merged.emplace(Bytes(k), Bytes(v));
      }
    }
    for (const BufferedWrite& w : p.buffer) {
      merged.insert_or_assign(
          w.key, w.tombstone ? std::nullopt : std::optional<Bytes>(w.value));
    }
    std::vector<std::pair<Bytes, Bytes>> out;
    out.reserve(merged.size());
    for (auto& [k, v] : merged) {
      if (v) {
        out.emplace_back(k, std::move(*v));
      }
    }
    store_->recordFold(watch.elapsedSeconds());
    return out;
  }

  LogStore* store_;
  std::string name_;
  TableOptions options_;
  std::uint64_t id_;
  std::vector<Part> parts_;
  std::atomic<bool> dropped_{false};
};

// --- LogStore -------------------------------------------------------------

std::shared_ptr<LogStore> LogStore::open(Options options) {
  return std::shared_ptr<LogStore>(new LogStore(std::move(options)));
}

LogStore::LogStore(Options options) : options_(std::move(options)) {
  if (options_.path.empty()) {
    std::string tmpl =
        (fs::temp_directory_path() / "ripple-log-XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw SegmentError("LogStore: cannot create ephemeral directory at " +
                         tmpl);
    }
    path_ = tmpl;
    ephemeral_ = true;
  } else {
    path_ = options_.path;
    fs::create_directories(path_);
  }
  recover();
  if (options_.backgroundCompaction) {
    compactor_ = std::thread([this] { compactionLoop(); });
  }
}

LogStore::~LogStore() {
  {
    UniqueLock lock(queueMu_);
    stopping_ = true;
  }
  queueCv_.notify_all();
  if (compactor_.joinable()) {
    compactor_.join();
  }
  try {
    commitEpoch();  // Clean shutdown commits whatever is buffered.
  } catch (...) {
    // Destructor must not throw; an unflushed tail simply rolls back to
    // the previous epoch on the next open.
  }
  if (ephemeral_) {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
}

void LogStore::recover() {
  Stopwatch watch;
  const std::string manifestPath = path_ + "/" + kManifestName;
  logstore::ManifestRecovery rec;
  const bool manifestExists = fs::exists(manifestPath);
  if (manifestExists) {
    rec = logstore::recoverManifest(logstore::readFileBytes(manifestPath));
  }
  {
    LockGuard tl(tablesMu_);
    {
      LockGuard ml(manifestMu_);
      if (manifestExists) {
        // ALWAYS truncate back to the valid prefix — to zero when no
        // commit survived.  commitEpoch appends (O_APPEND); a torn begin
        // frame or garbage left in place would precede every future
        // commit, and the next recovery's front-to-back scan would stop
        // at it, never see those commits, and delete their files as
        // strays.
        manifest_.openTruncated(manifestPath, rec.validBytes);
      }
      if (rec.hasCommit) {
        nextTableId_ = rec.state.nextTableId;
      }
    }
    if (rec.hasCommit) {
      if (rec.tornEpoch) {
        RIPPLE_WARN << "LogStore '" << path_
                    << "': dropping epoch torn after commit "
                    << rec.state.epoch;
      }
      lastCommitted_.store(rec.state.epoch, std::memory_order_release);
      LockGuard dl(dataMu_);
      for (const logstore::TableState& ts : rec.state.tables) {
        tables_.emplace(ts.name, std::make_shared<LogTable>(this, ts, path_));
      }
    }
  }
  removeStrayFiles();
  lastRecoverySeconds_.store(watch.elapsedSeconds(),
                             std::memory_order_release);
}

void LogStore::removeStrayFiles() {
  // Anything the recovered (or empty) state does not reference is debris
  // from an epoch that never committed: logs/segments of rolled-back
  // creates and compactions.  Deleting them keeps generation numbers free
  // for reuse.
  std::vector<std::string> expected{kManifestName};
  {
    LockGuard tl(tablesMu_);
    LockGuard dl(dataMu_);
    for (const auto& [name, t] : tables_) {
      for (std::string& f : t->liveFileNames()) {
        expected.push_back(std::move(f));
      }
    }
  }
  bool removed = false;
  for (const auto& entry : fs::directory_iterator(path_)) {
    const std::string base = entry.path().filename().string();
    bool keep = false;
    for (const std::string& e : expected) {
      if (base == e) {
        keep = true;
        break;
      }
    }
    if (!keep) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
      removed = true;
    }
  }
  if (removed) {
    logstore::syncDir(path_);
  }
}

TablePtr LogStore::createTable(const std::string& name, TableOptions options) {
  LockGuard tl(tablesMu_);
  if (tables_.contains(name)) {
    throw std::invalid_argument("LogStore: table '" + name +
                                "' already exists");
  }
  std::uint64_t id = 0;
  {
    LockGuard ml(manifestMu_);
    id = nextTableId_++;
  }
  auto table = std::make_shared<LogTable>(this, name, std::move(options), id);
  tables_.emplace(name, table);
  return table;
}

TablePtr LogStore::lookupTable(const std::string& name) {
  LockGuard tl(tablesMu_);
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

void LogStore::dropTable(const std::string& name) {
  LockGuard tl(tablesMu_);
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return;
  }
  std::shared_ptr<LogTable> table = it->second;
  tables_.erase(it);
  table->markDropped();
  // The files stay on disk (and stay readable through held TablePtrs —
  // POSIX keeps unlinked mappings/fds alive) until the next commit's
  // catalog stops referencing them.
  std::vector<std::string> files;
  {
    LockGuard dl(dataMu_);
    files = table->liveFileNames();
  }
  LockGuard ml(manifestMu_);
  for (std::string& f : files) {
    obsoleteFiles_.push_back(path_ + "/" + std::move(f));
  }
}

void LogStore::runInParts(const Table& placement,
                          const std::function<void(std::uint32_t)>& fn) {
  for (std::uint32_t p = 0; p < placement.numParts(); ++p) {
    fn(p);
  }
}

void LogStore::runInPart(const Table& placement, std::uint32_t part,
                         const std::function<void()>& fn) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("LogStore::runInPart: bad part");
  }
  fn();
}

void LogStore::commitEpoch() {
  {
    LockGuard tl(tablesMu_);
    LockGuard ml(manifestMu_);
    const std::uint64_t epoch =
        lastCommitted_.load(std::memory_order_acquire) + 1;
    // recover() opened (and truncated) any pre-existing manifest, so an
    // unopened one here is a first commit creating the file.
    bool createdFiles = false;
    if (!manifest_.isOpen()) {
      manifest_.open(path_ + "/" + kManifestName);
      createdFiles = true;
    }
    // Torn-checkpoint discipline: the begin marker lands durably BEFORE
    // any data this epoch covers, the commit record strictly after all of
    // it — recovery treats begin-without-commit as "this epoch never
    // happened".
    Bytes begin;
    logstore::appendFrame(begin, logstore::encodeBeginRecord(epoch));
    manifest_.append(begin);
    manifest_.sync();

    logstore::ManifestState state;
    state.epoch = epoch;
    {
      LockGuard dl(dataMu_);
      state.nextTableId = nextTableId_;
      for (auto& [name, t] : tables_) {
        state.tables.push_back(t->commitParts(path_, createdFiles));
      }
    }
    // Directory entries of files created this epoch (part logs, the
    // MANIFEST itself) must be durable before the commit record
    // references them, or power loss can leave a committed epoch whose
    // files recovery cannot open.
    if (createdFiles) {
      logstore::syncDir(path_);
    }
    Bytes commit;
    logstore::appendFrame(commit, logstore::encodeCommitRecord(state));
    manifest_.append(commit);
    manifest_.sync();
    lastCommitted_.store(epoch, std::memory_order_release);
    commits_.fetch_add(1, std::memory_order_relaxed);

    // Files superseded by compaction/drop are unreferenced as of this
    // commit; now they can actually go.
    for (const std::string& f : obsoleteFiles_) {
      std::error_code ec;
      fs::remove(f, ec);
    }
    if (!obsoleteFiles_.empty()) {
      obsoleteFiles_.clear();
      logstore::syncDir(path_);
    }
  }
  refreshGauges();
}

std::uint64_t LogStore::lastCommittedEpoch() const {
  return lastCommitted_.load(std::memory_order_acquire);
}

void LogStore::scheduleCompaction(std::shared_ptr<LogTable> table,
                                  std::uint32_t part) {
  if (!options_.backgroundCompaction) {
    return;
  }
  {
    UniqueLock lock(queueMu_);
    if (stopping_) {
      return;
    }
    for (const CompactionItem& item : queue_) {
      if (item.table == table && item.part == part) {
        return;  // Already queued; compaction is idempotent-enough.
      }
    }
    queue_.push_back(CompactionItem{std::move(table), part});
  }
  queueCv_.notify_one();
}

void LogStore::compactionLoop() {
  for (;;) {
    CompactionItem item;
    {
      UniqueLock lock(queueMu_);
      queueCv_.wait(lock, [&]() RIPPLE_REQUIRES(queueMu_) {
        return stopping_ || !queue_.empty();
      });
      if (stopping_) {
        return;  // Remaining compactions are optional work; commit will
                 // flush the same data through the logs.
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      compactOne(item.table, item.part);
    } catch (const std::exception& e) {
      RIPPLE_WARN << "LogStore: compaction of '" << path_ << "' failed: "
                  << e.what();
    }
    refreshGauges();
  }
}

void LogStore::compactOne(const std::shared_ptr<LogTable>& table,
                          std::uint32_t part) {
  if (table->dropped()) {
    return;
  }
  std::vector<std::string> superseded;
  {
    LockGuard ml(manifestMu_);
    {
      LockGuard dl(dataMu_);
      superseded = table->compactPart(part, path_);
    }
    if (superseded.empty()) {
      return;
    }
    logstore::syncDir(path_);
    for (const std::string& f : superseded) {
      obsoleteFiles_.push_back(f);
    }
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

void LogStore::compactNow() {
  std::vector<std::pair<std::shared_ptr<LogTable>, std::uint32_t>> work;
  {
    LockGuard tl(tablesMu_);
    for (const auto& [name, t] : tables_) {
      for (std::uint32_t p = 0; p < t->numParts(); ++p) {
        work.emplace_back(t, p);
      }
    }
  }
  for (const auto& [table, part] : work) {
    compactOne(table, part);
  }
  refreshGauges();
}

LogStore::Stats LogStore::stats() const {
  Stats s;
  {
    LockGuard tl(tablesMu_);
    LockGuard dl(dataMu_);
    for (const auto& [name, t] : tables_) {
      t->accumulateStats(s);
    }
  }
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.commits = commits_.load(std::memory_order_relaxed);
  s.lastRecoverySeconds = lastRecoverySeconds_.load(std::memory_order_acquire);
  return s;
}

void LogStore::bindLogMetrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) {
  logRegistry_ = &registry;
  logPrefix_ = prefix;
  // The recovery that already happened at open() lands in the histogram
  // retroactively; everything else updates as commits/compactions run.
  registry.histogram(prefix + ".recovery_seconds")
      .record(lastRecoverySeconds_.load(std::memory_order_acquire));
  refreshGauges();
}

void LogStore::recordFold(double seconds) {
  if (logRegistry_ != nullptr) {
    logRegistry_->histogram(logPrefix_ + ".fold_seconds").record(seconds);
  }
}

void LogStore::refreshGauges() {
  if (logRegistry_ == nullptr) {
    return;
  }
  const Stats s = stats();
  logRegistry_->gauge(logPrefix_ + ".segments")
      .set(static_cast<double>(s.sealedSegments));
  logRegistry_->gauge(logPrefix_ + ".segment_bytes")
      .set(static_cast<double>(s.sealedBytes));
  logRegistry_->gauge(logPrefix_ + ".log_bytes")
      .set(static_cast<double>(s.logBytes));
  logRegistry_->gauge(logPrefix_ + ".pending_bytes")
      .set(static_cast<double>(s.pendingBytes));
  logRegistry_->gauge(logPrefix_ + ".epoch")
      .set(static_cast<double>(lastCommitted_.load(std::memory_order_acquire)));
  logRegistry_->gauge(logPrefix_ + ".compactions")
      .set(static_cast<double>(s.compactions));
  logRegistry_->gauge(logPrefix_ + ".commits")
      .set(static_cast<double>(s.commits));
}

}  // namespace ripple::kv
