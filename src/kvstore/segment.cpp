#include "kvstore/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/hash.h"

// The ONLY translation unit allowed to issue raw file-descriptor I/O
// (enforced by scripts/lint.sh): every byte the log store persists, and
// every fsync that makes it durable, goes through the helpers below.

namespace ripple::kv::logstore {

namespace {

[[noreturn]] void throwErrno(const std::string& what, const std::string& path) {
  throw SegmentError(what + " '" + path + "': " + std::strerror(errno));
}

std::uint32_t readLE32(const char* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;  // Ripple targets little-endian hosts (see common/bytes.cpp).
}

std::uint64_t readLE64(const char* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void putLE32(Bytes& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void putLE64(Bytes& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Frame check: covers the payload AND its length, so a frame whose
/// length field was corrupted into pointing at other valid-looking bytes
/// still fails verification.
std::uint64_t frameCheck(BytesView payload) noexcept {
  return fnv1a64(payload) ^ mix64(payload.size() + 1);
}

constexpr char kSegMagic[4] = {'R', 'S', 'G', '1'};
constexpr char kSegMagicEnd[4] = {'1', 'G', 'S', 'R'};
constexpr std::uint64_t kSegHeader = 4;
constexpr std::uint64_t kSegFooter = 8 + 8 + 8 + 4;

}  // namespace

// --- Record framing -------------------------------------------------------

void appendFrame(Bytes& out, BytesView payload) {
  putLE32(out, static_cast<std::uint32_t>(payload.size()));
  putLE64(out, frameCheck(payload));
  out.append(payload.data(), payload.size());
}

std::optional<Frame> readFrame(BytesView buf, std::size_t pos) noexcept {
  if (pos > buf.size() || buf.size() - pos < kFrameHeader) {
    return std::nullopt;
  }
  const std::uint32_t len = readLE32(buf.data() + pos);
  const std::uint64_t check = readLE64(buf.data() + pos + 4);
  if (buf.size() - pos - kFrameHeader < len) {
    return std::nullopt;  // Torn: the payload ran past the write that died.
  }
  const BytesView payload(buf.data() + pos + kFrameHeader, len);
  if (frameCheck(payload) != check) {
    return std::nullopt;
  }
  return Frame{payload, pos + kFrameHeader + len};
}

// --- Part-log records -----------------------------------------------------

Bytes encodeLogRecord(LogOp op, BytesView key, BytesView value) {
  ByteWriter w;
  w.putU8(static_cast<std::uint8_t>(op));
  if (op != LogOp::kClear) {
    w.putBytes(key);
  }
  if (op == LogOp::kPut) {
    w.putBytes(value);
  }
  return w.take();
}

std::optional<LogRecord> decodeLogRecord(BytesView payload) noexcept {
  try {
    ByteReader r(payload);
    LogRecord rec;
    const std::uint8_t op = r.getU8();
    if (op < 1 || op > 3) {
      return std::nullopt;
    }
    rec.op = static_cast<LogOp>(op);
    if (rec.op != LogOp::kClear) {
      rec.key = Bytes(r.getBytes());
    }
    if (rec.op == LogOp::kPut) {
      rec.value = Bytes(r.getBytes());
    }
    if (!r.atEnd()) {
      return std::nullopt;
    }
    return rec;
  } catch (const CodecError&) {
    return std::nullopt;
  }
}

// --- AppendFile -----------------------------------------------------------

AppendFile::~AppendFile() { close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.size_ = 0;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

void AppendFile::open(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throwErrno("AppendFile: cannot open", path);
  }
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    throwErrno("AppendFile: cannot stat", path);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  path_ = path;
}

void AppendFile::openTruncated(const std::string& path, std::uint64_t length) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throwErrno("AppendFile: cannot open", path);
  }
  if (::ftruncate(fd_, static_cast<off_t>(length)) != 0) {
    throwErrno("AppendFile: cannot truncate", path);
  }
  // Make the drop of the torn tail durable before anything is appended
  // after it.
  if (::fsync(fd_) != 0) {
    throwErrno("AppendFile: cannot fsync", path);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    throwErrno("AppendFile: cannot seek", path);
  }
  size_ = length;
  path_ = path;
}

void AppendFile::append(BytesView data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throwErrno("AppendFile: write failed", path_);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  size_ += data.size();
}

void AppendFile::sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    throwErrno("AppendFile: fsync failed", path_);
  }
}

void AppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- Whole-file helpers ---------------------------------------------------

Bytes readFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throwErrno("readFileBytes: cannot open", path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throwErrno("readFileBytes: cannot stat", path);
  }
  Bytes out;
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(fd, out.data() + got, out.size() - got);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int err = errno;
      ::close(fd);
      errno = err;
      throwErrno("readFileBytes: read failed", path);
    }
    if (n == 0) {
      break;  // Shrunk underneath us; treat what we have as the file.
    }
    got += static_cast<std::size_t>(n);
  }
  out.resize(got);
  ::close(fd);
  return out;
}

void writeFileDurable(const std::string& path, BytesView bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throwErrno("writeFileDurable: cannot open", path);
  }
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int err = errno;
      ::close(fd);
      errno = err;
      throwErrno("writeFileDurable: write failed", path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throwErrno("writeFileDurable: fsync failed", path);
  }
  ::close(fd);
}

void syncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    throwErrno("syncDir: cannot open", path);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throwErrno("syncDir: fsync failed", path);
  }
  ::close(fd);
}

// --- SealedSegment --------------------------------------------------------

Bytes SealedSegment::encode(
    const std::vector<std::pair<Bytes, Bytes>>& sorted) {
  Bytes out;
  out.append(kSegMagic, sizeof(kSegMagic));
  std::vector<std::uint64_t> offsets;
  offsets.reserve(sorted.size());
  for (const auto& [key, value] : sorted) {
    offsets.push_back(out.size());
    putLE32(out, static_cast<std::uint32_t>(key.size()));
    putLE32(out, static_cast<std::uint32_t>(value.size()));
    out.append(key);
    out.append(value);
  }
  const std::uint64_t indexOff = out.size();
  for (const std::uint64_t off : offsets) {
    putLE64(out, off);
  }
  putLE64(out, indexOff);
  putLE64(out, offsets.size());
  putLE64(out, fnv1a64(out));  // Covers header + entries + index + 16 bytes.
  out.append(kSegMagicEnd, sizeof(kSegMagicEnd));
  return out;
}

SealedSegment::~SealedSegment() { close(); }

SealedSegment::SealedSegment(SealedSegment&& other) noexcept
    : data_(other.data_), size_(other.size_), indexOff_(other.indexOff_),
      count_(other.count_), map_(other.map_), mapLen_(other.mapLen_),
      owned_(std::move(other.owned_)) {
  other.data_ = nullptr;
  other.map_ = nullptr;
  other.mapLen_ = 0;
  if (data_ != nullptr && map_ == nullptr) {
    data_ = owned_.data();  // Re-point at the moved-to buffer.
  }
}

SealedSegment& SealedSegment::operator=(SealedSegment&& other) noexcept {
  if (this != &other) {
    close();
    data_ = other.data_;
    size_ = other.size_;
    indexOff_ = other.indexOff_;
    count_ = other.count_;
    map_ = other.map_;
    mapLen_ = other.mapLen_;
    owned_ = std::move(other.owned_);
    other.data_ = nullptr;
    other.map_ = nullptr;
    other.mapLen_ = 0;
    if (data_ != nullptr && map_ == nullptr) {
      data_ = owned_.data();
    }
  }
  return *this;
}

void SealedSegment::open(const std::string& path) {
  close();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throwErrno("SealedSegment: cannot open", path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throwErrno("SealedSegment: cannot stat", path);
  }
  const auto len = static_cast<std::uint64_t>(st.st_size);
  if (len > 0) {
    void* p = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      map_ = p;
      mapLen_ = len;
      data_ = static_cast<const char*>(p);
      size_ = len;
    }
  }
  ::close(fd);
  if (data_ == nullptr) {
    // mmap unavailable (or empty file): fall back to a heap copy so the
    // read path is identical either way.
    owned_ = readFileBytes(path);
    data_ = owned_.data();
    size_ = owned_.size();
  }
  validate(path);
}

void SealedSegment::openFromBytes(Bytes image) {
  close();
  owned_ = std::move(image);
  data_ = owned_.data();
  size_ = owned_.size();
  validate("<bytes>");
}

void SealedSegment::validate(const std::string& origin) {
  auto fail = [&](const std::string& why) {
    close();
    throw SegmentError("SealedSegment '" + origin + "': " + why);
  };
  if (size_ < kSegHeader + kSegFooter) {
    fail("too small");
  }
  if (std::memcmp(data_, kSegMagic, sizeof(kSegMagic)) != 0 ||
      std::memcmp(data_ + size_ - 4, kSegMagicEnd, sizeof(kSegMagicEnd)) !=
          0) {
    fail("bad magic");
  }
  const std::uint64_t check = readLE64(data_ + size_ - 12);
  if (fnv1a64(BytesView(data_, size_ - 12)) != check) {
    fail("checksum mismatch");
  }
  indexOff_ = readLE64(data_ + size_ - kSegFooter);
  count_ = readLE64(data_ + size_ - kSegFooter + 8);
  const std::uint64_t footerStart = size_ - kSegFooter;
  if (indexOff_ < kSegHeader || indexOff_ > footerStart ||
      count_ > (footerStart - indexOff_) / 8 ||
      indexOff_ + count_ * 8 != footerStart) {
    fail("bad index geometry");
  }
  // Every entry must lie fully inside the entries region, offsets
  // ascending, keys strictly ascending.
  BytesView prevKey;
  for (std::uint64_t i = 0; i < count_; ++i) {
    const std::uint64_t off = offsetAt(i);
    // Subtraction-only bounds: `off + 8` could wrap for an off near
    // UINT64_MAX and sail past the check into an OOB read.
    if (off < kSegHeader || off > indexOff_ || indexOff_ - off < 8) {
      fail("entry offset out of bounds");
    }
    const std::uint64_t klen = readLE32(data_ + off);
    const std::uint64_t vlen = readLE32(data_ + off + 4);
    const std::uint64_t room = indexOff_ - off - 8;
    if (klen > room || vlen > room - klen) {
      fail("entry length out of bounds");
    }
    const BytesView key(data_ + off + 8, klen);
    if (i > 0 && !(prevKey < key)) {
      fail("keys not strictly ascending");
    }
    prevKey = key;
  }
}

std::uint64_t SealedSegment::offsetAt(std::uint64_t i) const {
  return readLE64(data_ + indexOff_ + i * 8);
}

std::pair<BytesView, BytesView> SealedSegment::entry(std::uint64_t i) const {
  const std::uint64_t off = offsetAt(i);
  const std::uint64_t klen = readLE32(data_ + off);
  const std::uint64_t vlen = readLE32(data_ + off + 4);
  return {BytesView(data_ + off + 8, klen),
          BytesView(data_ + off + 8 + klen, vlen)};
}

std::optional<BytesView> SealedSegment::find(BytesView key) const {
  std::uint64_t lo = 0;
  std::uint64_t hi = count_;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const auto [k, v] = entry(mid);
    if (k == key) {
      return v;
    }
    if (k < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

void SealedSegment::close() {
  if (map_ != nullptr) {
    ::munmap(map_, mapLen_);
    map_ = nullptr;
    mapLen_ = 0;
  }
  owned_.clear();
  owned_.shrink_to_fit();
  data_ = nullptr;
  size_ = 0;
  indexOff_ = 0;
  count_ = 0;
}

}  // namespace ripple::kv::logstore
