// Internal storage organization of one part of one table: hash-organized
// by default, tree-organized when the table is ordered (the no-sort
// optimization toggles this, paper §II-A / §IV-A).

#pragma once

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.h"

namespace ripple::kv::detail {

class PartData {
 public:
  explicit PartData(bool ordered) {
    if (ordered) {
      data_.emplace<Ordered>();
    } else {
      data_.emplace<Hashed>();
    }
  }

  [[nodiscard]] const Bytes* find(BytesView key) const {
    return std::visit(
        [&](const auto& m) -> const Bytes* {
          auto it = m.find(Bytes(key));
          return it == m.end() ? nullptr : &it->second;
        },
        data_);
  }

  void put(BytesView key, BytesView value) {
    std::visit(
        [&](auto& m) { m.insert_or_assign(Bytes(key), Bytes(value)); },
        data_);
  }

  bool erase(BytesView key) {
    return std::visit([&](auto& m) { return m.erase(Bytes(key)) > 0; }, data_);
  }

  [[nodiscard]] std::size_t size() const {
    return std::visit([](const auto& m) { return m.size(); }, data_);
  }

  std::size_t clear() {
    return std::visit(
        [](auto& m) {
          const std::size_t n = m.size();
          m.clear();
          return n;
        },
        data_);
  }

  /// Enumerate pairs; fn returning false stops.  Ordered tables iterate
  /// in ascending key order; hashed tables in unspecified order.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    std::visit(
        [&](const auto& m) {
          for (const auto& [k, v] : m) {
            if (!fn(BytesView(k), BytesView(v))) {
              return;
            }
          }
        },
        data_);
  }

  /// Drained pairs are ascending-key-sorted for BOTH organizations: the
  /// store SPI promises a canonical drain order so compute invocation
  /// order (and therefore aggregator FP fold order) is identical across
  /// backends.
  [[nodiscard]] std::vector<std::pair<Bytes, Bytes>> drain() {
    std::vector<std::pair<Bytes, Bytes>> out;
    std::visit(
        [&](auto& m) {
          out.reserve(m.size());
          for (auto& [k, v] : m) {
            out.emplace_back(k, std::move(v));
          }
          m.clear();
        },
        data_);
    if (std::holds_alternative<Hashed>(data_)) {
      std::sort(out.begin(), out.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    return out;
  }

 private:
  using Hashed = std::unordered_map<Bytes, Bytes>;
  using Ordered = std::map<Bytes, Bytes>;
  std::variant<Hashed, Ordered> data_;
};

}  // namespace ripple::kv::detail
