#include "kvstore/store_factory.h"

#include <cstdlib>
#include <limits>

#include "common/logging.h"
#include "kvstore/local_store.h"
#include "kvstore/log_store.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/shard_store.h"

namespace ripple::net {
// Implemented in net/remote_store.cpp; declared here instead of including
// the net headers so the kvstore layer stays include-acyclic (the two
// static libraries are mutually linked).
ripple::kv::KVStorePtr makeRemoteStoreFromEnv(std::uint32_t containers);
}  // namespace ripple::net

namespace ripple::kv {

std::optional<StoreBackend> parseStoreBackend(const std::string& name) {
  if (name == "partitioned") {
    return StoreBackend::kPartitioned;
  }
  if (name == "shard") {
    return StoreBackend::kShard;
  }
  if (name == "local") {
    return StoreBackend::kLocal;
  }
  if (name == "remote") {
    return StoreBackend::kRemote;
  }
  if (name == "log") {
    return StoreBackend::kLog;
  }
  return std::nullopt;
}

const char* storeBackendName(StoreBackend backend) {
  switch (resolveStoreBackend(backend)) {
    case StoreBackend::kShard:
      return "shard";
    case StoreBackend::kLocal:
      return "local";
    case StoreBackend::kRemote:
      return "remote";
    case StoreBackend::kLog:
      return "log";
    case StoreBackend::kPartitioned:
    case StoreBackend::kDefault:
      break;
  }
  return "partitioned";
}

StoreBackend resolveStoreBackend(StoreBackend requested) {
  if (requested != StoreBackend::kDefault) {
    return requested;
  }
  const char* env = std::getenv("RIPPLE_STORE");
  if (env == nullptr || *env == '\0') {
    return StoreBackend::kPartitioned;
  }
  if (std::optional<StoreBackend> parsed = parseStoreBackend(env)) {
    return *parsed;
  }
  RIPPLE_WARN << "RIPPLE_STORE='" << env
              << "' is not a backend name "
                 "(partitioned|shard|local|remote|log); using partitioned";
  return StoreBackend::kPartitioned;
}

std::string resolveStorePath(const std::string& storePath) {
  if (!storePath.empty()) {
    return storePath;
  }
  const char* env = std::getenv("RIPPLE_STORE_PATH");
  return env == nullptr ? std::string() : std::string(env);
}

std::optional<std::size_t> parseByteSize(const std::string& spec) {
  if (spec.empty()) {
    return std::nullopt;
  }
  std::size_t multiplier = 1;
  std::string digits = spec;
  const char last = spec.back();
  if (last == 'k' || last == 'K') {
    multiplier = std::size_t{1} << 10;
  } else if (last == 'm' || last == 'M') {
    multiplier = std::size_t{1} << 20;
  } else if (last == 'g' || last == 'G') {
    multiplier = std::size_t{1} << 30;
  }
  if (multiplier != 1) {
    digits.pop_back();
  }
  if (digits.empty()) {
    return std::nullopt;
  }
  std::size_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (std::numeric_limits<std::size_t>::max() - digit) / 10) {
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  if (multiplier != 1 &&
      value > std::numeric_limits<std::size_t>::max() / multiplier) {
    return std::nullopt;
  }
  return value * multiplier;
}

std::size_t resolveStoreMemory(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const char* env = std::getenv("RIPPLE_STORE_MEM");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  if (std::optional<std::size_t> parsed = parseByteSize(env)) {
    return *parsed;
  }
  RIPPLE_WARN << "RIPPLE_STORE_MEM='" << env
              << "' is not a byte size (e.g. 8388608, 8192K, 8M, 1G); "
                 "running unbounded";
  return 0;
}

KVStorePtr makeStore(StoreBackend backend, std::uint32_t containers,
                     const std::string& storePath,
                     std::size_t memoryBudgetBytes) {
  switch (resolveStoreBackend(backend)) {
    case StoreBackend::kShard:
      return ShardStore::create(containers);
    case StoreBackend::kLocal:
      return LocalStore::create();
    case StoreBackend::kRemote:
      return ripple::net::makeRemoteStoreFromEnv(containers);
    case StoreBackend::kLog: {
      LogStore::Options o;
      o.path = resolveStorePath(storePath);
      o.memoryBudgetBytes = resolveStoreMemory(memoryBudgetBytes);
      return LogStore::open(std::move(o));
    }
    case StoreBackend::kPartitioned:
    case StoreBackend::kDefault:
      break;
  }
  return PartitionedStore::create(containers);
}

}  // namespace ripple::kv
