#include "kvstore/store_factory.h"

#include <cstdlib>

#include "common/logging.h"
#include "kvstore/local_store.h"
#include "kvstore/log_store.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/shard_store.h"

namespace ripple::net {
// Implemented in net/remote_store.cpp; declared here instead of including
// the net headers so the kvstore layer stays include-acyclic (the two
// static libraries are mutually linked).
ripple::kv::KVStorePtr makeRemoteStoreFromEnv(std::uint32_t containers);
}  // namespace ripple::net

namespace ripple::kv {

std::optional<StoreBackend> parseStoreBackend(const std::string& name) {
  if (name == "partitioned") {
    return StoreBackend::kPartitioned;
  }
  if (name == "shard") {
    return StoreBackend::kShard;
  }
  if (name == "local") {
    return StoreBackend::kLocal;
  }
  if (name == "remote") {
    return StoreBackend::kRemote;
  }
  if (name == "log") {
    return StoreBackend::kLog;
  }
  return std::nullopt;
}

const char* storeBackendName(StoreBackend backend) {
  switch (resolveStoreBackend(backend)) {
    case StoreBackend::kShard:
      return "shard";
    case StoreBackend::kLocal:
      return "local";
    case StoreBackend::kRemote:
      return "remote";
    case StoreBackend::kLog:
      return "log";
    case StoreBackend::kPartitioned:
    case StoreBackend::kDefault:
      break;
  }
  return "partitioned";
}

StoreBackend resolveStoreBackend(StoreBackend requested) {
  if (requested != StoreBackend::kDefault) {
    return requested;
  }
  const char* env = std::getenv("RIPPLE_STORE");
  if (env == nullptr || *env == '\0') {
    return StoreBackend::kPartitioned;
  }
  if (std::optional<StoreBackend> parsed = parseStoreBackend(env)) {
    return *parsed;
  }
  RIPPLE_WARN << "RIPPLE_STORE='" << env
              << "' is not a backend name "
                 "(partitioned|shard|local|remote|log); using partitioned";
  return StoreBackend::kPartitioned;
}

std::string resolveStorePath(const std::string& storePath) {
  if (!storePath.empty()) {
    return storePath;
  }
  const char* env = std::getenv("RIPPLE_STORE_PATH");
  return env == nullptr ? std::string() : std::string(env);
}

KVStorePtr makeStore(StoreBackend backend, std::uint32_t containers,
                     const std::string& storePath) {
  switch (resolveStoreBackend(backend)) {
    case StoreBackend::kShard:
      return ShardStore::create(containers);
    case StoreBackend::kLocal:
      return LocalStore::create();
    case StoreBackend::kRemote:
      return ripple::net::makeRemoteStoreFromEnv(containers);
    case StoreBackend::kLog:
      return LogStore::open(resolveStorePath(storePath));
    case StoreBackend::kPartitioned:
    case StoreBackend::kDefault:
      break;
  }
  return PartitionedStore::create(containers);
}

}  // namespace ripple::kv
