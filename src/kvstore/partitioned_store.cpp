#include "kvstore/partitioned_store.h"

#include <future>
#include <stdexcept>

#include "kvstore/part_data.h"

namespace ripple::kv {

namespace detail {

/// One container: two serial executors (short ops, long ops) hosting the
/// parts assigned to it.  Additional threads (queue-set workers) may be
/// adopted into the container via a thread-local registration.
class Container {
 public:
  explicit Container(std::uint32_t index)
      : index_(index),
        ops_("kv-ops-" + std::to_string(index)),
        scans_("kv-scan-" + std::to_string(index)) {}

  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] SerialExecutor& ops() { return ops_; }
  [[nodiscard]] SerialExecutor& scans() { return scans_; }

  /// True when the calling thread belongs to this container.
  [[nodiscard]] bool onLocalThread() const {
    return adopted() == this || ops_.onThisThread() || scans_.onThisThread();
  }

  /// Register/deregister the calling thread as part of this container.
  void adoptCurrentThread() { adopted() = this; }
  void releaseCurrentThread() {
    if (adopted() == this) {
      adopted() = nullptr;
    }
  }

  void shutdown() {
    ops_.shutdown();
    scans_.shutdown();
  }

 private:
  static Container*& adopted() {
    thread_local Container* current = nullptr;
    return current;
  }

  std::uint32_t index_;
  SerialExecutor ops_;
  SerialExecutor scans_;
};

}  // namespace detail

namespace {

/// A partitioned (non-ubiquitous) table.  Each part's data is guarded by
/// its own mutex because the container's two executors may both touch it.
/// Enumerations snapshot the part under the lock and run call-backs
/// outside it, so user code can issue routed operations without deadlock.
class PartitionedTable : public Table {
 public:
  PartitionedTable(std::string name, TableOptions options,
                   PartitionedStore* store, StoreMetrics* metrics)
      : name_(std::move(name)), options_(std::move(options)), store_(store),
        metrics_(metrics) {
    if (!options_.partitioner) {
      options_.partitioner = makeDefaultPartitioner(options_.parts);
    }
    if (options_.partitioner->parts() != options_.parts) {
      throw std::invalid_argument("PartitionedTable '" + name_ +
                                  "': partitioner/parts mismatch");
    }
    parts_.reserve(options_.parts);
    for (std::uint32_t i = 0; i < options_.parts; ++i) {
      parts_.push_back(std::make_unique<LockedPart>(options_.ordered));
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const TableOptions& options() const override {
    return options_;
  }
  [[nodiscard]] std::uint32_t numParts() const override {
    return options_.parts;
  }
  [[nodiscard]] std::uint32_t partOf(KeyView key) const override {
    return options_.partitioner->partOf(key);
  }

  std::optional<Value> get(KeyView key) override {
    const std::uint32_t part = partOf(key);
    return onOwner(part, key.size(), [&]() -> std::optional<Value> {
      LockedPart& p = *parts_[part];
      LockGuard lock(p.mu);
      const Bytes* v = p.data.find(key);
      if (v == nullptr) {
        return std::nullopt;
      }
      return *v;
    });
  }

  void put(KeyView key, ValueView value) override {
    checkWritable("put");
    const std::uint32_t part = partOf(key);
    onOwner(part, key.size() + value.size(), [&] {
      LockedPart& p = *parts_[part];
      LockGuard lock(p.mu);
      p.data.put(key, value);
    });
  }

  bool erase(KeyView key) override {
    checkWritable("erase");
    const std::uint32_t part = partOf(key);
    return onOwner(part, key.size(), [&] {
      LockedPart& p = *parts_[part];
      LockGuard lock(p.mu);
      return p.data.erase(key);
    });
  }

  void putBatch(const std::vector<std::pair<Key, Value>>& entries) override {
    checkWritable("putBatch");
    // Group by part so each owner executor is visited once.
    std::vector<std::vector<const std::pair<Key, Value>*>> byPart(numParts());
    for (const auto& e : entries) {
      byPart[partOf(e.first)].push_back(&e);
    }
    std::vector<std::future<void>> pending;
    for (std::uint32_t part = 0; part < numParts(); ++part) {
      if (byPart[part].empty()) {
        continue;
      }
      auto apply = [this, part, group = std::move(byPart[part])] {
        LockedPart& p = *parts_[part];
        LockGuard lock(p.mu);
        for (const auto* e : group) {
          p.data.put(e->first, e->second);
        }
      };
      detail::Container& c = containerFor(part);
      if (c.onLocalThread()) {
        metrics_->incLocal();
        apply();
      } else {
        metrics_->incRemote();
        pending.push_back(c.ops().submit(std::move(apply)));
      }
    }
    for (auto& f : pending) {
      f.get();
    }
  }

  [[nodiscard]] std::uint64_t size() const override {
    std::uint64_t total = 0;
    for (const auto& p : parts_) {
      LockGuard lock(p->mu);
      total += p->data.size();
    }
    return total;
  }

  [[nodiscard]] std::uint64_t partSize(std::uint32_t part) const override {
    LockedPart& p = *parts_.at(part);
    LockGuard lock(p.mu);
    return p.data.size();
  }

  Bytes enumerate(PairConsumer& consumer) override {
    // Drive every part concurrently on its long-op executor, then combine.
    std::vector<std::future<Bytes>> futures;
    futures.reserve(numParts());
    for (std::uint32_t part = 0; part < numParts(); ++part) {
      futures.push_back(containerFor(part).scans().submit(
          [this, part, &consumer] { return enumerateLocal(part, consumer); }));
    }
    Bytes result;
    bool first = true;
    for (auto& f : futures) {
      Bytes r = f.get();
      result = first ? std::move(r)
                     : consumer.combine(std::move(result), std::move(r));
      first = false;
    }
    return result;
  }

  Bytes enumeratePart(std::uint32_t part, PairConsumer& consumer) override {
    detail::Container& c = containerFor(part);
    if (c.onLocalThread()) {
      return enumerateLocal(part, consumer);
    }
    return c.scans()
        .submit([this, part, &consumer] {
          return enumerateLocal(part, consumer);
        })
        .get();
  }

  Bytes processParts(PartConsumer& consumer) override {
    std::vector<std::future<Bytes>> futures;
    futures.reserve(numParts());
    for (std::uint32_t part = 0; part < numParts(); ++part) {
      futures.push_back(containerFor(part).scans().submit(
          [this, part, &consumer] { return consumer.processPart(part, *this); }));
    }
    Bytes result;
    bool first = true;
    for (auto& f : futures) {
      Bytes r = f.get();
      result = first ? std::move(r)
                     : consumer.combine(std::move(result), std::move(r));
      first = false;
    }
    return result;
  }

  std::uint64_t clearPart(std::uint32_t part) override {
    checkWritable("clearPart");
    LockedPart& p = *parts_.at(part);
    LockGuard lock(p.mu);
    return p.data.clear();
  }

  std::vector<std::pair<Key, Value>> drainPart(std::uint32_t part) override {
    checkWritable("drainPart");
    metrics_->incScans();
    LockedPart& p = *parts_.at(part);
    LockGuard lock(p.mu);
    return p.data.drain();
  }

 private:
  struct LockedPart {
    explicit LockedPart(bool ordered) : data(ordered) {}
    mutable RankedMutex<LockRank::kStoreStripe> mu;
    detail::PartData data;
  };

  detail::Container& containerFor(std::uint32_t part) {
    return store_->containerFor(part);
  }

  /// Run a point op on the owner: directly when already on the owner's
  /// threads (local), otherwise routed through the short-op executor
  /// (remote, marshalled).
  template <typename Fn>
  std::invoke_result_t<Fn> onOwner(std::uint32_t part, std::size_t bytes,
                                   Fn&& fn) {
    detail::Container& c = containerFor(part);
    if (c.onLocalThread()) {
      metrics_->incLocal();
      return fn();
    }
    metrics_->incRemote();
    metrics_->addMarshalled(bytes);
    return c.ops().submit(std::forward<Fn>(fn)).get();
  }

  Bytes enumerateLocal(std::uint32_t part, PairConsumer& consumer) {
    metrics_->incScans();
    // Snapshot under the part lock; run call-backs outside it so they can
    // freely issue (possibly routed) store operations.
    std::vector<std::pair<Bytes, Bytes>> snapshot;
    {
      LockedPart& p = *parts_.at(part);
      LockGuard lock(p.mu);
      snapshot.reserve(p.data.size());
      p.data.forEach([&](BytesView k, BytesView v) {
        snapshot.emplace_back(Bytes(k), Bytes(v));
        return true;
      });
    }
    consumer.setupPart(part);
    for (const auto& [k, v] : snapshot) {
      if (!consumer.consume(part, k, v)) {
        break;
      }
    }
    return consumer.finalizePart(part);
  }

  std::string name_;
  TableOptions options_;
  PartitionedStore* store_;
  StoreMetrics* metrics_;
  std::vector<std::unique_ptr<LockedPart>> parts_;
};

/// Ubiquitous table: a single logical part, fully replicated; reads are
/// served from any thread without routing (paper §III-A's contract:
/// "quick to read and of limited size").
class UbiquitousTable : public Table {
 public:
  UbiquitousTable(std::string name, TableOptions options,
                  StoreMetrics* metrics)
      : name_(std::move(name)), options_(std::move(options)),
        metrics_(metrics), data_(options_.ordered) {
    options_.parts = 1;
    options_.partitioner = makeDefaultPartitioner(1);
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const TableOptions& options() const override {
    return options_;
  }
  [[nodiscard]] std::uint32_t numParts() const override { return 1; }
  [[nodiscard]] std::uint32_t partOf(KeyView) const override { return 0; }

  std::optional<Value> get(KeyView key) override {
    metrics_->incLocal();
    SharedLock lock(mu_);
    const Bytes* v = data_.find(key);
    if (v == nullptr) {
      return std::nullopt;
    }
    return *v;
  }

  void put(KeyView key, ValueView value) override {
    checkWritable("put");
    metrics_->incLocal();
    LockGuard lock(mu_);
    data_.put(key, value);
  }

  bool erase(KeyView key) override {
    checkWritable("erase");
    LockGuard lock(mu_);
    return data_.erase(key);
  }

  [[nodiscard]] std::uint64_t size() const override {
    SharedLock lock(mu_);
    return data_.size();
  }

  [[nodiscard]] std::uint64_t partSize(std::uint32_t) const override {
    return size();
  }

  Bytes enumerate(PairConsumer& consumer) override {
    return enumeratePart(0, consumer);
  }

  Bytes enumeratePart(std::uint32_t part, PairConsumer& consumer) override {
    if (part != 0) {
      throw std::out_of_range("UbiquitousTable: bad part");
    }
    std::vector<std::pair<Bytes, Bytes>> snapshot;
    {
      SharedLock lock(mu_);
      snapshot.reserve(data_.size());
      data_.forEach([&](BytesView k, BytesView v) {
        snapshot.emplace_back(Bytes(k), Bytes(v));
        return true;
      });
    }
    consumer.setupPart(0);
    for (const auto& [k, v] : snapshot) {
      if (!consumer.consume(0, k, v)) {
        break;
      }
    }
    return consumer.finalizePart(0);
  }

  Bytes processParts(PartConsumer& consumer) override {
    return consumer.processPart(0, *this);
  }

  std::uint64_t clearPart(std::uint32_t) override {
    checkWritable("clearPart");
    LockGuard lock(mu_);
    return data_.clear();
  }

  std::vector<std::pair<Key, Value>> drainPart(std::uint32_t) override {
    checkWritable("drainPart");
    LockGuard lock(mu_);
    return data_.drain();
  }

 private:
  std::string name_;
  TableOptions options_;
  StoreMetrics* metrics_;
  mutable RankedSharedMutex<LockRank::kStoreStripe> mu_;
  detail::PartData data_;
};

}  // namespace

PartitionedStore::PartitionedStore(std::uint32_t containers) {
  if (containers == 0) {
    throw std::invalid_argument(
        "PartitionedStore: containers must be positive");
  }
  containers_.reserve(containers);
  for (std::uint32_t i = 0; i < containers; ++i) {
    containers_.push_back(std::make_unique<detail::Container>(i));
  }
}

PartitionedStore::~PartitionedStore() { shutdown(); }

std::shared_ptr<PartitionedStore> PartitionedStore::create(
    std::uint32_t containers) {
  return std::shared_ptr<PartitionedStore>(new PartitionedStore(containers));
}

detail::Container& PartitionedStore::containerFor(std::uint32_t part) {
  return *containers_[part % containers_.size()];
}

std::uint32_t PartitionedStore::containerCount() const {
  return static_cast<std::uint32_t>(containers_.size());
}

TablePtr PartitionedStore::createTable(const std::string& name,
                                       TableOptions options) {
  LockGuard lock(mu_);
  if (tables_.contains(name)) {
    throw std::invalid_argument("PartitionedStore: table '" + name +
                                "' already exists");
  }
  TablePtr table;
  if (options.ubiquitous) {
    table = std::make_shared<UbiquitousTable>(name, std::move(options),
                                              &metrics_);
  } else {
    table = std::make_shared<PartitionedTable>(name, std::move(options), this,
                                               &metrics_);
  }
  tables_.emplace(name, table);
  return table;
}

TablePtr PartitionedStore::lookupTable(const std::string& name) {
  LockGuard lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

void PartitionedStore::dropTable(const std::string& name) {
  LockGuard lock(mu_);
  tables_.erase(name);
}

void PartitionedStore::runInParts(
    const Table& placement, const std::function<void(std::uint32_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(placement.numParts());
  for (std::uint32_t part = 0; part < placement.numParts(); ++part) {
    futures.push_back(
        containerFor(part).scans().submit([part, &fn] { fn(part); }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

void PartitionedStore::runInPart(const Table& placement, std::uint32_t part,
                                 const std::function<void()>& fn) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("PartitionedStore::runInPart: bad part");
  }
  detail::Container& c = containerFor(part);
  if (c.scans().onThisThread()) {
    fn();
    return;
  }
  c.scans().submit(fn).get();
}

void PartitionedStore::postToPart(const Table& placement, std::uint32_t part,
                                  std::function<void()> fn) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("PartitionedStore::postToPart: bad part");
  }
  containerFor(part).scans().execute(std::move(fn));
}

std::shared_ptr<void> PartitionedStore::adoptPartThread(
    const Table& placement, std::uint32_t part) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("PartitionedStore::adoptPartThread: bad part");
  }
  detail::Container& c = containerFor(part);
  c.adoptCurrentThread();
  // Token releases the registration; it must be destroyed on the same
  // thread that created it.
  return std::shared_ptr<void>(nullptr, [&c](void*) {
    c.releaseCurrentThread();
  });
}

void PartitionedStore::shutdown() {
  for (auto& c : containers_) {
    c->shutdown();
  }
}

}  // namespace ripple::kv
