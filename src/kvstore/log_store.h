// LogStore: the durable, log-structured implementation of the K/V store
// SPI (DESIGN.md §14).
//
// Layout on disk, one directory per store:
//
//   MANIFEST                 append-only epoch begin/commit stream
//   t<id>_p<part>_g<gen>.log append-only mutation log of one table part
//   t<id>_p<part>_g<gen>.seg sealed sorted segment (mmap'd for reads)
//
// Every part pairs a sealed segment (the folded past) with an in-memory
// append-only write buffer mirroring the log tail — ShardStore's fold
// discipline given a persistence layer.  Reads scan the buffer newest-
// first and fall through to a binary search of the sealed segment; scans
// and drains fold buffer over segment into the SPI's canonical
// ascending-key order.
//
// Durability is epoch-granular: mutations buffer in memory until
// commitEpoch() flushes and fsyncs every dirty part log, then appends a
// commit record to the checksummed manifest (begin marker first, commit
// last — the torn-checkpoint discipline of src/ebsp/checkpoint.*).  On
// reopen the store recovers to the LAST COMMITTED epoch: torn log tails
// are truncated, un-committed epochs (and the table creates, compactions
// and drops inside them) roll back, stray files are deleted.  The sync
// engine commits an epoch after every successful checkpoint, which is
// what makes a kill -9 resumable (see DurableStore below).
//
// Background compaction folds a part's buffer and sealed segment into a
// new sealed generation plus a fresh empty log, bounded to one part at a
// time; the superseded generation files are retained until the next
// commit record stops referencing them, so a crash mid-compaction always
// recovers from intact files.
//
// Out-of-core operation (DESIGN.md §14): a store-wide memory budget
// (Options::memoryBudgetBytes, 0 = unbounded) bounds the bytes held in
// part write buffers.  When a mutation or a lazy load pushes the
// accounted resident total over the budget, the store force-compacts the
// least-recently-touched resident parts — folding their buffered state
// into a new sealed generation on disk and dropping the in-memory copy —
// until the total fits again.  Data is only ever dropped AFTER the fold
// is durable in the new segment file, so nothing uncommitted is lost;
// crash recovery still lands exactly on the last committed epoch because
// the manifest keeps naming the old generation until the next commit.
// Reads on an evicted part go through the mmap'd sealed segment (point
// reads binary-search it, scans stream it) plus a replay of the
// committed log tail, and recovery under a budget defers that replay to
// first touch instead of materializing every part eagerly.  Readers that
// stream a segment outside the data lock pin its generation via a
// shared_ptr so a concurrent compaction swap cannot unmap it from under
// their borrowed views.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "kvstore/manifest.h"
#include "kvstore/segment.h"
#include "kvstore/table.h"

namespace ripple::kv {

/// Durability side-interface, discovered via dynamic_cast (the storage
/// SPI itself stays backend-neutral; memory-only backends simply don't
/// implement it).  The sync engine calls commitEpoch() after every
/// successful checkpoint so the on-disk state it would resume from is
/// always a checkpoint boundary.
class DurableStore {
 public:
  virtual ~DurableStore() = default;

  /// Flush and fsync every dirty part log, then commit the epoch in the
  /// manifest.  On return the store's entire state survives power loss.
  virtual void commitEpoch() = 0;

  /// Epoch of the last durable commit (0 = nothing committed yet).
  [[nodiscard]] virtual std::uint64_t lastCommittedEpoch() const = 0;

  /// Directory the store persists into.
  [[nodiscard]] virtual const std::string& storePath() const = 0;
};

class LogStore : public KVStore,
                 public DurableStore,
                 public std::enable_shared_from_this<LogStore> {
 public:
  struct Options {
    /// Store directory.  Empty picks a fresh private directory under the
    /// system temp root which is DELETED when the store is destroyed —
    /// that keeps `RIPPLE_STORE=log` usable for whole test suites without
    /// path collisions; durability across processes needs an explicit
    /// path (RIPPLE_STORE_PATH / --store-path / EngineOptions::storePath).
    std::string path;

    /// Treat a non-empty `path` under the ephemeral contract too: the
    /// directory is deleted when the store is destroyed OR when open()
    /// throws mid-recovery.  Tests use this to open pre-seeded (possibly
    /// corrupt) directories with ephemeral cleanup semantics.
    bool ephemeral = false;

    /// Per-part pending-log bytes that trigger a compaction.
    std::size_t compactBytes = 256 * 1024;

    /// Store-wide budget for resident part state (write buffers + their
    /// indexes + pending frames), in bytes.  0 = unbounded (no eviction,
    /// eager recovery — exactly the pre-budget behavior).  When > 0,
    /// exceeding the budget force-compacts cold parts and drops their
    /// in-memory fold; see the eviction notes in the file comment.
    /// Env/CLI: RIPPLE_STORE_MEM / --store-mem.
    std::size_t memoryBudgetBytes = 0;

    /// Run compactions on a background thread (true) or only via
    /// compactNow() (false; recovery tests pin file states).
    bool backgroundCompaction = true;
  };

  /// Open (creating or recovering) a store.  Throws logstore::SegmentError
  /// when committed on-disk state fails validation.
  static std::shared_ptr<LogStore> open(Options options);
  static std::shared_ptr<LogStore> open(const std::string& path) {
    Options o;
    o.path = path;
    return open(std::move(o));
  }

  /// Commits a final epoch (clean shutdown), joins the compaction
  /// thread, and removes the directory if it was ephemeral.
  ~LogStore() override;

  // KVStore.
  TablePtr createTable(const std::string& name, TableOptions options) override;
  TablePtr lookupTable(const std::string& name) override;
  void dropTable(const std::string& name) override;
  void runInParts(const Table& placement,
                  const std::function<void(std::uint32_t)>& fn) override;
  void runInPart(const Table& placement, std::uint32_t part,
                 const std::function<void()>& fn) override;
  StoreMetrics& metrics() override { return metrics_; }
  [[nodiscard]] const char* backendName() const override { return "log"; }

  // DurableStore.
  void commitEpoch() override;
  [[nodiscard]] std::uint64_t lastCommittedEpoch() const override;
  [[nodiscard]] const std::string& storePath() const override {
    return path_;
  }

  /// Synchronously compact every part of every table (tests, and the
  /// only compaction path when backgroundCompaction is off).
  void compactNow();

  /// Point-in-time store shape, for tests and gauge refreshes.
  struct Stats {
    std::uint64_t sealedSegments = 0;
    std::uint64_t sealedBytes = 0;
    std::uint64_t logBytes = 0;       // Committed log bytes on disk.
    std::uint64_t pendingBytes = 0;   // Buffered, not yet committed.
    std::uint64_t compactions = 0;
    std::uint64_t commits = 0;
    std::uint64_t residentBytes = 0;      // Accounted in-memory part state.
    std::uint64_t residentPeakBytes = 0;  // High-water mark of the above.
    std::uint64_t evictions = 0;          // Budget-forced compactions.
    std::uint64_t segmentReadHits = 0;    // Point reads answered by a
    std::uint64_t segmentReadMisses = 0;  //   sealed segment (hit/miss).
    std::uint64_t memoryBudgetBytes = 0;  // 0 = unbounded.
    double lastRecoverySeconds = 0.0;
  };
  [[nodiscard]] Stats stats() const;

  /// Mirror log-store internals into `registry` as `<prefix>.segments`,
  /// `.segment_bytes`, `.log_bytes`, `.resident_bytes`, `.evictions`,
  /// `.segment_read_{hits,misses}`, `.compactions`, `.commits` gauges/
  /// counters plus `.fold_seconds` and `.recovery_seconds` histograms.
  void bindLogMetrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "store.log");

 private:
  class LogTable;
  struct CompactionItem {
    std::shared_ptr<LogTable> table;
    std::uint32_t part = 0;
  };

  /// Deletes an ephemeral store directory when destroyed.  A member
  /// rather than destructor logic so the cleanup-on-destroy contract
  /// holds even when the constructor throws mid-recovery and ~LogStore
  /// never runs (member destructors still do).
  struct EphemeralDirGuard {
    std::string path;  // Empty = nothing to remove.
    EphemeralDirGuard() = default;
    ~EphemeralDirGuard();
    EphemeralDirGuard(const EphemeralDirGuard&) = delete;
    EphemeralDirGuard& operator=(const EphemeralDirGuard&) = delete;
  };

  explicit LogStore(Options options);
  void recover();
  void compactionLoop();
  void scheduleCompaction(std::shared_ptr<LogTable> table, std::uint32_t part);
  void compactOne(const std::shared_ptr<LogTable>& table, std::uint32_t part);
  void refreshGauges();
  void recordFold(double seconds);
  void removeStrayFiles();

  /// Adjust the store-wide resident-byte total (called under dataMu_
  /// whenever a part's accounted bytes change) and track the peak.
  void noteResident(std::int64_t delta);

  /// Evict least-recently-touched parts until the resident total fits the
  /// budget again.  Called with NO store locks held; no-op when the
  /// budget is 0 or already satisfied.
  void enforceBudget();

  Options options_;
  std::string path_;
  bool ephemeral_ = false;
  EphemeralDirGuard ephemeralDir_;

  // Lock order (strict descent, DESIGN.md §12): tables_(30) → eviction
  // (28) → manifest (27) → part data (20).  The compaction queue (24) is
  // only ever taken with nothing else held.
  mutable RankedMutex<LockRank::kStoreTableMap> tablesMu_;
  std::unordered_map<std::string, std::shared_ptr<LogTable>> tables_
      RIPPLE_GUARDED_BY(tablesMu_);

  /// Serializes budget enforcement: one evictor at a time scans for
  /// victims and compacts them, so concurrent mutators cannot gang up and
  /// evict the same (or every) part redundantly.
  mutable RankedMutex<LockRank::kStoreEvict> evictMu_;

  mutable RankedMutex<LockRank::kStoreManifest> manifestMu_;
  logstore::AppendFile manifest_ RIPPLE_GUARDED_BY(manifestMu_);
  std::vector<std::string> obsoleteFiles_ RIPPLE_GUARDED_BY(manifestMu_);
  std::uint64_t nextTableId_ RIPPLE_GUARDED_BY(manifestMu_) = 1;

  // One coarse recursive lock serializes all part data, LocalStore-style
  // (consumer callbacks may re-enter table operations); the log-structured
  // layout, not lock striping, is this backend's contribution.
  mutable RankedRecursiveMutex<LockRank::kStoreStripe> dataMu_;

  std::atomic<std::uint64_t> lastCommitted_{0};
  std::atomic<std::uint64_t> compactions_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> resident_{0};
  std::atomic<std::uint64_t> residentPeak_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> segReadHits_{0};
  std::atomic<std::uint64_t> segReadMisses_{0};
  std::atomic<std::uint64_t> touchClock_{0};  // LRU clock for part touches.
  std::atomic<double> lastRecoverySeconds_{0.0};

  // Compaction plumbing.
  RankedMutex<LockRank::kStoreBuffer> queueMu_;
  std::condition_variable_any queueCv_;
  std::deque<CompactionItem> queue_ RIPPLE_GUARDED_BY(queueMu_);
  bool stopping_ RIPPLE_GUARDED_BY(queueMu_) = false;
  std::thread compactor_;

  StoreMetrics metrics_;
  obs::MetricsRegistry* logRegistry_ = nullptr;
  std::string logPrefix_;
};

}  // namespace ripple::kv
