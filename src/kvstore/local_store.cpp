#include "kvstore/local_store.h"

#include <stdexcept>

#include "kvstore/part_data.h"

namespace ripple::kv {

namespace {

class LocalTable : public Table {
 public:
  LocalTable(std::string name, TableOptions options, StoreMetrics* metrics,
             RankedRecursiveMutex<LockRank::kStoreStripe>* mu)
      : name_(std::move(name)), options_(std::move(options)),
        metrics_(metrics), mu_(mu) {
    if (options_.ubiquitous) {
      options_.parts = 1;
    }
    if (!options_.partitioner) {
      options_.partitioner = makeDefaultPartitioner(options_.parts);
    }
    if (options_.partitioner->parts() != options_.parts) {
      throw std::invalid_argument("LocalTable '" + name_ +
                                  "': partitioner/parts mismatch");
    }
    parts_.reserve(options_.parts);
    for (std::uint32_t i = 0; i < options_.parts; ++i) {
      parts_.emplace_back(options_.ordered);
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const TableOptions& options() const override {
    return options_;
  }
  [[nodiscard]] std::uint32_t numParts() const override {
    return options_.parts;
  }
  [[nodiscard]] std::uint32_t partOf(KeyView key) const override {
    return options_.partitioner->partOf(key);
  }

  std::optional<Value> get(KeyView key) override {
    LockGuard lock(*mu_);
    metrics_->incLocal();
    const Bytes* v = parts_[partOf(key)].find(key);
    if (v == nullptr) {
      return std::nullopt;
    }
    return *v;
  }

  void put(KeyView key, ValueView value) override {
    checkWritable("put");
    LockGuard lock(*mu_);
    metrics_->incLocal();
    parts_[partOf(key)].put(key, value);
  }

  bool erase(KeyView key) override {
    checkWritable("erase");
    LockGuard lock(*mu_);
    metrics_->incLocal();
    return parts_[partOf(key)].erase(key);
  }

  [[nodiscard]] std::uint64_t size() const override {
    LockGuard lock(*mu_);
    std::uint64_t total = 0;
    for (const auto& p : parts_) {
      total += p.size();
    }
    return total;
  }

  [[nodiscard]] std::uint64_t partSize(std::uint32_t part) const override {
    LockGuard lock(*mu_);
    return parts_.at(part).size();
  }

  Bytes enumerate(PairConsumer& consumer) override {
    Bytes result;
    bool first = true;
    for (std::uint32_t p = 0; p < numParts(); ++p) {
      Bytes r = enumeratePart(p, consumer);
      result = first ? std::move(r) : consumer.combine(std::move(result),
                                                       std::move(r));
      first = false;
    }
    return result;
  }

  Bytes enumeratePart(std::uint32_t part, PairConsumer& consumer) override {
    metrics_->incScans();
    // Snapshot under the lock; callbacks run outside it so they can
    // freely mutate this or other tables.
    std::vector<std::pair<Bytes, Bytes>> snapshot;
    {
      LockGuard lock(*mu_);
      snapshot.reserve(parts_.at(part).size());
      parts_.at(part).forEach([&](BytesView k, BytesView v) {
        snapshot.emplace_back(Bytes(k), Bytes(v));
        return true;
      });
    }
    consumer.setupPart(part);
    for (const auto& [k, v] : snapshot) {
      if (!consumer.consume(part, k, v)) {
        break;
      }
    }
    return consumer.finalizePart(part);
  }

  Bytes processParts(PartConsumer& consumer) override {
    Bytes result;
    bool first = true;
    for (std::uint32_t p = 0; p < numParts(); ++p) {
      Bytes r = consumer.processPart(p, *this);
      result = first ? std::move(r) : consumer.combine(std::move(result),
                                                       std::move(r));
      first = false;
    }
    return result;
  }

  std::uint64_t clearPart(std::uint32_t part) override {
    checkWritable("clearPart");
    LockGuard lock(*mu_);
    return parts_.at(part).clear();
  }

  std::vector<std::pair<Key, Value>> drainPart(std::uint32_t part) override {
    checkWritable("drainPart");
    LockGuard lock(*mu_);
    metrics_->incScans();
    return parts_.at(part).drain();
  }

 private:
  std::string name_;
  TableOptions options_;
  StoreMetrics* metrics_;
  RankedRecursiveMutex<LockRank::kStoreStripe>* mu_;
  std::vector<detail::PartData> parts_;
};

}  // namespace

std::shared_ptr<LocalStore> LocalStore::create() {
  return std::shared_ptr<LocalStore>(new LocalStore());
}

TablePtr LocalStore::createTable(const std::string& name,
                                 TableOptions options) {
  LockGuard lock(mu_);
  if (tables_.contains(name)) {
    throw std::invalid_argument("LocalStore: table '" + name +
                                "' already exists");
  }
  auto table = std::make_shared<LocalTable>(name, std::move(options),
                                            &metrics_, &tableMu_);
  tables_.emplace(name, table);
  return table;
}

TablePtr LocalStore::lookupTable(const std::string& name) {
  LockGuard lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

void LocalStore::dropTable(const std::string& name) {
  LockGuard lock(mu_);
  tables_.erase(name);
}

void LocalStore::runInParts(const Table& placement,
                            const std::function<void(std::uint32_t)>& fn) {
  for (std::uint32_t p = 0; p < placement.numParts(); ++p) {
    fn(p);
  }
}

void LocalStore::runInPart(const Table& placement, std::uint32_t part,
                           const std::function<void()>& fn) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("LocalStore::runInPart: bad part");
  }
  fn();
}

}  // namespace ripple::kv
