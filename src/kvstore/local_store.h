// LocalStore: the single-threaded debugging implementation of the K/V
// store SPI.  Everything is a plain in-process map; "collocated" execution
// runs inline on the caller's thread.  Useful for deterministic tests and
// as the second, independent implementation demonstrating the SPI's
// portability claim (the paper shipped WXS, HBase, and a debugging store).

#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "kvstore/table.h"

namespace ripple::kv {

class LocalStore : public KVStore,
                   public std::enable_shared_from_this<LocalStore> {
 public:
  static std::shared_ptr<LocalStore> create();

  TablePtr createTable(const std::string& name, TableOptions options) override;
  TablePtr lookupTable(const std::string& name) override;
  void dropTable(const std::string& name) override;

  void runInParts(const Table& placement,
                  const std::function<void(std::uint32_t)>& fn) override;
  void runInPart(const Table& placement, std::uint32_t part,
                 const std::function<void()>& fn) override;

  StoreMetrics& metrics() override { return metrics_; }
  [[nodiscard]] const char* backendName() const override { return "local"; }

 private:
  LocalStore() = default;

  RankedMutex<LockRank::kStoreTableMap> mu_;  // Guards the table registry.
  // One coarse lock serializes all table contents: this store optimizes
  // for debuggability, not concurrency.  Recursive because consumer
  // call-backs may re-enter table operations.
  RankedRecursiveMutex<LockRank::kStoreStripe> tableMu_;
  std::unordered_map<std::string, TablePtr> tables_ RIPPLE_GUARDED_BY(mu_);
  StoreMetrics metrics_;
};

}  // namespace ripple::kv
