// On-disk building blocks for the durable log store (DESIGN.md §14).
//
// Three layers live here, and ONLY here — scripts/lint.sh forbids raw
// file-descriptor I/O (::open/::write/::fsync/::mmap) anywhere else so
// the durability story is auditable in one file:
//
//  * Frames: every record on disk (part-log records and manifest records
//    alike) is framed [fixed32 len][fixed64 check][payload] where the
//    check covers both the payload and the length.  readFrame() never
//    throws: a short, bit-flipped, or torn frame decodes to nullopt,
//    which recovery interprets as "the log ends here".
//  * AppendFile: an append-only fd with explicit sync(); recovery can
//    reopen one truncated to the last committed length, dropping a torn
//    tail.
//  * SealedSegment: an immutable, sorted, checksummed key/value file
//    (entries + offset index + footer) opened read-only via mmap for
//    binary-searched point reads.  open() validates the whole file —
//    magic, checksum, index bounds, strict key order — and throws
//    SegmentError on any corruption; openFromBytes() backs the fuzz
//    harness with the identical decoder.
//
// Part-log records (LogRecord) are the logical mutation stream one table
// part appends: put/erase/clear.  Replaying a part log's committed prefix
// over its sealed segment reproduces the part's state exactly.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace ripple::kv::logstore {

/// Thrown when a sealed segment or manifest fails validation (corruption
/// of COMMITTED data — unlike a torn tail, this is not silently
/// recoverable).
class SegmentError : public std::runtime_error {
 public:
  explicit SegmentError(const std::string& what) : std::runtime_error(what) {}
};

// --- Record framing -------------------------------------------------------

/// Bytes of frame overhead preceding every payload.
inline constexpr std::size_t kFrameHeader = 12;

/// Append one framed record to `out`.
void appendFrame(Bytes& out, BytesView payload);

struct Frame {
  BytesView payload;
  std::size_t end;  // Offset just past this frame.
};

/// Decode the frame starting at `pos`.  Returns nullopt when the buffer
/// ends cleanly at `pos`, when the frame is truncated, or when the
/// checksum does not match — all three read as "no valid record here".
[[nodiscard]] std::optional<Frame> readFrame(BytesView buf,
                                             std::size_t pos) noexcept;

// --- Part-log records -----------------------------------------------------

enum class LogOp : std::uint8_t {
  kPut = 1,
  kErase = 2,
  kClear = 3,
};

struct LogRecord {
  LogOp op = LogOp::kPut;
  Bytes key;
  Bytes value;
};

/// Encode a record payload (frame it with appendFrame for disk).
[[nodiscard]] Bytes encodeLogRecord(LogOp op, BytesView key, BytesView value);

/// Decode a record payload; nullopt on any malformation (unknown op,
/// truncated fields, trailing garbage).
[[nodiscard]] std::optional<LogRecord> decodeLogRecord(
    BytesView payload) noexcept;

// --- File primitives ------------------------------------------------------

/// Append-only file handle.  All writes go straight to the fd; sync()
/// makes them durable.  Move-only.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();

  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Open (creating if absent) and position at the current end.
  void open(const std::string& path);

  /// Open and truncate to `length` first — recovery drops a torn tail by
  /// reopening the log at its last committed length.
  void openTruncated(const std::string& path, std::uint64_t length);

  [[nodiscard]] bool isOpen() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Current file length in bytes (tracked; equals on-disk size).
  [[nodiscard]] std::uint64_t size() const { return size_; }

  void append(BytesView data);

  /// fsync the fd; after return the appended bytes survive power loss.
  void sync();

  void close();

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
};

/// Read a whole file into memory; throws SegmentError if unreadable.
[[nodiscard]] Bytes readFileBytes(const std::string& path);

/// Write `bytes` to `path` (replacing it) and fsync before returning.
void writeFileDurable(const std::string& path, BytesView bytes);

/// fsync a directory so created/renamed/unlinked names are durable.
void syncDir(const std::string& path);

// --- Sealed segments ------------------------------------------------------

/// Immutable sorted key/value file.
///
///   [magic "RSG1"]
///   entries: n × [fixed32 klen][fixed32 vlen][key][value]
///   index:   n × [fixed64 entryOffset]   (ascending)
///   footer:  [fixed64 indexOff][fixed64 n][fixed64 check][magic "1GSR"]
///
/// `check` = fnv1a64 over everything before the check field.  Keys are
/// strictly ascending (byte-lexicographic), enforced at open.
class SealedSegment {
 public:
  /// Encode a sealed segment image from ascending-key, duplicate-free
  /// pairs (the fold output).
  [[nodiscard]] static Bytes encode(
      const std::vector<std::pair<Bytes, Bytes>>& sorted);

  /// Map `path` read-only and validate; throws SegmentError on any
  /// corruption.
  void open(const std::string& path);

  /// Validate and adopt an in-memory image (fuzzing and tests).
  void openFromBytes(Bytes image);

  [[nodiscard]] bool isOpen() const { return data_ != nullptr; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sizeBytes() const { return size_; }

  /// Binary-searched point read; the view borrows from the mapping.
  [[nodiscard]] std::optional<BytesView> find(BytesView key) const;

  /// i-th entry in ascending key order.
  [[nodiscard]] std::pair<BytesView, BytesView> entry(std::uint64_t i) const;

  void close();

  SealedSegment() = default;
  ~SealedSegment();
  SealedSegment(SealedSegment&& other) noexcept;
  SealedSegment& operator=(SealedSegment&& other) noexcept;
  SealedSegment(const SealedSegment&) = delete;
  SealedSegment& operator=(const SealedSegment&) = delete;

 private:
  void validate(const std::string& origin);
  [[nodiscard]] std::uint64_t offsetAt(std::uint64_t i) const;

  const char* data_ = nullptr;
  std::uint64_t size_ = 0;
  std::uint64_t indexOff_ = 0;
  std::uint64_t count_ = 0;

  // Backing storage: either an mmap (munmap'd on close) or an owned heap
  // buffer (openFromBytes, or the read() fallback when mmap fails).
  void* map_ = nullptr;
  std::uint64_t mapLen_ = 0;
  Bytes owned_;
};

}  // namespace ripple::kv::logstore
