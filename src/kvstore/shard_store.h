// ShardStore: the third implementation of the K/V store SPI, built to be
// architecturally different from PartitionedStore so the conformance
// suite (tests/kvstore/spi_conformance_test.cpp) exercises the SPI as a
// contract rather than a description of one backend:
//
//  * Point operations are served DIRECTLY on the caller's thread under
//    striped locks — there is no short-op executor and no routing hop.
//    Locality accounting (local vs remote + marshalled bytes) is kept by
//    comparing the calling thread's adopted location against the part's
//    owner, so the engine-visible cost model survives even though the
//    dispatch mechanics are completely different.
//  * Each part is an open-addressing hash shard cut into lock stripes
//    (linear probing, tombstones, growth at 0.7 load), fronted by an
//    append-only write buffer.  Writes append; the buffer folds into the
//    stripes when it fills or when a scan/drain/size needs a consistent
//    view — in engine terms, at the superstep barrier.
//  * Ubiquitous-table reads go through a bounded LRU block cache
//    (StoreMetrics cache_hits / cache_misses).
//  * Parts map to locations via a mix64-scrambled placement instead of
//    `part % N`, so consistently-partitioned tables still co-place parts
//    (same part index => same location) but the engine's collocated
//    dispatch lands on a different location topology than under
//    PartitionedStore.
//
// Each location owns ONE serial executor (PartitionedStore owns two per
// container) used only for collocated mobile code (runInParts /
// runInPart / postToPart / enumerations); adoptPartThread registers the
// calling thread as belonging to a location, exactly like the
// PartitionedStore container adoption the queue-set workers rely on.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "kvstore/table.h"

namespace ripple::kv {

namespace shard_detail {
class Location;
}  // namespace shard_detail

class ShardStore : public KVStore,
                   public std::enable_shared_from_this<ShardStore> {
 public:
  struct Options {
    /// Number of locations (executor + adoption domains).
    std::uint32_t locations = 4;
    /// Lock stripes per part shard.
    std::uint32_t stripes = 8;
    /// Write-buffer entries per part before an automatic fold into the
    /// stripes.
    std::size_t writeBufferLimit = 64;
    /// Ubiquitous-read LRU block cache capacity, in entries, per
    /// ubiquitous table.  0 disables the cache.
    std::size_t blockCacheCapacity = 128;
  };

  static std::shared_ptr<ShardStore> create(std::uint32_t locations);
  static std::shared_ptr<ShardStore> create(Options options);

  ~ShardStore() override;

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  TablePtr createTable(const std::string& name, TableOptions options) override;
  TablePtr lookupTable(const std::string& name) override;
  void dropTable(const std::string& name) override;

  void runInParts(const Table& placement,
                  const std::function<void(std::uint32_t)>& fn) override;
  void runInPart(const Table& placement, std::uint32_t part,
                 const std::function<void()>& fn) override;
  void postToPart(const Table& placement, std::uint32_t part,
                  std::function<void()> fn) override;
  std::shared_ptr<void> adoptPartThread(const Table& placement,
                                        std::uint32_t part) override;

  StoreMetrics& metrics() override { return metrics_; }
  [[nodiscard]] const char* backendName() const override { return "shard"; }

  [[nodiscard]] std::uint32_t locationCount() const;

  /// Location index hosting `part` (scrambled placement; exposed for the
  /// placement tests).
  [[nodiscard]] std::uint32_t locationOf(std::uint32_t part) const;

  /// Drain executors and join all location threads; idempotent.
  void shutdown();

  /// Location hosting part `part` (internal; used by table objects).
  shard_detail::Location& locationFor(std::uint32_t part);

  [[nodiscard]] const Options& storeOptions() const { return options_; }

 private:
  explicit ShardStore(Options options);

  Options options_;
  std::vector<std::unique_ptr<shard_detail::Location>> locations_;
  RankedMutex<LockRank::kStoreTableMap> mu_;  // Guards the table registry.
  std::unordered_map<std::string, TablePtr> tables_;
  StoreMetrics metrics_;
};

}  // namespace ripple::kv
