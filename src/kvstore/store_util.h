// Convenience helpers over the raw byte-oriented Table interface: typed
// table views and whole-table utilities used by loaders, exporters,
// examples, and tests.

#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "kvstore/table.h"

namespace ripple::kv {

/// Snapshot every pair of a table (all parts).
[[nodiscard]] std::vector<std::pair<Key, Value>> readAll(Table& table);

/// Copy every pair from `src` into `dst`.
void copyTable(Table& src, Table& dst);

/// Total pair count computed by enumeration (exercise path for tests;
/// Table::size() is the fast path).
[[nodiscard]] std::uint64_t countPairs(Table& table);

/// A typed view over a byte table; encodes keys/values through Codec.
template <typename K, typename V>
class TypedTable {
 public:
  explicit TypedTable(TablePtr table) : table_(std::move(table)) {}

  [[nodiscard]] Table& raw() { return *table_; }
  [[nodiscard]] const TablePtr& ptr() const { return table_; }

  [[nodiscard]] std::optional<V> get(const K& key) {
    auto raw = table_->get(encodeToBytes(key));
    if (!raw) {
      return std::nullopt;
    }
    return decodeFromBytes<V>(*raw);
  }

  void put(const K& key, const V& value) {
    table_->put(encodeToBytes(key), encodeToBytes(value));
  }

  bool erase(const K& key) { return table_->erase(encodeToBytes(key)); }

  /// Enumerate every pair (decoded); fn returning false stops that part.
  void forEach(const std::function<bool(const K&, const V&)>& fn) {
    class Consumer : public PairConsumer {
     public:
      explicit Consumer(const std::function<bool(const K&, const V&)>& fn)
          : fn_(fn) {}
      bool consume(std::uint32_t, KeyView k, ValueView v) override {
        return fn_(decodeFromBytes<K>(k), decodeFromBytes<V>(v));
      }

     private:
      const std::function<bool(const K&, const V&)>& fn_;
    };
    Consumer consumer(fn);
    // Part by part, not enumerate(): fn is a single client-side callback
    // with no thread-safety contract, so it must never run concurrently.
    for (std::uint32_t part = 0; part < table_->numParts(); ++part) {
      table_->enumeratePart(part, consumer);
    }
  }

  [[nodiscard]] std::uint64_t size() const { return table_->size(); }

 private:
  TablePtr table_;
};

}  // namespace ripple::kv
