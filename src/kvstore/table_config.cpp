#include "kvstore/table.h"

#include <stdexcept>

namespace ripple::kv {

void Table::putBatch(const std::vector<std::pair<Key, Value>>& entries) {
  for (const auto& [k, v] : entries) {
    put(k, v);
  }
}

TablePtr KVStore::createConsistentTable(const std::string& name,
                                        const Table& like, bool ordered) {
  TableOptions options = like.options();
  options.ordered = ordered;
  options.ubiquitous = false;
  // Sharing the partitioner instance is the consistency guarantee: both
  // tables map every key to the same part index.
  return createTable(name, options);
}

void KVStore::postToPart(const Table& placement, std::uint32_t part,
                         std::function<void()> fn) {
  runInPart(placement, part, fn);
}

std::uint32_t KVStore::partsOf(const Table& placement) const {
  return placement.numParts();
}

std::shared_ptr<void> KVStore::adoptPartThread(const Table& placement,
                                               std::uint32_t part) {
  // Even the no-op default validates: the SPI contract is that a bad part
  // index is rejected identically on every backend.
  if (part >= placement.numParts()) {
    throw std::out_of_range("KVStore::adoptPartThread: bad part");
  }
  return nullptr;
}

}  // namespace ripple::kv
