// The log store's manifest (DESIGN.md §14): a single append-only stream
// of framed records that makes epochs atomic.
//
// Two record kinds exist, mirroring the torn-checkpoint discipline of
// src/ebsp/checkpoint.* (begin written BEFORE the data it covers, commit
// written last):
//
//   begin{epoch}   — appended before any part log is flushed for `epoch`.
//   commit{state}  — appended after every part log has been fsynced;
//                    carries the COMPLETE store state: table catalog and,
//                    per part, the log generation + committed byte length
//                    + sealed-segment generation.
//
// Recovery scans the stream front to back and adopts the LAST valid
// commit record; everything after it — a begin with no commit, a torn
// half-written commit, trailing garbage — is the signature of a death
// mid-epoch and is dropped (the manifest is truncated back to the commit
// on reopen).  A begin after the last commit is surfaced as `tornEpoch`
// for observability, but carries no state.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace ripple::kv::logstore {

/// Durable per-part state: which generation files hold the part and how
/// many log bytes were committed.
struct PartState {
  std::uint64_t logGen = 1;
  std::uint64_t committedLen = 0;
  std::uint64_t sealedGen = 0;   // 0 = no sealed segment.
  std::uint64_t liveEntries = 0; // Live keys after replaying committedLen.
};

struct TableState {
  std::string name;
  std::uint64_t id = 0;
  std::uint32_t parts = 1;
  bool ordered = false;
  bool ubiquitous = false;
  std::vector<PartState> partStates;
};

/// The complete durable state one commit record carries.
struct ManifestState {
  std::uint64_t epoch = 0;
  std::uint64_t nextTableId = 1;
  std::vector<TableState> tables;
};

[[nodiscard]] Bytes encodeBeginRecord(std::uint64_t epoch);
[[nodiscard]] Bytes encodeCommitRecord(const ManifestState& state);

/// Decode one record payload (already de-framed).  nullopt for anything
/// malformed — unknown kind, truncated fields, trailing bytes, or
/// internally inconsistent geometry.  Never throws, never reads out of
/// bounds (the fuzz harness drives this directly).
struct ManifestRecord {
  bool isCommit = false;
  std::uint64_t epoch = 0;           // begin and commit both carry one.
  ManifestState state;               // Populated for commits.
};
[[nodiscard]] std::optional<ManifestRecord> decodeManifestRecord(
    BytesView payload) noexcept;

struct ManifestRecovery {
  ManifestState state;       // Last committed state; default when !hasCommit.
  bool hasCommit = false;
  bool tornEpoch = false;    // A begin (or garbage) follows the last commit.
  std::uint64_t validBytes = 0;  // Stream prefix ending at the last commit.
};

/// Scan a manifest image and recover the last committed state.  Stops at
/// the first invalid frame (torn tail).  Never throws.
[[nodiscard]] ManifestRecovery recoverManifest(BytesView manifest) noexcept;

}  // namespace ripple::kv::logstore
