#include "kvstore/shard_store.h"

#include <algorithm>
#include <future>
#include <list>
#include <stdexcept>
#include <utility>

#include "common/hash.h"

namespace ripple::kv {

namespace shard_detail {

/// One location: a single serial executor for collocated mobile code plus
/// a thread-local adoption registration.  Point operations never pass
/// through the executor — they run on the caller's thread under stripe
/// locks — so the executor only carries scans, part enumeration, and
/// posted work.
class Location {
 public:
  explicit Location(std::uint32_t index)
      : index_(index), exec_("shard-loc-" + std::to_string(index)) {}

  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] SerialExecutor& exec() { return exec_; }

  [[nodiscard]] bool onLocalThread() const {
    return adopted() == this || exec_.onThisThread();
  }

  void adoptCurrentThread() { adopted() = this; }
  void releaseCurrentThread() {
    if (adopted() == this) {
      adopted() = nullptr;
    }
  }

  void shutdown() { exec_.shutdown(); }

 private:
  static Location*& adopted() {
    thread_local Location* current = nullptr;
    return current;
  }

  std::uint32_t index_;
  SerialExecutor exec_;
};

}  // namespace shard_detail

namespace {

using shard_detail::Location;

/// One lock stripe of a part shard: an open-addressing hash table with
/// linear probing and tombstone deletion; grows at 0.7 load (counting
/// tombstones, which probing must skip over).
class Stripe {
 public:
  Stripe() { slots_.resize(kInitialCapacity); }

  mutable RankedMutex<LockRank::kStoreStripe> mu;

  [[nodiscard]] const Bytes* find(BytesView key) const RIPPLE_REQUIRES(mu) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = probeStart(key);
    for (std::size_t step = 0; step < slots_.size(); ++step) {
      const Slot& s = slots_[(idx + step) & mask];
      if (s.state == SlotState::kEmpty) {
        return nullptr;
      }
      if (s.state == SlotState::kFull && BytesView(s.key) == key) {
        return &s.value;
      }
    }
    return nullptr;
  }

  /// Insert-or-assign; returns true when the key was new.
  bool put(BytesView key, BytesView value) RIPPLE_REQUIRES(mu) {
    growIfNeeded();
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = probeStart(key);
    std::size_t firstTomb = slots_.size();  // Sentinel: none seen.
    for (std::size_t step = 0; step < slots_.size(); ++step) {
      const std::size_t at = (idx + step) & mask;
      Slot& s = slots_[at];
      if (s.state == SlotState::kFull && BytesView(s.key) == key) {
        s.value = Bytes(value);
        return false;
      }
      if (s.state == SlotState::kTomb && firstTomb == slots_.size()) {
        firstTomb = at;
      }
      if (s.state == SlotState::kEmpty) {
        Slot& target = firstTomb != slots_.size() ? slots_[firstTomb] : s;
        if (&target == &s) {
          ++used_;
        }
        target.state = SlotState::kFull;
        target.key = Bytes(key);
        target.value = Bytes(value);
        ++live_;
        return true;
      }
    }
    throw std::logic_error("Stripe::put: probe exhausted a full table");
  }

  /// Returns true when the key existed.
  bool erase(BytesView key) RIPPLE_REQUIRES(mu) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = probeStart(key);
    for (std::size_t step = 0; step < slots_.size(); ++step) {
      Slot& s = slots_[(idx + step) & mask];
      if (s.state == SlotState::kEmpty) {
        return false;
      }
      if (s.state == SlotState::kFull && BytesView(s.key) == key) {
        s.state = SlotState::kTomb;
        s.key.clear();
        s.value.clear();
        --live_;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const RIPPLE_REQUIRES(mu) { return live_; }

  std::size_t clear() RIPPLE_REQUIRES(mu) {
    const std::size_t n = live_;
    slots_.assign(kInitialCapacity, Slot{});
    live_ = 0;
    used_ = 0;
    return n;
  }

  template <typename Fn>
  void forEach(Fn&& fn) const RIPPLE_REQUIRES(mu) {
    for (const Slot& s : slots_) {
      if (s.state == SlotState::kFull) {
        fn(BytesView(s.key), BytesView(s.value));
      }
    }
  }

 private:
  enum class SlotState : std::uint8_t { kEmpty, kFull, kTomb };
  struct Slot {
    SlotState state = SlotState::kEmpty;
    Bytes key;
    Bytes value;
  };

  static constexpr std::size_t kInitialCapacity = 8;  // Power of two.

  [[nodiscard]] std::size_t probeStart(BytesView key) const {
    return static_cast<std::size_t>(mix64(fnv1a64(key))) &
           (slots_.size() - 1);
  }

  void growIfNeeded() RIPPLE_REQUIRES(mu) {
    if ((used_ + 1) * 10 < slots_.size() * 7) {
      return;
    }
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    live_ = 0;
    used_ = 0;
    for (Slot& s : old) {
      if (s.state == SlotState::kFull) {
        put(s.key, s.value);
      }
    }
  }

  std::vector<Slot> slots_ RIPPLE_GUARDED_BY(mu);
  std::size_t live_ RIPPLE_GUARDED_BY(mu) = 0;   // kFull slots.
  std::size_t used_ RIPPLE_GUARDED_BY(mu) =
      0;  // kFull + kTomb slots (probe-chain length bound).
};

/// One part of a shard table: lock stripes fronted by an append-only
/// write buffer.  Lock order is ALWAYS buffer mutex -> stripe mutex.
class PartShard {
 public:
  PartShard(std::uint32_t stripes, std::size_t bufferLimit)
      : bufferLimit_(bufferLimit), stripes_(stripes) {}

  [[nodiscard]] std::optional<Bytes> get(BytesView key) const {
    {
      LockGuard lock(bufMu_);
      // Newest-wins: scan the append log backwards.
      for (auto it = buffer_.rbegin(); it != buffer_.rend(); ++it) {
        if (BytesView(it->key) == key) {
          if (it->tombstone) {
            return std::nullopt;
          }
          return it->value;
        }
      }
    }
    const Stripe& s = stripeFor(key);
    LockGuard lock(s.mu);
    const Bytes* v = s.find(key);
    if (v == nullptr) {
      return std::nullopt;
    }
    return *v;
  }

  void put(BytesView key, BytesView value) {
    LockGuard lock(bufMu_);
    buffer_.push_back({Bytes(key), Bytes(value), false});
    if (buffer_.size() >= bufferLimit_) {
      flushLocked();
    }
  }

  bool erase(BytesView key) {
    LockGuard lock(bufMu_);
    bool existed = false;
    bool inBuffer = false;
    for (auto it = buffer_.rbegin(); it != buffer_.rend(); ++it) {
      if (BytesView(it->key) == key) {
        existed = !it->tombstone;
        inBuffer = true;
        break;
      }
    }
    if (!inBuffer) {
      const Stripe& s = stripeFor(key);
      LockGuard stripeLock(s.mu);
      existed = s.find(key) != nullptr;
    }
    buffer_.push_back({Bytes(key), Bytes{}, true});
    if (buffer_.size() >= bufferLimit_) {
      flushLocked();
    }
    return existed;
  }

  void putMany(const std::vector<const std::pair<Bytes, Bytes>*>& entries) {
    LockGuard lock(bufMu_);
    for (const auto* e : entries) {
      buffer_.push_back({e->first, e->second, false});
    }
    if (buffer_.size() >= bufferLimit_) {
      flushLocked();
    }
  }

  /// Fold the write buffer into the stripes (the "on barrier" flush: any
  /// operation needing a consistent whole-part view calls this first).
  void flush() {
    LockGuard lock(bufMu_);
    flushLocked();
  }

  [[nodiscard]] std::size_t size() const {
    const_cast<PartShard*>(this)->flush();
    std::size_t total = 0;
    for (const Stripe& s : stripes_) {
      LockGuard lock(s.mu);
      total += s.size();
    }
    return total;
  }

  /// Consistent, ascending-key snapshot of the whole part.
  [[nodiscard]] std::vector<std::pair<Bytes, Bytes>> snapshot() const {
    const_cast<PartShard*>(this)->flush();
    std::vector<std::pair<Bytes, Bytes>> out;
    for (const Stripe& s : stripes_) {
      LockGuard lock(s.mu);
      s.forEach([&](BytesView k, BytesView v) {
        out.emplace_back(Bytes(k), Bytes(v));
      });
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  std::vector<std::pair<Bytes, Bytes>> drain() {
    LockGuard lock(bufMu_);
    flushLocked();
    std::vector<std::pair<Bytes, Bytes>> out;
    for (Stripe& s : stripes_) {
      LockGuard stripeLock(s.mu);
      s.forEach([&](BytesView k, BytesView v) {
        out.emplace_back(Bytes(k), Bytes(v));
      });
      s.clear();
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  std::size_t clear() {
    LockGuard lock(bufMu_);
    flushLocked();
    std::size_t removed = 0;
    for (Stripe& s : stripes_) {
      LockGuard stripeLock(s.mu);
      removed += s.clear();
    }
    return removed;
  }

  /// Write-buffer occupancy (for the flush tests).
  [[nodiscard]] std::size_t buffered() const {
    LockGuard lock(bufMu_);
    return buffer_.size();
  }

 private:
  struct BufferedWrite {
    Bytes key;
    Bytes value;
    bool tombstone;
  };

  [[nodiscard]] const Stripe& stripeFor(BytesView key) const {
    // Stripe choice uses the upper hash bits so it stays independent of
    // the probe position (low bits) inside the stripe.
    const std::uint64_t h = mix64(fnv1a64(key));
    return stripes_[(h >> 32) % stripes_.size()];
  }
  [[nodiscard]] Stripe& stripeFor(BytesView key) {
    const std::uint64_t h = mix64(fnv1a64(key));
    return stripes_[(h >> 32) % stripes_.size()];
  }

  void flushLocked() RIPPLE_REQUIRES(bufMu_) {
    for (const BufferedWrite& w : buffer_) {
      Stripe& s = stripeFor(w.key);
      LockGuard lock(s.mu);
      if (w.tombstone) {
        s.erase(w.key);
      } else {
        s.put(w.key, w.value);
      }
    }
    buffer_.clear();
  }

  mutable RankedMutex<LockRank::kStoreBuffer> bufMu_;
  std::vector<BufferedWrite> buffer_ RIPPLE_GUARDED_BY(bufMu_);
  std::size_t bufferLimit_;
  mutable std::vector<Stripe> stripes_;
};

/// Bounded LRU cache for ubiquitous-table reads.  Caches present keys
/// only; writes invalidate.
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  [[nodiscard]] std::optional<Bytes> get(BytesView key) {
    if (capacity_ == 0) {
      return std::nullopt;
    }
    LockGuard lock(mu_);
    auto it = index_.find(Bytes(key));
    if (it == index_.end()) {
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  void insert(BytesView key, ValueView value) {
    if (capacity_ == 0) {
      return;
    }
    LockGuard lock(mu_);
    Bytes k(key);
    auto it = index_.find(k);
    if (it != index_.end()) {
      it->second->second = Bytes(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(k, Bytes(value));
    index_.emplace(std::move(k), order_.begin());
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  void invalidate(BytesView key) {
    LockGuard lock(mu_);
    auto it = index_.find(Bytes(key));
    if (it != index_.end()) {
      order_.erase(it->second);
      index_.erase(it);
    }
  }

  void invalidateAll() {
    LockGuard lock(mu_);
    order_.clear();
    index_.clear();
  }

  [[nodiscard]] std::size_t entries() const {
    LockGuard lock(mu_);
    return order_.size();
  }

 private:
  std::size_t capacity_;
  mutable RankedMutex<LockRank::kStoreCache> mu_;
  std::list<std::pair<Bytes, Bytes>> order_ RIPPLE_GUARDED_BY(mu_);
  std::unordered_map<Bytes, std::list<std::pair<Bytes, Bytes>>::iterator>
      index_ RIPPLE_GUARDED_BY(mu_);
};

/// A partitioned shard table.
class ShardTable : public Table {
 public:
  ShardTable(std::string name, TableOptions options, ShardStore* store,
             StoreMetrics* metrics)
      : name_(std::move(name)), options_(std::move(options)), store_(store),
        metrics_(metrics) {
    if (!options_.partitioner) {
      options_.partitioner = makeDefaultPartitioner(options_.parts);
    }
    if (options_.partitioner->parts() != options_.parts) {
      throw std::invalid_argument("ShardTable '" + name_ +
                                  "': partitioner/parts mismatch");
    }
    const ShardStore::Options& so = store_->storeOptions();
    parts_.reserve(options_.parts);
    for (std::uint32_t i = 0; i < options_.parts; ++i) {
      parts_.push_back(
          std::make_unique<PartShard>(so.stripes, so.writeBufferLimit));
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const TableOptions& options() const override {
    return options_;
  }
  [[nodiscard]] std::uint32_t numParts() const override {
    return options_.parts;
  }
  [[nodiscard]] std::uint32_t partOf(KeyView key) const override {
    return options_.partitioner->partOf(key);
  }

  std::optional<Value> get(KeyView key) override {
    const std::uint32_t part = partOf(key);
    account(part, key.size());
    return parts_[part]->get(key);
  }

  void put(KeyView key, ValueView value) override {
    checkWritable("put");
    const std::uint32_t part = partOf(key);
    account(part, key.size() + value.size());
    parts_[part]->put(key, value);
  }

  bool erase(KeyView key) override {
    checkWritable("erase");
    const std::uint32_t part = partOf(key);
    account(part, key.size());
    return parts_[part]->erase(key);
  }

  void putBatch(const std::vector<std::pair<Key, Value>>& entries) override {
    checkWritable("putBatch");
    std::vector<std::vector<const std::pair<Key, Value>*>> byPart(numParts());
    for (const auto& e : entries) {
      byPart[partOf(e.first)].push_back(&e);
    }
    for (std::uint32_t part = 0; part < numParts(); ++part) {
      if (byPart[part].empty()) {
        continue;
      }
      std::size_t bytes = 0;
      for (const auto* e : byPart[part]) {
        bytes += e->first.size() + e->second.size();
      }
      account(part, bytes);
      parts_[part]->putMany(byPart[part]);
    }
  }

  [[nodiscard]] std::uint64_t size() const override {
    std::uint64_t total = 0;
    for (const auto& p : parts_) {
      total += p->size();
    }
    return total;
  }

  [[nodiscard]] std::uint64_t partSize(std::uint32_t part) const override {
    return parts_.at(part)->size();
  }

  Bytes enumerate(PairConsumer& consumer) override {
    // Per-part scans run collocated on each part's location executor;
    // results combine in part order (canonical across backends).
    std::vector<std::future<Bytes>> futures;
    futures.reserve(numParts());
    for (std::uint32_t part = 0; part < numParts(); ++part) {
      futures.push_back(store_->locationFor(part).exec().submit(
          [this, part, &consumer] { return enumerateLocal(part, consumer); }));
    }
    Bytes result;
    bool first = true;
    for (auto& f : futures) {
      Bytes r = f.get();
      result = first ? std::move(r)
                     : consumer.combine(std::move(result), std::move(r));
      first = false;
    }
    return result;
  }

  Bytes enumeratePart(std::uint32_t part, PairConsumer& consumer) override {
    Location& loc = store_->locationFor(partIndexChecked(part));
    if (loc.onLocalThread()) {
      return enumerateLocal(part, consumer);
    }
    return loc.exec()
        .submit([this, part, &consumer] {
          return enumerateLocal(part, consumer);
        })
        .get();
  }

  Bytes processParts(PartConsumer& consumer) override {
    std::vector<std::future<Bytes>> futures;
    futures.reserve(numParts());
    for (std::uint32_t part = 0; part < numParts(); ++part) {
      futures.push_back(store_->locationFor(part).exec().submit(
          [this, part, &consumer] {
            return consumer.processPart(part, *this);
          }));
    }
    Bytes result;
    bool first = true;
    for (auto& f : futures) {
      Bytes r = f.get();
      result = first ? std::move(r)
                     : consumer.combine(std::move(result), std::move(r));
      first = false;
    }
    return result;
  }

  std::uint64_t clearPart(std::uint32_t part) override {
    checkWritable("clearPart");
    return parts_.at(part)->clear();
  }

  std::vector<std::pair<Key, Value>> drainPart(std::uint32_t part) override {
    checkWritable("drainPart");
    metrics_->incScans();
    return parts_.at(part)->drain();
  }

  /// Write-buffer occupancy of one part (flush tests).
  [[nodiscard]] std::size_t bufferedWrites(std::uint32_t part) const {
    return parts_.at(part)->buffered();
  }

 private:
  [[nodiscard]] std::uint32_t partIndexChecked(std::uint32_t part) const {
    if (part >= numParts()) {
      throw std::out_of_range("ShardTable '" + name_ + "': bad part");
    }
    return part;
  }

  /// Locality accounting: the op executes on the calling thread either
  /// way (there is no routing hop in this backend), but the engine-facing
  /// cost model still distinguishes owner-thread ops from cross-location
  /// ops so I/O-round accounting matches PartitionedStore.
  void account(std::uint32_t part, std::size_t bytes) {
    if (store_->locationFor(part).onLocalThread()) {
      metrics_->incLocal();
    } else {
      metrics_->incRemote();
      metrics_->addMarshalled(bytes);
    }
  }

  Bytes enumerateLocal(std::uint32_t part, PairConsumer& consumer) {
    metrics_->incScans();
    // snapshot() flushes the write buffer and copies under stripe locks;
    // call-backs run lock-free so they can issue store operations.
    std::vector<std::pair<Bytes, Bytes>> snapshot =
        parts_.at(part)->snapshot();
    consumer.setupPart(part);
    for (const auto& [k, v] : snapshot) {
      if (!consumer.consume(part, k, v)) {
        break;
      }
    }
    return consumer.finalizePart(part);
  }

  std::string name_;
  TableOptions options_;
  ShardStore* store_;
  StoreMetrics* metrics_;
  std::vector<std::unique_ptr<PartShard>> parts_;
};

/// Ubiquitous shard table: one fully-replicated part whose reads go
/// through the bounded LRU block cache (paper §III-A: "quick to read and
/// of limited size" — the cache is what makes the quick-to-read promise
/// concrete in this backend).
class ShardUbiquitousTable : public Table {
 public:
  ShardUbiquitousTable(std::string name, TableOptions options,
                       const ShardStore::Options& so, StoreMetrics* metrics)
      : name_(std::move(name)), options_(std::move(options)),
        metrics_(metrics), data_(so.stripes, so.writeBufferLimit),
        cache_(so.blockCacheCapacity) {
    options_.parts = 1;
    options_.partitioner = makeDefaultPartitioner(1);
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const TableOptions& options() const override {
    return options_;
  }
  [[nodiscard]] std::uint32_t numParts() const override { return 1; }
  [[nodiscard]] std::uint32_t partOf(KeyView) const override { return 0; }

  std::optional<Value> get(KeyView key) override {
    metrics_->incLocal();
    if (!cache_.enabled()) {
      // Cache disabled (capacity 0): the hit/miss counters must not move,
      // or cache-efficiency ratios read from reports would be fiction.
      return data_.get(key);
    }
    if (std::optional<Bytes> cached = cache_.get(key)) {
      metrics_->incCacheHit();
      return cached;
    }
    metrics_->incCacheMiss();
    std::optional<Bytes> v = data_.get(key);
    if (v) {
      cache_.insert(key, *v);
    }
    return v;
  }

  void put(KeyView key, ValueView value) override {
    checkWritable("put");
    metrics_->incLocal();
    // Invalidate-then-write: a concurrent reader may re-cache the OLD
    // value between our invalidate and write, so invalidate again after
    // the write lands.  (The engines seal ubiquitous tables during runs,
    // so writes only race with reads outside supersteps.)
    cache_.invalidate(key);
    data_.put(key, value);
    cache_.invalidate(key);
  }

  bool erase(KeyView key) override {
    checkWritable("erase");
    cache_.invalidate(key);
    const bool existed = data_.erase(key);
    cache_.invalidate(key);
    return existed;
  }

  [[nodiscard]] std::uint64_t size() const override { return data_.size(); }
  [[nodiscard]] std::uint64_t partSize(std::uint32_t) const override {
    return data_.size();
  }

  Bytes enumerate(PairConsumer& consumer) override {
    return enumeratePart(0, consumer);
  }

  Bytes enumeratePart(std::uint32_t part, PairConsumer& consumer) override {
    if (part != 0) {
      throw std::out_of_range("ShardUbiquitousTable: bad part");
    }
    metrics_->incScans();
    std::vector<std::pair<Bytes, Bytes>> snapshot = data_.snapshot();
    consumer.setupPart(0);
    for (const auto& [k, v] : snapshot) {
      if (!consumer.consume(0, k, v)) {
        break;
      }
    }
    return consumer.finalizePart(0);
  }

  Bytes processParts(PartConsumer& consumer) override {
    return consumer.processPart(0, *this);
  }

  std::uint64_t clearPart(std::uint32_t) override {
    checkWritable("clearPart");
    cache_.invalidateAll();
    return data_.clear();
  }

  std::vector<std::pair<Key, Value>> drainPart(std::uint32_t) override {
    checkWritable("drainPart");
    cache_.invalidateAll();
    return data_.drain();
  }

  [[nodiscard]] std::size_t cacheEntries() const { return cache_.entries(); }

 private:
  std::string name_;
  TableOptions options_;
  StoreMetrics* metrics_;
  PartShard data_;
  LruCache cache_;
};

}  // namespace

ShardStore::ShardStore(Options options) : options_(options) {
  if (options_.locations == 0) {
    throw std::invalid_argument("ShardStore: locations must be positive");
  }
  if (options_.stripes == 0) {
    throw std::invalid_argument("ShardStore: stripes must be positive");
  }
  if (options_.writeBufferLimit == 0) {
    throw std::invalid_argument(
        "ShardStore: writeBufferLimit must be positive");
  }
  locations_.reserve(options_.locations);
  for (std::uint32_t i = 0; i < options_.locations; ++i) {
    locations_.push_back(std::make_unique<Location>(i));
  }
}

ShardStore::~ShardStore() { shutdown(); }

std::shared_ptr<ShardStore> ShardStore::create(std::uint32_t locations) {
  Options options;
  options.locations = locations;
  return create(options);
}

std::shared_ptr<ShardStore> ShardStore::create(Options options) {
  return std::shared_ptr<ShardStore>(new ShardStore(options));
}

std::uint32_t ShardStore::locationCount() const {
  return static_cast<std::uint32_t>(locations_.size());
}

std::uint32_t ShardStore::locationOf(std::uint32_t part) const {
  // Scrambled placement: same part index => same location (consistent
  // partitioning still co-places), but the part->location topology is a
  // different permutation pattern than PartitionedStore's `part % N`.
  return static_cast<std::uint32_t>(
      mix64(0x9e3779b97f4a7c15ULL ^ part) % locations_.size());
}

shard_detail::Location& ShardStore::locationFor(std::uint32_t part) {
  return *locations_[locationOf(part)];
}

TablePtr ShardStore::createTable(const std::string& name,
                                 TableOptions options) {
  LockGuard lock(mu_);
  if (tables_.contains(name)) {
    throw std::invalid_argument("ShardStore: table '" + name +
                                "' already exists");
  }
  TablePtr table;
  if (options.ubiquitous) {
    table = std::make_shared<ShardUbiquitousTable>(name, std::move(options),
                                                   options_, &metrics_);
  } else {
    table = std::make_shared<ShardTable>(name, std::move(options), this,
                                         &metrics_);
  }
  tables_.emplace(name, table);
  return table;
}

TablePtr ShardStore::lookupTable(const std::string& name) {
  LockGuard lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

void ShardStore::dropTable(const std::string& name) {
  LockGuard lock(mu_);
  tables_.erase(name);
}

void ShardStore::runInParts(const Table& placement,
                            const std::function<void(std::uint32_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(placement.numParts());
  for (std::uint32_t part = 0; part < placement.numParts(); ++part) {
    futures.push_back(
        locationFor(part).exec().submit([part, &fn] { fn(part); }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

void ShardStore::runInPart(const Table& placement, std::uint32_t part,
                           const std::function<void()>& fn) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("ShardStore::runInPart: bad part");
  }
  Location& loc = locationFor(part);
  if (loc.exec().onThisThread()) {
    fn();
    return;
  }
  loc.exec().submit(fn).get();
}

void ShardStore::postToPart(const Table& placement, std::uint32_t part,
                            std::function<void()> fn) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("ShardStore::postToPart: bad part");
  }
  locationFor(part).exec().execute(std::move(fn));
}

std::shared_ptr<void> ShardStore::adoptPartThread(const Table& placement,
                                                  std::uint32_t part) {
  if (part >= placement.numParts()) {
    throw std::out_of_range("ShardStore::adoptPartThread: bad part");
  }
  Location& loc = locationFor(part);
  loc.adoptCurrentThread();
  return std::shared_ptr<void>(nullptr, [&loc](void*) {
    loc.releaseCurrentThread();
  });
}

void ShardStore::shutdown() {
  for (auto& loc : locations_) {
    loc->shutdown();
  }
}

}  // namespace ripple::kv
