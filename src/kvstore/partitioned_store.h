// PartitionedStore: the parallel in-process implementation of the K/V
// store SPI, standing in for IBM WebSphere eXtreme Scale in the paper's
// evaluation (see DESIGN.md §2).
//
// The store hosts data in N "containers".  Each container owns two serial
// executors, mirroring the paper's parallel debugging store: a short-op
// executor serving request/response operations (get, put, erase) and a
// long-op executor serving long-running requests (enumerations and
// collocated mobile code).  Part p of a table is hosted by container
// p mod N, so consistently-partitioned tables co-place corresponding
// parts.
//
// Operations issued from a part's own container threads are served
// directly (local, unmarshalled); operations from anywhere else are
// routed to the owner's short-op executor and their bytes counted as
// marshalled, reproducing the cost structure of a distributed store.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "kvstore/table.h"

namespace ripple::kv {

namespace detail {
class Container;
}  // namespace detail

class PartitionedStore : public KVStore,
                         public std::enable_shared_from_this<PartitionedStore> {
 public:
  /// Create a store with `containers` executor pairs (the paper's
  /// PageRank runs used 6).
  static std::shared_ptr<PartitionedStore> create(std::uint32_t containers);

  ~PartitionedStore() override;

  PartitionedStore(const PartitionedStore&) = delete;
  PartitionedStore& operator=(const PartitionedStore&) = delete;

  TablePtr createTable(const std::string& name, TableOptions options) override;
  TablePtr lookupTable(const std::string& name) override;
  void dropTable(const std::string& name) override;

  void runInParts(const Table& placement,
                  const std::function<void(std::uint32_t)>& fn) override;
  void runInPart(const Table& placement, std::uint32_t part,
                 const std::function<void()>& fn) override;
  void postToPart(const Table& placement, std::uint32_t part,
                  std::function<void()> fn) override;
  std::shared_ptr<void> adoptPartThread(const Table& placement,
                                        std::uint32_t part) override;

  StoreMetrics& metrics() override { return metrics_; }
  [[nodiscard]] const char* backendName() const override {
    return "partitioned";
  }

  [[nodiscard]] std::uint32_t containerCount() const;

  /// Drain executors and join all container threads.  Called by the
  /// destructor; idempotent.
  void shutdown();

  /// Container hosting part `part` (internal; used by table objects).
  detail::Container& containerFor(std::uint32_t part);

 private:
  explicit PartitionedStore(std::uint32_t containers);

  std::vector<std::unique_ptr<detail::Container>> containers_;
  RankedMutex<LockRank::kStoreTableMap> mu_;  // Guards the table registry.
  std::unordered_map<std::string, TablePtr> tables_ RIPPLE_GUARDED_BY(mu_);
  StoreMetrics metrics_;

  friend class PartitionedTable;
};

}  // namespace ripple::kv
