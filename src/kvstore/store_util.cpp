#include "kvstore/store_util.h"

#include <mutex>

namespace ripple::kv {

namespace {

class CollectAll : public PairConsumer {
 public:
  bool consume(std::uint32_t, KeyView k, ValueView v) override {
    std::lock_guard<std::mutex> lock(mu_);
    out_.emplace_back(Key(k), Value(v));
    return true;
  }

  [[nodiscard]] std::vector<std::pair<Key, Value>> take() {
    return std::move(out_);
  }

 private:
  std::mutex mu_;  // Parts may be enumerated concurrently.
  std::vector<std::pair<Key, Value>> out_;
};

class CountingConsumer : public PairConsumer {
 public:
  void setupPart(std::uint32_t) override {}

  bool consume(std::uint32_t, KeyView, ValueView) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] std::uint64_t count() const { return count_.load(); }

 private:
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace

std::vector<std::pair<Key, Value>> readAll(Table& table) {
  CollectAll collector;
  table.enumerate(collector);
  return collector.take();
}

void copyTable(Table& src, Table& dst) {
  dst.putBatch(readAll(src));
}

std::uint64_t countPairs(Table& table) {
  CountingConsumer counter;
  table.enumerate(counter);
  return counter.count();
}

}  // namespace ripple::kv
