#include "kvstore/store_util.h"

#include <cstddef>

namespace ripple::kv {

namespace {

class CollectAll : public PairConsumer {
 public:
  explicit CollectAll(std::uint32_t parts) : byPart_(parts) {}

  bool consume(std::uint32_t part, KeyView k, ValueView v) override {
    // One scan thread per part: each slot is touched by a single thread,
    // so no lock is needed.  Collecting per part (instead of appending to
    // one shared vector in arrival order) keeps the result order a pure
    // function of the table contents — callers feed it into loaders and
    // batch puts, where a schedule-dependent order would leak into
    // invocation order and FP fold order downstream.
    byPart_.at(part).emplace_back(Key(k), Value(v));
    return true;
  }

  [[nodiscard]] std::vector<std::pair<Key, Value>> take() {
    std::vector<std::pair<Key, Value>> out;
    std::size_t total = 0;
    for (const auto& p : byPart_) {
      total += p.size();
    }
    out.reserve(total);
    for (auto& p : byPart_) {
      for (auto& e : p) {
        out.push_back(std::move(e));
      }
    }
    return out;
  }

 private:
  std::vector<std::vector<std::pair<Key, Value>>> byPart_;
};

class CountingConsumer : public PairConsumer {
 public:
  void setupPart(std::uint32_t) override {}

  bool consume(std::uint32_t, KeyView, ValueView) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] std::uint64_t count() const { return count_.load(); }

 private:
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace

std::vector<std::pair<Key, Value>> readAll(Table& table) {
  CollectAll collector(table.numParts());
  table.enumerate(collector);
  return collector.take();
}

void copyTable(Table& src, Table& dst) {
  dst.putBatch(readAll(src));
}

std::uint64_t countPairs(Table& table) {
  CountingConsumer counter;
  table.enumerate(counter);
  return counter.count();
}

}  // namespace ripple::kv
