// Timing and summary statistics for the benchmark harnesses.

#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace ripple {

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsedMillis() const { return elapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Welford online mean/variance; the benches report mean ± stddev the way
/// the paper's tables do.  Samples are also retained (trial counts are
/// small) so tail percentiles can be reported alongside.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator), matching the paper's
  /// "estimated standard deviation".
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Percentile by linear interpolation between closest ranks; `q`
  /// outside [0, 1] clamps to the min/max order statistic.  Returns 0
  /// with no samples; throws std::invalid_argument for NaN q.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p95() const { return percentile(0.95); }
  [[nodiscard]] double p99() const { return percentile(0.99); }

  /// "12.34 ± 0.56" with the given precision.
  [[nodiscard]] std::string summary(int precision = 2) const;

  /// "12.34 ± 0.56 (p50 12.30, p95 13.10, p99 13.40)".
  [[nodiscard]] std::string summaryWithTails(int precision = 2) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  mutable std::vector<double> samples_;  // Sorted lazily by percentile().
  mutable bool sorted_ = true;
};

/// Collect per-trial values then summarize.
[[nodiscard]] RunningStats summarize(const std::vector<double>& values);

}  // namespace ripple
