// Serial executors: one worker thread consuming a task queue.
//
// A PartitionedStore gives each part two of these (a short-op executor and
// a long-op executor), which is how "mobile code" runs adjacent to the data
// it touches.  submit() returns a future-like completion; execute() is
// fire-and-forget.

#pragma once

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/queue.h"

namespace ripple {

class SerialExecutor {
 public:
  using Task = std::function<void()>;

  explicit SerialExecutor(std::string name = "executor");
  ~SerialExecutor();

  SerialExecutor(const SerialExecutor&) = delete;
  SerialExecutor& operator=(const SerialExecutor&) = delete;

  /// Enqueue fire-and-forget work.  Throws if the executor is shut down.
  void execute(Task task);

  /// Enqueue work and get a future for its completion/result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    execute([task] { (*task)(); });
    return result;
  }

  /// Run fn on the executor thread and wait for it (rethrows exceptions).
  template <typename F>
  auto run(F&& fn) -> std::invoke_result_t<F> {
    if (onThisThread()) {
      // Re-entrant call from a task already running here; waiting would
      // deadlock, so invoke inline (serialization already holds).
      return std::forward<F>(fn)();
    }
    return submit(std::forward<F>(fn)).get();
  }

  /// True if called from the executor's own worker thread.
  [[nodiscard]] bool onThisThread() const;

  /// Drain outstanding tasks and join the worker.  Idempotent.
  void shutdown();

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  void loop();

  std::string name_;
  BlockingQueue<Task> tasks_;
  std::thread worker_;
};

/// Simple countdown latch (std::latch lacks a timed wait and re-use story
/// we want in tests).
class CountdownLatch {
 public:
  explicit CountdownLatch(std::size_t count);

  void countDown();
  void wait();
  [[nodiscard]] std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_;
};

}  // namespace ripple
