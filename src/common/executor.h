// Executors: serial task queues and a work-stealing pool.
//
// A PartitionedStore gives each part two SerialExecutors (a short-op
// executor and a long-op executor), which is how "mobile code" runs
// adjacent to the data it touches.  submit() returns a future-like
// completion; execute() is fire-and-forget.
//
// WorkStealingPool is the engine-side counterpart: a fixed set of workers
// with per-worker deques.  The synchronized engine uses it to run per-part
// compute/collect invocations concurrently, and the queue sets use it to
// multiplex no-sync workers over more queues than threads.  Shutdown (and
// the destructor) drains every outstanding task before joining — work is
// never abandoned at teardown.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/queue.h"
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"

namespace ripple {

/// Resolve an engine thread-count request: an explicit positive request
/// wins; zero consults the RIPPLE_THREADS environment variable.  A result
/// of 0 means "no engine pool" (legacy store-collocated dispatch).
/// Invalid inputs never throw — a negative request logs a warning and
/// falls back to the environment tier, a non-integer or negative
/// RIPPLE_THREADS logs a warning and resolves to legacy dispatch, and
/// anything above an internal sanity cap (4096) clamps with a warning.
[[nodiscard]] int resolveThreads(int requested);

class SerialExecutor {
 public:
  using Task = std::function<void()>;

  explicit SerialExecutor(std::string name = "executor");
  ~SerialExecutor();

  SerialExecutor(const SerialExecutor&) = delete;
  SerialExecutor& operator=(const SerialExecutor&) = delete;

  /// Enqueue fire-and-forget work.  Throws if the executor is shut down.
  void execute(Task task);

  /// Enqueue work and get a future for its completion/result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    execute([task] { (*task)(); });
    return result;
  }

  /// Run fn on the executor thread and wait for it (rethrows exceptions).
  template <typename F>
  auto run(F&& fn) -> std::invoke_result_t<F> {
    if (onThisThread()) {
      // Re-entrant call from a task already running here; waiting would
      // deadlock, so invoke inline (serialization already holds).
      return std::forward<F>(fn)();
    }
    return submit(std::forward<F>(fn)).get();
  }

  /// True if called from the executor's own worker thread.
  [[nodiscard]] bool onThisThread() const;

  /// Drain outstanding tasks and join the worker, then rethrow the first
  /// exception a fire-and-forget task leaked (a throwing task no longer
  /// kills the worker: the queue keeps draining so teardown always joins).
  /// Idempotent.
  void shutdown();

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  void loop();

  std::string name_;
  BlockingQueue<Task> tasks_;
  std::thread worker_;
  RankedMutex<LockRank::kExecutor> failMu_;
  std::exception_ptr failure_ RIPPLE_GUARDED_BY(failMu_);
};

/// Fixed-size work-stealing pool.  execute() places tasks round-robin on
/// per-worker deques; an idle worker first drains its own deque in FIFO
/// order, then steals from the back of a sibling's.  Tasks may themselves
/// call execute() — shutdown waits until the queued *and running* task
/// count reaches zero, so nothing submitted before (or during) the drain
/// is abandoned.
class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  explicit WorkStealingPool(std::size_t threads, std::string name = "pool");

  /// Drains every outstanding task, then joins.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueue fire-and-forget work.  Throws if the pool is shut down.
  void execute(Task task);

  /// Run fn(0..n-1) across the pool and block until every iteration
  /// finished; rethrows the first exception afterwards (mirrors
  /// KVStore::runInParts semantics).  Must be called from outside the
  /// pool: a pool task calling parallelFor would wait on itself.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Drain every queued task, join the workers, then rethrow the first
  /// exception a fire-and-forget task leaked.  Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t threadCount() const { return slots_.size(); }

  /// Tasks run by a worker other than the one they were placed on.
  [[nodiscard]] std::uint64_t stealCount() const {
    return steals_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Slot {
    RankedMutex<LockRank::kExecutor> mu;
    std::deque<Task> tasks RIPPLE_GUARDED_BY(mu);
  };

  void loop(std::size_t self);
  std::optional<Task> take(std::size_t self);
  void noteFailure();

  std::string name_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> rr_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> inflight_{0};  // Queued + currently running.
  std::atomic<bool> stopping_{false};
  RankedMutex<LockRank::kExecutor> idleMu_;
  std::condition_variable_any idleCv_;
  RankedMutex<LockRank::kExecutor> failMu_;
  std::exception_ptr failure_ RIPPLE_GUARDED_BY(failMu_);
};

/// Simple countdown latch (std::latch lacks a timed wait and re-use story
/// we want in tests).
class CountdownLatch {
 public:
  explicit CountdownLatch(std::size_t count);

  void countDown();
  void wait();
  [[nodiscard]] std::size_t pending() const;

 private:
  mutable RankedMutex<LockRank::kExecutor> mu_;
  std::condition_variable_any cv_;
  std::size_t count_ RIPPLE_GUARDED_BY(mu_);
};

}  // namespace ripple
