#include "common/ranked_mutex.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace ripple {

const char* lockRankName(LockRank rank) noexcept {
  switch (rank) {
    case LockRank::kLogging:
      return "kLogging(4)";
    case LockRank::kObs:
      return "kObs(10)";
    case LockRank::kStoreCache:
      return "kStoreCache(16)";
    case LockRank::kStoreStripe:
      return "kStoreStripe(20)";
    case LockRank::kStoreBuffer:
      return "kStoreBuffer(24)";
    case LockRank::kStoreManifest:
      return "kStoreManifest(27)";
    case LockRank::kStoreEvict:
      return "kStoreEvict(28)";
    case LockRank::kStoreTableMap:
      return "kStoreTableMap(30)";
    case LockRank::kQueue:
      return "kQueue(40)";
    case LockRank::kEngineState:
      return "kEngineState(44)";
    case LockRank::kEngineControl:
      return "kEngineControl(46)";
    case LockRank::kExecutor:
      return "kExecutor(50)";
    case LockRank::kNetClient:
      return "kNetClient(56)";
    case LockRank::kNetConn:
      return "kNetConn(60)";
    case LockRank::kNetRegistry:
      return "kNetRegistry(64)";
    case LockRank::kNetLifecycle:
      return "kNetLifecycle(68)";
  }
  return "<unknown rank>";
}

namespace lockdep {

namespace {

struct Held {
  const void* mu;
  LockRank rank;
  std::source_location site;
};

/// Per-thread chain of held ranked locks, in acquisition order.  A plain
/// vector: release is not required to be LIFO (condition-variable waits
/// unlock out of order), so release erases by pointer wherever it sits.
std::vector<Held>& heldChain() noexcept {
  thread_local std::vector<Held> chain;
  return chain;
}

[[noreturn]] void reportViolation(const void* mu, LockRank rank,
                                  const std::source_location& site,
                                  const std::vector<Held>& chain) noexcept {
  // fprintf, not the logging layer: the logging sink has a rank of its
  // own, and the report must work no matter what the thread holds.
  std::fprintf(stderr,
               "ripple::lockdep: lock-rank violation (deadlockable "
               "acquisition order)\n"
               "  attempted: %s mutex %p\n"
               "    at %s:%u (%s)\n"
               "  held by this thread, outermost first:\n",
               lockRankName(rank), mu, site.file_name(), site.line(),
               site.function_name());
  for (const Held& h : chain) {
    std::fprintf(stderr, "    %s mutex %p\n      acquired at %s:%u (%s)\n",
                 lockRankName(h.rank), h.mu, h.site.file_name(),
                 h.site.line(), h.site.function_name());
  }
  std::fprintf(stderr,
               "  rule: a thread may only acquire a lock ranked strictly "
               "below every lock it holds\n"
               "        (global order in DESIGN.md §12; blocking "
               "acquisitions only — try_lock is exempt)\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void noteAcquire(const void* mu, LockRank rank, bool viaTryLock,
                 bool recursive, const std::source_location& site) noexcept {
  std::vector<Held>& chain = heldChain();
  if (!chain.empty() && !viaTryLock) {
    bool reentry = false;
    if (recursive) {
      for (const Held& h : chain) {
        if (h.mu == mu) {
          reentry = true;
          break;
        }
      }
    }
    if (!reentry) {
      // The chain is not monotone when try_locks are in it, so check
      // against the true minimum held rank, not just the most recent
      // acquisition.  Chains are a handful of entries; a scan is cheap.
      LockRank minHeld = chain.front().rank;
      for (const Held& h : chain) {
        if (static_cast<int>(h.rank) < static_cast<int>(minHeld)) {
          minHeld = h.rank;
        }
      }
      if (static_cast<int>(rank) >= static_cast<int>(minHeld)) {
        reportViolation(mu, rank, site, chain);
      }
    }
  }
  chain.push_back(Held{mu, rank, site});
}

void noteRelease(const void* mu) noexcept {
  std::vector<Held>& chain = heldChain();
  // Newest matching entry: recursive mutexes stack multiple entries for
  // one object and release them inside-out.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (it->mu == mu) {
      chain.erase(std::next(it).base());
      return;
    }
  }
}

bool holds(const void* mu) noexcept {
  for (const Held& h : heldChain()) {
    if (h.mu == mu) {
      return true;
    }
  }
  return false;
}

std::size_t heldCount() noexcept { return heldChain().size(); }

}  // namespace lockdep

}  // namespace ripple
