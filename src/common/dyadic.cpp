#include "common/dyadic.h"

#include <cmath>
#include <stdexcept>

namespace ripple {

double DyadicWeight::approx() const {
  return static_cast<double>(mantissa) * std::ldexp(1.0, -static_cast<int>(exponent));
}

WeightSplit splitWeight(DyadicWeight w, std::uint64_t children) {
  if (children == 0) {
    throw std::invalid_argument("splitWeight: children must be >= 1");
  }
  if (w.mantissa == 0) {
    throw std::invalid_argument("splitWeight: zero weight");
  }
  // Find the smallest s with mantissa * 2^s > children, so each child can
  // take 1/2^(e+s) and a positive remainder is left.
  std::uint32_t s = 0;
  std::uint64_t scaled = w.mantissa;
  while (scaled <= children) {
    if (scaled > (UINT64_MAX >> 1)) {
      throw std::overflow_error("splitWeight: mantissa overflow");
    }
    scaled <<= 1;
    ++s;
  }
  const std::uint64_t newExp64 =
      static_cast<std::uint64_t>(w.exponent) + static_cast<std::uint64_t>(s);
  if (newExp64 > UINT32_MAX) {
    throw std::overflow_error("splitWeight: exponent overflow");
  }
  const auto newExp = static_cast<std::uint32_t>(newExp64);
  WeightSplit out;
  out.child = DyadicWeight{1, newExp};
  out.remainder = DyadicWeight{scaled - children, newExp};
  return out;
}

void WeightLedger::credit(DyadicWeight w) {
  if (w.mantissa == 0) {
    return;
  }
  // m/2^e = sum over set bits i of m of 1/2^(e-i).  Each term's exponent
  // is non-negative because the total system weight never exceeds 1.
  for (std::uint32_t i = 0; i < 64; ++i) {
    if ((w.mantissa >> i) & 1ULL) {
      if (i > w.exponent) {
        throw std::invalid_argument("WeightLedger: weight exceeds 1");
      }
      normalizeFrom(w.exponent - i);
    }
  }
  // A full unit plus anything else means more weight was returned than
  // was ever issued — an accounting bug upstream.
  if (!counts_.empty() && counts_[0] == 1 && nonzero_ > 1) {
    throw std::logic_error("WeightLedger: accumulated weight exceeds 1");
  }
}

void WeightLedger::normalizeFrom(std::size_t e) {
  if (counts_.size() <= e) {
    counts_.resize(e + 1, 0);
  }
  // Add a unit at exponent e, propagating carries toward exponent 0
  // (two halves make a whole at the next-coarser exponent).
  for (;;) {
    counts_[e] += 1;
    if (counts_[e] == 1) {
      ++nonzero_;
      return;
    }
    // counts_[e] == 2: carry.
    counts_[e] = 0;
    --nonzero_;
    if (e == 0) {
      throw std::logic_error("WeightLedger: accumulated weight exceeds 1");
    }
    --e;
  }
}

bool WeightLedger::complete() const {
  return nonzero_ == 1 && !counts_.empty() && counts_[0] == 1;
}

double WeightLedger::approx() const {
  double total = 0;
  for (std::size_t e = 0; e < counts_.size(); ++e) {
    if (counts_[e]) {
      total += std::ldexp(1.0, -static_cast<int>(e));
    }
  }
  return total;
}

}  // namespace ripple
