// Codec<T>: the trait that carries application types across Ripple's byte
// boundary.  Specializations exist for the arithmetic types, strings,
// pairs, tuples, vectors, and optionals; applications add their own by
// specializing Codec<T> or by giving T `encodeTo(ByteWriter&) const` and
// `static T decodeFrom(ByteReader&)` members (picked up automatically).

#pragma once

#include <cstdint>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace ripple {

template <typename T, typename Enable = void>
struct Codec;  // Primary template intentionally undefined.

/// Detects member-function based codecs.
template <typename T>
concept SelfCodable = requires(const T& t, ByteWriter& w, ByteReader& r) {
  { t.encodeTo(w) } -> std::same_as<void>;
  { T::decodeFrom(r) } -> std::convertible_to<T>;
};

template <SelfCodable T>
struct Codec<T> {
  static void encode(ByteWriter& w, const T& v) { v.encodeTo(w); }
  static T decode(ByteReader& r) { return T::decodeFrom(r); }
};

template <typename T>
struct Codec<T, std::enable_if_t<std::is_integral_v<T> && std::is_signed_v<T> &&
                                 !std::is_same_v<T, bool>>> {
  static void encode(ByteWriter& w, T v) {
    w.putVarintSigned(static_cast<std::int64_t>(v));
  }
  static T decode(ByteReader& r) { return static_cast<T>(r.getVarintSigned()); }
};

template <typename T>
struct Codec<T,
             std::enable_if_t<std::is_integral_v<T> && std::is_unsigned_v<T> &&
                              !std::is_same_v<T, bool>>> {
  static void encode(ByteWriter& w, T v) {
    w.putVarint(static_cast<std::uint64_t>(v));
  }
  static T decode(ByteReader& r) { return static_cast<T>(r.getVarint()); }
};

template <>
struct Codec<bool> {
  static void encode(ByteWriter& w, bool v) { w.putBool(v); }
  static bool decode(ByteReader& r) { return r.getBool(); }
};

template <>
struct Codec<double> {
  static void encode(ByteWriter& w, double v) { w.putDouble(v); }
  static double decode(ByteReader& r) { return r.getDouble(); }
};

template <>
struct Codec<float> {
  static void encode(ByteWriter& w, float v) {
    w.putDouble(static_cast<double>(v));
  }
  static float decode(ByteReader& r) {
    return static_cast<float>(r.getDouble());
  }
};

template <>
struct Codec<std::string> {
  static void encode(ByteWriter& w, const std::string& v) { w.putBytes(v); }
  static std::string decode(ByteReader& r) { return std::string(r.getBytes()); }
};

template <typename A, typename B>
struct Codec<std::pair<A, B>> {
  static void encode(ByteWriter& w, const std::pair<A, B>& v) {
    Codec<A>::encode(w, v.first);
    Codec<B>::encode(w, v.second);
  }
  static std::pair<A, B> decode(ByteReader& r) {
    A a = Codec<A>::decode(r);
    B b = Codec<B>::decode(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename... Ts>
struct Codec<std::tuple<Ts...>> {
  static void encode(ByteWriter& w, const std::tuple<Ts...>& v) {
    std::apply([&](const Ts&... xs) { (Codec<Ts>::encode(w, xs), ...); }, v);
  }
  static std::tuple<Ts...> decode(ByteReader& r) {
    // Braced init guarantees left-to-right evaluation of the decodes.
    return std::tuple<Ts...>{Codec<Ts>::decode(r)...};
  }
};

template <typename T>
struct Codec<std::vector<T>> {
  static void encode(ByteWriter& w, const std::vector<T>& v) {
    w.putVarint(v.size());
    for (const T& x : v) {
      Codec<T>::encode(w, x);
    }
  }
  static std::vector<T> decode(ByteReader& r) {
    const auto n = static_cast<std::size_t>(r.getVarint());
    std::vector<T> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back(Codec<T>::decode(r));
    }
    return v;
  }
};

template <typename T>
struct Codec<std::optional<T>> {
  static void encode(ByteWriter& w, const std::optional<T>& v) {
    w.putBool(v.has_value());
    if (v) {
      Codec<T>::encode(w, *v);
    }
  }
  static std::optional<T> decode(ByteReader& r) {
    if (!r.getBool()) {
      return std::nullopt;
    }
    return Codec<T>::decode(r);
  }
};

/// Encode a value to a fresh byte string.
template <typename T>
[[nodiscard]] Bytes encodeToBytes(const T& v) {
  ByteWriter w;
  Codec<T>::encode(w, v);
  return w.take();
}

/// Decode a value from a complete byte string; throws CodecError if bytes
/// remain (catches codec mismatches early).
template <typename T>
[[nodiscard]] T decodeFromBytes(BytesView data) {
  ByteReader r(data);
  T v = Codec<T>::decode(r);
  if (!r.atEnd()) {
    throw CodecError("decodeFromBytes: trailing bytes after value");
  }
  return v;
}

/// Decode from a prefix of a byte string (framing handled by the caller).
template <typename T>
[[nodiscard]] T decodePrefix(ByteReader& r) {
  return Codec<T>::decode(r);
}

}  // namespace ripple
