// Deterministic randomness for workload generation.
//
// Xoshiro256** seeded via splitmix64, plus the discrete power-law sampler
// the paper's graph generators need ("biased power-law distribution for
// edge attachments").

#pragma once

#include <cstdint>
#include <vector>

namespace ripple {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias.
  std::uint64_t nextBelow(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Bernoulli with probability p.
  bool nextBool(double p);

 private:
  std::uint64_t state_[4];
};

/// Samples integers in [0, n) with P(i) proportional to (i + shift)^-alpha.
/// Uses an alias table, so sampling is O(1) after O(n) setup.  With the
/// identity permutation disabled (shuffle=true) the popularity ranking is
/// decoupled from vertex numbering, matching "biased" attachment.
class PowerLawSampler {
 public:
  PowerLawSampler(std::size_t n, double alpha, Rng& rng, bool shuffle = true,
                  double shift = 1.0);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;        // Alias-table acceptance probabilities.
  std::vector<std::uint32_t> alias_;
  std::vector<std::uint32_t> perm_;  // Rank -> vertex id.
};

}  // namespace ripple
