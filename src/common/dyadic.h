// Exact dyadic-rational weights for Huang's termination-detection
// algorithm (Huang 1989), which Ripple's no-sync engine uses (paper §IV-A:
// "We detect distributed termination essentially by Huang's algorithm").
//
// The controller owns total weight 1.  Every in-flight message and every
// active compute invocation carries a weight m/2^e.  Processing a message
// splits its weight among the messages it sends and returns the remainder
// to the controller.  The computation has terminated exactly when the
// controller has accumulated weight 1 again.
//
// Floating point would underflow after ~10^3 splits; these weights are
// exact for any depth.

#pragma once

#include <cstdint>
#include <vector>

namespace ripple {

/// Weight value m / 2^e with m >= 1.
struct DyadicWeight {
  std::uint64_t mantissa = 1;
  std::uint32_t exponent = 0;

  [[nodiscard]] bool operator==(const DyadicWeight&) const = default;

  /// The unit weight 1/2^0 — the controller's initial holding.
  [[nodiscard]] static DyadicWeight one() { return {1, 0}; }

  /// Approximate numeric value, for logging only.
  [[nodiscard]] double approx() const;
};

/// Result of splitting a weight across `children` messages.
struct WeightSplit {
  DyadicWeight child;      // Weight carried by EACH child message.
  DyadicWeight remainder;  // Returned to the controller.
};

/// Split `w` into `children` equal child weights plus a positive remainder.
/// children must be >= 1.  Children get 1/2^(e+s); the remainder gets the
/// exact rest, so child*children + remainder == w.
[[nodiscard]] WeightSplit splitWeight(DyadicWeight w, std::uint64_t children);

/// Exact accumulator of returned weights.  Not thread-safe; callers
/// serialize access (the async engine's controller holds a mutex).
class WeightLedger {
 public:
  /// Add a returned weight.
  void credit(DyadicWeight w);

  /// True when the accumulated sum is exactly 1.
  [[nodiscard]] bool complete() const;

  /// Approximate accumulated value, for diagnostics.
  [[nodiscard]] double approx() const;

 private:
  // counts_[e] in {0,1} after normalization; sum = Σ counts_[e] / 2^e.
  std::vector<std::uint64_t> counts_;
  std::size_t nonzero_ = 0;

  void normalizeFrom(std::size_t e);
};

}  // namespace ripple
