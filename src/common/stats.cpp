#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ripple {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  samples_.push_back(x);
  sorted_ = false;
}

double RunningStats::percentile(double q) const {
  if (std::isnan(q)) {
    // std::clamp passes NaN through, and casting a NaN rank to size_t is
    // undefined behavior — reject instead of indexing with garbage.
    throw std::invalid_argument("RunningStats::percentile: q is NaN");
  }
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // The boundary quantiles (and every q of a single-element set) are
  // exact order statistics; skipping the interpolation arithmetic keeps
  // them immune to rank rounding at the edges.
  if (q <= 0.0) {
    return samples_.front();
  }
  if (q >= 1.0) {
    return samples_.back();
  }
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::stddev() const {
  if (n_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

std::string RunningStats::summary(int precision) const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << mean() << " ± " << stddev();
  return out.str();
}

std::string RunningStats::summaryWithTails(int precision) const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << mean() << " ± " << stddev() << " (p50 " << p50() << ", p95 "
      << p95() << ", p99 " << p99() << ")";
  return out.str();
}

RunningStats summarize(const std::vector<double>& values) {
  RunningStats stats;
  for (const double v : values) {
    stats.add(v);
  }
  return stats;
}

}  // namespace ripple
