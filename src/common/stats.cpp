#include "common/stats.h"

#include <cmath>
#include <sstream>

namespace ripple {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::stddev() const {
  if (n_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

std::string RunningStats::summary(int precision) const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << mean() << " ± " << stddev();
  return out.str();
}

RunningStats summarize(const std::vector<double>& values) {
  RunningStats stats;
  for (const double v : values) {
    stats.add(v);
  }
  return stats;
}

}  // namespace ripple
