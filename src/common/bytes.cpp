#include "common/bytes.h"

namespace ripple {

void ByteWriter::putFixed32(std::uint32_t v) {
  char tmp[4];
  tmp[0] = static_cast<char>(v & 0xff);
  tmp[1] = static_cast<char>((v >> 8) & 0xff);
  tmp[2] = static_cast<char>((v >> 16) & 0xff);
  tmp[3] = static_cast<char>((v >> 24) & 0xff);
  buf_.append(tmp, 4);
}

void ByteWriter::putFixed64(std::uint64_t v) {
  char tmp[8];
  for (int i = 0; i < 8; ++i) {
    tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  buf_.append(tmp, 8);
}

void ByteWriter::putVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::putVarintSigned(std::int64_t v) {
  // Zigzag: map sign bit into bit 0 so small magnitudes stay short.
  const auto u = (static_cast<std::uint64_t>(v) << 1) ^
                 static_cast<std::uint64_t>(v >> 63);
  putVarint(u);
}

void ByteWriter::putDouble(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putFixed64(bits);
}

void ByteWriter::putBytes(BytesView v) {
  putVarint(v.size());
  putRaw(v);
}

std::uint8_t ByteReader::getU8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::getFixed32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::getFixed64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::uint64_t ByteReader::getVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 70) {
      throw CodecError("ByteReader: varint too long");
    }
    need(1);
    const auto b = static_cast<std::uint8_t>(data_[pos_++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

std::int64_t ByteReader::getVarintSigned() {
  const std::uint64_t u = getVarint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

double ByteReader::getDouble() {
  const std::uint64_t bits = getFixed64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

BytesView ByteReader::getBytes() {
  const std::uint64_t n = getVarint();
  return getRaw(static_cast<std::size_t>(n));
}

BytesView ByteReader::getRaw(std::size_t n) {
  need(n);
  BytesView v = data_.substr(pos_, n);
  pos_ += n;
  return v;
}

}  // namespace ripple
