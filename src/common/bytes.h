// Byte-string building blocks for Ripple's serialization boundary.
//
// The engine moves keys, values, and BSP messages around as flat byte
// strings; the typed public API encodes through Codec<T> (codec.h) into
// these buffers.  Encoding is little-endian with LEB128 varints for
// lengths and integer payloads.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ripple {

/// Flat owned byte string.  std::string is used for its SSO and cheap
/// moves; contents are raw bytes, not text.
using Bytes = std::string;

/// Non-owning view over encoded bytes.
using BytesView = std::string_view;

/// Thrown when a reader runs off the end of a buffer or decodes a
/// malformed varint.  Indicates either corruption or a codec mismatch.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder.  All put* methods append to the owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void putU8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void putFixed32(std::uint32_t v);
  void putFixed64(std::uint64_t v);

  /// LEB128 unsigned varint (1-10 bytes).
  void putVarint(std::uint64_t v);

  /// Zigzag-encoded signed varint.
  void putVarintSigned(std::int64_t v);

  /// IEEE-754 doubles, bit-copied little-endian.
  void putDouble(double v);

  void putBool(bool v) { putU8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void putBytes(BytesView v);

  /// Raw bytes, no length prefix (caller knows the framing).
  void putRaw(BytesView v) { buf_.append(v.data(), v.size()); }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }

  /// Move the accumulated buffer out; the writer is left empty and reusable.
  [[nodiscard]] Bytes take() { return std::move(buf_); }

  [[nodiscard]] BytesView view() const { return buf_; }

  void clear() { buf_.clear(); }

 private:
  Bytes buf_;
};

/// Sequential decoder over a non-owned buffer.  The underlying bytes must
/// outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::uint8_t getU8();
  [[nodiscard]] std::uint32_t getFixed32();
  [[nodiscard]] std::uint64_t getFixed64();
  [[nodiscard]] std::uint64_t getVarint();
  [[nodiscard]] std::int64_t getVarintSigned();
  [[nodiscard]] double getDouble();
  [[nodiscard]] bool getBool() { return getU8() != 0; }

  /// Length-prefixed byte string; returns a view into the underlying buffer.
  [[nodiscard]] BytesView getBytes();

  /// Raw bytes of a caller-known length.
  [[nodiscard]] BytesView getRaw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw CodecError("ByteReader: buffer underrun");
    }
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace ripple
