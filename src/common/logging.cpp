#include "common/logging.h"

#include "common/ranked_mutex.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ripple::log {

namespace {

Level levelFromEnv() {
  const char* env = std::getenv("RIPPLE_LOG");
  if (env == nullptr) {
    return Level::kWarn;
  }
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "off") == 0) return Level::kOff;
  return Level::kWarn;
}

std::atomic<Level>& thresholdVar() {
  static std::atomic<Level> level{levelFromEnv()};
  return level;
}

const char* levelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

Level threshold() { return thresholdVar().load(std::memory_order_relaxed); }

void setThreshold(Level level) {
  thresholdVar().store(level, std::memory_order_relaxed);
}

void emit(Level level, const std::string& message) {
  if (level < threshold()) {
    return;
  }
  static RankedMutex<LockRank::kLogging> mu;
  const auto now = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  LockGuard lock(mu);
  std::fprintf(stderr, "[%8lld.%03lld %s] %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), levelName(level),
               message.c_str());
}

}  // namespace ripple::log
