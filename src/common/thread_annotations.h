// Clang thread-safety-analysis annotations (DESIGN.md §12).
//
// These macros expose Clang's capability analysis to the codebase: fields
// record which mutex guards them (RIPPLE_GUARDED_BY), locking functions
// declare what they acquire and release, and functions that must run under
// a lock say so (RIPPLE_REQUIRES).  Under `clang -Wthread-safety` (the
// RIPPLE_ANALYZE=ON build, see the top-level CMakeLists) an unguarded
// access or a lock leak is a compile error; under GCC — which has no such
// analysis — every macro expands to nothing and the annotations are pure
// documentation.
//
// The vocabulary follows the Clang documentation and Abseil's mutex.h so
// the names mean what a reader coming from either expects:
//   https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
//
// Annotate with the RIPPLE_ prefix only; never use __attribute__ directly
// (scripts/lint.sh enforces this so the no-op-on-GCC gate cannot be
// bypassed by accident).

#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define RIPPLE_CAPABILITY(x) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (LockGuard / UniqueLock / SharedLock).
#define RIPPLE_SCOPED_CAPABILITY \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define RIPPLE_GUARDED_BY(x) RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer field: the pointed-to data (not the pointer) is guarded by `x`.
#define RIPPLE_PT_GUARDED_BY(x) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function acquires the listed capabilities exclusively and does not
/// release them before returning.
#define RIPPLE_ACQUIRE(...) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Shared (reader) flavour of RIPPLE_ACQUIRE.
#define RIPPLE_ACQUIRE_SHARED(...) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities (exclusive or shared).
#define RIPPLE_RELEASE(...) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RIPPLE_RELEASE_SHARED(...) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire; the first argument is the return value that
/// signals success.
#define RIPPLE_TRY_ACQUIRE(...) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define RIPPLE_TRY_ACQUIRE_SHARED(...)                    \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(                     \
      try_acquire_shared_capability(__VA_ARGS__))

/// Caller must already hold the listed capabilities exclusively.
#define RIPPLE_REQUIRES(...) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Caller must hold the listed capabilities at least shared.
#define RIPPLE_REQUIRES_SHARED(...) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention for
/// functions that acquire them internally).
#define RIPPLE_EXCLUDES(...) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define RIPPLE_RETURN_CAPABILITY(x) \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's locking is intentionally invisible to the
/// analysis (e.g. lock juggling the analysis cannot model).  Every use
/// needs a comment saying why.
#define RIPPLE_NO_THREAD_SAFETY_ANALYSIS \
  RIPPLE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
