// Minimal leveled logger.  Thread-safe, writes to stderr, level settable
// globally (RIPPLE_LOG env var: debug|info|warn|error|off).

#pragma once

#include <sstream>
#include <string>

namespace ripple::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current global threshold; messages below it are dropped.
[[nodiscard]] Level threshold();
void setThreshold(Level level);

/// Emit one line (already formatted) at the given level.
void emit(Level level, const std::string& message);

namespace detail {

class LineLogger {
 public:
  explicit LineLogger(Level level) : level_(level) {}
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;
  ~LineLogger() { emit(level_, out_.str()); }

  template <typename T>
  LineLogger& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream out_;
};

}  // namespace detail

[[nodiscard]] inline bool enabled(Level level) { return level >= threshold(); }

}  // namespace ripple::log

#define RIPPLE_LOG(level)                            \
  if (!::ripple::log::enabled(level)) {              \
  } else                                             \
    ::ripple::log::detail::LineLogger(level)

#define RIPPLE_DEBUG RIPPLE_LOG(::ripple::log::Level::kDebug)
#define RIPPLE_INFO RIPPLE_LOG(::ripple::log::Level::kInfo)
#define RIPPLE_WARN RIPPLE_LOG(::ripple::log::Level::kWarn)
#define RIPPLE_ERROR RIPPLE_LOG(::ripple::log::Level::kError)
