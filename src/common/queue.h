// Closeable blocking MPMC queue.
//
// FIFO overall (mutex-serialized), which gives the per-(sender,receiver)
// ordering guarantee Ripple's async engine relies on: if one sender pushes
// a then b, every consumer sequence observes a before b.

#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>

#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"

namespace ripple {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue; returns false if the queue was already closed.
  bool push(T item) {
    {
      LockGuard lock(mu_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    UniqueLock lock(mu_);
    while (items_.empty() && !closed_) {
      cv_.wait(lock);
    }
    return popLocked();
  }

  /// Wait at most `timeout`; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> popFor(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    UniqueLock lock(mu_);
    while (items_.empty() && !closed_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    return popLocked();
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    LockGuard lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Steal from the back (used by the run-anywhere work stealing path;
  /// stealing from the tail is only legal when ordering does not matter).
  std::optional<T> trySteal() {
    LockGuard lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.back());
    items_.pop_back();
    return item;
  }

  /// After close(), pushes fail and pops drain the remainder then return
  /// nullopt.  Idempotent.
  void close() {
    {
      LockGuard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    LockGuard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    LockGuard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  std::optional<T> popLocked() RIPPLE_REQUIRES(mu_) {
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  mutable RankedMutex<LockRank::kQueue> mu_;
  std::condition_variable_any cv_;
  std::deque<T> items_ RIPPLE_GUARDED_BY(mu_);
  bool closed_ RIPPLE_GUARDED_BY(mu_) = false;
};

}  // namespace ripple
