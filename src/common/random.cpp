#include "common/random.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/hash.h"

namespace ripple {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion of the seed, per the xoshiro authors' advice.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = mix64(s);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("Rng::nextBelow: bound must be positive");
  }
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  for (;;) {
    const std::uint64_t v = next();
    if (v < limit) {
      return v % bound;
    }
  }
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double p) { return nextDouble() < p; }

PowerLawSampler::PowerLawSampler(std::size_t n, double alpha, Rng& rng,
                                 bool shuffle, double shift) {
  if (n == 0) {
    throw std::invalid_argument("PowerLawSampler: n must be positive");
  }
  std::vector<double> weights(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + shift, -alpha);
    total += weights[i];
  }

  // Vose's alias method.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::uint32_t i : large) {
    prob_[i] = 1.0;
  }
  for (const std::uint32_t i : small) {
    prob_[i] = 1.0;  // Numerical leftovers.
  }

  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), 0);
  if (shuffle) {
    for (std::size_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng.nextBelow(i + 1));
      std::swap(perm_[i], perm_[j]);
    }
  }
}

std::size_t PowerLawSampler::sample(Rng& rng) const {
  const auto i = static_cast<std::size_t>(rng.nextBelow(prob_.size()));
  const std::size_t rank = rng.nextDouble() < prob_[i] ? i : alias_[i];
  return perm_[rank];
}

}  // namespace ripple
