// Lock-rank-validated mutexes (DESIGN.md §12).
//
// Every mutex in Ripple belongs to a named rank, and the global invariant
// is: a thread may only acquire a lock whose rank is STRICTLY BELOW every
// lock it already holds.  Acquisitions therefore run outermost-first down
// the architecture — net-server above executor above queue above store
// above obs — and a lock-order inversion anywhere in the codebase is
// impossible by construction rather than by review.
//
// The invariant is enforced twice:
//  * At compile time, on clang, by the thread-safety annotations
//    (thread_annotations.h, RIPPLE_ANALYZE=ON) — which prove *which* lock
//    guards each field but know nothing about order.
//  * At run time, deterministically, by this wrapper: each thread keeps a
//    stack of held ranks, and an out-of-order acquisition aborts on its
//    FIRST occurrence with both the attempted lock and the full held
//    chain, acquisition sites included.  Unlike TSan, this does not need
//    the colliding schedule to actually happen — holding the locks in the
//    wrong order once, on any schedule, is enough.  That matters on the
//    1-core CI container where TSan's interleaving coverage is weakest.
//
// Exceptions to the strict-descent rule, both deliberate:
//  * try_lock never blocks, so it cannot close a deadlock cycle; a
//    successful try_lock at any rank is recorded but not order-checked.
//  * RankedRecursiveMutex may re-acquire the SAME object this thread
//    already holds (that is what recursive means); the rank rule applies
//    to its first acquisition only.
//
// Validation compiles in by default; -DRIPPLE_RANK_CHECKS=0 (the CMake
// RIPPLE_RANK_CHECKS=OFF option) reduces every lock to its raw std
// counterpart for release builds that want the last nanoseconds back.

#pragma once

#include <mutex>
#include <shared_mutex>
#include <source_location>

#include "common/thread_annotations.h"

#ifndef RIPPLE_RANK_CHECKS
#define RIPPLE_RANK_CHECKS 1
#endif

namespace ripple {

/// The global lock-rank order, outermost (acquired first) at the top.
/// Numeric gaps are deliberate: new layers slot in without renumbering.
/// The COARSE order is frozen and documented in DESIGN.md §12:
///   obs < store stripe < store table-map < queue < executor < net-server
enum class LockRank : int {
  /// Innermost: the logging sink.  Any layer may log while holding
  /// anything, so nothing may be acquired beyond it.
  kLogging = 4,

  /// Observability: metrics registry, tracer span buffer.  Instruments
  /// are resolved (one registry lock) from under store locks.
  kObs = 10,

  /// Shard-store ubiquitous-read LRU block cache.
  kStoreCache = 16,

  /// Store data-plane leaves: shard stripes, partitioned per-part locks,
  /// local-store table data, ubiquitous table data.
  kStoreStripe = 20,

  /// Shard-store append-only write buffer; folds INTO the stripes, so it
  /// is always taken before them.
  kStoreBuffer = 24,

  /// Log-store manifest: epoch commits and background compaction
  /// serialize here, then flush the per-part data (kStoreStripe) they
  /// cover, so the manifest sits above the data-plane leaves and below
  /// the table registry.
  kStoreManifest = 27,

  /// Log-store eviction: budget enforcement serializes victim selection
  /// here, then compacts each victim under the manifest (kStoreManifest)
  /// and part data (kStoreStripe) below it.  Taken with the table
  /// registry (kStoreTableMap) above so the victim scan can walk tables.
  kStoreEvict = 28,

  /// Store control plane: table registries of every backend and of the
  /// fault decorators.
  kStoreTableMap = 30,

  /// Message plane: BlockingQueue internals, queuing registries.  Table-
  /// backed queue sets do store ops under their registry lock, hence
  /// queue > table-map.
  kQueue = 40,

  /// Per-exporter / per-instrument collection state (CollectingExporter,
  /// SUMMA instrumentation).  Taken from under kEngineControl when a sink
  /// serializes a call into a user exporter.
  kEngineState = 44,

  /// Engine control plane: termination ledger, takeover bookkeeping,
  /// export serialization sinks, SUMMA live-state registry.  Logs, traces
  /// and calls kEngineState exporters while held.
  kEngineControl = 46,

  /// Executor internals: pool slots, idle/failure bookkeeping, latches.
  kExecutor = 50,

  /// net::Client connection pool.  Below every net registry: registries
  /// must be releasable while a wire call is in flight.
  kNetClient = 56,

  /// net::Server connection list and stop signal.
  kNetConn = 60,

  /// net registries: server hosted tables/queue sets, RemoteStore and
  /// RemoteQueuing driver-side registries.
  kNetRegistry = 64,

  /// Outermost: server/remote-store lifecycle (start/stop/shutdown
  /// serialization).  Joins threads that take everything below.
  kNetLifecycle = 68,
};

/// Human-readable rank name ("kQueue(40)" style) for violation reports.
[[nodiscard]] const char* lockRankName(LockRank rank) noexcept;

namespace lockdep {

/// Record an exclusive or shared acquisition of `mu`; aborts with a
/// rank-chain report when the strict-descent rule is violated.
/// `viaTryLock` acquisitions and re-acquisitions of a held recursive
/// mutex (`recursive`) are recorded but exempt from the order check.
void noteAcquire(const void* mu, LockRank rank, bool viaTryLock,
                 bool recursive, const std::source_location& site) noexcept;

/// Record a release (any order; releases need not be LIFO).
void noteRelease(const void* mu) noexcept;

/// True when the calling thread currently holds `mu`.
[[nodiscard]] bool holds(const void* mu) noexcept;

/// Number of ranked locks the calling thread currently holds.
[[nodiscard]] std::size_t heldCount() noexcept;

}  // namespace lockdep

/// std::mutex with a rank.  Satisfies Lockable; use with LockGuard /
/// UniqueLock below (they carry the clang SCOPED_CAPABILITY annotations
/// the std guards lack).
template <LockRank Rank>
class RIPPLE_CAPABILITY("mutex") RankedMutex {
 public:
  static constexpr LockRank kRank = Rank;

  RankedMutex() = default;
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock(const std::source_location& site =
                std::source_location::current()) RIPPLE_ACQUIRE() {
#if RIPPLE_RANK_CHECKS
    lockdep::noteAcquire(this, Rank, /*viaTryLock=*/false,
                         /*recursive=*/false, site);
#else
    (void)site;
#endif
    mu_.lock();
  }

  bool try_lock(const std::source_location& site =
                    std::source_location::current())
      RIPPLE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
#if RIPPLE_RANK_CHECKS
    lockdep::noteAcquire(this, Rank, /*viaTryLock=*/true,
                         /*recursive=*/false, site);
#else
    (void)site;
#endif
    return true;
  }

  void unlock() RIPPLE_RELEASE() {
    mu_.unlock();
#if RIPPLE_RANK_CHECKS
    lockdep::noteRelease(this);
#endif
  }

 private:
  std::mutex mu_;
};

/// std::recursive_mutex with a rank: re-acquiring a mutex this thread
/// already holds is always legal; the rank rule binds the first
/// acquisition only.
template <LockRank Rank>
class RIPPLE_CAPABILITY("mutex") RankedRecursiveMutex {
 public:
  static constexpr LockRank kRank = Rank;

  RankedRecursiveMutex() = default;
  RankedRecursiveMutex(const RankedRecursiveMutex&) = delete;
  RankedRecursiveMutex& operator=(const RankedRecursiveMutex&) = delete;

  void lock(const std::source_location& site =
                std::source_location::current()) RIPPLE_ACQUIRE() {
#if RIPPLE_RANK_CHECKS
    lockdep::noteAcquire(this, Rank, /*viaTryLock=*/false,
                         /*recursive=*/true, site);
#else
    (void)site;
#endif
    mu_.lock();
  }

  bool try_lock(const std::source_location& site =
                    std::source_location::current())
      RIPPLE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
#if RIPPLE_RANK_CHECKS
    lockdep::noteAcquire(this, Rank, /*viaTryLock=*/true,
                         /*recursive=*/true, site);
#else
    (void)site;
#endif
    return true;
  }

  void unlock() RIPPLE_RELEASE() {
    mu_.unlock();
#if RIPPLE_RANK_CHECKS
    lockdep::noteRelease(this);
#endif
  }

 private:
  std::recursive_mutex mu_;
};

/// std::shared_mutex with a rank.  Shared acquisitions obey the same
/// strict-descent rule: reader/writer cycles deadlock just as well as
/// writer/writer ones.
template <LockRank Rank>
class RIPPLE_CAPABILITY("mutex") RankedSharedMutex {
 public:
  static constexpr LockRank kRank = Rank;

  RankedSharedMutex() = default;
  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock(const std::source_location& site =
                std::source_location::current()) RIPPLE_ACQUIRE() {
#if RIPPLE_RANK_CHECKS
    lockdep::noteAcquire(this, Rank, /*viaTryLock=*/false,
                         /*recursive=*/false, site);
#else
    (void)site;
#endif
    mu_.lock();
  }

  bool try_lock(const std::source_location& site =
                    std::source_location::current())
      RIPPLE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
#if RIPPLE_RANK_CHECKS
    lockdep::noteAcquire(this, Rank, /*viaTryLock=*/true,
                         /*recursive=*/false, site);
#else
    (void)site;
#endif
    return true;
  }

  void unlock() RIPPLE_RELEASE() {
    mu_.unlock();
#if RIPPLE_RANK_CHECKS
    lockdep::noteRelease(this);
#endif
  }

  void lock_shared(const std::source_location& site =
                       std::source_location::current())
      RIPPLE_ACQUIRE_SHARED() {
#if RIPPLE_RANK_CHECKS
    lockdep::noteAcquire(this, Rank, /*viaTryLock=*/false,
                         /*recursive=*/false, site);
#else
    (void)site;
#endif
    mu_.lock_shared();
  }

  bool try_lock_shared(const std::source_location& site =
                           std::source_location::current())
      RIPPLE_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) {
      return false;
    }
#if RIPPLE_RANK_CHECKS
    lockdep::noteAcquire(this, Rank, /*viaTryLock=*/true,
                         /*recursive=*/false, site);
#else
    (void)site;
#endif
    return true;
  }

  void unlock_shared() RIPPLE_RELEASE_SHARED() {
    mu_.unlock_shared();
#if RIPPLE_RANK_CHECKS
    lockdep::noteRelease(this);
#endif
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock, annotated so clang's analysis tracks it (the
/// libstdc++ std::lock_guard is not).  Use instead of std::lock_guard for
/// every ranked mutex.
template <typename Mutex>
class RIPPLE_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu,
                     const std::source_location& site =
                         std::source_location::current()) RIPPLE_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(site);
  }

  ~LockGuard() RIPPLE_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock with manual unlock/relock, for waiting on a
/// std::condition_variable_any (ranked mutexes cannot feed a plain
/// std::condition_variable, which is hard-wired to std::mutex).
template <typename Mutex>
class RIPPLE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu,
                      const std::source_location& site =
                          std::source_location::current()) RIPPLE_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(site);
    owned_ = true;
  }

  ~UniqueLock() RIPPLE_RELEASE() {
    if (owned_) {
      mu_.unlock();
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// BasicLockable surface consumed by std::condition_variable_any: wait
  /// unlocks around the block and relocks before returning.
  void lock(const std::source_location& site =
                std::source_location::current()) RIPPLE_ACQUIRE() {
    mu_.lock(site);
    owned_ = true;
  }

  void unlock() RIPPLE_RELEASE() {
    owned_ = false;
    mu_.unlock();
  }

  [[nodiscard]] bool owns_lock() const noexcept { return owned_; }

 private:
  Mutex& mu_;
  bool owned_ = false;
};

/// Scoped shared (reader) lock over a RankedSharedMutex.
template <typename Mutex>
class RIPPLE_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(Mutex& mu,
                      const std::source_location& site =
                          std::source_location::current())
      RIPPLE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared(site);
  }

  ~SharedLock() RIPPLE_RELEASE() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace ripple
