// Hashing and partitioning.
//
// A Partitioner maps a key's bytes to a part index.  Tables that must be
// co-placed share a Partitioner instance (see TableConfig::consistentWith),
// which is how Ripple guarantees that a component's state, inbox, and
// transport spills land in the same part.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/bytes.h"

namespace ripple {

/// 64-bit FNV-1a over raw bytes.  Stable across platforms and runs, which
/// matters because partition assignment must be deterministic.
[[nodiscard]] std::uint64_t fnv1a64(BytesView data);

/// Finalizing mix (splitmix64 finalizer); spreads low-entropy inputs.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Maps key bytes to [0, parts).  The default implementation hashes with
/// fnv1a64+mix64; clients control placement by controlling key bytes or by
/// supplying a custom hash function (paper §III-A: "The table client can
/// control the assignment of keys to parts by controlling the hash values
/// of its keys").
class Partitioner {
 public:
  using HashFn = std::function<std::uint64_t(BytesView)>;

  explicit Partitioner(std::uint32_t parts);
  Partitioner(std::uint32_t parts, HashFn hash);

  [[nodiscard]] std::uint32_t parts() const { return parts_; }
  [[nodiscard]] std::uint32_t partOf(BytesView key) const;
  [[nodiscard]] std::uint64_t hashOf(BytesView key) const { return hash_(key); }

 private:
  std::uint32_t parts_;
  HashFn hash_;
};

using PartitionerPtr = std::shared_ptr<const Partitioner>;

/// Default-hash partitioner shared pointer convenience.
[[nodiscard]] PartitionerPtr makeDefaultPartitioner(std::uint32_t parts);

}  // namespace ripple
