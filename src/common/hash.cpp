#include "common/hash.h"

#include <stdexcept>
#include <utility>

namespace ripple {

std::uint64_t fnv1a64(BytesView data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Partitioner::Partitioner(std::uint32_t parts)
    : Partitioner(parts, [](BytesView k) { return mix64(fnv1a64(k)); }) {}

Partitioner::Partitioner(std::uint32_t parts, HashFn hash)
    : parts_(parts), hash_(std::move(hash)) {
  if (parts_ == 0) {
    throw std::invalid_argument("Partitioner: parts must be positive");
  }
}

std::uint32_t Partitioner::partOf(BytesView key) const {
  return static_cast<std::uint32_t>(hash_(key) % parts_);
}

PartitionerPtr makeDefaultPartitioner(std::uint32_t parts) {
  return std::make_shared<const Partitioner>(parts);
}

}  // namespace ripple
