#include "common/executor.h"

#include <stdexcept>

namespace ripple {

SerialExecutor::SerialExecutor(std::string name) : name_(std::move(name)) {
  worker_ = std::thread([this] { loop(); });
}

SerialExecutor::~SerialExecutor() { shutdown(); }

void SerialExecutor::execute(Task task) {
  if (!tasks_.push(std::move(task))) {
    throw std::runtime_error("SerialExecutor '" + name_ +
                             "': execute after shutdown");
  }
}

bool SerialExecutor::onThisThread() const {
  return std::this_thread::get_id() == worker_.get_id();
}

void SerialExecutor::shutdown() {
  tasks_.close();
  if (worker_.joinable()) {
    worker_.join();
  }
}

void SerialExecutor::loop() {
  for (;;) {
    std::optional<Task> task = tasks_.pop();
    if (!task) {
      return;  // Closed and drained.
    }
    (*task)();
  }
}

CountdownLatch::CountdownLatch(std::size_t count) : count_(count) {}

void CountdownLatch::countDown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ > 0 && --count_ == 0) {
    cv_.notify_all();
  }
}

void CountdownLatch::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return count_ == 0; });
}

std::size_t CountdownLatch::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

}  // namespace ripple
