#include "common/executor.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "common/logging.h"

namespace ripple {

namespace {

/// Sanity cap on pool width: far above any real machine, low enough that
/// an overflowed or absurd request cannot exhaust process resources.
constexpr long kMaxThreads = 4096;

}  // namespace

int resolveThreads(int requested) {
  if (requested > 0) {
    if (requested > kMaxThreads) {
      RIPPLE_WARN << "resolveThreads: requested " << requested
                  << " threads; clamping to " << kMaxThreads;
      return static_cast<int>(kMaxThreads);
    }
    return requested;
  }
  if (requested < 0) {
    RIPPLE_WARN << "resolveThreads: negative thread request (" << requested
                << ") ignored; falling back to RIPPLE_THREADS";
  }
  const char* env = std::getenv("RIPPLE_THREADS");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    // "abc" or "4abc": reject the whole value rather than honoring a
    // numeric prefix the user probably didn't mean.
    RIPPLE_WARN << "resolveThreads: RIPPLE_THREADS='" << env
                << "' is not an integer; using legacy dispatch";
    return 0;
  }
  if (parsed < 0) {
    RIPPLE_WARN << "resolveThreads: RIPPLE_THREADS='" << env
                << "' is negative; using legacy dispatch";
    return 0;
  }
  if (parsed > kMaxThreads) {
    RIPPLE_WARN << "resolveThreads: RIPPLE_THREADS='" << env
                << "' exceeds the cap; clamping to " << kMaxThreads;
    return static_cast<int>(kMaxThreads);
  }
  return static_cast<int>(parsed);
}

SerialExecutor::SerialExecutor(std::string name) : name_(std::move(name)) {
  worker_ = std::thread([this] { loop(); });
}

SerialExecutor::~SerialExecutor() {
  try {
    shutdown();
  } catch (...) {
    // A leaked task exception is reported from explicit shutdown(); the
    // destructor only guarantees the join.
  }
}

void SerialExecutor::execute(Task task) {
  if (!tasks_.push(std::move(task))) {
    throw std::runtime_error("SerialExecutor '" + name_ +
                             "': execute after shutdown");
  }
}

bool SerialExecutor::onThisThread() const {
  return std::this_thread::get_id() == worker_.get_id();
}

void SerialExecutor::shutdown() {
  tasks_.close();
  if (worker_.joinable()) {
    worker_.join();
  }
  std::exception_ptr failure;
  {
    LockGuard lock(failMu_);
    std::swap(failure, failure_);
  }
  if (failure) {
    std::rethrow_exception(failure);
  }
}

void SerialExecutor::loop() {
  for (;;) {
    std::optional<Task> task = tasks_.pop();
    if (!task) {
      return;  // Closed and drained.
    }
    try {
      (*task)();
    } catch (...) {
      // Keep draining: a throwing task must not kill the worker, or the
      // destructor could never join outstanding tasks.
      LockGuard lock(failMu_);
      if (!failure_) {
        failure_ = std::current_exception();
      }
    }
  }
}

WorkStealingPool::WorkStealingPool(std::size_t threads, std::string name)
    : name_(std::move(name)) {
  if (threads == 0) {
    threads = 1;
  }
  slots_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  try {
    shutdown();
  } catch (...) {
    // As with SerialExecutor: the destructor guarantees the join, the
    // exception is reported from explicit shutdown().
  }
}

void WorkStealingPool::execute(Task task) {
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::runtime_error("WorkStealingPool '" + name_ +
                             "': execute after shutdown");
  }
  inflight_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot =
      *slots_[rr_.fetch_add(1, std::memory_order_relaxed) % slots_.size()];
  {
    LockGuard lock(slot.mu);
    slot.tasks.push_back(std::move(task));
  }
  idleCv_.notify_one();
}

void WorkStealingPool::parallelFor(std::size_t n,
                                   const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  CountdownLatch latch(n);
  RankedMutex<LockRank::kExecutor> mu;
  std::exception_ptr failure;
  for (std::size_t i = 0; i < n; ++i) {
    execute([&, i] {
      try {
        fn(i);
      } catch (...) {
        LockGuard lock(mu);
        if (!failure) {
          failure = std::current_exception();
        }
      }
      latch.countDown();
    });
  }
  latch.wait();
  if (failure) {
    std::rethrow_exception(failure);
  }
}

void WorkStealingPool::shutdown() {
  stopping_.store(true, std::memory_order_release);
  idleCv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  // Belt and braces against an execute() racing shutdown(): anything that
  // slipped past the workers runs here, preserving the "never abandons
  // work" contract.
  for (auto& slot : slots_) {
    for (;;) {
      Task task;
      {
        LockGuard lock(slot->mu);
        if (slot->tasks.empty()) {
          break;
        }
        task = std::move(slot->tasks.front());
        slot->tasks.pop_front();
      }
      try {
        task();
      } catch (...) {
        noteFailure();
      }
      inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  std::exception_ptr failure;
  {
    LockGuard lock(failMu_);
    std::swap(failure, failure_);
  }
  if (failure) {
    std::rethrow_exception(failure);
  }
}

std::optional<WorkStealingPool::Task> WorkStealingPool::take(std::size_t self) {
  {
    Slot& own = *slots_[self];
    LockGuard lock(own.mu);
    if (!own.tasks.empty()) {
      Task task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return task;
    }
  }
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    Slot& victim = *slots_[(self + i) % slots_.size()];
    LockGuard lock(victim.mu);
    if (!victim.tasks.empty()) {
      Task task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return std::nullopt;
}

void WorkStealingPool::noteFailure() {
  LockGuard lock(failMu_);
  if (!failure_) {
    failure_ = std::current_exception();
  }
}

void WorkStealingPool::loop(std::size_t self) {
  for (;;) {
    if (std::optional<Task> task = take(self)) {
      try {
        (*task)();
      } catch (...) {
        noteFailure();
      }
      // Decrement after the task ran: inflight_ counts queued + running,
      // so a task that execute()s more work keeps the pool alive until
      // that work also drains.
      inflight_.fetch_sub(1, std::memory_order_release);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        inflight_.load(std::memory_order_acquire) == 0) {
      return;
    }
    UniqueLock lock(idleMu_);
    idleCv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

CountdownLatch::CountdownLatch(std::size_t count) : count_(count) {}

void CountdownLatch::countDown() {
  LockGuard lock(mu_);
  if (count_ > 0 && --count_ == 0) {
    cv_.notify_all();
  }
}

void CountdownLatch::wait() {
  UniqueLock lock(mu_);
  while (count_ != 0) {
    cv_.wait(lock);
  }
}

std::size_t CountdownLatch::pending() const {
  LockGuard lock(mu_);
  return count_;
}

}  // namespace ripple
