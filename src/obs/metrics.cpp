#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <thread>

namespace ripple::obs {

namespace {

void atomicAddDouble(std::atomic<double>& acc, double delta) {
  double cur = acc.load(std::memory_order_relaxed);
  while (!acc.compare_exchange_weak(cur, cur + delta,
                                    std::memory_order_relaxed)) {
  }
}

void atomicMinDouble(std::atomic<double>& acc, double x) {
  double cur = acc.load(std::memory_order_relaxed);
  while (x < cur &&
         !acc.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomicMaxDouble(std::atomic<double>& acc, double x) {
  double cur = acc.load(std::memory_order_relaxed);
  while (x > cur &&
         !acc.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = defaultBounds();
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::defaultBounds() {
  std::vector<double> bounds;
  bounds.reserve(3 * 19);
  double decade = 1e-9;
  for (int d = -9; d <= 9; ++d) {
    bounds.push_back(decade);
    bounds.push_back(2 * decade);
    bounds.push_back(5 * decade);
    decade *= 10;
  }
  return bounds;
}

Histogram::Shard& Histogram::shardForThisThread() {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kShards];
}

void Histogram::record(double x) {
  Shard& shard = shardForThisThread();
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  shard.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  atomicAddDouble(shard.sum, x);
  atomicMinDouble(shard.min, x);
  atomicMaxDouble(shard.max, x);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < merged.size(); ++i) {
      merged[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::percentile(double q) const {
  const std::vector<std::uint64_t> buckets = bucketCounts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) {
    total += c;
  }
  if (total == 0) {
    return 0.0;
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) > 0) {
      lo = std::min(lo, shard.min.load(std::memory_order_relaxed));
      hi = std::max(hi, shard.max.load(std::memory_order_relaxed));
    }
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank with ceil).
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    if (cumulative + buckets[i] >= target) {
      // Interpolate linearly within the bucket, clamped to observed range.
      double bucketLo = i == 0 ? lo : bounds_[i - 1];
      double bucketHi = i == bounds_.size() ? hi : bounds_[i];
      bucketLo = std::max(bucketLo, lo);
      bucketHi = std::min(std::max(bucketHi, bucketLo), hi);
      const double frac = static_cast<double>(target - cumulative) /
                          static_cast<double>(buckets[i]);
      return bucketLo + frac * (bucketHi - bucketLo);
    }
    cumulative += buckets[i];
  }
  return hi;
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count();
  if (s.count == 0) {
    return s;
  }
  s.sum = sum();
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) > 0) {
      lo = std::min(lo, shard.min.load(std::memory_order_relaxed));
      hi = std::max(hi, shard.max.load(std::memory_order_relaxed));
    }
  }
  s.min = lo;
  s.max = hi;
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

JsonValue MetricsSnapshot::toJson() const {
  JsonValue::Object counterObj;
  for (const auto& [name, value] : counters) {
    counterObj[name] = value;
  }
  JsonValue::Object gaugeObj;
  for (const auto& [name, value] : gauges) {
    gaugeObj[name] = value;
  }
  JsonValue::Object histObj;
  for (const auto& [name, h] : histograms) {
    JsonValue::Object entry;
    entry["count"] = h.count;
    entry["sum"] = h.sum;
    entry["min"] = h.min;
    entry["max"] = h.max;
    entry["p50"] = h.p50;
    entry["p95"] = h.p95;
    entry["p99"] = h.p99;
    histObj[name] = std::move(entry);
  }
  JsonValue::Object root;
  root["counters"] = std::move(counterObj);
  root["gauges"] = std::move(gaugeObj);
  root["histograms"] = std::move(histObj);
  return JsonValue(std::move(root));
}

MetricsSnapshot MetricsSnapshot::fromJson(const JsonValue& v) {
  MetricsSnapshot snap;
  if (const JsonValue* counters = v.find("counters")) {
    for (const auto& [name, value] : counters->asObject()) {
      snap.counters[name] = value.asU64();
    }
  }
  if (const JsonValue* gauges = v.find("gauges")) {
    for (const auto& [name, value] : gauges->asObject()) {
      snap.gauges[name] = value.asNumber();
    }
  }
  if (const JsonValue* histograms = v.find("histograms")) {
    for (const auto& [name, value] : histograms->asObject()) {
      HistogramStats h;
      h.count = static_cast<std::uint64_t>(value.numberOr("count", 0));
      h.sum = value.numberOr("sum", 0);
      h.min = value.numberOr("min", 0);
      h.max = value.numberOr("max", 0);
      h.p50 = value.numberOr("p50", 0);
      h.p95 = value.numberOr("p95", 0);
      h.p99 = value.numberOr("p99", 0);
      snap.histograms[name] = h;
    }
  }
  return snap;
}

void MetricsRegistry::checkNameFree(const std::string& name,
                                    const void* exempt) const {
  const auto c = counters_.find(name);
  if (c != counters_.end() && c->second.get() != exempt) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already names a counter");
  }
  const auto g = gauges_.find(name);
  if (g != gauges_.end() && g->second.get() != exempt) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already names a gauge");
  }
  const auto h = histograms_.find(name);
  if (h != histograms_.end() && h->second.get() != exempt) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already names a histogram");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  {
    SharedLock lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      return *it->second;
    }
  }
  LockGuard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    checkNameFree(name, slot.get());
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  {
    SharedLock lock(mu_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
      return *it->second;
    }
  }
  LockGuard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    checkNameFree(name, slot.get());
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  {
    SharedLock lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      return *it->second;
    }
  }
  LockGuard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    checkNameFree(name, slot.get());
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

const Counter* MetricsRegistry::findCounter(const std::string& name) const {
  SharedLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::findGauge(const std::string& name) const {
  SharedLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::findHistogram(
    const std::string& name) const {
  SharedLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  SharedLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->stats();
  }
  return snap;
}

void MetricsRegistry::reset() {
  SharedLock lock(mu_);
  for (const auto& [name, c] : counters_) {
    c->reset();
  }
  for (const auto& [name, g] : gauges_) {
    g->reset();
  }
  for (const auto& [name, h] : histograms_) {
    h->reset();
  }
}

}  // namespace ripple::obs
