// ripple::obs — the unified metrics layer.
//
// The paper's whole evaluation method is counting architectural effects
// (sync rounds, I/O rounds, bytes marshalled per superstep, §V); this
// registry gives every layer one place to account them.  A MetricsRegistry
// owns named Counter / Gauge / Histogram instruments.  Instruments are
// created on first use, have stable addresses for the registry's lifetime,
// and are cheap enough for hot paths: callers resolve an instrument once
// (one lock) and then pay a relaxed atomic add per event; histograms shard
// their buckets to keep concurrent recorders off each other's cache lines.
//
// Instrument naming scheme (see DESIGN.md "Observability"): dotted
// lower_snake path, `<subsystem>.<quantity>[_<unit>]`, e.g.
// `ebsp.messages_sent`, `kv.bytes_marshalled`, `ebsp.step_seconds`.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include "obs/json.h"

namespace ripple::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }

  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() { set(0); }

 private:
  std::atomic<double> value_{0};
};

/// Point-in-time summary of one histogram.
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Fixed-bucket histogram with sharded atomic buckets and percentile
/// estimation by linear interpolation within the hit bucket (clamped to
/// the observed min/max, so estimates never leave the data's range).
class Histogram {
 public:
  /// `bounds` are ascending bucket upper bounds; values above the last
  /// bound land in an implicit overflow bucket.  The default covers
  /// 1e-9 .. 1e9 in 1-2-5 decade steps — wide enough for seconds, bytes,
  /// and message counts alike.
  explicit Histogram(std::vector<double> bounds = defaultBounds());

  void record(double x);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;

  /// q in [0, 1].  Returns 0 when empty.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] HistogramStats stats() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Bucket counts merged across shards (bounds().size() + 1 entries, the
  /// last being the overflow bucket).
  [[nodiscard]] std::vector<std::uint64_t> bucketCounts() const;

  void reset();

  [[nodiscard]] static std::vector<double> defaultBounds();

 private:
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0};
    std::atomic<double> min{0};
    std::atomic<double> max{0};
  };

  static constexpr std::size_t kShards = 8;

  [[nodiscard]] Shard& shardForThisThread();

  std::vector<double> bounds_;
  std::array<Shard, kShards> shards_;
};

/// Snapshot of every instrument in a registry, detached from the live
/// atomics; what RunReport serializes.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  [[nodiscard]] JsonValue toJson() const;
  [[nodiscard]] static MetricsSnapshot fromJson(const JsonValue& v);
};

/// Thread-safe name -> instrument registry.  Each name designates one
/// instrument of one kind; the same name may not be reused across kinds.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create.  References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation; an empty vector means the
  /// default bounds.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Lookup without creation; nullptr when absent.
  [[nodiscard]] const Counter* findCounter(const std::string& name) const;
  [[nodiscard]] const Gauge* findGauge(const std::string& name) const;
  [[nodiscard]] const Histogram* findHistogram(const std::string& name) const;

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every instrument (instrument identities survive).
  void reset();

 private:
  void checkNameFree(const std::string& name, const void* exempt) const
      RIPPLE_REQUIRES(mu_);

  mutable RankedSharedMutex<LockRank::kObs> mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      RIPPLE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      RIPPLE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      RIPPLE_GUARDED_BY(mu_);
};

}  // namespace ripple::obs
