#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ripple::obs {

namespace {

/// Length (1-4) of the well-formed UTF-8 sequence starting at s[i], or 0
/// when the bytes there are not valid UTF-8 (per RFC 3629: no overlongs,
/// no surrogates, nothing above U+10FFFF).
std::size_t utf8SequenceLength(std::string_view s, std::size_t i) {
  const auto b = [&](std::size_t k) {
    return static_cast<unsigned char>(s[i + k]);
  };
  const auto cont = [&](std::size_t k) {
    return i + k < s.size() && (b(k) & 0xC0U) == 0x80U;
  };
  const unsigned char lead = b(0);
  if (lead < 0x80U) {
    return 1;
  }
  if (lead >= 0xC2U && lead <= 0xDFU) {
    return cont(1) ? 2 : 0;
  }
  if (lead == 0xE0U) {
    return cont(1) && b(1) >= 0xA0U && cont(2) ? 3 : 0;
  }
  if (lead >= 0xE1U && lead <= 0xECU) {
    return cont(1) && cont(2) ? 3 : 0;
  }
  if (lead == 0xEDU) {  // Exclude surrogates U+D800..U+DFFF.
    return cont(1) && b(1) <= 0x9FU && cont(2) ? 3 : 0;
  }
  if (lead >= 0xEEU && lead <= 0xEFU) {
    return cont(1) && cont(2) ? 3 : 0;
  }
  if (lead == 0xF0U) {
    return cont(1) && b(1) >= 0x90U && cont(2) && cont(3) ? 4 : 0;
  }
  if (lead >= 0xF1U && lead <= 0xF3U) {
    return cont(1) && cont(2) && cont(3) ? 4 : 0;
  }
  if (lead == 0xF4U) {  // Cap at U+10FFFF.
    return cont(1) && b(1) <= 0x8FU && cont(2) && cont(3) ? 4 : 0;
  }
  return 0;
}

void appendEscaped(std::string& out, const std::string& raw) {
  const std::string s = sanitizeUtf8(raw);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void appendNumber(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional substitute.
    out += "null";
    return;
  }
  // Integers (the common case: counters, step numbers) print without an
  // exponent or trailing ".0"; everything else uses shortest round-trip.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    const auto i = static_cast<long long>(d);
    out += std::to_string(i);
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc()) {
    throw JsonError("JsonValue: number formatting failed");
  }
  out.append(buf, ptr);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + what);
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parseValue() {
    skipWs();
    const char c = peek();
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return JsonValue(parseString());
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        return JsonValue(nullptr);
      default:
        return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue::Object obj;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      obj[std::move(key)] = parseValue();
      skipWs();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue::Array arr;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parseValue());
      skipWs();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (must be \\u-escaped)");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Control-range escapes only (that is all the writer emits);
          // encode other code points as UTF-8 without surrogate handling.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    double d = 0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last) {
      fail("malformed number");
    }
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dumpTo(std::string& out, const JsonValue& v, int indent, int depth);

void newline(std::string& out, int indent, int depth) {
  if (indent > 0) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
  }
}

void dumpTo(std::string& out, const JsonValue& v, int indent, int depth) {
  if (v.isNull()) {
    out += "null";
  } else if (v.isBool()) {
    out += v.asBool() ? "true" : "false";
  } else if (v.isNumber()) {
    appendNumber(out, v.asNumber());
  } else if (v.isString()) {
    appendEscaped(out, v.asString());
  } else if (v.isArray()) {
    const auto& arr = v.asArray();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const JsonValue& e : arr) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      newline(out, indent, depth + 1);
      dumpTo(out, e, indent, depth + 1);
    }
    newline(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& obj = v.asObject();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      newline(out, indent, depth + 1);
      appendEscaped(out, key);
      out.push_back(':');
      if (indent > 0) {
        out.push_back(' ');
      }
      dumpTo(out, value, indent, depth + 1);
    }
    newline(out, indent, depth);
    out.push_back('}');
  }
}

}  // namespace

std::string sanitizeUtf8(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  static constexpr std::string_view kReplacement = "\xEF\xBF\xBD";  // U+FFFD
  std::size_t i = 0;
  while (i < s.size()) {
    const std::size_t len = utf8SequenceLength(s, i);
    if (len == 0) {
      out += kReplacement;
      ++i;  // Resync one byte at a time.
      continue;
    }
    out.append(s, i, len);
    i += len;
  }
  return out;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!isObject()) {
    return nullptr;
  }
  const auto& obj = std::get<Object>(v_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->isNumber()) ? v->asNumber() : fallback;
}

std::string JsonValue::stringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->isString()) ? v->asString() : fallback;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, *this, indent, 0);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parseDocument();
}

}  // namespace ripple::obs
