// ripple::obs — structured superstep tracing.
//
// The engines emit one Span per execution phase per superstep (compute,
// spill, barrier, collect, checkpoint, ...), each carrying wall time,
// virtual-cluster time, and the phase's invocation/message/byte counts.
// A trace is the mechanical record of the paper's round accounting: sync
// rounds are the barrier spans, I/O rounds are the compute spans that
// touched the store or shuffled messages (see RunReport).
//
// Spans serialize to JSON Lines (one object per line) for streaming
// export, and to a JSON array inside a RunReport.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include "common/ranked_mutex.h"
#include "common/thread_annotations.h"
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace ripple::obs {

/// Execution phases a span can describe.  kRun is the whole-job umbrella
/// used by harnesses; the engines emit the finer-grained phases.
enum class Phase : std::uint8_t {
  kRun = 0,
  kLoad,
  kCompute,
  kSpill,
  kBarrier,
  kCollect,
  kCheckpoint,
  kRestore,
  kExport,
};

[[nodiscard]] const char* phaseName(Phase phase);
[[nodiscard]] std::optional<Phase> phaseFromName(std::string_view name);

/// Small stable ordinal for the calling thread (1-based, assigned in
/// first-use order process-wide).  Spans recorded from engine pool or
/// queue-set worker threads carry it, so a trace can be grouped by the
/// thread that did the work.
[[nodiscard]] std::uint64_t currentThreadOrdinal();

struct Span {
  /// Tracer-assigned id (1-based); 0 until recorded.
  std::uint64_t id = 0;
  /// Id of the enclosing open span on the same thread, 0 for roots.
  std::uint64_t parent = 0;

  /// Superstep number (1-based; 0 for run-level phases and for the
  /// no-sync strategy, which has no steps).
  int step = 0;
  Phase phase = Phase::kRun;

  /// Wall-clock seconds since the tracer's epoch.
  double start = 0;
  double duration = 0;

  /// Virtual-cluster time attributed to the phase (0 when virtual time is
  /// disabled; for spill spans, summed sender-side CPU seconds).
  double virtualSeconds = 0;

  std::uint64_t invocations = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t stateReads = 0;
  std::uint64_t stateWrites = 0;

  /// Ordinal of the thread that recorded the span (see
  /// currentThreadOrdinal); 0 = unattributed (e.g. synthesized summary
  /// spans that aggregate several producers).
  std::uint64_t thread = 0;

  /// Freeform annotation (strategy name, table, recovery note, ...).
  std::string note;

  [[nodiscard]] JsonValue toJson() const;
  [[nodiscard]] static Span fromJson(const JsonValue& v);
};

/// Thread-safe span collector.  Engines take a `Tracer*` and treat null as
/// "tracing disabled"; the Scoped helper makes that pattern one line per
/// phase.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Append a span.  Assigns `span.id` if it is 0.
  void record(Span span);

  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::size_t spanCount() const;

  /// Wall-clock seconds since this tracer was constructed.
  [[nodiscard]] double elapsedSeconds() const;

  /// Drop all recorded spans (the epoch is unchanged).
  void clear();

  /// One JSON object per line, in record order.
  void exportJsonl(std::ostream& out) const;

  /// Parse one exportJsonl line back into a Span.
  [[nodiscard]] static Span parseJsonLine(std::string_view line);

  /// RAII phase span: stamps `start` on construction, `duration` on
  /// destruction, then records.  A null tracer makes the whole object a
  /// near-no-op (fields may still be written; nothing is recorded).
  /// Scoped spans opened while another Scoped span is live on the same
  /// thread record it as their parent.
  class Scoped {
   public:
    Scoped(Tracer* tracer, Phase phase, int step = 0);
    ~Scoped();

    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

    Span* operator->() { return &span_; }
    [[nodiscard]] Span& span() { return span_; }

    /// Forget this span instead of recording it.
    void cancel() { tracer_ = nullptr; }

   private:
    Tracer* tracer_;
    Span span_;
    std::chrono::steady_clock::time_point begun_;
  };

 private:
  [[nodiscard]] std::uint64_t allocId() {
    return nextId_.fetch_add(1, std::memory_order_relaxed);
  }

  mutable RankedMutex<LockRank::kObs> mu_;
  std::vector<Span> spans_ RIPPLE_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> nextId_{1};
};

}  // namespace ripple::obs
