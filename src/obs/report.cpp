#include "obs/report.h"

#include <fstream>
#include <stdexcept>

namespace ripple::obs {

RunReport RunReport::capture(std::string label,
                             const MetricsRegistry* registry,
                             const Tracer* tracer) {
  RunReport report;
  report.label = std::move(label);
  if (registry != nullptr) {
    report.metrics = registry->snapshot();
  }
  if (tracer != nullptr) {
    report.spans = tracer->spans();
  }
  return report;
}

JsonValue RunReport::toJson() const {
  JsonValue::Object root;
  root["label"] = label;
  JsonValue::Object infoObj;
  for (const auto& [key, value] : info) {
    infoObj[key] = value;
  }
  root["info"] = std::move(infoObj);
  root["metrics"] = metrics.toJson();
  JsonValue::Array spanArr;
  spanArr.reserve(spans.size());
  for (const Span& s : spans) {
    spanArr.push_back(s.toJson());
  }
  root["spans"] = std::move(spanArr);
  return JsonValue(std::move(root));
}

RunReport RunReport::fromJson(const JsonValue& v) {
  RunReport report;
  report.label = v.stringOr("label", "");
  if (const JsonValue* info = v.find("info")) {
    for (const auto& [key, value] : info->asObject()) {
      report.info[key] = value.asString();
    }
  }
  if (const JsonValue* metrics = v.find("metrics")) {
    report.metrics = MetricsSnapshot::fromJson(*metrics);
  }
  if (const JsonValue* spans = v.find("spans")) {
    report.spans.reserve(spans->asArray().size());
    for (const JsonValue& s : spans->asArray()) {
      report.spans.push_back(Span::fromJson(s));
    }
  }
  return report;
}

void RunReport::writeFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("RunReport: cannot open '" + path +
                             "' for writing");
  }
  out << toJson().dump(2) << '\n';
  if (!out) {
    throw std::runtime_error("RunReport: write to '" + path + "' failed");
  }
}

std::uint64_t RunReport::spanCount(Phase phase) const {
  std::uint64_t n = 0;
  for (const Span& s : spans) {
    if (s.phase == phase) {
      ++n;
    }
  }
  return n;
}

std::uint64_t RunReport::ioRounds() const {
  std::uint64_t n = 0;
  for (const Span& s : spans) {
    if (s.phase == Phase::kCompute && s.step > 0 &&
        (s.messages > 0 || s.stateReads > 0 || s.stateWrites > 0)) {
      ++n;
    }
  }
  return n;
}

}  // namespace ripple::obs
