// ripple::obs — machine-readable run reports.
//
// A RunReport is the single JSON document a run leaves behind: a snapshot
// of every registry instrument plus the full span trace, with freeform
// info fields (workload, scale, trial counts) supplied by the harness.
// The bench harnesses write one per `--report <path>` invocation; the
// integration suite verifies the paper's Table 1 round accounting from a
// report alone (syncRounds / ioRounds below).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ripple::obs {

struct RunReport {
  /// Harness- or test-supplied report name.
  std::string label;

  /// Freeform metadata (workload parameters, environment, ...).
  std::map<std::string, std::string> info;

  MetricsSnapshot metrics;
  std::vector<Span> spans;

  /// Snapshot `registry` and `tracer` (either may be null) into a report.
  [[nodiscard]] static RunReport capture(std::string label,
                                         const MetricsRegistry* registry,
                                         const Tracer* tracer);

  [[nodiscard]] JsonValue toJson() const;
  [[nodiscard]] static RunReport fromJson(const JsonValue& v);

  /// Pretty-printed JSON written atomically enough for tooling (single
  /// write).  Throws std::runtime_error when the file cannot be opened.
  void writeFile(const std::string& path) const;

  // --- Round accounting (the paper's §V method, now mechanical). ---

  [[nodiscard]] std::uint64_t spanCount(Phase phase) const;

  /// Synchronization rounds: one per barrier span.
  [[nodiscard]] std::uint64_t syncRounds() const {
    return spanCount(Phase::kBarrier);
  }

  /// I/O rounds: compute spans that performed store or transport I/O
  /// (state reads/writes, or messages shuffled through the transport
  /// table).  A superstep that only computes costs no I/O round.
  [[nodiscard]] std::uint64_t ioRounds() const;
};

}  // namespace ripple::obs
