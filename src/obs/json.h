// Minimal JSON document model for the observability layer (ripple::obs).
//
// Run reports and trace spans are serialized as JSON so external tooling
// can consume them, and the test suite re-parses the documents to verify
// the paper's round-accounting claims from the report alone.  The model is
// deliberately small: numbers are doubles (exact for counters below 2^53),
// strings are UTF-8 (the writer replaces invalid sequences with U+FFFD so
// the emitted document always parses — labels can carry arbitrary bytes,
// e.g. part keys), and \uXXXX escapes cover the control range only.

#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ripple::obs {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// std::map keeps object keys sorted, making serialized output stable.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}  // NOLINT(google-explicit-constructor)
  JsonValue(bool b) : v_(b) {}                // NOLINT(google-explicit-constructor)
  JsonValue(double d) : v_(d) {}              // NOLINT(google-explicit-constructor)
  JsonValue(int i) : v_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::int64_t i) : v_(static_cast<double>(i)) {}   // NOLINT(google-explicit-constructor)
  JsonValue(std::uint64_t u) : v_(static_cast<double>(u)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::string s) : v_(std::move(s)) {}    // NOLINT(google-explicit-constructor)
  JsonValue(const char* s) : v_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(Array a) : v_(std::move(a)) {}          // NOLINT(google-explicit-constructor)
  JsonValue(Object o) : v_(std::move(o)) {}         // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool isNull() const { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool isBool() const { return holds<bool>(); }
  [[nodiscard]] bool isNumber() const { return holds<double>(); }
  [[nodiscard]] bool isString() const { return holds<std::string>(); }
  [[nodiscard]] bool isArray() const { return holds<Array>(); }
  [[nodiscard]] bool isObject() const { return holds<Object>(); }

  /// Typed accessors; throw JsonError on a kind mismatch.
  [[nodiscard]] bool asBool() const { return get<bool>("bool"); }
  [[nodiscard]] double asNumber() const { return get<double>("number"); }
  [[nodiscard]] std::uint64_t asU64() const {
    return static_cast<std::uint64_t>(get<double>("number"));
  }
  [[nodiscard]] const std::string& asString() const {
    return get<std::string>("string");
  }
  [[nodiscard]] const Array& asArray() const { return get<Array>("array"); }
  [[nodiscard]] const Object& asObject() const { return get<Object>("object"); }
  [[nodiscard]] Array& asArray() { return getMut<Array>("array"); }
  [[nodiscard]] Object& asObject() { return getMut<Object>("object"); }

  /// Object member lookup; nullptr if this is not an object or the key is
  /// absent.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Member value coerced to number, or `fallback` when absent/non-number.
  [[nodiscard]] double numberOr(const std::string& key, double fallback) const;
  [[nodiscard]] std::string stringOr(const std::string& key,
                                     const std::string& fallback) const;

  /// Serialize.  `indent` > 0 pretty-prints with that many spaces per
  /// nesting level; 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a complete document; throws JsonError on malformed input,
  /// trailing non-whitespace, or raw (unescaped) control characters
  /// inside strings.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(v_);
  }

  template <typename T>
  [[nodiscard]] const T& get(const char* kind) const {
    if (!holds<T>()) {
      throw JsonError(std::string("JsonValue: not a ") + kind);
    }
    return std::get<T>(v_);
  }

  template <typename T>
  [[nodiscard]] T& getMut(const char* kind) {
    if (!holds<T>()) {
      throw JsonError(std::string("JsonValue: not a ") + kind);
    }
    return std::get<T>(v_);
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Copy of `s` with every byte sequence that is not well-formed UTF-8
/// (overlongs, surrogates, out-of-range code points, stray continuation
/// or truncated lead bytes) replaced by U+FFFD.  The JSON writer applies
/// this to every string so that a RunReport label carrying arbitrary
/// bytes still serializes to a document the bundled parser accepts.
[[nodiscard]] std::string sanitizeUtf8(std::string_view s);

}  // namespace ripple::obs
