#include "obs/trace.h"

#include <ostream>

namespace ripple::obs {

namespace {

struct PhaseEntry {
  Phase phase;
  const char* name;
};

constexpr PhaseEntry kPhases[] = {
    {Phase::kRun, "run"},
    {Phase::kLoad, "load"},
    {Phase::kCompute, "compute"},
    {Phase::kSpill, "spill"},
    {Phase::kBarrier, "barrier"},
    {Phase::kCollect, "collect"},
    {Phase::kCheckpoint, "checkpoint"},
    {Phase::kRestore, "restore"},
    {Phase::kExport, "export"},
};

/// Per-thread stack of open Scoped spans, for parent assignment.  Entries
/// are (tracer, span id); spans only parent within the same tracer.
thread_local std::vector<std::pair<const Tracer*, std::uint64_t>>
    tOpenSpans;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

}  // namespace

const char* phaseName(Phase phase) {
  for (const PhaseEntry& e : kPhases) {
    if (e.phase == phase) {
      return e.name;
    }
  }
  return "unknown";
}

std::optional<Phase> phaseFromName(std::string_view name) {
  for (const PhaseEntry& e : kPhases) {
    if (name == e.name) {
      return e.phase;
    }
  }
  return std::nullopt;
}

std::uint64_t currentThreadOrdinal() {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

JsonValue Span::toJson() const {
  JsonValue::Object obj;
  obj["id"] = id;
  if (parent != 0) {
    obj["parent"] = parent;
  }
  obj["step"] = step;
  obj["phase"] = phaseName(phase);
  obj["start"] = start;
  obj["dur"] = duration;
  if (virtualSeconds != 0) {
    obj["vt"] = virtualSeconds;
  }
  if (invocations != 0) {
    obj["invocations"] = invocations;
  }
  if (messages != 0) {
    obj["messages"] = messages;
  }
  if (bytes != 0) {
    obj["bytes"] = bytes;
  }
  if (stateReads != 0) {
    obj["state_reads"] = stateReads;
  }
  if (stateWrites != 0) {
    obj["state_writes"] = stateWrites;
  }
  if (thread != 0) {
    obj["thread"] = thread;
  }
  if (!note.empty()) {
    obj["note"] = note;
  }
  return JsonValue(std::move(obj));
}

Span Span::fromJson(const JsonValue& v) {
  Span s;
  s.id = static_cast<std::uint64_t>(v.numberOr("id", 0));
  s.parent = static_cast<std::uint64_t>(v.numberOr("parent", 0));
  s.step = static_cast<int>(v.numberOr("step", 0));
  const std::string phase = v.stringOr("phase", "run");
  const auto parsed = phaseFromName(phase);
  if (!parsed) {
    throw JsonError("Span: unknown phase '" + phase + "'");
  }
  s.phase = *parsed;
  s.start = v.numberOr("start", 0);
  s.duration = v.numberOr("dur", 0);
  s.virtualSeconds = v.numberOr("vt", 0);
  s.invocations = static_cast<std::uint64_t>(v.numberOr("invocations", 0));
  s.messages = static_cast<std::uint64_t>(v.numberOr("messages", 0));
  s.bytes = static_cast<std::uint64_t>(v.numberOr("bytes", 0));
  s.stateReads = static_cast<std::uint64_t>(v.numberOr("state_reads", 0));
  s.stateWrites = static_cast<std::uint64_t>(v.numberOr("state_writes", 0));
  s.thread = static_cast<std::uint64_t>(v.numberOr("thread", 0));
  s.note = v.stringOr("note", "");
  return s;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

void Tracer::record(Span span) {
  if (span.id == 0) {
    span.id = allocId();
  }
  LockGuard lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<Span> Tracer::spans() const {
  LockGuard lock(mu_);
  return spans_;
}

std::size_t Tracer::spanCount() const {
  LockGuard lock(mu_);
  return spans_.size();
}

double Tracer::elapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Tracer::clear() {
  LockGuard lock(mu_);
  spans_.clear();
}

void Tracer::exportJsonl(std::ostream& out) const {
  const std::vector<Span> all = spans();
  for (const Span& s : all) {
    out << s.toJson().dump() << '\n';
  }
}

Span Tracer::parseJsonLine(std::string_view line) {
  return Span::fromJson(JsonValue::parse(line));
}

Tracer::Scoped::Scoped(Tracer* tracer, Phase phase, int step)
    : tracer_(tracer), begun_(std::chrono::steady_clock::now()) {
  span_.phase = phase;
  span_.step = step;
  if (tracer_ != nullptr) {
    span_.id = tracer_->allocId();
    span_.start = tracer_->elapsedSeconds();
    span_.thread = currentThreadOrdinal();
    for (auto it = tOpenSpans.rbegin(); it != tOpenSpans.rend(); ++it) {
      if (it->first == tracer_) {
        span_.parent = it->second;
        break;
      }
    }
    tOpenSpans.emplace_back(tracer_, span_.id);
  }
}

Tracer::Scoped::~Scoped() {
  if (tracer_ == nullptr) {
    // Either tracing is disabled or cancel() was called; if this span was
    // pushed on the open stack it must still be popped.
    if (!tOpenSpans.empty() && span_.id != 0 &&
        tOpenSpans.back().second == span_.id) {
      tOpenSpans.pop_back();
    }
    return;
  }
  if (!tOpenSpans.empty() && tOpenSpans.back().second == span_.id) {
    tOpenSpans.pop_back();
  }
  span_.duration = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - begun_)
                       .count();
  tracer_->record(std::move(span_));
}

}  // namespace ripple::obs
