// Iterated MapReduce atop K/V EBSP: runs a body job repeatedly, feeding
// each iteration's output table to the next iteration's input, until a
// client convergence predicate fires or maxIterations is reached.
//
// This is the style of computation the paper argues is better served by a
// fused direct EBSP job (2 synchronizations + 2 I/O rounds per iteration
// here vs. 1 + 1 there); it exists both for completeness of the layering
// (Fig. 2) and as the baseline in the ablation benches.

#pragma once

#include <functional>

#include "mapreduce/mapreduce.h"

namespace ripple::mr {

struct IterationStats {
  int iterations = 0;
  std::uint64_t totalSteps = 0;
  double totalElapsedSeconds = 0;
  double totalVirtualMakespan = 0;
  std::uint64_t totalMessages = 0;
};

/// Runs `makeSpec(iteration, inTable, outTable)` jobs, alternating between
/// two scratch table names derived from `spec0.inputTable`, until
/// `converged(iteration, result)` returns true.  The final output table
/// name is returned via stats by reference of the last spec's outputTable.
template <typename K1, typename V1, typename K2, typename V2, typename K3,
          typename V3>
IterationStats runIterated(
    ebsp::Engine& engine,
    const std::function<MapReduceSpec<K1, V1, K2, V2, K3, V3>(
        int iteration, const std::string& inTable,
        const std::string& outTable)>& makeSpec,
    const std::string& initialInput, int maxIterations,
    const std::function<bool(int iteration, const MapReduceResult&)>&
        converged) {
  kv::KVStore& store = *engine.store();
  IterationStats stats;
  std::string in = initialInput;
  for (int i = 0; i < maxIterations; ++i) {
    const std::string out = initialInput + "__iter" + std::to_string(i + 1);
    MapReduceSpec<K1, V1, K2, V2, K3, V3> spec = makeSpec(i, in, out);
    spec.inputTable = in;
    spec.outputTable = out;
    MapReduceResult r = runMapReduce(engine, spec);
    ++stats.iterations;
    stats.totalSteps += static_cast<std::uint64_t>(r.job.steps);
    stats.totalElapsedSeconds += r.job.elapsedSeconds;
    stats.totalVirtualMakespan += r.job.virtualMakespan;
    stats.totalMessages += r.job.metrics.messagesSent;
    // Iterated MapReduce writes the whole dataset between iterations; drop
    // the previous round's table once consumed (keep the original input).
    if (in != initialInput) {
      store.dropTable(in);
    }
    in = out;
    if (converged(i, r)) {
      break;
    }
  }
  return stats;
}

}  // namespace ripple::mr
