// MapReduce implemented atop K/V EBSP (the MR box in the paper's Fig. 2).
//
// A MapReduce job becomes a two-step EBSP job: the map-like step runs
// mappers keyed by input key and shuffles (K2, V2) pairs as BSP messages;
// the reduce-like step runs reducers keyed by K2 and emits (K3, V3) pairs
// as direct job output.  An optional combiner becomes the EBSP message
// combiner, applied eagerly at senders and at the barrier.

#pragma once

#include <functional>
#include <string>

#include "common/codec.h"
#include "ebsp/engine.h"
#include "ebsp/library.h"
#include "kvstore/store_util.h"

namespace ripple::mr {

/// A MapReduce job over typed keys/values.
///   K1/V1: input pairs (read from inputTable)
///   K2/V2: intermediate pairs (the shuffle)
///   K3/V3: output pairs (written to outputTable and/or exporter)
template <typename K1, typename V1, typename K2, typename V2, typename K3,
          typename V3>
struct MapReduceSpec {
  using Emit2 = std::function<void(const K2&, const V2&)>;
  using Emit3 = std::function<void(const K3&, const V3&)>;

  std::function<void(const K1&, const V1&, const Emit2&)> mapper;
  std::function<void(const K2&, const std::vector<V2>&, const Emit3&)> reducer;

  /// Optional combiner: must be commutative/associative and satisfy
  /// reduce(k, combine-fold(vs)) == reduce(k, vs).
  std::function<V2(const K2&, const V2&, const V2&)> combiner;

  /// Existing table of encoded (K1, V1) pairs.
  std::string inputTable;

  /// Output table for (K3, V3); created consistent with the input if it
  /// does not exist.  Empty = no table output.
  std::string outputTable;

  /// Optional additional sink for output pairs.
  ebsp::RawExporterPtr exporter;
};

struct MapReduceResult {
  ebsp::JobResult job;
  std::uint64_t outputPairs = 0;
};

namespace detail {

// Component keys carry a phase tag so map components (keyed by K1) and
// reduce components (keyed by K2) share one key space.
inline constexpr std::uint8_t kMapPhase = 0;
inline constexpr std::uint8_t kReducePhase = 1;

template <typename K>
Bytes phasedKey(std::uint8_t phase, const K& key) {
  ByteWriter w;
  w.putU8(phase);
  Codec<K>::encode(w, key);
  return w.take();
}

}  // namespace detail

template <typename K1, typename V1, typename K2, typename V2, typename K3,
          typename V3>
MapReduceResult runMapReduce(ebsp::Engine& engine,
                             const MapReduceSpec<K1, V1, K2, V2, K3, V3>& spec) {
  using namespace ripple::ebsp;
  kv::KVStore& store = *engine.store();

  kv::TablePtr input = store.lookupTable(spec.inputTable);
  if (!input) {
    throw std::invalid_argument("runMapReduce: input table '" +
                                spec.inputTable + "' does not exist");
  }
  kv::TablePtr output;
  if (!spec.outputTable.empty()) {
    output = store.lookupTable(spec.outputTable);
    if (!output) {
      output = store.createConsistentTable(spec.outputTable, *input);
    }
  }

  std::atomic<std::uint64_t> outputPairs{0};

  RawJob raw;
  raw.referenceTable = spec.inputTable;
  raw.properties.noContinue = true;

  // Map input is delivered as one message per input pair carrying the
  // encoded V1; the component key carries the phase-tagged K1.
  raw.loaders.push_back(std::make_shared<ebsp::FunctionLoader>(
      [&input](LoaderContext& ctx) {
        for (auto& [k, v] : kv::readAll(*input)) {
          ctx.emitMessage(detail::phasedKey(detail::kMapPhase,
                                            decodeFromBytes<K1>(k)),
                          v);
        }
      }));

  const auto& mapper = spec.mapper;
  const auto& reducer = spec.reducer;
  raw.compute.compute = [&mapper, &reducer](RawComputeContext& ctx) {
    ByteReader keyReader(ctx.key());
    const std::uint8_t phase = keyReader.getU8();
    if (phase == detail::kMapPhase) {
      const K1 key = Codec<K1>::decode(keyReader);
      typename MapReduceSpec<K1, V1, K2, V2, K3, V3>::Emit2 emit =
          [&ctx](const K2& k2, const V2& v2) {
            ctx.outputMessage(detail::phasedKey(detail::kReducePhase, k2),
                              encodeToBytes(v2));
          };
      for (const Bytes& m : ctx.inputMessages()) {
        mapper(key, decodeFromBytes<V1>(m), emit);
      }
    } else {
      const K2 key = Codec<K2>::decode(keyReader);
      std::vector<V2> values;
      values.reserve(ctx.inputMessages().size());
      for (const Bytes& m : ctx.inputMessages()) {
        values.push_back(decodeFromBytes<V2>(m));
      }
      typename MapReduceSpec<K1, V1, K2, V2, K3, V3>::Emit3 emit =
          [&ctx](const K3& k3, const V3& v3) {
            ctx.directOutput(encodeToBytes(k3), encodeToBytes(v3));
          };
      reducer(key, values, emit);
    }
    return false;
  };

  if (spec.combiner) {
    const auto& combiner = spec.combiner;
    raw.compute.combineMessages = [&combiner](BytesView key, BytesView m1,
                                              BytesView m2) -> Bytes {
      ByteReader keyReader(key);
      const std::uint8_t phase = keyReader.getU8();
      if (phase != detail::kReducePhase) {
        throw std::logic_error("runMapReduce: combiner on map-phase key");
      }
      const K2 k2 = Codec<K2>::decode(keyReader);
      return encodeToBytes(combiner(k2, decodeFromBytes<V2>(m1),
                                    decodeFromBytes<V2>(m2)));
    };
  }

  // Output pairs: to the output table (routed batch at finish would be
  // nicer, but per-pair put keeps this simple and correct) and/or the
  // client exporter.
  auto sink = spec.exporter;
  raw.directOutputter = std::make_shared<ebsp::FunctionExporter>(
      [output, sink, &outputPairs](BytesView k, BytesView v) {
        outputPairs.fetch_add(1, std::memory_order_relaxed);
        if (output) {
          output->put(k, v);
        }
        if (sink) {
          sink->consume(k, v);
        }
      });

  MapReduceResult result;
  result.job = engine.run(raw);
  if (sink) {
    sink->finish();
  }
  result.outputPairs = outputPairs.load();
  return result;
}

/// Classic word count: input lines -> (word, count) pairs.  Used by the
/// quickstart example and the MapReduce layer tests.
MapReduceSpec<std::string, std::string, std::string, std::uint64_t,
              std::string, std::uint64_t>
wordCountSpec(const std::string& inputTable, const std::string& outputTable);

}  // namespace ripple::mr
