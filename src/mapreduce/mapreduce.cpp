// Non-template conveniences for the MapReduce layer.

#include "mapreduce/mapreduce.h"

#include <cctype>
#include <sstream>

namespace ripple::mr {

MapReduceSpec<std::string, std::string, std::string, std::uint64_t,
              std::string, std::uint64_t>
wordCountSpec(const std::string& inputTable, const std::string& outputTable) {
  MapReduceSpec<std::string, std::string, std::string, std::uint64_t,
                std::string, std::uint64_t>
      spec;
  spec.inputTable = inputTable;
  spec.outputTable = outputTable;
  spec.mapper = [](const std::string&, const std::string& line,
                   const auto& emit) {
    std::string word;
    for (const char c : line) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
      } else if (!word.empty()) {
        emit(word, 1);
        word.clear();
      }
    }
    if (!word.empty()) {
      emit(word, 1);
    }
  };
  spec.combiner = [](const std::string&, std::uint64_t a, std::uint64_t b) {
    return a + b;
  };
  spec.reducer = [](const std::string& word,
                    const std::vector<std::uint64_t>& counts,
                    const auto& emit) {
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) {
      total += c;
    }
    emit(word, total);
  };
  return spec;
}

}  // namespace ripple::mr
