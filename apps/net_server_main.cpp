// ripple_net_server — a Ripple data-plane process: one net::Server
// hosting a fresh in-process store, serving the wire protocol until a
// client sends kShutdown or the process receives SIGINT/SIGTERM.
//
// Used by scripts/bench_multiproc.sh to assemble a real multi-process
// deployment on localhost.  Prints
//   RIPPLE_NET_SERVER LISTENING <port>
// once accepting, so launchers can bind ephemeral ports (--port 0) and
// scrape the result.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "kvstore/store_factory.h"
#include "net/remote_store.h"
#include "net/server.h"

namespace {

volatile std::sig_atomic_t gSignaled = 0;

void onSignal(int) { gSignaled = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--backend partitioned|shard|local] "
               "[--containers N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string backend = "partitioned";
  std::uint32_t containers = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      backend = v;
    } else if (arg == "--containers") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      containers = static_cast<std::uint32_t>(std::atoi(v));
    } else {
      return usage(argv[0]);
    }
  }

  const auto parsed = ripple::kv::parseStoreBackend(backend);
  if (!parsed || *parsed == ripple::kv::StoreBackend::kRemote) {
    std::fprintf(stderr, "not a hostable backend: %s\n", backend.c_str());
    return 2;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  ripple::net::Server::Options options;
  options.hosted = ripple::kv::makeStore(*parsed, containers);
  options.listenOn.port = port;
  // Same env knobs the client side honors (DESIGN.md §9): the launcher
  // tunes one environment and both halves of the deployment agree.
  if (const auto ms = ripple::net::parseEnvMs("RIPPLE_NET_TIMEOUT_MS", 1,
                                              3'600'000)) {
    options.sendTimeoutMs = *ms;
  }
  if (const auto ms = ripple::net::parseEnvMs("RIPPLE_NET_QUEUE_WAIT_MS", 1,
                                              60'000)) {
    options.maxQueueWaitMs = static_cast<std::uint32_t>(*ms);
  }
  ripple::net::Server server(std::move(options));
  server.start();
  std::printf("RIPPLE_NET_SERVER LISTENING %u\n", server.port());
  std::fflush(stdout);

  // Poll instead of a pure blocking wait so a signal can end the process
  // even when no client ever connects.
  while (!server.stopRequested() && gSignaled == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  std::printf("RIPPLE_NET_SERVER STOPPED\n");
  return 0;
}
