// ripple_durable_driver — the restart-resume proof for the durable log
// store (DESIGN.md §14).
//
// Runs incremental SSSP on a deterministic graph against the "log"
// backend rooted at --store-path, with per-step checkpoints pinned to a
// stable jobId so a restarted process can find them.  Three phases:
//
//   --phase baseline   Fresh store, uninterrupted run.  Prints the final
//                      distance digest: SSSP_DIGEST <16 hex>.
//   --phase crash      Same workload, but after the first barrier's
//                      checkpoint has committed it prints
//                      DURABLE_WINDOW sssp
//                      and pauses, inviting scripts/bench_durable.sh to
//                      kill -9 the process mid-job.
//   --phase resume     Reopens the crash phase's store directory with
//                      checkpoint.resume: the engine finds the committed
//                      on-disk checkpoint, restores it, and finishes the
//                      job from the recorded step.  Prints the digest
//                      plus DURABLE_RESUMED <n> (engine recoveries; must
//                      be >= 1 or nothing was actually resumed).
//
// scripts/bench_durable.sh requires the resumed digest to be
// byte-identical to the baseline digest: recovery to the last committed
// epoch plus checkpoint replay must be invisible in the final state.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "apps/sssp.h"
#include "common/bytes.h"
#include "common/hash.h"
#include "ebsp/engine.h"
#include "graph/graph_gen.h"
#include "kvstore/log_store.h"
#include "kvstore/store_factory.h"
#include "obs/metrics.h"

namespace {

using namespace ripple;

enum class Phase { kBaseline, kCrash, kResume };

constexpr const char* kJobId = "durable-sssp";
constexpr const char* kStateTable = "sssp_state";
constexpr std::uint32_t kParts = 6;

graph::Graph makeGraph(bool smoke) {
  graph::PowerLawOptions gopts;
  gopts.vertices = smoke ? 100 : 250;
  gopts.edges = smoke ? 500 : 1200;
  gopts.seed = 4;
  return graph::generatePowerLaw(gopts);
}

std::uint64_t distanceDigest(const std::vector<std::int32_t>& distances) {
  ByteWriter w;
  for (const std::int32_t d : distances) {
    w.putVarintSigned(d);
  }
  return fnv1a64(w.view());
}

int runPhase(Phase phase, const std::string& storePath, int threads,
             bool smoke) {
  const graph::Graph g = makeGraph(smoke);

  obs::MetricsRegistry registry;
  ebsp::EngineOptions eopts;
  eopts.threads = threads;
  eopts.metrics = &registry;
  eopts.checkpoint.enabled = true;
  eopts.checkpoint.interval = 1;
  eopts.checkpoint.jobId = kJobId;
  eopts.checkpoint.resume = phase == Phase::kResume;
  if (phase == Phase::kCrash) {
    // The step loop commits the checkpoint's durable epoch BEFORE the
    // barrier hook runs, so a kill -9 landing inside this pause finds a
    // complete step-1 checkpoint on disk.
    eopts.onBarrier = [](int step) {
      if (step == 1) {
        std::printf("DURABLE_WINDOW sssp\n");
        std::fflush(stdout);
        std::this_thread::sleep_for(std::chrono::milliseconds(3000));
      }
    };
  }

  auto store = kv::makeStore(kv::StoreBackend::kLog, kParts, storePath);
  std::printf("DRIVER_BACKEND %s\n", store->backendName());
  std::fflush(stdout);

  // The graph load is deterministic, so the resume phase rebuilds the
  // state table from scratch (the recovered incarnation is dropped — its
  // values are about to be overwritten from the checkpoint shadows
  // anyway, and recreating pins the partitioner the job expects).
  if (store->lookupTable(kStateTable)) {
    store->dropTable(kStateTable);
  }

  ebsp::Engine engine(store, eopts);
  apps::SsspOptions options;
  options.parts = kParts;
  options.stateTable = kStateTable;
  apps::SsspDriver driver(engine, options);
  driver.loadGraph(g);
  driver.initialize();

  const std::uint64_t digest = distanceDigest(driver.distances(g.vertexCount()));
  std::printf("SSSP_DIGEST %016llx\n",
              static_cast<unsigned long long>(digest));
  if (auto* durable = dynamic_cast<kv::DurableStore*>(store.get())) {
    std::printf("DURABLE_EPOCH %llu\n",
                static_cast<unsigned long long>(durable->lastCommittedEpoch()));
  }
  std::printf("DURABLE_RESUMED %llu\n",
              static_cast<unsigned long long>(
                  registry.counter("ebsp.recoveries").value()));
  std::printf("DRIVER_OK\n");
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Phase phase = Phase::kBaseline;
  std::string storePath;
  int threads = 4;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--phase" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "baseline") {
        phase = Phase::kBaseline;
      } else if (name == "crash") {
        phase = Phase::kCrash;
      } else if (name == "resume") {
        phase = Phase::kResume;
      } else {
        std::fprintf(stderr, "unknown phase '%s'\n", name.c_str());
        return 2;
      }
    } else if (arg == "--store-path" && i + 1 < argc) {
      storePath = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --phase baseline|crash|resume "
                   "--store-path DIR [--threads N] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  if (storePath.empty()) {
    std::fprintf(stderr, "%s: --store-path is required\n", argv[0]);
    return 2;
  }
  return runPhase(phase, storePath, threads, smoke);
}
