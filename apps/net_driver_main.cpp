// ripple_net_driver — the driver side of a multi-process Ripple run.
//
// Builds its store via the normal backend selection (RIPPLE_STORE /
// RIPPLE_REMOTE_ENDPOINTS), runs PageRank, SSSP, and SUMMA end-to-end,
// and prints an order-independent FNV-1a digest of each final state:
//   PAGERANK_DIGEST <16 hex>
//   SSSP_DIGEST <16 hex>
//   SUMMA_DIGEST <16 hex>
// scripts/bench_multiproc.sh runs it once against the in-process
// partitioned backend and once against N ripple_net_server processes and
// requires identical digests — the end-to-end form of the backend
// differential suite.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "common/bytes.h"
#include "common/hash.h"
#include "common/random.h"
#include "ebsp/engine.h"
#include "graph/graph_gen.h"
#include "kvstore/store_factory.h"
#include "kvstore/store_util.h"
#include "matrix/summa.h"
#include "net/frame.h"
#include "net/remote_store.h"

namespace {

using namespace ripple;

std::uint64_t runPageRankDigest(const kv::KVStorePtr& store, int threads,
                                bool smoke) {
  graph::PowerLawOptions gopts;
  gopts.vertices = smoke ? 120 : 300;
  gopts.edges = smoke ? 600 : 1800;
  gopts.seed = 21;
  const graph::Graph g = graph::generatePowerLaw(gopts);
  apps::loadPageRankGraph(*store, "pr_graph", g, 6);
  ebsp::EngineOptions eopts;
  eopts.threads = threads;
  ebsp::Engine engine(store, eopts);
  apps::PageRankOptions options;
  options.iterations = smoke ? 3 : 5;
  apps::runPageRank(engine, options);
  auto state = kv::readAll(*store->lookupTable("pr_graph"));
  std::sort(state.begin(), state.end());
  ByteWriter w;
  for (const auto& [key, value] : state) {
    w.putBytes(key);
    w.putBytes(value);
  }
  return fnv1a64(w.view());
}

std::uint64_t runSsspDigest(const kv::KVStorePtr& store, int threads,
                            bool smoke) {
  graph::PowerLawOptions gopts;
  gopts.vertices = smoke ? 100 : 250;
  gopts.edges = smoke ? 500 : 1200;
  gopts.seed = 4;
  const graph::Graph g = graph::generatePowerLaw(gopts);
  ebsp::EngineOptions eopts;
  eopts.threads = threads;
  ebsp::Engine engine(store, eopts);
  apps::SsspOptions options;
  options.parts = 6;
  apps::SsspDriver driver(engine, options);
  driver.loadGraph(g);
  driver.initialize();
  const auto distances = driver.distances(g.vertexCount());
  ByteWriter w;
  for (const std::int32_t d : distances) {
    w.putVarintSigned(d);
  }
  return fnv1a64(w.view());
}

std::uint64_t runSummaDigest(const kv::KVStorePtr& store, int threads,
                             bool smoke) {
  const std::size_t grid = smoke ? 2 : 3;
  const std::size_t block = 8;
  Rng rng(123);
  matrix::BlockMatrix a(grid, block);
  matrix::BlockMatrix b(grid, block);
  a.fillRandom(rng);
  b.fillRandom(rng);
  ebsp::EngineOptions eopts;
  eopts.threads = threads;
  ebsp::Engine engine(store, eopts);
  matrix::SummaOptions options;
  options.parts = static_cast<std::uint32_t>(grid * grid);
  const matrix::BlockMatrix c = runSumma(engine, a, b, options).c;
  ByteWriter w;
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = 0; j < grid; ++j) {
      for (const double v : c.block(i, j).data()) {
        w.putDouble(v);
      }
    }
  }
  return fnv1a64(w.view());
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  bool smoke = false;
  bool shutdownServers = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--shutdown-servers") {
      shutdownServers = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--shutdown-servers]\n",
                   argv[0]);
      return 2;
    }
  }

  auto store = kv::makeStore(kv::StoreBackend::kDefault, 6);
  std::printf("DRIVER_BACKEND %s\n", store->backendName());

  std::printf("PAGERANK_DIGEST %016llx\n",
              static_cast<unsigned long long>(
                  runPageRankDigest(store, threads, smoke)));
  std::printf("SSSP_DIGEST %016llx\n",
              static_cast<unsigned long long>(
                  runSsspDigest(store, threads, smoke)));
  std::printf("SUMMA_DIGEST %016llx\n",
              static_cast<unsigned long long>(
                  runSummaDigest(store, threads, smoke)));
  std::fflush(stdout);

  if (shutdownServers) {
    if (auto remote = std::dynamic_pointer_cast<net::RemoteStore>(store)) {
      for (std::size_t e = 0; e < remote->placement().endpointCount(); ++e) {
        try {
          (void)remote->client().call(e, net::Opcode::kShutdown, "",
                                      fault::Op::kGet, "", 0,
                                      /*retryIo=*/false);
        } catch (const std::exception&) {
          // A server that is already gone needs no shutdown.
        }
      }
    }
  }
  std::printf("DRIVER_OK\n");
  return 0;
}
