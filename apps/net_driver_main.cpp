// ripple_net_driver — the driver side of a multi-process Ripple run.
//
// Builds its store via the normal backend selection (RIPPLE_STORE /
// RIPPLE_REMOTE_ENDPOINTS), runs PageRank, SSSP, and SUMMA end-to-end,
// and prints an order-independent FNV-1a digest of each final state:
//   PAGERANK_DIGEST <16 hex>
//   SSSP_DIGEST <16 hex>
//   SUMMA_DIGEST <16 hex>
// scripts/bench_multiproc.sh runs it once against the in-process
// partitioned backend and once against N ripple_net_server processes and
// requires identical digests — the end-to-end form of the backend
// differential suite.
//
// --chaos (failover, DESIGN.md §11): per-step checkpointing is enabled
// and each job announces a kill window after its first barrier —
//   CHAOS_WINDOW <job>
// followed by a pause, during which scripts/bench_multiproc.sh --chaos
// kills -9 one of the servers and restarts it on the same port.  The
// engines must recover from the driver-mirror checkpoint and the digests
// must STILL match the fault-free baseline.  Afterwards the driver prints
// the failover ledger (FAILOVER_* lines), closing with
//   FAILOVER_LEDGER CLOSED
// when every observed restart was reseeded and recovered from.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "common/bytes.h"
#include "common/hash.h"
#include "common/random.h"
#include "ebsp/engine.h"
#include "graph/graph_gen.h"
#include "kvstore/store_factory.h"
#include "kvstore/store_util.h"
#include "matrix/summa.h"
#include "net/frame.h"
#include "net/remote_store.h"
#include "obs/metrics.h"

namespace {

using namespace ripple;

/// Cross-job chaos state: one registry accumulating every engine's
/// ebsp.* counters, so the final ledger covers the whole run.
struct ChaosMode {
  bool enabled = false;
  obs::MetricsRegistry registry;
};

/// Configure one engine run for chaos mode: per-step checkpoints, a
/// generous transient budget (the kill window spans several failed
/// probes), and the CHAOS_WINDOW marker after the job's first barrier.
/// The pause gives the launcher time to kill -9 and restart a server
/// while the job still has steps left to recover.
void armChaos(ChaosMode* chaos, ebsp::EngineOptions& eopts,
              const char* job) {
  if (chaos == nullptr || !chaos->enabled) {
    return;
  }
  eopts.checkpoint.enabled = true;
  eopts.checkpoint.interval = 1;
  eopts.retry.maxAttempts = 10;
  eopts.metrics = &chaos->registry;
  auto announced = std::make_shared<bool>(false);
  eopts.onBarrier = [job, announced](int step) {
    if (step == 1 && !*announced) {
      *announced = true;
      std::printf("CHAOS_WINDOW %s\n", job);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(2000));
    }
  };
}

std::uint64_t runPageRankDigest(const kv::KVStorePtr& store, int threads,
                                bool smoke, ChaosMode* chaos) {
  graph::PowerLawOptions gopts;
  gopts.vertices = smoke ? 120 : 300;
  gopts.edges = smoke ? 600 : 1800;
  gopts.seed = 21;
  const graph::Graph g = graph::generatePowerLaw(gopts);
  apps::loadPageRankGraph(*store, "pr_graph", g, 6);
  ebsp::EngineOptions eopts;
  eopts.threads = threads;
  armChaos(chaos, eopts, "pagerank");
  ebsp::Engine engine(store, eopts);
  apps::PageRankOptions options;
  options.iterations = smoke ? 3 : 5;
  apps::runPageRank(engine, options);
  auto state = kv::readAll(*store->lookupTable("pr_graph"));
  std::sort(state.begin(), state.end());
  ByteWriter w;
  for (const auto& [key, value] : state) {
    w.putBytes(key);
    w.putBytes(value);
  }
  return fnv1a64(w.view());
}

std::uint64_t runSsspDigest(const kv::KVStorePtr& store, int threads,
                            bool smoke, ChaosMode* chaos) {
  graph::PowerLawOptions gopts;
  gopts.vertices = smoke ? 100 : 250;
  gopts.edges = smoke ? 500 : 1200;
  gopts.seed = 4;
  const graph::Graph g = graph::generatePowerLaw(gopts);
  ebsp::EngineOptions eopts;
  eopts.threads = threads;
  armChaos(chaos, eopts, "sssp");
  ebsp::Engine engine(store, eopts);
  apps::SsspOptions options;
  options.parts = 6;
  apps::SsspDriver driver(engine, options);
  driver.loadGraph(g);
  driver.initialize();
  const auto distances = driver.distances(g.vertexCount());
  ByteWriter w;
  for (const std::int32_t d : distances) {
    w.putVarintSigned(d);
  }
  return fnv1a64(w.view());
}

std::uint64_t runSummaDigest(const kv::KVStorePtr& store, int threads,
                             bool smoke, ChaosMode* chaos) {
  const std::size_t grid = smoke ? 2 : 3;
  const std::size_t block = 8;
  Rng rng(123);
  matrix::BlockMatrix a(grid, block);
  matrix::BlockMatrix b(grid, block);
  a.fillRandom(rng);
  b.fillRandom(rng);
  ebsp::EngineOptions eopts;
  eopts.threads = threads;
  armChaos(chaos, eopts, "summa");
  ebsp::Engine engine(store, eopts);
  matrix::SummaOptions options;
  options.parts = static_cast<std::uint32_t>(grid * grid);
  const matrix::BlockMatrix c = runSumma(engine, a, b, options).c;
  ByteWriter w;
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = 0; j < grid; ++j) {
      for (const double v : c.block(i, j).data()) {
        w.putDouble(v);
      }
    }
  }
  return fnv1a64(w.view());
}

void printFailoverLedger(ChaosMode& chaos, net::RemoteStore& remote) {
  const net::NetMetrics& m = remote.client().metrics();
  const std::uint64_t epochChanges = m.epochChanges.load();
  const std::uint64_t reseeds = m.reseeds.load();
  const std::uint64_t recoveries =
      chaos.registry.counter("ebsp.recoveries").value();
  std::printf("FAILOVER_EPOCH_CHANGES %llu\n",
              static_cast<unsigned long long>(epochChanges));
  std::printf("FAILOVER_RESEEDS %llu\n",
              static_cast<unsigned long long>(reseeds));
  std::printf("FAILOVER_RECOVERIES %llu\n",
              static_cast<unsigned long long>(recoveries));
  std::printf("FAILOVER_DEDUP_REPLAYS %llu\n",
              static_cast<unsigned long long>(m.dedupReplays.load()));
  std::printf("FAILOVER_POOL_INVALIDATED %llu\n",
              static_cast<unsigned long long>(m.poolInvalidated.load()));
  std::printf("FAILOVER_RECONNECTS %llu\n",
              static_cast<unsigned long long>(m.reconnects.load()));
  // Closed: every observed restart completed its registry reseed and was
  // recovered from by an engine (a restart nobody recovered from would
  // have crashed the run or corrupted a digest anyway).
  const bool closed = epochChanges == reseeds && recoveries >= epochChanges;
  std::printf("FAILOVER_LEDGER %s\n", closed ? "CLOSED" : "OPEN");
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  bool smoke = false;
  bool shutdownServers = false;
  ChaosMode chaos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--shutdown-servers") {
      shutdownServers = true;
    } else if (arg == "--chaos") {
      chaos.enabled = true;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--smoke] [--threads N] [--chaos] [--shutdown-servers]\n",
          argv[0]);
      return 2;
    }
  }

  auto store = kv::makeStore(kv::StoreBackend::kDefault, 6);
  std::printf("DRIVER_BACKEND %s\n", store->backendName());

  std::printf("PAGERANK_DIGEST %016llx\n",
              static_cast<unsigned long long>(
                  runPageRankDigest(store, threads, smoke, &chaos)));
  std::printf("SSSP_DIGEST %016llx\n",
              static_cast<unsigned long long>(
                  runSsspDigest(store, threads, smoke, &chaos)));
  std::printf("SUMMA_DIGEST %016llx\n",
              static_cast<unsigned long long>(
                  runSummaDigest(store, threads, smoke, &chaos)));
  std::fflush(stdout);

  if (chaos.enabled) {
    if (auto remote = std::dynamic_pointer_cast<net::RemoteStore>(store)) {
      printFailoverLedger(chaos, *remote);
    } else {
      // No wire, no restarts: the ledger is vacuously closed.
      std::printf("FAILOVER_LEDGER CLOSED\n");
    }
    std::fflush(stdout);
  }

  if (shutdownServers) {
    if (auto remote = std::dynamic_pointer_cast<net::RemoteStore>(store)) {
      for (std::size_t e = 0; e < remote->placement().endpointCount(); ++e) {
        try {
          (void)remote->client().call(e, net::Opcode::kShutdown, "",
                                      fault::Op::kGet, "", 0,
                                      /*retryIo=*/false);
        } catch (const std::exception&) {
          // A server that is already gone needs no shutdown.
        }
      }
    }
  }
  std::printf("DRIVER_OK\n");
  return 0;
}
