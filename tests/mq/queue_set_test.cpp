// Queue-set conformance for both Queuing implementations (in-memory and
// the table-backed one from paper §IV-B).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "common/codec.h"
#include "kvstore/partitioned_store.h"
#include "mq/queue.h"
#include "net/remote_queue.h"
#include "net/remote_store.h"

namespace ripple::mq {
namespace {

using namespace std::chrono_literals;

struct QueuingFactory {
  const char* name;
  QueuingPtr (*make)(kv::KVStorePtr);
};

class QueueSetTest : public ::testing::TestWithParam<QueuingFactory> {
 protected:
  void SetUp() override {
    store_ = kv::PartitionedStore::create(3);
    kv::TableOptions options;
    options.parts = 3;
    placement_ = store_->createTable("placement", std::move(options));
    queuing_ = GetParam().make(store_);
  }

  kv::KVStorePtr store_;
  kv::TablePtr placement_;
  QueuingPtr queuing_;
};

TEST_P(QueueSetTest, PlacementDeterminesQueueCount) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  EXPECT_EQ(set->numQueues(), 3u);
  EXPECT_EQ(set->name(), "q");
}

TEST_P(QueueSetTest, DuplicateNameThrows) {
  queuing_->createQueueSet("q", placement_);
  EXPECT_THROW(queuing_->createQueueSet("q", placement_),
               std::invalid_argument);
}

TEST_P(QueueSetTest, WorkersReceiveTheirQueuesMessages) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  for (std::uint32_t q = 0; q < 3; ++q) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(set->put(q, encodeToBytes(q * 100 + i)));
    }
  }
  std::mutex mu;
  std::map<std::uint32_t, std::vector<std::uint32_t>> received;
  set->runWorkers([&](WorkerContext& ctx) {
    for (int i = 0; i < 5; ++i) {
      auto msg = ctx.read(2000ms);
      ASSERT_TRUE(msg.has_value());
      std::lock_guard<std::mutex> lock(mu);
      received[ctx.queueIndex()].push_back(
          decodeFromBytes<std::uint32_t>(*msg));
    }
  });
  for (std::uint32_t q = 0; q < 3; ++q) {
    ASSERT_EQ(received[q].size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(received[q][i], q * 100 + i);  // Per-sender FIFO.
    }
  }
}

TEST_P(QueueSetTest, PerSenderFifoUnderConcurrentSenders) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  constexpr int kPerSender = 500;
  std::thread s1([&] {
    for (int i = 0; i < kPerSender; ++i) {
      set->put(0, encodeToBytes(std::pair<int, int>(1, i)));
    }
  });
  std::thread s2([&] {
    for (int i = 0; i < kPerSender; ++i) {
      set->put(0, encodeToBytes(std::pair<int, int>(2, i)));
    }
  });
  s1.join();
  s2.join();

  std::map<int, int> lastSeen{{1, -1}, {2, -1}};
  set->runWorkers([&](WorkerContext& ctx) {
    if (ctx.queueIndex() != 0) {
      return;
    }
    for (int i = 0; i < 2 * kPerSender; ++i) {
      auto msg = ctx.read(2000ms);
      ASSERT_TRUE(msg.has_value());
      const auto [sender, seq] = decodeFromBytes<std::pair<int, int>>(*msg);
      EXPECT_EQ(seq, lastSeen[sender] + 1);
      lastSeen[sender] = seq;
    }
  });
  EXPECT_EQ(lastSeen[1], kPerSender - 1);
  EXPECT_EQ(lastSeen[2], kPerSender - 1);
}

TEST_P(QueueSetTest, ReadTimesOutOnEmptyQueue) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  set->runWorkers([&](WorkerContext& ctx) {
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(ctx.read(30ms), std::nullopt);
    EXPECT_GE(std::chrono::steady_clock::now() - start, 20ms);
  });
}

TEST_P(QueueSetTest, CloseStopsPutsButDrainsReads) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  ASSERT_TRUE(set->put(0, "before"));
  set->close();
  EXPECT_FALSE(set->put(0, "after"));
  std::atomic<int> drained{0};
  set->runWorkers([&](WorkerContext& ctx) {
    while (auto msg = ctx.read(50ms)) {
      EXPECT_EQ(*msg, "before");
      drained.fetch_add(1);
    }
  });
  EXPECT_EQ(drained.load(), 1);
}

TEST_P(QueueSetTest, BacklogCountsBufferedMessages) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  EXPECT_EQ(set->backlog(), 0u);
  set->put(0, "a");
  set->put(1, "b");
  EXPECT_EQ(set->backlog(), 2u);
}

TEST_P(QueueSetTest, PutWhileWorkersRunning) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  std::atomic<int> received{0};
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    for (std::uint32_t q = 0; q < 3; ++q) {
      set->put(q, "live");
    }
    std::this_thread::sleep_for(20ms);
    set->close();
  });
  set->runWorkers([&](WorkerContext& ctx) {
    while (auto msg = ctx.read(200ms)) {
      received.fetch_add(1);
    }
  });
  producer.join();
  EXPECT_EQ(received.load(), 3);
}

TEST_P(QueueSetTest, DeleteQueueSetClosesIt) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  queuing_->deleteQueueSet("q");
  EXPECT_FALSE(set->put(0, "x"));
  // Recreating under the same name works.
  QueueSetPtr again = queuing_->createQueueSet("q", placement_);
  EXPECT_TRUE(again->put(0, "y"));
}

TEST_P(QueueSetTest, BadQueueIndexThrowsOrRejects) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  EXPECT_ANY_THROW(set->put(99, "x"));
}

// Regression for a lock-rank validator finding: MemQueuing::deleteQueueSet
// used to close the member queues while still holding the queuing registry
// lock — an equal-rank (kQueue under kQueue) acquisition, i.e. exactly the
// shape that deadlocks if any queue operation ever reaches back into the
// registry.  Pre-fix this test dies in the validator; post-fix the delete
// must both complete and wake every blocked reader.
TEST_P(QueueSetTest, DeleteWhileReadersBlockedWakesAndTerminates) {
  QueueSetPtr set = queuing_->createQueueSet("q", placement_);
  std::atomic<int> drained{0};
  std::thread workers([&] {
    set->runWorkers([&](WorkerContext& ctx) {
      if (!ctx.read(5s)) {
        drained.fetch_add(1);
      }
    });
  });
  std::this_thread::sleep_for(50ms);
  queuing_->deleteQueueSet("q");
  workers.join();  // Hangs (until the 5s timeouts) if delete fails to wake.
  EXPECT_GT(drained.load(), 0);
}

QueuingPtr makeMem(kv::KVStorePtr store) {
  return makeMemQueuing(std::move(store));
}
QueuingPtr makeTable(kv::KVStorePtr store) {
  return makeTableQueuing(std::move(store));
}
QueuingPtr makeRemote(kv::KVStorePtr /*store*/) {
  // The remote leg ignores the in-process store: its queues must live on
  // net::Server processes, reached through the full wire stack.  Two
  // loopback servers so queue placement actually shards.
  net::LoopbackOptions options;
  options.servers = 2;
  return net::makeRemoteQueuing(net::makeLoopbackStore(options));
}

INSTANTIATE_TEST_SUITE_P(
    Queuings, QueueSetTest,
    ::testing::Values(QueuingFactory{"Mem", &makeMem},
                      QueuingFactory{"TableBacked", &makeTable},
                      QueuingFactory{"Remote", &makeRemote}),
    [](const ::testing::TestParamInfo<QueuingFactory>& info) {
      return info.param.name;
    });

TEST(MemQueueSteal, StealTakesFromOtherQueue) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  kv::TablePtr placement = store->createTable("p", std::move(options));
  QueuingPtr queuing = makeMemQueuing(store);
  QueueSetPtr set = queuing->createQueueSet("q", placement);
  set->put(0, "victim");

  std::atomic<bool> stolen{false};
  set->runWorkers([&](WorkerContext& ctx) {
    if (ctx.queueIndex() != 1) {
      return;  // Leave queue 0 unread so the message can only be stolen.
    }
    for (int i = 0; i < 200 && !stolen.load(); ++i) {
      if (auto msg = ctx.trySteal(0)) {
        EXPECT_EQ(*msg, "victim");
        stolen.store(true);
      } else {
        std::this_thread::sleep_for(1ms);
      }
    }
  });
  EXPECT_TRUE(stolen.load());
}

}  // namespace
}  // namespace ripple::mq
