#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>

namespace ripple {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndSampleStddev) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev (n-1): sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SummaryFormat) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_EQ(s.summary(1), "2.0 ± 1.4");
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(RunningStats, PercentilesInterpolateBetweenRanks) {
  RunningStats s;
  // Insert out of order; percentile() sorts lazily.
  for (const double v : {9.0, 1.0, 5.0, 3.0, 7.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.p50(), 5.0);
  // p95 over 5 samples: rank 3.8 -> 7 + 0.8 * (9 - 7).
  EXPECT_NEAR(s.p95(), 8.6, 1e-12);
  EXPECT_NEAR(s.p99(), 8.92, 1e-12);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 9.0);
}

TEST(RunningStats, PercentileAfterMoreAddsResorts) {
  RunningStats s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.p50(), 10.0);
  s.add(0.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.p50(), 2.0);
}

TEST(RunningStats, PercentilesEmpty) {
  const RunningStats s;
  EXPECT_EQ(s.p50(), 0.0);
  EXPECT_EQ(s.p99(), 0.0);
  EXPECT_EQ(s.percentile(0.0), 0.0);
  EXPECT_EQ(s.percentile(1.0), 0.0);
}

TEST(RunningStats, PercentileSingleElementIsThatElement) {
  RunningStats s;
  s.add(7.5);
  for (const double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(s.percentile(q), 7.5) << "q=" << q;
  }
}

TEST(RunningStats, PercentileBoundariesAreExactOrderStatistics) {
  RunningStats s;
  for (const double v : {4.0, 2.0, 8.0}) {
    s.add(v);
  }
  // Out-of-range q clamps to the min/max order statistic — no
  // interpolation arithmetic at the edges.
  EXPECT_DOUBLE_EQ(s.percentile(-0.5), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 8.0);
  EXPECT_DOUBLE_EQ(s.percentile(2.0), 8.0);
}

TEST(RunningStats, PercentileNanThrows) {
  // std::clamp passes NaN through, and casting a NaN rank to size_t is
  // UB — the pre-fix code indexed samples_ with garbage.
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_THROW((void)s.percentile(std::nan("")), std::invalid_argument);
  const RunningStats empty;
  EXPECT_THROW((void)empty.percentile(std::nan("")), std::invalid_argument);
}

TEST(RunningStats, SummaryWithTailsFormat) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_EQ(s.summaryWithTails(1), "2.0 ± 1.4 (p50 2.0, p95 2.9, p99 3.0)");
}

TEST(Summarize, MatchesIncremental) {
  const std::vector<double> values{1.5, 2.5, 10.0, -4.0};
  RunningStats direct;
  for (const double v : values) {
    direct.add(v);
  }
  const RunningStats viaHelper = summarize(values);
  EXPECT_DOUBLE_EQ(viaHelper.mean(), direct.mean());
  EXPECT_DOUBLE_EQ(viaHelper.stddev(), direct.stddev());
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.elapsedSeconds(), 0.015);
  EXPECT_GE(sw.elapsedMillis(), 15.0);
  sw.reset();
  EXPECT_LT(sw.elapsedSeconds(), 0.015);
}

}  // namespace
}  // namespace ripple
