#include "common/bytes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ripple {
namespace {

TEST(ByteWriter, FixedWidthRoundtrip) {
  ByteWriter w;
  w.putFixed32(0xdeadbeefu);
  w.putFixed64(0x0123456789abcdefull);
  w.putU8(7);

  ByteReader r(w.view());
  EXPECT_EQ(r.getFixed32(), 0xdeadbeefu);
  EXPECT_EQ(r.getFixed64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.getU8(), 7);
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteWriter, FixedIsLittleEndian) {
  ByteWriter w;
  w.putFixed32(0x01020304u);
  const Bytes b = w.take();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x01);
}

TEST(ByteWriter, TakeLeavesWriterReusable) {
  ByteWriter w;
  w.putU8(1);
  const Bytes first = w.take();
  EXPECT_EQ(first.size(), 1u);
  EXPECT_TRUE(w.empty());
  w.putU8(2);
  EXPECT_EQ(w.size(), 1u);
}

class VarintTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintTest, Roundtrip) {
  ByteWriter w;
  w.putVarint(GetParam());
  ByteReader r(w.view());
  EXPECT_EQ(r.getVarint(), GetParam());
  EXPECT_TRUE(r.atEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintTest,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull, 16383ull, 16384ull,
                      (1ull << 32) - 1, 1ull << 32, (1ull << 56) + 123,
                      std::numeric_limits<std::uint64_t>::max()));

class SignedVarintTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SignedVarintTest, Roundtrip) {
  ByteWriter w;
  w.putVarintSigned(GetParam());
  ByteReader r(w.view());
  EXPECT_EQ(r.getVarintSigned(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, SignedVarintTest,
    ::testing::Values(0ll, 1ll, -1ll, 63ll, 64ll, -64ll, -65ll, 1234567ll,
                      -1234567ll, std::numeric_limits<std::int64_t>::max(),
                      std::numeric_limits<std::int64_t>::min()));

TEST(Varint, SmallValuesAreOneByte) {
  ByteWriter w;
  w.putVarint(127);
  EXPECT_EQ(w.size(), 1u);
  w.clear();
  w.putVarint(128);
  EXPECT_EQ(w.size(), 2u);
}

TEST(Varint, ZigzagKeepsSmallMagnitudesShort) {
  ByteWriter w;
  w.putVarintSigned(-1);
  EXPECT_EQ(w.size(), 1u);
}

class DoubleTest : public ::testing::TestWithParam<double> {};

TEST_P(DoubleTest, Roundtrip) {
  ByteWriter w;
  w.putDouble(GetParam());
  ByteReader r(w.view());
  const double v = r.getDouble();
  if (std::isnan(GetParam())) {
    EXPECT_TRUE(std::isnan(v));
  } else {
    EXPECT_EQ(v, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Values, DoubleTest,
    ::testing::Values(0.0, -0.0, 1.0, -1.5, 3.141592653589793,
                      std::numeric_limits<double>::infinity(),
                      -std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::quiet_NaN(),
                      std::numeric_limits<double>::denorm_min(),
                      std::numeric_limits<double>::max()));

TEST(Bytes, LengthPrefixedRoundtrip) {
  ByteWriter w;
  w.putBytes("hello");
  w.putBytes("");
  w.putBytes(std::string(1000, 'x'));
  ByteReader r(w.view());
  EXPECT_EQ(r.getBytes(), "hello");
  EXPECT_EQ(r.getBytes(), "");
  EXPECT_EQ(r.getBytes().size(), 1000u);
  EXPECT_TRUE(r.atEnd());
}

TEST(Bytes, RawBytesPreserveEmbeddedNulls) {
  ByteWriter w;
  const std::string data("a\0b\0c", 5);
  w.putBytes(data);
  ByteReader r(w.view());
  EXPECT_EQ(r.getBytes(), BytesView(data));
}

TEST(ByteReader, UnderrunThrows) {
  ByteReader r("ab");
  EXPECT_THROW(r.getFixed32(), CodecError);
}

TEST(ByteReader, UnderrunOnBytesThrows) {
  ByteWriter w;
  w.putVarint(100);  // Length prefix with no payload behind it.
  ByteReader r(w.view());
  EXPECT_THROW(r.getBytes(), CodecError);
}

TEST(ByteReader, MalformedVarintThrows) {
  const Bytes bad(11, static_cast<char>(0xff));  // Never terminates.
  ByteReader r(bad);
  EXPECT_THROW(r.getVarint(), CodecError);
}

TEST(ByteReader, RemainingAndPosition) {
  ByteWriter w;
  w.putFixed32(1);
  w.putFixed32(2);
  ByteReader r(w.view());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.getFixed32();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace ripple
