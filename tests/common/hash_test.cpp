#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ripple {
namespace {

TEST(Fnv1a, KnownVectorsAndDeterminism) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("hello"), fnv1a64("hello"));
  EXPECT_NE(fnv1a64("hello"), fnv1a64("hellp"));
}

TEST(Mix64, SpreadsSequentialInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(mix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Partitioner, RejectsZeroParts) {
  EXPECT_THROW(Partitioner(0), std::invalid_argument);
}

TEST(Partitioner, PartsInRange) {
  Partitioner p(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t part = p.partOf("key" + std::to_string(i));
    EXPECT_LT(part, 7u);
  }
}

TEST(Partitioner, DeterministicAcrossInstances) {
  Partitioner p1(6);
  Partitioner p2(6);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(p1.partOf(key), p2.partOf(key));
  }
}

TEST(Partitioner, ReasonablyBalanced) {
  Partitioner p(6);
  std::vector<int> counts(6, 0);
  const int n = 60'000;
  for (int i = 0; i < n; ++i) {
    ++counts[p.partOf("key" + std::to_string(i))];
  }
  for (const int c : counts) {
    EXPECT_GT(c, n / 6 / 2);
    EXPECT_LT(c, n / 6 * 2);
  }
}

TEST(Partitioner, CustomHashControlsPlacement) {
  // "The table client can control the assignment of keys to parts by
  // controlling the hash values of its keys."
  Partitioner p(4, [](BytesView key) -> std::uint64_t {
    return static_cast<std::uint64_t>(key.size());
  });
  EXPECT_EQ(p.partOf(""), 0u);
  EXPECT_EQ(p.partOf("abc"), 3u);
  EXPECT_EQ(p.partOf("abcd"), 0u);
}

TEST(Partitioner, SharedInstanceGivesConsistentPartitioning) {
  PartitionerPtr shared = makeDefaultPartitioner(5);
  // Two "tables" using the same instance co-place every key by
  // construction.
  for (int i = 0; i < 100; ++i) {
    const std::string key = std::to_string(i);
    EXPECT_EQ(shared->partOf(key), shared->partOf(key));
  }
  EXPECT_EQ(shared->parts(), 5u);
}

}  // namespace
}  // namespace ripple
