#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ripple {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  Rng c(43);
  Rng d(42);
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = c.next() != d.next();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.nextBelow(13), 13u);
  }
  EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.nextBelow(0), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) {
    hits += rng.nextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(PowerLawSampler, SamplesWholeRange) {
  Rng rng(3);
  PowerLawSampler sampler(100, 1.5, rng, /*shuffle=*/false);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100'000; ++i) {
    const std::size_t v = sampler.sample(rng);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // Unshuffled: rank 0 is the most popular, and popularity decays.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(PowerLawSampler, HeavySkewForLargeAlpha) {
  Rng rng(5);
  PowerLawSampler sampler(1000, 2.5, rng, /*shuffle=*/false);
  int topTen = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (sampler.sample(rng) < 10) {
      ++topTen;
    }
  }
  // With alpha 2.5 the top 10 of 1000 ranks dominate.
  EXPECT_GT(topTen, n / 2);
}

TEST(PowerLawSampler, ShuffleDecouplesPopularityFromId) {
  Rng rng(13);
  PowerLawSampler sampler(1000, 2.0, rng, /*shuffle=*/true);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50'000; ++i) {
    ++counts[sampler.sample(rng)];
  }
  // The most popular id is very unlikely to be id 0 after shuffling
  // (probability 1/1000); mostly we assert it samples many distinct ids.
  EXPECT_GT(counts.size(), 100u);
}

TEST(PowerLawSampler, RejectsEmptyDomain) {
  Rng rng(1);
  EXPECT_THROW(PowerLawSampler(0, 1.5, rng), std::invalid_argument);
}

TEST(PowerLawSampler, SingleElementDomain) {
  Rng rng(1);
  PowerLawSampler sampler(1, 1.5, rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sampler.sample(rng), 0u);
  }
}

}  // namespace
}  // namespace ripple
