#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace ripple {
namespace {

TEST(SerialExecutor, ExecutesInSubmissionOrder) {
  SerialExecutor exec("test");
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    exec.execute([&order, i] { order.push_back(i); });
  }
  exec.submit([] {}).get();  // Flush.
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SerialExecutor, SubmitReturnsValue) {
  SerialExecutor exec;
  EXPECT_EQ(exec.submit([] { return 41 + 1; }).get(), 42);
}

TEST(SerialExecutor, SubmitPropagatesExceptions) {
  SerialExecutor exec;
  auto f = exec.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(SerialExecutor, OnThisThread) {
  SerialExecutor exec;
  EXPECT_FALSE(exec.onThisThread());
  EXPECT_TRUE(exec.submit([&] { return exec.onThisThread(); }).get());
}

TEST(SerialExecutor, RunIsReentrantFromOwnThread) {
  SerialExecutor exec;
  // A task calling run() on its own executor must not deadlock.
  const int result = exec.run([&] { return exec.run([] { return 5; }); });
  EXPECT_EQ(result, 5);
}

TEST(SerialExecutor, ExecuteAfterShutdownThrows) {
  SerialExecutor exec;
  exec.shutdown();
  EXPECT_THROW(exec.execute([] {}), std::runtime_error);
}

TEST(SerialExecutor, ShutdownDrainsPendingTasks) {
  SerialExecutor exec;
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    exec.execute([&count] { count.fetch_add(1); });
  }
  exec.shutdown();
  EXPECT_EQ(count.load(), 50);
}

TEST(SerialExecutor, ShutdownRethrowsExecuteTaskFailure) {
  SerialExecutor exec;
  std::atomic<int> count{0};
  exec.execute([] { throw std::runtime_error("boom"); });
  exec.execute([&count] { count.fetch_add(1); });  // Worker keeps draining.
  EXPECT_THROW(exec.shutdown(), std::runtime_error);
  EXPECT_EQ(count.load(), 1);
}

TEST(SerialExecutor, DestructorSwallowsTaskFailure) {
  // The destructor guarantees the join; the leaked exception is only
  // reported from an explicit shutdown().  Must not terminate.
  SerialExecutor exec;
  exec.execute([] { throw std::runtime_error("boom"); });
}

TEST(WorkStealingPool, RunsAllTasks) {
  WorkStealingPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.execute([&count] { count.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(count.load(), 1000);
}

TEST(WorkStealingPool, SingleThreadRunsInSubmissionOrder) {
  // One worker, one slot, owner pops the front: submission order is the
  // execution order — the determinism anchor the engines rely on.
  WorkStealingPool pool(1);
  std::vector<int> order;  // Touched only by the single worker.
  for (int i = 0; i < 200; ++i) {
    pool.execute([&order, i] { order.push_back(i); });
  }
  pool.shutdown();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(WorkStealingPool, ParallelForCoversEveryIndexExactlyOnce) {
  WorkStealingPool pool(8);
  std::vector<std::atomic<int>> hits(500);
  pool.parallelFor(hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  pool.shutdown();
}

TEST(WorkStealingPool, ParallelForRethrowsFirstFailure) {
  WorkStealingPool pool(4);
  EXPECT_THROW(pool.parallelFor(64,
                                [](std::size_t i) {
                                  if (i == 7) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool survives a failed parallelFor and keeps accepting work.
  std::atomic<int> count{0};
  pool.parallelFor(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(WorkStealingPool, DestructorJoinsOutstandingTasks) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.execute([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1);
      });
    }
  }  // Destructor must join every outstanding task, not abandon them.
  EXPECT_EQ(count.load(), 64);
}

TEST(WorkStealingPool, ShutdownWhileBusyDrainsQueuedAndNestedWork) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  CountdownLatch submitted(8);
  for (int i = 0; i < 8; ++i) {
    pool.execute([&] {
      // Nested submission: inflight_ counts queued + running, so the
      // pool must stay alive until this second generation drains too.
      pool.execute([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        count.fetch_add(1);
      });
      submitted.countDown();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      count.fetch_add(1);
    });
  }
  submitted.wait();  // All nested tasks queued; workers still busy.
  pool.shutdown();
  EXPECT_EQ(count.load(), 16);
}

TEST(WorkStealingPool, ExecuteAfterShutdownThrows) {
  WorkStealingPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.execute([] {}), std::runtime_error);
}

TEST(WorkStealingPool, ShutdownRethrowsTaskFailure) {
  WorkStealingPool pool(2);
  pool.execute([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.shutdown(), std::runtime_error);
}

/// RAII guard restoring RIPPLE_THREADS around the resolveThreads tests
/// (the CI matrix runs the suite with it set).
class EnvGuard {
 public:
  EnvGuard() {
    if (const char* v = std::getenv("RIPPLE_THREADS")) {
      saved_ = v;
    }
  }
  ~EnvGuard() {
    if (saved_) {
      ::setenv("RIPPLE_THREADS", saved_->c_str(), 1);
    } else {
      ::unsetenv("RIPPLE_THREADS");
    }
  }

 private:
  std::optional<std::string> saved_;
};

TEST(ResolveThreads, ExplicitRequestWinsOverEnv) {
  EnvGuard guard;
  ::setenv("RIPPLE_THREADS", "5", 1);
  EXPECT_EQ(resolveThreads(3), 3);
}

TEST(ResolveThreads, ZeroConsultsEnv) {
  EnvGuard guard;
  ::setenv("RIPPLE_THREADS", "5", 1);
  EXPECT_EQ(resolveThreads(0), 5);
  ::unsetenv("RIPPLE_THREADS");
  EXPECT_EQ(resolveThreads(0), 0);
}

TEST(ResolveThreads, BadEnvValuesMeanLegacyDispatch) {
  EnvGuard guard;
  // "4abc" regressed once: strtol's numeric prefix was honored instead of
  // rejecting the whole value.
  for (const char* bad : {"", "abc", "-2", "0", "4abc", "  ", "2.5"}) {
    ::setenv("RIPPLE_THREADS", bad, 1);
    EXPECT_EQ(resolveThreads(0), 0) << "RIPPLE_THREADS='" << bad << "'";
  }
}

TEST(ResolveThreads, NegativeRequestFallsBackToEnvTier) {
  // A negative explicit request is invalid; it must warn and consult the
  // environment rather than produce a negative pool width.
  EnvGuard guard;
  ::setenv("RIPPLE_THREADS", "5", 1);
  EXPECT_EQ(resolveThreads(-3), 5);
  ::unsetenv("RIPPLE_THREADS");
  EXPECT_EQ(resolveThreads(-3), 0);
}

TEST(ResolveThreads, AbsurdValuesClampToSanityCap) {
  EnvGuard guard;
  ::unsetenv("RIPPLE_THREADS");
  EXPECT_EQ(resolveThreads(1'000'000), 4096);
  ::setenv("RIPPLE_THREADS", "999999999", 1);
  EXPECT_EQ(resolveThreads(0), 4096);
  // Values at or under the cap pass through untouched.
  EXPECT_EQ(resolveThreads(4096), 4096);
  ::setenv("RIPPLE_THREADS", "4096", 1);
  EXPECT_EQ(resolveThreads(0), 4096);
}

TEST(CountdownLatch, WaitsForAllCounts) {
  CountdownLatch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.wait();
    released.store(true);
  });
  EXPECT_EQ(latch.pending(), 3u);
  latch.countDown();
  latch.countDown();
  EXPECT_FALSE(released.load());
  latch.countDown();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(CountdownLatch, ExtraCountDownIsHarmless) {
  CountdownLatch latch(1);
  latch.countDown();
  latch.countDown();
  latch.wait();
  EXPECT_EQ(latch.pending(), 0u);
}

TEST(CountdownLatch, ZeroInitialCountIsAlreadyReleased) {
  CountdownLatch latch(0);
  latch.wait();  // Must not block.
}

}  // namespace
}  // namespace ripple
