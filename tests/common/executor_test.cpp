#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace ripple {
namespace {

TEST(SerialExecutor, ExecutesInSubmissionOrder) {
  SerialExecutor exec("test");
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    exec.execute([&order, i] { order.push_back(i); });
  }
  exec.submit([] {}).get();  // Flush.
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SerialExecutor, SubmitReturnsValue) {
  SerialExecutor exec;
  EXPECT_EQ(exec.submit([] { return 41 + 1; }).get(), 42);
}

TEST(SerialExecutor, SubmitPropagatesExceptions) {
  SerialExecutor exec;
  auto f = exec.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(SerialExecutor, OnThisThread) {
  SerialExecutor exec;
  EXPECT_FALSE(exec.onThisThread());
  EXPECT_TRUE(exec.submit([&] { return exec.onThisThread(); }).get());
}

TEST(SerialExecutor, RunIsReentrantFromOwnThread) {
  SerialExecutor exec;
  // A task calling run() on its own executor must not deadlock.
  const int result = exec.run([&] { return exec.run([] { return 5; }); });
  EXPECT_EQ(result, 5);
}

TEST(SerialExecutor, ExecuteAfterShutdownThrows) {
  SerialExecutor exec;
  exec.shutdown();
  EXPECT_THROW(exec.execute([] {}), std::runtime_error);
}

TEST(SerialExecutor, ShutdownDrainsPendingTasks) {
  SerialExecutor exec;
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    exec.execute([&count] { count.fetch_add(1); });
  }
  exec.shutdown();
  EXPECT_EQ(count.load(), 50);
}

TEST(CountdownLatch, WaitsForAllCounts) {
  CountdownLatch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.wait();
    released.store(true);
  });
  EXPECT_EQ(latch.pending(), 3u);
  latch.countDown();
  latch.countDown();
  EXPECT_FALSE(released.load());
  latch.countDown();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(CountdownLatch, ExtraCountDownIsHarmless) {
  CountdownLatch latch(1);
  latch.countDown();
  latch.countDown();
  latch.wait();
  EXPECT_EQ(latch.pending(), 0u);
}

TEST(CountdownLatch, ZeroInitialCountIsAlreadyReleased) {
  CountdownLatch latch(0);
  latch.wait();  // Must not block.
}

}  // namespace
}  // namespace ripple
