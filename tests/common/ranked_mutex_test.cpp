// Lock-rank validator tests (DESIGN.md §12).
//
// The abort path is exercised with gtest death tests: the child process
// really acquires locks in the forbidden order and must die printing a
// readable rank-chain report naming both the attempted lock and the held
// chain.  Everything else (descending chains, try_lock exemption,
// recursive re-entry, shared locks, cv hand-off) must NOT abort.

#include "common/ranked_mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "common/executor.h"
#include "common/queue.h"

namespace ripple {
namespace {

TEST(RankedMutexTest, DescendingAcquisitionIsAllowed) {
  RankedMutex<LockRank::kExecutor> outer;
  RankedMutex<LockRank::kQueue> middle;
  RankedMutex<LockRank::kObs> inner;
  LockGuard a(outer);
  LockGuard b(middle);
  LockGuard c(inner);
  EXPECT_EQ(lockdep::heldCount(), 3u);
}

TEST(RankedMutexTest, ChainDrainsOnRelease) {
  RankedMutex<LockRank::kQueue> mu;
  EXPECT_EQ(lockdep::heldCount(), 0u);
  {
    LockGuard lock(mu);
    EXPECT_EQ(lockdep::heldCount(), 1u);
    EXPECT_TRUE(lockdep::holds(&mu));
  }
  EXPECT_EQ(lockdep::heldCount(), 0u);
  EXPECT_FALSE(lockdep::holds(&mu));
}

TEST(RankedMutexTest, HeldChainIsPerThread) {
  RankedMutex<LockRank::kQueue> mu;
  LockGuard lock(mu);
  std::thread other([&] {
    // The other thread holds nothing; it may acquire any rank, including
    // one above what the parent thread holds.
    RankedMutex<LockRank::kExecutor> higher;
    LockGuard h(higher);
    EXPECT_EQ(lockdep::heldCount(), 1u);
    EXPECT_FALSE(lockdep::holds(&mu));
  });
  other.join();
}

TEST(RankedMutexDeathTest, AscendingAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RankedMutex<LockRank::kObs> inner;
  RankedMutex<LockRank::kExecutor> outer;
  EXPECT_DEATH(
      {
        LockGuard a(inner);
        LockGuard b(outer);  // kExecutor(50) above held kObs(10): inversion.
      },
      "lock-rank violation");
}

TEST(RankedMutexDeathTest, EqualRankAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Strict descent: two distinct locks of the SAME rank may not nest —
  // two threads nesting them in opposite orders would deadlock.
  RankedMutex<LockRank::kQueue> a;
  RankedMutex<LockRank::kQueue> b;
  EXPECT_DEATH(
      {
        LockGuard la(a);
        LockGuard lb(b);
      },
      "lock-rank violation");
}

TEST(RankedMutexDeathTest, ReportNamesBothRanksAndTheRule) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RankedMutex<LockRank::kStoreStripe> stripe;
  RankedMutex<LockRank::kNetRegistry> registry;
  // The report must be actionable: attempted rank, held rank, acquisition
  // sites, and the rule being enforced.
  EXPECT_DEATH(
      {
        LockGuard a(stripe);
        LockGuard b(registry);
      },
      "attempted: kNetRegistry\\(64\\)(.|\n)*held by this thread"
      "(.|\n)*kStoreStripe\\(20\\)(.|\n)*ranked_mutex_test"
      "(.|\n)*strictly(.|\n)*below");
}

TEST(RankedMutexDeathTest, ViolationUnderTryLockedHigherRankStillAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A try_lock is exempt from the order check when IT is acquired, but it
  // still counts as held: a later blocking acquisition above the held
  // minimum must abort even when the most recent entry ranks higher.
  RankedMutex<LockRank::kObs> low;
  RankedMutex<LockRank::kExecutor> highTry;
  RankedMutex<LockRank::kQueue> mid;
  EXPECT_DEATH(
      {
        LockGuard a(low);                    // held min: kObs(10)
        ASSERT_TRUE(highTry.try_lock());     // exempt, chain now 10, 50
        LockGuard b(mid);                    // kQueue(40) >= min 10: abort
        highTry.unlock();
      },
      "lock-rank violation");
}

TEST(RankedMutexTest, TryLockAboveHeldRankIsExempt) {
  RankedMutex<LockRank::kObs> inner;
  RankedMutex<LockRank::kExecutor> outer;
  LockGuard a(inner);
  // Blocking this order would abort; try_lock cannot deadlock and must
  // succeed silently.
  ASSERT_TRUE(outer.try_lock());
  EXPECT_EQ(lockdep::heldCount(), 2u);
  outer.unlock();
  EXPECT_EQ(lockdep::heldCount(), 1u);
}

TEST(RankedMutexTest, FailedTryLockLeavesNoTrace) {
  // Hand-off via atomics, not BlockingQueue: the holder keeps a kQueue
  // lock, and a queue push under it would itself be an (equal-rank)
  // violation — the validator polices the test scaffolding too.
  RankedMutex<LockRank::kQueue> mu;
  std::atomic<bool> acquired{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    LockGuard lock(mu);
    acquired.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!acquired.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(mu.try_lock());
  EXPECT_EQ(lockdep::heldCount(), 0u);
  release.store(true);
  holder.join();
}

TEST(RankedMutexTest, RecursiveReentryIsAllowed) {
  RankedRecursiveMutex<LockRank::kStoreStripe> mu;
  LockGuard a(mu);
  {
    LockGuard b(mu);  // Same object: what "recursive" means.
    EXPECT_EQ(lockdep::heldCount(), 2u);
  }
  EXPECT_EQ(lockdep::heldCount(), 1u);
  EXPECT_TRUE(lockdep::holds(&mu));
}

TEST(RankedMutexDeathTest, RecursiveDoesNotExemptOtherObjects) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Recursion exempts re-entry on the SAME mutex only; a different
  // recursive mutex of an equal-or-higher rank still violates.
  RankedRecursiveMutex<LockRank::kStoreStripe> a;
  RankedRecursiveMutex<LockRank::kStoreStripe> b;
  EXPECT_DEATH(
      {
        LockGuard la(a);
        LockGuard lb(b);
      },
      "lock-rank violation");
}

TEST(RankedMutexTest, SharedLocksObeyTheSameOrder) {
  RankedSharedMutex<LockRank::kQueue> rw;
  RankedMutex<LockRank::kObs> inner;
  SharedLock read(rw);
  LockGuard a(inner);  // Descending under a reader lock: fine.
  EXPECT_EQ(lockdep::heldCount(), 2u);
}

TEST(RankedMutexDeathTest, AscendingUnderSharedLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RankedSharedMutex<LockRank::kObs> rw;
  RankedMutex<LockRank::kQueue> outer;
  EXPECT_DEATH(
      {
        SharedLock read(rw);
        LockGuard b(outer);  // Reader/writer cycles deadlock too.
      },
      "lock-rank violation");
}

TEST(RankedMutexTest, ConditionVariableWaitReleasesTheRank) {
  // cv waits unlock mid-scope; while blocked in wait the thread holds
  // nothing, and after wakeup the chain is restored.  A second ranked
  // acquisition inside the predicate loop must therefore be judged
  // against the re-acquired lock only.
  RankedMutex<LockRank::kQueue> mu;
  std::condition_variable_any cv;
  bool ready = false;
  std::thread signaller([&] {
    LockGuard lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock lock(mu);
    while (!ready) {
      cv.wait(lock);
    }
    EXPECT_TRUE(lockdep::holds(&mu));
    EXPECT_EQ(lockdep::heldCount(), 1u);
  }
  signaller.join();
  EXPECT_EQ(lockdep::heldCount(), 0u);
}

TEST(RankedMutexTest, BlockingQueueAndLatchComposeUnderTheOrder) {
  // The rank bands in anger: an executor latch (kExecutor) above queue
  // internals (kQueue) is the exact nesting the engine does on every
  // superstep; it must hold no surprises.
  BlockingQueue<int> q;
  CountdownLatch latch(2);
  std::thread a([&] {
    q.push(1);
    latch.countDown();
  });
  std::thread b([&] {
    q.push(2);
    latch.countDown();
  });
  latch.wait();
  EXPECT_EQ(q.size(), 2u);
  a.join();
  b.join();
}

/// Regression shape for the wire-call-under-registry-lock findings fixed
/// in net/remote_store.cpp and net/remote_queue.cpp: holding a kNetClient
/// pool lock is legal under the kNetRegistry registry lock (descending),
/// so the rank validator alone would NOT have caught those — the lint
/// rule (scripts/lint.sh, no-blocking-io-under-server-lock) is the wall
/// for that class.  What the validator DOES pin down is the reverse:
/// taking a registry lock while inside a client call.
TEST(RankedMutexDeathTest, RegistryLockInsideClientCallAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RankedMutex<LockRank::kNetClient> pool;
  RankedMutex<LockRank::kNetRegistry> registry;
  EXPECT_DEATH(
      {
        LockGuard inCall(pool);
        LockGuard oops(registry);
      },
      "lock-rank violation");
}

}  // namespace
}  // namespace ripple
