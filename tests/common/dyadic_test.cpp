#include "common/dyadic.h"

#include <gtest/gtest.h>

#include <deque>

#include "common/random.h"

namespace ripple {
namespace {

TEST(DyadicWeight, OneIsUnit) {
  EXPECT_EQ(DyadicWeight::one().approx(), 1.0);
}

class SplitWeightTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitWeightTest, ChildrenPlusRemainderEqualsOriginal) {
  const std::uint64_t children = GetParam();
  const DyadicWeight w = DyadicWeight::one();
  const WeightSplit split = splitWeight(w, children);

  // Exact check via the ledger: crediting all children and the remainder
  // must restore exactly 1.
  WeightLedger ledger;
  for (std::uint64_t i = 0; i < children; ++i) {
    ledger.credit(split.child);
  }
  ledger.credit(split.remainder);
  EXPECT_TRUE(ledger.complete());
  EXPECT_GT(split.remainder.mantissa, 0u);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, SplitWeightTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 100u,
                                           1000u, 65536u));

TEST(SplitWeight, RejectsZeroChildren) {
  EXPECT_THROW(splitWeight(DyadicWeight::one(), 0), std::invalid_argument);
}

TEST(SplitWeight, RejectsZeroWeight) {
  EXPECT_THROW(splitWeight(DyadicWeight{0, 0}, 1), std::invalid_argument);
}

TEST(WeightLedger, IncompleteUntilAllReturned) {
  WeightLedger ledger;
  const WeightSplit split = splitWeight(DyadicWeight::one(), 3);
  ledger.credit(split.remainder);
  ledger.credit(split.child);
  ledger.credit(split.child);
  EXPECT_FALSE(ledger.complete());
  ledger.credit(split.child);
  EXPECT_TRUE(ledger.complete());
}

TEST(WeightLedger, OverflowBeyondOneThrows) {
  WeightLedger ledger;
  ledger.credit(DyadicWeight::one());
  EXPECT_THROW(ledger.credit(DyadicWeight{1, 4}), std::logic_error);
}

TEST(WeightLedger, DeepChainStaysExact) {
  // A 100000-hop chain: doubles would underflow around 2^-1074; the
  // dyadic representation must stay exact.
  WeightLedger ledger;
  DyadicWeight w = DyadicWeight::one();
  for (int i = 0; i < 100'000; ++i) {
    const WeightSplit split = splitWeight(w, 1);
    ledger.credit(split.remainder);
    w = split.child;
    EXPECT_FALSE(ledger.complete());
  }
  ledger.credit(w);
  EXPECT_TRUE(ledger.complete());
}

TEST(WeightLedger, RandomizedMessageTreeTerminatesExactly) {
  // Simulate Huang's algorithm over a random message tree: every
  // in-flight message holds weight; processing spawns 0-4 children.
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    WeightLedger ledger;
    std::deque<DyadicWeight> inflight;
    const WeightSplit initial = splitWeight(DyadicWeight::one(), 2);
    inflight.push_back(initial.child);
    inflight.push_back(initial.child);
    ledger.credit(initial.remainder);

    int processed = 0;
    while (!inflight.empty()) {
      const DyadicWeight w = inflight.front();
      inflight.pop_front();
      ++processed;
      const std::uint64_t children =
          processed > 300 ? 0 : rng.nextBelow(5);  // Eventually drain.
      if (children == 0) {
        ledger.credit(w);
      } else {
        const WeightSplit split = splitWeight(w, children);
        for (std::uint64_t i = 0; i < children; ++i) {
          inflight.push_back(split.child);
        }
        ledger.credit(split.remainder);
      }
      // The invariant: ledger complete iff nothing is in flight.
      EXPECT_EQ(ledger.complete(), inflight.empty());
    }
  }
}

TEST(WeightLedger, ApproxTracksCompleteness) {
  WeightLedger ledger;
  EXPECT_EQ(ledger.approx(), 0.0);
  const WeightSplit split = splitWeight(DyadicWeight::one(), 2);
  ledger.credit(split.remainder);
  EXPECT_GT(ledger.approx(), 0.0);
  EXPECT_LT(ledger.approx(), 1.0);
  ledger.credit(split.child);
  ledger.credit(split.child);
  EXPECT_EQ(ledger.approx(), 1.0);
}

}  // namespace
}  // namespace ripple
