#include "common/codec.h"

#include <gtest/gtest.h>

namespace ripple {
namespace {

template <typename T>
void expectRoundtrip(const T& value) {
  EXPECT_EQ(decodeFromBytes<T>(encodeToBytes(value)), value);
}

TEST(Codec, Integers) {
  expectRoundtrip<int>(-42);
  expectRoundtrip<int>(0);
  expectRoundtrip<long long>(-1234567890123ll);
  expectRoundtrip<unsigned>(42u);
  expectRoundtrip<std::uint64_t>(1ull << 63);
  expectRoundtrip<std::int16_t>(-300);
  expectRoundtrip<std::uint8_t>(255);
}

TEST(Codec, Bool) {
  expectRoundtrip(true);
  expectRoundtrip(false);
}

TEST(Codec, FloatingPoint) {
  expectRoundtrip(3.25);
  expectRoundtrip(-1e-300);
  expectRoundtrip(2.5f);
}

TEST(Codec, Strings) {
  expectRoundtrip(std::string());
  expectRoundtrip(std::string("ripple"));
  expectRoundtrip(std::string(10'000, 'z'));
}

TEST(Codec, Pairs) {
  expectRoundtrip(std::pair<int, std::string>(7, "seven"));
  expectRoundtrip(std::pair<double, double>(1.5, -2.5));
}

TEST(Codec, Tuples) {
  expectRoundtrip(std::tuple<int, std::string, bool>(1, "a", true));
  expectRoundtrip(std::tuple<>());
}

TEST(Codec, Vectors) {
  expectRoundtrip(std::vector<int>{});
  expectRoundtrip(std::vector<int>{1, -2, 3});
  expectRoundtrip(std::vector<std::string>{"a", "", "ccc"});
  expectRoundtrip(
      std::vector<std::vector<int>>{{1, 2}, {}, {3}});
}

TEST(Codec, Optionals) {
  expectRoundtrip(std::optional<int>{});
  expectRoundtrip(std::optional<int>{5});
  expectRoundtrip(std::optional<std::string>{"x"});
}

TEST(Codec, TrailingBytesDetected) {
  ByteWriter w;
  w.putVarintSigned(1);
  w.putU8(0);  // Garbage after the value.
  EXPECT_THROW(decodeFromBytes<int>(w.view()), CodecError);
}

struct CustomRecord {
  int a = 0;
  std::string b;

  bool operator==(const CustomRecord&) const = default;

  void encodeTo(ByteWriter& w) const {
    Codec<int>::encode(w, a);
    Codec<std::string>::encode(w, b);
  }
  static CustomRecord decodeFrom(ByteReader& r) {
    CustomRecord rec;
    rec.a = Codec<int>::decode(r);
    rec.b = Codec<std::string>::decode(r);
    return rec;
  }
};

TEST(Codec, SelfCodableTypesArePickedUpAutomatically) {
  static_assert(SelfCodable<CustomRecord>);
  expectRoundtrip(CustomRecord{3, "three"});
  expectRoundtrip(std::vector<CustomRecord>{{1, "x"}, {2, "y"}});
}

TEST(Codec, TupleDecodeOrderIsLeftToRight) {
  // If evaluation order were wrong, the fields would swap.
  using T = std::tuple<std::uint8_t, std::uint8_t>;
  const T t(1, 2);
  const Bytes encoded = encodeToBytes(t);
  ASSERT_EQ(encoded.size(), 2u);
  EXPECT_EQ(decodeFromBytes<T>(encoded), t);
}

TEST(Codec, DecodePrefixLeavesRemainderUnread) {
  ByteWriter w;
  Codec<int>::encode(w, 9);
  Codec<int>::encode(w, 10);
  const Bytes b = w.take();
  ByteReader r(b);
  EXPECT_EQ(decodePrefix<int>(r), 9);
  EXPECT_EQ(decodePrefix<int>(r), 10);
  EXPECT_TRUE(r.atEnd());
}

}  // namespace
}  // namespace ripple
