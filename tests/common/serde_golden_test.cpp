// Golden byte-vector regression for the core serde (common/bytes.h) —
// the portability audit companion to the wire protocol (DESIGN.md §11).
// Every encoding here crosses process boundaries via ripple::net, so the
// exact bytes are a compatibility contract: explicit little-endian fixed
// integers, LEB128 varints, zigzag signed varints, bit-copied IEEE-754
// doubles, varint-length-prefixed byte strings.  If any of these vectors
// changes, the wire protocol version must be bumped.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/bytes.h"

namespace ripple {
namespace {

Bytes bytesOf(std::initializer_list<unsigned> raw) {
  Bytes out;
  for (const unsigned b : raw) {
    out.push_back(static_cast<char>(static_cast<unsigned char>(b)));
  }
  return out;
}

TEST(SerdeGolden, FixedIntegersAreLittleEndian) {
  ByteWriter w;
  w.putU8(0xAB);
  w.putFixed32(0x01020304u);
  w.putFixed64(0x1122334455667788ull);
  EXPECT_EQ(w.view(), bytesOf({0xAB,                      // u8
                               0x04, 0x03, 0x02, 0x01,    // fixed32 LE
                               0x88, 0x77, 0x66, 0x55,    // fixed64 LE
                               0x44, 0x33, 0x22, 0x11}));
}

TEST(SerdeGolden, VarintIsLeb128) {
  const struct {
    std::uint64_t value;
    Bytes encoding;
  } kCases[] = {
      {0, bytesOf({0x00})},
      {1, bytesOf({0x01})},
      {127, bytesOf({0x7F})},
      {128, bytesOf({0x80, 0x01})},
      {300, bytesOf({0xAC, 0x02})},
      {16384, bytesOf({0x80, 0x80, 0x01})},
      {std::numeric_limits<std::uint64_t>::max(),
       bytesOf({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                0x01})},
  };
  for (const auto& c : kCases) {
    ByteWriter w;
    w.putVarint(c.value);
    EXPECT_EQ(w.view(), c.encoding) << c.value;
    ByteReader r(c.encoding);
    EXPECT_EQ(r.getVarint(), c.value);
    EXPECT_TRUE(r.atEnd());
  }
}

TEST(SerdeGolden, SignedVarintIsZigzag) {
  const struct {
    std::int64_t value;
    Bytes encoding;
  } kCases[] = {
      {0, bytesOf({0x00})},
      {-1, bytesOf({0x01})},
      {1, bytesOf({0x02})},
      {-2, bytesOf({0x03})},
      {63, bytesOf({0x7E})},
      {-64, bytesOf({0x7F})},
      {64, bytesOf({0x80, 0x01})},
  };
  for (const auto& c : kCases) {
    ByteWriter w;
    w.putVarintSigned(c.value);
    EXPECT_EQ(w.view(), c.encoding) << c.value;
    ByteReader r(c.encoding);
    EXPECT_EQ(r.getVarintSigned(), c.value);
  }
}

TEST(SerdeGolden, DoubleIsIeee754BitsLittleEndian) {
  ByteWriter w;
  w.putDouble(1.0);   // 0x3FF0000000000000
  w.putDouble(-2.5);  // 0xC004000000000000
  EXPECT_EQ(w.view(),
            bytesOf({0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,
                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0xC0}));
  ByteReader r(w.view());
  EXPECT_EQ(r.getDouble(), 1.0);
  EXPECT_EQ(r.getDouble(), -2.5);
}

TEST(SerdeGolden, BytesAreVarintLengthPrefixed) {
  ByteWriter w;
  w.putBytes("abc");
  w.putBytes("");
  w.putBool(true);
  w.putBool(false);
  EXPECT_EQ(w.view(), bytesOf({0x03, 'a', 'b', 'c',  // len + raw
                               0x00,                 // empty string
                               0x01, 0x00}));        // bools
  ByteReader r(w.view());
  EXPECT_EQ(r.getBytes(), "abc");
  EXPECT_EQ(r.getBytes(), "");
  EXPECT_TRUE(r.getBool());
  EXPECT_FALSE(r.getBool());
  EXPECT_TRUE(r.atEnd());
}

TEST(SerdeGolden, CompositeRecordRoundTripsFromPinnedBytes) {
  // A miniature wire record decoded from hard-coded bytes: proves a
  // foreign encoder producing exactly these bytes interoperates.
  const Bytes record = bytesOf({
      0x02, 'h', 'i',          // name = "hi"
      0x07, 0x00, 0x00, 0x00,  // part = 7 (fixed32)
      0xAC, 0x02,              // count = 300 (varint)
      0x01,                    // present = true
  });
  ByteReader r(record);
  EXPECT_EQ(r.getBytes(), "hi");
  EXPECT_EQ(r.getFixed32(), 7u);
  EXPECT_EQ(r.getVarint(), 300u);
  EXPECT_TRUE(r.getBool());
  EXPECT_TRUE(r.atEnd());
}

}  // namespace
}  // namespace ripple
