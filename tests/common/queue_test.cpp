#include "common/queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ripple {
namespace {

using namespace std::chrono_literals;

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, TryPopOnEmpty) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.tryPop(), std::nullopt);
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.popFor(20ms), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 15ms);
}

TEST(BlockingQueue, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(10ms);
  q.close();
  consumer.join();
}

TEST(BlockingQueue, StealTakesFromBack) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.trySteal(), 3);
  EXPECT_EQ(q.pop(), 1);
}

TEST(BlockingQueue, SizeTracksContents) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(BlockingQueue, PerSenderOrderUnderConcurrency) {
  // Two producers each push an ascending sequence; consumers must see
  // each producer's elements in order (the guarantee Ripple's async
  // engine depends on).
  BlockingQueue<std::pair<int, int>> q;  // (producer, seq)
  constexpr int kPerProducer = 5000;
  auto producer = [&](int id) {
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_TRUE(q.push({id, i}));
    }
  };
  std::thread p1(producer, 1);
  std::thread p2(producer, 2);

  std::vector<int> lastSeen(3, -1);
  int received = 0;
  while (received < 2 * kPerProducer) {
    auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->second, lastSeen[item->first] + 1);
    lastSeen[item->first] = item->second;
    ++received;
  }
  p1.join();
  p2.join();
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kItems = 2000;
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kItems; ++i) {
        q.push(i);
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[p].join();
  }
  q.close();
  for (std::size_t i = kProducers; i < threads.size(); ++i) {
    threads[i].join();
  }
  EXPECT_EQ(sum.load(), 4L * kItems * (kItems + 1) / 2);
}

}  // namespace
}  // namespace ripple
