#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ripple::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(CounterConcurrency, NoLostIncrements) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  for (const double v : {0.5, 1.0, 2.0, 8.0}) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 11.5);
  const HistogramStats s = h.stats();
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.mean(), 11.5 / 4.0);
}

TEST(Histogram, PercentilesClampToObservedRange) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) {
    h.record(5.0);  // All in one bucket.
  }
  // Interpolation inside the bucket must never leave [min, max].
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 5.0);
  EXPECT_DOUBLE_EQ(h.stats().p50, 5.0);
}

TEST(Histogram, PercentileOrdering) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.record(static_cast<double>(i));
  }
  const HistogramStats s = h.stats();
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_GE(s.p50, 1.0);
  EXPECT_LE(s.p99, 100.0);
  // p50 of 1..100 lands in the (50, 100] bucket region; a loose sanity
  // window is all a bucketed estimator guarantees.
  EXPECT_GT(s.p50, 20.0);
  EXPECT_LT(s.p50, 80.0);
}

TEST(Histogram, OverflowBucket) {
  Histogram h(std::vector<double>{1.0, 10.0});
  h.record(0.5);
  h.record(5.0);
  h.record(1e6);  // Above the last bound: overflow bucket.
  const auto buckets = h.bucketCounts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_DOUBLE_EQ(h.stats().max, 1e6);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.stats().min, 3.0);
}

TEST(HistogramConcurrency, ShardedRecordersLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Sum of t+1 over threads, kPerThread each: (1+...+8) * 20000.
  EXPECT_DOUBLE_EQ(h.sum(), 36.0 * kPerThread);
  EXPECT_DOUBLE_EQ(h.stats().min, 1.0);
  EXPECT_DOUBLE_EQ(h.stats().max, 8.0);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableInstrument) {
  MetricsRegistry r;
  Counter& a = r.counter("ebsp.messages_sent");
  a.add(7);
  Counter& b = r.counter("ebsp.messages_sent");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
}

TEST(MetricsRegistry, FindWithoutCreation) {
  MetricsRegistry r;
  EXPECT_EQ(r.findCounter("absent"), nullptr);
  EXPECT_EQ(r.findGauge("absent"), nullptr);
  EXPECT_EQ(r.findHistogram("absent"), nullptr);
  r.counter("present").add(3);
  ASSERT_NE(r.findCounter("present"), nullptr);
  EXPECT_EQ(r.findCounter("present")->value(), 3u);
}

TEST(MetricsRegistry, NameMayNotSpanKinds) {
  MetricsRegistry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::invalid_argument);
  EXPECT_THROW(r.histogram("x"), std::invalid_argument);
  r.gauge("y");
  EXPECT_THROW(r.counter("y"), std::invalid_argument);
}

TEST(MetricsRegistry, ConcurrentFindOrCreate) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      for (int i = 0; i < kPerThread; ++i) {
        // All threads race on the same instrument names.
        r.counter("shared.count").add();
        r.histogram("shared.seconds").record(0.001);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(r.counter("shared.count").value(), total);
  EXPECT_EQ(r.histogram("shared.seconds").count(), total);
}

TEST(MetricsRegistry, SnapshotAndReset) {
  MetricsRegistry r;
  r.counter("c").add(5);
  r.gauge("g").set(1.25);
  r.histogram("h").record(2.0);
  const MetricsSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 1.25);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  r.reset();
  EXPECT_EQ(r.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 0.0);
  EXPECT_EQ(r.histogram("h").count(), 0u);
  // The snapshot is detached from the live instruments.
  EXPECT_EQ(snap.counters.at("c"), 5u);
}

TEST(MetricsSnapshot, JsonRoundTrip) {
  MetricsRegistry r;
  r.counter("ebsp.steps").add(11);
  r.gauge("ebsp.virtual_makespan").set(3.5);
  r.histogram("ebsp.step_seconds").record(0.25);
  r.histogram("ebsp.step_seconds").record(0.75);
  const MetricsSnapshot snap = r.snapshot();

  const JsonValue json = snap.toJson();
  const MetricsSnapshot back =
      MetricsSnapshot::fromJson(JsonValue::parse(json.dump()));
  EXPECT_EQ(back.counters.at("ebsp.steps"), 11u);
  EXPECT_DOUBLE_EQ(back.gauges.at("ebsp.virtual_makespan"), 3.5);
  EXPECT_EQ(back.histograms.at("ebsp.step_seconds").count, 2u);
  EXPECT_DOUBLE_EQ(back.histograms.at("ebsp.step_seconds").sum, 1.0);
}

}  // namespace
}  // namespace ripple::obs
