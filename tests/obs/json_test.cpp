// obs::json writer/parser contract, with emphasis on the UTF-8 hygiene
// fix: report labels can carry arbitrary bytes (part keys), and the
// writer must still emit a document the parser accepts — invalid
// sequences are replaced with U+FFFD instead of leaking through verbatim.

#include "obs/json.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace ripple::obs {
namespace {

constexpr const char* kReplacement = "\xEF\xBF\xBD";  // U+FFFD.

std::string dumpString(const std::string& raw) {
  return JsonValue(raw).dump();
}

std::string roundtrip(const std::string& raw) {
  return JsonValue::parse(dumpString(raw)).asString();
}

TEST(JsonUtf8, ValidStringsSurviveUnchanged) {
  EXPECT_EQ(sanitizeUtf8(""), "");
  EXPECT_EQ(sanitizeUtf8("plain ascii"), "plain ascii");
  EXPECT_EQ(sanitizeUtf8("caf\xC3\xA9"), "caf\xC3\xA9");          // é
  EXPECT_EQ(sanitizeUtf8("\xE2\x82\xAC"), "\xE2\x82\xAC");        // €
  EXPECT_EQ(sanitizeUtf8("\xF0\x9F\x92\xA9"), "\xF0\x9F\x92\xA9");  // 💩
  EXPECT_EQ(roundtrip("caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x92\xA9"),
            "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x92\xA9");
}

TEST(JsonUtf8, InvalidSequencesAreReplaced) {
  // Stray continuation byte.
  EXPECT_EQ(sanitizeUtf8("a\x80z"), std::string("a") + kReplacement + "z");
  // Lone lead byte at end of string (truncated sequence).
  EXPECT_EQ(sanitizeUtf8("a\xC3"), std::string("a") + kReplacement);
  EXPECT_EQ(sanitizeUtf8("a\xE2\x82"),
            std::string("a") + kReplacement + kReplacement);
  // Invalid lead bytes 0xFE / 0xFF never appear in UTF-8.
  EXPECT_EQ(sanitizeUtf8("\xFE\xFF"),
            std::string(kReplacement) + kReplacement);
  // Overlong encoding of '/' (0xC0 0xAF) is rejected, not decoded.
  EXPECT_EQ(sanitizeUtf8("\xC0\xAF"),
            std::string(kReplacement) + kReplacement);
  // Overlong 3-byte NUL.
  EXPECT_EQ(sanitizeUtf8("\xE0\x80\x80"),
            std::string(kReplacement) + kReplacement + kReplacement);
  // CESU-8 style surrogate half (U+D800).
  EXPECT_EQ(sanitizeUtf8("\xED\xA0\x80"),
            std::string(kReplacement) + kReplacement + kReplacement);
  // Beyond U+10FFFF (would be U+110000).
  EXPECT_EQ(sanitizeUtf8("\xF4\x90\x80\x80"),
            std::string(kReplacement) + kReplacement + kReplacement +
                kReplacement);
}

TEST(JsonUtf8, ResyncAfterInvalidByteKeepsFollowingText) {
  // One bad byte must cost exactly one replacement; the valid tail is
  // preserved (1-byte resync, not whole-string rejection).
  EXPECT_EQ(sanitizeUtf8("ok\xFFtail \xC3\xA9"),
            std::string("ok") + kReplacement + "tail \xC3\xA9");
}

TEST(JsonUtf8, WriterEmitsParseableDocumentForArbitraryBytes) {
  // The pre-fix writer copied invalid bytes through verbatim, producing
  // documents the bundled parser itself rejected.
  const std::string raw("label-\xC0\xAF-\x80\xFE-end", 16);
  const std::string doc = dumpString(raw);
  JsonValue parsed;
  ASSERT_NO_THROW(parsed = JsonValue::parse(doc)) << doc;
  EXPECT_EQ(parsed.asString().find('\xFE'), std::string::npos);
  EXPECT_NE(parsed.asString().find("end"), std::string::npos);
}

TEST(JsonUtf8, FuzzRandomByteStringsAlwaysRoundTrip) {
  // Fuzz-ish: any byte string must serialize to a document that parses,
  // and parsing must be a fixed point (sanitized text re-serializes to
  // itself).
  Rng rng(20260806);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const std::size_t len = rng.nextBelow(64);
    std::string raw;
    raw.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      raw.push_back(static_cast<char>(rng.nextBelow(256)));
    }
    std::string doc;
    ASSERT_NO_THROW(doc = dumpString(raw)) << "iteration " << iteration;
    JsonValue parsed;
    ASSERT_NO_THROW(parsed = JsonValue::parse(doc))
        << "iteration " << iteration << ": " << doc;
    // Idempotence: once sanitized, the string is valid UTF-8 and passes
    // through the writer untouched.
    const std::string again = parsed.asString();
    EXPECT_EQ(roundtrip(again), again) << "iteration " << iteration;
    EXPECT_EQ(sanitizeUtf8(again), again) << "iteration " << iteration;
  }
}

TEST(JsonParser, RejectsRawControlCharactersInStrings) {
  EXPECT_THROW(JsonValue::parse("\"a\nb\""), JsonError);
  EXPECT_THROW(JsonValue::parse(std::string("\"a\0b\"", 5)), JsonError);
  EXPECT_THROW(JsonValue::parse("\"a\tb\""), JsonError);
  // Escaped forms are fine, and the writer emits them escaped.
  EXPECT_EQ(JsonValue::parse("\"a\\nb\"").asString(), "a\nb");
  const std::string doc = dumpString("a\nb\tc");
  EXPECT_EQ(JsonValue::parse(doc).asString(), "a\nb\tc");
}

TEST(JsonParser, DocumentLevelErrors) {
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\"}"), JsonError);
}

TEST(JsonParser, NestedDocumentRoundTrip) {
  JsonValue::Object obj;
  obj["name"] = "run \xF0\x9F\x92\xA9";
  obj["count"] = std::uint64_t{42};
  obj["ok"] = true;
  obj["nothing"] = nullptr;
  JsonValue::Array arr;
  arr.emplace_back(1.5);
  arr.emplace_back("two");
  obj["list"] = std::move(arr);
  const JsonValue doc{std::move(obj)};
  for (const int indent : {0, 2}) {
    const JsonValue back = JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(back.stringOr("name", ""), "run \xF0\x9F\x92\xA9");
    EXPECT_EQ(back.numberOr("count", 0), 42);
    EXPECT_TRUE(back.find("ok")->asBool());
    EXPECT_TRUE(back.find("nothing")->isNull());
    EXPECT_EQ(back.find("list")->asArray().size(), 2u);
  }
}

}  // namespace
}  // namespace ripple::obs
