#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/report.h"

namespace ripple::obs {
namespace {

TEST(Phase, NamesRoundTrip) {
  for (const Phase p :
       {Phase::kRun, Phase::kLoad, Phase::kCompute, Phase::kSpill,
        Phase::kBarrier, Phase::kCollect, Phase::kCheckpoint, Phase::kRestore,
        Phase::kExport}) {
    const auto parsed = phaseFromName(phaseName(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(phaseFromName("bogus").has_value());
}

TEST(Tracer, RecordAssignsIds) {
  Tracer tracer;
  Span s;
  s.phase = Phase::kCompute;
  s.step = 3;
  tracer.record(s);
  tracer.record(s);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].id, 0u);
  EXPECT_NE(spans[1].id, spans[0].id);
  EXPECT_EQ(spans[0].step, 3);
}

TEST(TracerScoped, RecordsDurationAndPhase) {
  Tracer tracer;
  {
    Tracer::Scoped scoped(&tracer, Phase::kBarrier, 7);
    scoped->messages = 42;
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].phase, Phase::kBarrier);
  EXPECT_EQ(spans[0].step, 7);
  EXPECT_EQ(spans[0].messages, 42u);
  EXPECT_GE(spans[0].duration, 0.0);
  EXPECT_EQ(spans[0].parent, 0u);
}

TEST(TracerScoped, NestingSetsParent) {
  Tracer tracer;
  {
    Tracer::Scoped outer(&tracer, Phase::kRun);
    {
      Tracer::Scoped inner(&tracer, Phase::kCompute, 1);
      {
        Tracer::Scoped innermost(&tracer, Phase::kSpill, 1);
      }
    }
  }
  const auto spans = tracer.spans();  // Recorded innermost-first.
  ASSERT_EQ(spans.size(), 3u);
  const Span& innermost = spans[0];
  const Span& inner = spans[1];
  const Span& outer = spans[2];
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(innermost.parent, inner.id);
}

TEST(TracerScoped, SiblingsShareParent) {
  Tracer tracer;
  {
    Tracer::Scoped outer(&tracer, Phase::kRun);
    { Tracer::Scoped a(&tracer, Phase::kCompute, 1); }
    { Tracer::Scoped b(&tracer, Phase::kCollect, 1); }
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent, spans[2].id);
  EXPECT_EQ(spans[1].parent, spans[2].id);
}

TEST(TracerScoped, NullTracerIsNoop) {
  Tracer::Scoped scoped(nullptr, Phase::kCompute, 1);
  scoped->invocations = 5;  // Fields writable; nothing recorded anywhere.
}

TEST(TracerScoped, CancelDropsSpanButKeepsNestingBalanced) {
  Tracer tracer;
  {
    Tracer::Scoped outer(&tracer, Phase::kRun);
    {
      Tracer::Scoped cancelled(&tracer, Phase::kCompute, 1);
      cancelled.cancel();
    }
    // A span opened after the cancel still parents to `outer`, not to the
    // cancelled span.
    { Tracer::Scoped after(&tracer, Phase::kCollect, 1); }
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].phase, Phase::kCollect);
  EXPECT_EQ(spans[0].parent, spans[1].id);
}

TEST(TracerScoped, ParentTrackingIsPerThread) {
  Tracer tracer;
  {
    Tracer::Scoped outer(&tracer, Phase::kRun);
    std::thread worker([&tracer] {
      // No open span on this thread: the worker's span is a root.
      Tracer::Scoped span(&tracer, Phase::kCompute, 1);
    });
    worker.join();
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].phase, Phase::kCompute);
  EXPECT_EQ(spans[0].parent, 0u);
}

TEST(Span, JsonRoundTrip) {
  Span s;
  s.id = 9;
  s.parent = 4;
  s.step = 2;
  s.phase = Phase::kCheckpoint;
  s.start = 1.5;
  s.duration = 0.25;
  s.virtualSeconds = 0.125;
  s.invocations = 10;
  s.messages = 20;
  s.bytes = 30;
  s.stateReads = 40;
  s.stateWrites = 50;
  s.note = "snapshot";

  const Span back = Span::fromJson(JsonValue::parse(s.toJson().dump()));
  EXPECT_EQ(back.id, 9u);
  EXPECT_EQ(back.parent, 4u);
  EXPECT_EQ(back.step, 2);
  EXPECT_EQ(back.phase, Phase::kCheckpoint);
  EXPECT_DOUBLE_EQ(back.start, 1.5);
  EXPECT_DOUBLE_EQ(back.duration, 0.25);
  EXPECT_DOUBLE_EQ(back.virtualSeconds, 0.125);
  EXPECT_EQ(back.invocations, 10u);
  EXPECT_EQ(back.messages, 20u);
  EXPECT_EQ(back.bytes, 30u);
  EXPECT_EQ(back.stateReads, 40u);
  EXPECT_EQ(back.stateWrites, 50u);
  EXPECT_EQ(back.note, "snapshot");
}

TEST(Tracer, JsonlExportParsesBack) {
  Tracer tracer;
  {
    Tracer::Scoped a(&tracer, Phase::kCompute, 1);
    a->invocations = 3;
  }
  { Tracer::Scoped b(&tracer, Phase::kBarrier, 1); }

  std::ostringstream out;
  tracer.exportJsonl(out);
  std::istringstream in(out.str());
  std::vector<Span> parsed;
  for (std::string line; std::getline(in, line);) {
    parsed.push_back(Tracer::parseJsonLine(line));
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].phase, Phase::kCompute);
  EXPECT_EQ(parsed[0].invocations, 3u);
  EXPECT_EQ(parsed[1].phase, Phase::kBarrier);
}

TEST(Tracer, ConcurrentRecording) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        Tracer::Scoped span(&tracer, Phase::kCompute, i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(tracer.spanCount(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(RunReport, RoundAccountingFromSpans) {
  Tracer tracer;
  // Two supersteps: both barrier; step 1 does I/O, step 2 only computes.
  {
    Tracer::Scoped compute(&tracer, Phase::kCompute, 1);
    compute->messages = 10;
  }
  { Tracer::Scoped barrier(&tracer, Phase::kBarrier, 1); }
  { Tracer::Scoped compute(&tracer, Phase::kCompute, 2); }
  { Tracer::Scoped barrier(&tracer, Phase::kBarrier, 2); }

  const RunReport report = RunReport::capture("t", nullptr, &tracer);
  EXPECT_EQ(report.syncRounds(), 2u);
  EXPECT_EQ(report.ioRounds(), 1u);
  EXPECT_EQ(report.spanCount(Phase::kCompute), 2u);
}

TEST(RunReport, JsonRoundTripPreservesRounds) {
  MetricsRegistry registry;
  registry.counter("ebsp.barriers").add(4);
  Tracer tracer;
  {
    Tracer::Scoped compute(&tracer, Phase::kCompute, 1);
    compute->stateWrites = 2;
  }
  { Tracer::Scoped barrier(&tracer, Phase::kBarrier, 1); }

  RunReport report = RunReport::capture("roundtrip", &registry, &tracer);
  report.info["workload"] = "unit";
  const RunReport back =
      RunReport::fromJson(JsonValue::parse(report.toJson().dump()));
  EXPECT_EQ(back.label, "roundtrip");
  EXPECT_EQ(back.info.at("workload"), "unit");
  EXPECT_EQ(back.metrics.counters.at("ebsp.barriers"), 4u);
  EXPECT_EQ(back.syncRounds(), 1u);
  EXPECT_EQ(back.ioRounds(), 1u);
}

}  // namespace
}  // namespace ripple::obs
