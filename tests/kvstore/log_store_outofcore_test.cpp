// Out-of-core behavior of the durable log store (DESIGN.md §14): the
// store-wide memory budget, LRU eviction into sealed segments, the
// evicted read-through path (mmap'd segment + committed log-tail
// replay), lazy recovery under a budget, and the two latent-bug
// regressions the eviction paths sit on top of:
//
//  * the ephemeral-directory leak when recovery throws mid-constructor
//    (the destructor never runs; the RAII guard member must still clean
//    up), and
//  * the borrowed-view use-after-unmap when a reader streams a sealed
//    segment while a concurrent compaction retires its generation (the
//    pinned-generation shared_ptr must keep the mapping alive) — run
//    under ASan this fails loudly pre-fix.
//
// Plus the end-to-end acceptance angle: PageRank through the sync engine
// with checkpointing produces bit-identical ranks bounded vs unbounded.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "apps/pagerank.h"
#include "ebsp/engine.h"
#include "graph/graph_gen.h"
#include "kvstore/log_store.h"
#include "kvstore/segment.h"
#include "kvstore/store_factory.h"
#include "kvstore/table.h"

namespace fs = std::filesystem;
namespace kv = ripple::kv;
namespace ls = ripple::kv::logstore;

namespace {

fs::path uniqueDir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("ripple-oc-" + tag + "-" + std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

std::shared_ptr<kv::LogStore> openStore(const std::string& path,
                                        std::size_t budget) {
  kv::LogStore::Options o;
  o.path = path;
  o.memoryBudgetBytes = budget;
  o.backgroundCompaction = false;
  return kv::LogStore::open(std::move(o));
}

/// Gather a table's full contents.
class Collector : public kv::PairConsumer {
 public:
  bool consume(std::uint32_t /*part*/, kv::KeyView key,
               kv::ValueView value) override {
    pairs_.emplace(std::string(key), std::string(value));
    return true;
  }
  std::map<std::string, std::string> pairs_;
};

std::map<std::string, std::string> contentsOf(kv::Table& table) {
  Collector c;
  table.enumerate(c);
  return std::move(c.pairs_);
}

// --- Byte-size parsing (RIPPLE_STORE_MEM / --store-mem) -------------------

TEST(StoreMemorySpec, ParsesPlainAndSuffixedSizes) {
  EXPECT_EQ(kv::parseByteSize("8388608"), std::size_t{8388608});
  EXPECT_EQ(kv::parseByteSize("8192K"), std::size_t{8192} << 10);
  EXPECT_EQ(kv::parseByteSize("8m"), std::size_t{8} << 20);
  EXPECT_EQ(kv::parseByteSize("1G"), std::size_t{1} << 30);
  EXPECT_EQ(kv::parseByteSize("0"), std::size_t{0});
}

TEST(StoreMemorySpec, RejectsGarbageAndOverflow) {
  EXPECT_EQ(kv::parseByteSize(""), std::nullopt);
  EXPECT_EQ(kv::parseByteSize("M"), std::nullopt);
  EXPECT_EQ(kv::parseByteSize("8MB"), std::nullopt);
  EXPECT_EQ(kv::parseByteSize("-8M"), std::nullopt);
  EXPECT_EQ(kv::parseByteSize("8.5M"), std::nullopt);
  EXPECT_EQ(kv::parseByteSize("eight"), std::nullopt);
  EXPECT_EQ(kv::parseByteSize("99999999999999999999999"), std::nullopt);
  EXPECT_EQ(kv::parseByteSize("99999999999999999999G"), std::nullopt);
}

// --- Budget invariant ------------------------------------------------------

// Randomized puts/erases/gets against a model map.  After every
// operation the accounted resident bytes must sit at or below the
// budget (enforcement runs before the op returns); the high-water mark
// may additionally carry ONE operation's transient footprint — the
// documented slack.  And the data must, of course, stay correct.
TEST(LogStoreOutOfCore, BudgetInvariantUnderRandomizedOps) {
  constexpr std::size_t kBudget = 16 * 1024;
  auto store = openStore("", kBudget);
  kv::TableOptions topts;
  topts.parts = 4;
  kv::TablePtr t = store->createTable("rand", topts);
  std::map<std::string, std::string> model;
  std::mt19937 rng(1234);
  for (int op = 0; op < 4000; ++op) {
    const int k = static_cast<int>(rng() % 400);
    const std::string key = "key" + std::to_string(k);
    const std::uint32_t action = rng() % 10;
    if (action < 6) {
      const std::string value(rng() % 64 + 1,
                              static_cast<char>('a' + k % 26));
      t->put(key, value);
      model[key] = value;
    } else if (action < 8) {
      t->erase(key);
      model.erase(key);
    } else {
      const std::optional<kv::Value> got = t->get(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(got, std::nullopt) << key;
      } else {
        EXPECT_EQ(got, std::optional<kv::Value>(it->second)) << key;
      }
    }
    ASSERT_LE(store->stats().residentBytes, kBudget) << "op " << op;
    if (op % 500 == 499) {
      store->commitEpoch();
    }
  }
  const kv::LogStore::Stats s = store->stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GT(s.segmentReadHits, 0u);  // Gets read through sealed segments.
  // One op's worst footprint: key + value + entry overhead + its framed
  // pending record.  512 bytes over-covers it.
  EXPECT_LE(s.residentPeakBytes, kBudget + 512);
  EXPECT_EQ(t->size(), model.size());
  EXPECT_EQ(contentsOf(*t), model);
}

// --- Evicted read-through --------------------------------------------------

// A 1-byte budget evicts after every op: all state lives in sealed
// segments.  Point reads, scans and drains must serve it back through
// the mmap regardless, in the SPI's canonical order.
TEST(LogStoreOutOfCore, EvictedPartServesReadsThroughSealedSegment) {
  auto store = openStore("", 1);
  kv::TablePtr t = store->createTable("cold", kv::TableOptions{});
  std::map<std::string, std::string> model;
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key" + std::to_string(100 + i);
    t->put(key, "v" + std::to_string(i));
    model[key] = "v" + std::to_string(i);
  }
  kv::LogStore::Stats s = store->stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.residentBytes, 1u);

  for (const auto& [k, v] : model) {
    EXPECT_EQ(t->get(k), std::optional<kv::Value>(v)) << k;
  }
  EXPECT_EQ(t->get("absent"), std::nullopt);
  s = store->stats();
  EXPECT_GE(s.segmentReadHits, 50u);
  EXPECT_GE(s.segmentReadMisses, 1u);

  EXPECT_EQ(contentsOf(*t), model);

  const std::vector<std::pair<kv::Key, kv::Value>> drained = t->drainPart(0);
  ASSERT_EQ(drained.size(), model.size());
  auto it = model.begin();  // drainPart's contract: ascending key order.
  for (const auto& [k, v] : drained) {
    EXPECT_EQ(std::string(k.begin(), k.end()), it->first);
    EXPECT_EQ(std::string(v.begin(), v.end()), it->second);
    ++it;
  }
  EXPECT_EQ(t->size(), 0u);
}

// --- Lazy recovery ---------------------------------------------------------

// Under a budget, reopening defers log-tail replay to first touch.
// size() must be exact before any touch (the manifest records live
// counts), and reads must merge the sealed segment with the committed
// tail exactly as an eager recovery would.
TEST(LogStoreOutOfCore, LazyRecoveryReadsThroughSegmentPlusLogTail) {
  const fs::path dir = uniqueDir("lazy");
  {
    auto store = openStore(dir.string(), 0);
    kv::TableOptions topts;
    topts.parts = 2;
    kv::TablePtr t = store->createTable("t", topts);
    for (int i = 0; i < 20; ++i) {
      t->put("k" + std::to_string(i), "sealed" + std::to_string(i));
    }
    store->compactNow();
    store->commitEpoch();
    t->put("k3", "tail3");     // Committed log tail over the sealed gen...
    t->put("k20", "tail20");   // ...with a net-new key...
    t->erase("k5");            // ...and a sealed key erased through it.
    store->commitEpoch();
  }
  {
    auto store = openStore(dir.string(), 4096);
    kv::TablePtr t = store->lookupTable("t");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 20u);  // 20 sealed + 1 new - 1 erased; untouched.
    EXPECT_EQ(t->get("k3"), std::optional<kv::Value>("tail3"));
    EXPECT_EQ(t->get("k5"), std::nullopt);
    EXPECT_EQ(t->get("k20"), std::optional<kv::Value>("tail20"));
    EXPECT_EQ(t->get("k7"), std::optional<kv::Value>("sealed7"));
    EXPECT_GT(store->stats().segmentReadHits, 0u);
    std::map<std::string, std::string> expected;
    for (int i = 0; i < 20; ++i) {
      expected["k" + std::to_string(i)] = "sealed" + std::to_string(i);
    }
    expected["k3"] = "tail3";
    expected["k20"] = "tail20";
    expected.erase("k5");
    EXPECT_EQ(contentsOf(*t), expected);
    EXPECT_EQ(t->size(), 20u);  // Still exact after the replay.
  }
  fs::remove_all(dir);
}

// --- Satellite regression: ephemeral-dir leak on throwing recovery ---------

// When recovery throws mid-constructor the destructor never runs; the
// cleanup-on-destroy contract for ephemeral directories must hold
// anyway (RAII member, not destructor logic).  Pre-fix this leaked the
// directory.
TEST(LogStoreOutOfCore, EphemeralDirRemovedWhenRecoveryThrows) {
  const fs::path dir = uniqueDir("leak");
  {
    auto store = openStore(dir.string(), 0);
    kv::TablePtr t = store->createTable("t", kv::TableOptions{});
    for (int i = 0; i < 12; ++i) {
      t->put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    store->commitEpoch();
  }
  // Corrupt the committed prefix of a part log: recovery must throw.
  bool flipped = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".log" &&
        fs::file_size(entry.path()) > 0) {
      const std::uint64_t off = fs::file_size(entry.path()) / 2;
      std::fstream f(entry.path(),
                     std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.is_open());
      f.seekg(static_cast<std::streamoff>(off));
      char c = 0;
      f.get(c);
      f.seekp(static_cast<std::streamoff>(off));
      f.put(static_cast<char>(c ^ 0x5a));
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped) << "no non-empty part log to corrupt";

  kv::LogStore::Options o;
  o.path = dir.string();
  o.ephemeral = true;  // Adopt the pre-seeded dir under the cleanup contract.
  o.backgroundCompaction = false;
  EXPECT_THROW(kv::LogStore::open(std::move(o)), ls::SegmentError);
  EXPECT_FALSE(fs::exists(dir))
      << "ephemeral directory leaked by a throwing recovery";
}

// --- Satellite regression: borrowed views across a compaction swap ---------

/// Parks mid-scan on the first pair so the main thread can compact and
/// commit (retiring the generation being streamed), then resumes and
/// keeps reading the now-superseded segment through its pin.
class ParkingCollector : public kv::PairConsumer {
 public:
  bool consume(std::uint32_t /*part*/, kv::KeyView key,
               kv::ValueView value) override {
    if (!parkedOnce_) {
      parkedOnce_ = true;
      parked.set_value();
      resume.get_future().wait();
    }
    pairs_.emplace(std::string(key), std::string(value));
    return true;
  }
  std::promise<void> parked;
  std::promise<void> resume;
  std::map<std::string, std::string> pairs_;

 private:
  bool parkedOnce_ = false;
};

// Pre-fix (sealed segment swapped with close()+reopen under the lock,
// no pinning) the resumed reader dereferences views into an munmap'd
// mapping — under ASan this is a hard failure.  Post-fix the pinned
// generation keeps the mapping alive and the scan returns the exact
// snapshot it started from.
TEST(LogStoreOutOfCore, ScanViewsSurviveConcurrentCompactionSwap) {
  auto store = openStore("", 0);
  kv::TablePtr t = store->createTable("pin", kv::TableOptions{});
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 60; ++i) {
    const std::string key = "k" + std::to_string(100 + i);
    t->put(key, "old" + std::to_string(i));
    expected[key] = "old" + std::to_string(i);
  }
  store->compactNow();   // Seal generation 2...
  store->commitEpoch();
  t->put("k110", "rewritten");  // ...and dirty it so the next compaction
  expected["k110"] = "rewritten";  // writes a superseding generation.

  ParkingCollector collector;
  std::thread reader([&] { t->enumeratePart(0, collector); });
  collector.parked.get_future().wait();
  store->compactNow();    // Swap generations under the parked reader...
  store->commitEpoch();   // ...and delete the superseded files.
  collector.resume.set_value();
  reader.join();

  EXPECT_EQ(collector.pairs_, expected);
}

// --- Engine acceptance: bounded == unbounded, bit for bit ------------------

// PageRank through the sync engine with per-step checkpoints (the path
// that calls commitEpoch against evicted parts).  A budget several
// times smaller than the dataset must not change a single bit of the
// final ranks.
TEST(LogStoreOutOfCore, PageRankDigestIdenticalBoundedVsUnbounded) {
  namespace graph = ripple::graph;
  namespace ebsp = ripple::ebsp;
  namespace apps = ripple::apps;
  graph::PowerLawOptions gopts;
  gopts.vertices = 120;
  gopts.edges = 600;
  gopts.seed = 7;
  const graph::Graph g = graph::generatePowerLaw(gopts);

  const auto run = [&](std::size_t budget, std::uint64_t& evictions) {
    const fs::path dir =
        uniqueDir(budget == 0 ? "pr-unbounded" : "pr-bounded");
    std::vector<double> ranks;
    {
      kv::LogStore::Options o;
      o.path = dir.string();
      o.memoryBudgetBytes = budget;
      auto store = kv::LogStore::open(std::move(o));
      ebsp::EngineOptions eopts;
      eopts.threads = 2;
      eopts.checkpoint.enabled = true;
      eopts.checkpoint.interval = 1;
      eopts.checkpoint.jobId = "oc-pagerank";
      ebsp::Engine engine(store, eopts);
      apps::loadPageRankGraph(*store, "pr_graph", g, 4);
      apps::PageRankOptions popts;
      popts.iterations = 6;
      apps::runPageRank(engine, popts);
      ranks = apps::readRanks(*store, "pr_graph", g.vertexCount());
      evictions = store->stats().evictions;
    }
    fs::remove_all(dir);
    return ranks;
  };

  std::uint64_t unboundedEvictions = 0;
  std::uint64_t boundedEvictions = 0;
  const std::vector<double> unbounded = run(0, unboundedEvictions);
  const std::vector<double> bounded = run(4096, boundedEvictions);
  EXPECT_EQ(unboundedEvictions, 0u);
  EXPECT_GT(boundedEvictions, 0u) << "budget never engaged; not out-of-core";
  ASSERT_EQ(bounded.size(), unbounded.size());
  for (std::size_t i = 0; i < bounded.size(); ++i) {
    EXPECT_EQ(bounded[i], unbounded[i]) << "rank of vertex " << i;
  }
}

}  // namespace
