// PartitionedStore-specific behaviour: concurrency, the local/remote
// boundary, thread adoption, and metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "kvstore/partitioned_store.h"
#include "kvstore/store_util.h"

namespace ripple::kv {
namespace {

TEST(PartitionedStore, RejectsZeroContainers) {
  EXPECT_THROW(PartitionedStore::create(0), std::invalid_argument);
}

TEST(PartitionedStore, ConcurrentWritersFromManyThreads) {
  auto store = PartitionedStore::create(4);
  TableOptions options;
  options.parts = 4;
  TablePtr t = store->createTable("t", std::move(options));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t, w] {
      for (int i = 0; i < kPerThread; ++i) {
        t->put("w" + std::to_string(w) + "_" + std::to_string(i), "v");
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(t->size(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(PartitionedStore, OpsFromOutsideAreRemote) {
  auto store = PartitionedStore::create(2);
  TableOptions options;
  options.parts = 2;
  TablePtr t = store->createTable("t", std::move(options));
  store->metrics().reset();
  t->put("key", "v");
  (void)t->get("key");
  EXPECT_EQ(store->metrics().remoteOps.load(), 2u);
  EXPECT_EQ(store->metrics().localOps.load(), 0u);
  EXPECT_GT(store->metrics().bytesMarshalled.load(), 0u);
}

TEST(PartitionedStore, OpsFromOwnerThreadAreLocal) {
  auto store = PartitionedStore::create(2);
  TableOptions options;
  options.parts = 2;
  TablePtr t = store->createTable("t", std::move(options));

  // Find a key owned by part 0 and operate on it from part 0's executor.
  std::string key = "a";
  while (t->partOf(key) != 0) {
    key.push_back('a');
  }
  store->metrics().reset();
  store->runInPart(*t, 0, [&] {
    t->put(key, "v");
    EXPECT_EQ(t->get(key), "v");
  });
  EXPECT_EQ(store->metrics().localOps.load(), 2u);
  EXPECT_EQ(store->metrics().remoteOps.load(), 0u);
}

TEST(PartitionedStore, AdoptedThreadGetsLocalAccess) {
  auto store = PartitionedStore::create(2);
  TableOptions options;
  options.parts = 2;
  TablePtr t = store->createTable("t", std::move(options));
  std::string key = "a";
  while (t->partOf(key) != 1) {
    key.push_back('a');
  }
  store->metrics().reset();
  std::thread worker([&] {
    auto token = store->adoptPartThread(*t, 1);
    t->put(key, "v");
    EXPECT_EQ(store->metrics().localOps.load(), 1u);
  });
  worker.join();
  // After the token is gone the same thread pattern would be remote; a
  // fresh unadopted thread certainly is.
  std::thread outsider([&] { (void)t->get(key); });
  outsider.join();
  EXPECT_EQ(store->metrics().remoteOps.load(), 1u);
}

TEST(PartitionedStore, AdoptReleasesOnTokenDestruction) {
  auto store = PartitionedStore::create(1);
  TableOptions options;
  options.parts = 1;
  TablePtr t = store->createTable("t", std::move(options));
  store->metrics().reset();
  {
    auto token = store->adoptPartThread(*t, 0);
    t->put("k", "v");
  }
  (void)t->get("k");
  EXPECT_EQ(store->metrics().localOps.load(), 1u);
  EXPECT_EQ(store->metrics().remoteOps.load(), 1u);
}

TEST(PartitionedStore, RunInPartsExecutesConcurrently) {
  auto store = PartitionedStore::create(4);
  TableOptions options;
  options.parts = 4;
  TablePtr t = store->createTable("t", std::move(options));

  // All four parts must be inside fn at once for the latch to release.
  std::atomic<int> arrived{0};
  std::atomic<bool> released{false};
  store->runInParts(*t, [&](std::uint32_t) {
    arrived.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (arrived.load() < 4 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    if (arrived.load() >= 4) {
      released.store(true);
    }
  });
  EXPECT_TRUE(released.load());
}

TEST(PartitionedStore, EnumerationCallbackMayWriteOtherTables) {
  // Snapshot-based enumeration: consumers can issue routed ops without
  // deadlocking.
  auto store = PartitionedStore::create(2);
  TableOptions options;
  options.parts = 2;
  TablePtr src = store->createTable("src", options);
  TableOptions options2;
  options2.parts = 2;
  TablePtr dst = store->createTable("dst", options2);
  for (int i = 0; i < 50; ++i) {
    src->put("k" + std::to_string(i), std::to_string(i));
  }
  class CopyingConsumer : public PairConsumer {
   public:
    explicit CopyingConsumer(Table& dst) : dst_(dst) {}
    bool consume(std::uint32_t, KeyView k, ValueView v) override {
      dst_.put(k, v);  // Cross-part routed write from a scan thread.
      return true;
    }

   private:
    Table& dst_;
  };
  CopyingConsumer consumer(*dst);
  src->enumerate(consumer);
  EXPECT_EQ(dst->size(), 50u);
}

TEST(PartitionedStore, MorePartsThanContainers) {
  auto store = PartitionedStore::create(2);
  TableOptions options;
  options.parts = 8;
  TablePtr t = store->createTable("t", std::move(options));
  for (int i = 0; i < 100; ++i) {
    t->put("k" + std::to_string(i), "v");
  }
  EXPECT_EQ(t->size(), 100u);
  std::atomic<std::uint32_t> visited{0};
  store->runInParts(*t, [&](std::uint32_t) { visited.fetch_add(1); });
  EXPECT_EQ(visited.load(), 8u);
}

TEST(PartitionedStore, UbiquitousReadableFromEveryThread) {
  auto store = PartitionedStore::create(3);
  TableOptions options;
  options.ubiquitous = true;
  TablePtr u = store->createTable("u", std::move(options));
  u->put("broadcast", "datum");
  TableOptions placedOptions;
  placedOptions.parts = 3;
  TablePtr placed = store->createTable("placed", std::move(placedOptions));
  std::atomic<int> reads{0};
  store->runInParts(*placed, [&](std::uint32_t) {
    if (u->get("broadcast") == "datum") {
      reads.fetch_add(1);
    }
  });
  EXPECT_EQ(reads.load(), 3);
}

TEST(PartitionedStore, ShutdownIsIdempotent) {
  auto store = PartitionedStore::create(2);
  store->shutdown();
  store->shutdown();
}

}  // namespace
}  // namespace ripple::kv
