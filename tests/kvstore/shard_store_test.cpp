// ShardStore-specific behavior: everything the SPI conformance suite
// cannot see because it is backend-internal — the write buffer, the
// ubiquitous LRU block cache, scrambled placement, and option
// validation.  The contract-level behavior is covered by
// tests/kvstore/spi_conformance_test.cpp.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kvstore/shard_store.h"

namespace ripple::kv {
namespace {

ShardStore::Options smallOptions() {
  ShardStore::Options options;
  options.locations = 2;
  options.stripes = 2;
  options.writeBufferLimit = 4;
  options.blockCacheCapacity = 8;
  return options;
}

TEST(ShardStoreTest, OptionsValidation) {
  ShardStore::Options bad = smallOptions();
  bad.locations = 0;
  EXPECT_THROW(ShardStore::create(bad), std::invalid_argument);
  bad = smallOptions();
  bad.stripes = 0;
  EXPECT_THROW(ShardStore::create(bad), std::invalid_argument);
  bad = smallOptions();
  bad.writeBufferLimit = 0;
  EXPECT_THROW(ShardStore::create(bad), std::invalid_argument);
  // blockCacheCapacity = 0 is legal: it disables the cache.
  ShardStore::Options ok = smallOptions();
  ok.blockCacheCapacity = 0;
  EXPECT_NE(ShardStore::create(ok), nullptr);
}

TEST(ShardStoreTest, ReadsSeeBufferedAndFlushedWrites) {
  // One part forces every key through the same write buffer, so writing
  // several multiples of writeBufferLimit exercises both the buffered
  // (pre-fold) and flushed (stripe-resident) read paths.
  auto store = ShardStore::create(smallOptions());
  TableOptions options;
  options.parts = 1;
  TablePtr t = store->createTable("t", std::move(options));
  for (int i = 0; i < 23; ++i) {
    t->put("k" + std::to_string(i), "v" + std::to_string(i));
  }
  for (int i = 0; i < 23; ++i) {
    EXPECT_EQ(t->get("k" + std::to_string(i)), "v" + std::to_string(i));
  }
  EXPECT_EQ(t->size(), 23u);
}

TEST(ShardStoreTest, NewestBufferedWriteWins) {
  auto store = ShardStore::create(smallOptions());
  TableOptions options;
  options.parts = 1;
  TablePtr t = store->createTable("t", std::move(options));
  t->put("k", "old");
  t->put("k", "new");  // Both still in the buffer; reverse scan must win.
  EXPECT_EQ(t->get("k"), "new");
  EXPECT_EQ(t->size(), 1u);  // size() folds the buffer: still one key.
  EXPECT_EQ(t->get("k"), "new");
}

TEST(ShardStoreTest, EraseThroughBufferReportsExistence) {
  auto store = ShardStore::create(smallOptions());
  TableOptions options;
  options.parts = 1;
  TablePtr t = store->createTable("t", std::move(options));

  // Buffered key: put and erase both sit in the write buffer.
  t->put("buffered", "v");
  EXPECT_TRUE(t->erase("buffered"));
  EXPECT_FALSE(t->erase("buffered"));
  EXPECT_EQ(t->get("buffered"), std::nullopt);

  // Stripe-resident key: force a fold via size(), then erase.
  t->put("flushed", "v");
  EXPECT_EQ(t->size(), 1u);
  EXPECT_TRUE(t->erase("flushed"));
  EXPECT_FALSE(t->erase("flushed"));
  EXPECT_EQ(t->size(), 0u);
}

TEST(ShardStoreTest, TombstoneInBufferHidesStripeValue) {
  auto store = ShardStore::create(smallOptions());
  TableOptions options;
  options.parts = 1;
  TablePtr t = store->createTable("t", std::move(options));
  t->put("k", "v");
  EXPECT_EQ(t->size(), 1u);  // Fold: "k" now lives in a stripe.
  EXPECT_TRUE(t->erase("k"));  // Tombstone appended to the buffer.
  EXPECT_EQ(t->get("k"), std::nullopt);  // Buffer consulted before stripe.
  EXPECT_EQ(t->size(), 0u);
}

TEST(ShardStoreTest, UbiquitousCacheCountsHitsAndMisses) {
  auto store = ShardStore::create(smallOptions());
  TableOptions options;
  options.ubiquitous = true;
  TablePtr u = store->createTable("u", std::move(options));
  u->put("config", "1");

  const std::uint64_t misses0 = store->metrics().cacheMisses.load();
  const std::uint64_t hits0 = store->metrics().cacheHits.load();

  EXPECT_EQ(u->get("config"), "1");  // Cold: miss, fills the cache.
  EXPECT_EQ(store->metrics().cacheMisses.load(), misses0 + 1);
  EXPECT_EQ(store->metrics().cacheHits.load(), hits0);

  EXPECT_EQ(u->get("config"), "1");  // Warm: hit.
  EXPECT_EQ(u->get("config"), "1");
  EXPECT_EQ(store->metrics().cacheHits.load(), hits0 + 2);
  EXPECT_EQ(store->metrics().cacheMisses.load(), misses0 + 1);

  // A write invalidates, so the next read misses and sees the new value.
  u->put("config", "2");
  EXPECT_EQ(u->get("config"), "2");
  EXPECT_EQ(store->metrics().cacheMisses.load(), misses0 + 2);
}

TEST(ShardStoreTest, UbiquitousCacheEvictsAtCapacity) {
  ShardStore::Options options = smallOptions();
  options.blockCacheCapacity = 1;
  auto store = ShardStore::create(options);
  TableOptions tableOptions;
  tableOptions.ubiquitous = true;
  TablePtr u = store->createTable("u", std::move(tableOptions));
  u->put("a", "1");
  u->put("b", "2");

  const std::uint64_t misses0 = store->metrics().cacheMisses.load();
  EXPECT_EQ(u->get("a"), "1");  // Miss, caches a.
  EXPECT_EQ(u->get("b"), "2");  // Miss, evicts a.
  EXPECT_EQ(u->get("a"), "1");  // Miss again: a was evicted.
  EXPECT_EQ(store->metrics().cacheMisses.load(), misses0 + 3);
}

TEST(ShardStoreTest, ZeroCapacityDisablesCache) {
  ShardStore::Options options = smallOptions();
  options.blockCacheCapacity = 0;
  auto store = ShardStore::create(options);
  TableOptions tableOptions;
  tableOptions.ubiquitous = true;
  TablePtr u = store->createTable("u", std::move(tableOptions));
  u->put("k", "v");
  EXPECT_EQ(u->get("k"), "v");
  EXPECT_EQ(u->get("k"), "v");
  EXPECT_EQ(store->metrics().cacheHits.load(), 0u);
  EXPECT_EQ(store->metrics().cacheMisses.load(), 0u);
}

TEST(ShardStoreTest, PlacementIsStableInRangeAndSpread) {
  auto store = ShardStore::create(4);
  EXPECT_EQ(store->locationCount(), 4u);
  std::set<std::uint32_t> used;
  for (std::uint32_t part = 0; part < 64; ++part) {
    const std::uint32_t loc = store->locationOf(part);
    EXPECT_LT(loc, 4u);
    EXPECT_EQ(store->locationOf(part), loc);  // Deterministic.
    used.insert(loc);
  }
  // The scrambled placement must still use every location.
  EXPECT_EQ(used.size(), 4u);
  // And it is genuinely scrambled: not the identity `part % N` layout.
  bool differsFromModulo = false;
  for (std::uint32_t part = 0; part < 64 && !differsFromModulo; ++part) {
    differsFromModulo = store->locationOf(part) != part % 4;
  }
  EXPECT_TRUE(differsFromModulo);
}

TEST(ShardStoreTest, ShutdownIsIdempotent) {
  auto store = ShardStore::create(2);
  TableOptions options;
  options.parts = 2;
  TablePtr t = store->createTable("t", std::move(options));
  t->put("k", "v");
  store->shutdown();
  store->shutdown();
  // Point ops do not go through the executors, so they still work.
  EXPECT_EQ(t->get("k"), "v");
}

}  // namespace
}  // namespace ripple::kv
