// Store-SPI conformance suite, run against every KVStore implementation
// (and against each wrapped in the ripple::fault decorator with an empty
// plan, which must be contractually invisible).  The portability claim of
// paper §III demands that every backend satisfy the same observable
// contract; DESIGN.md §10 writes the guarantees down, and this file is
// their executable form.  The cross-backend application-level leg —
// PageRank/SSSP/SUMMA byte-identity between backends — lives in
// tests/ebsp/backend_differential_test.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include <unistd.h>

#include "common/codec.h"
#include "fault/faulty_store.h"
#include "kvstore/local_store.h"
#include "kvstore/log_store.h"
#include "kvstore/partitioned_store.h"
#include "kvstore/shard_store.h"
#include "kvstore/store_util.h"
#include "net/remote_store.h"

namespace ripple::kv {
namespace {

struct StoreFactory {
  const char* name;
  KVStorePtr (*make)();
};

KVStorePtr makeLocal() { return LocalStore::create(); }
KVStorePtr makePartitioned() {
  return PartitionedStore::create(4);
}
KVStorePtr makeShard() {
  // Deliberately tiny write buffer and cache so the conformance runs hit
  // the buffered-read, flush, and eviction paths — not just the fast one.
  ShardStore::Options options;
  options.locations = 4;
  options.stripes = 4;
  options.writeBufferLimit = 8;
  options.blockCacheCapacity = 16;
  return ShardStore::create(options);
}
KVStorePtr makeRemote() {
  // The wire backend: an in-process loopback net::Server hosting a
  // partitioned store, driven through the full frame codec / TCP /
  // RemoteStore stack.  Identical observable contract to the in-process
  // backends is exactly the point.
  net::LoopbackOptions options;
  options.hostedContainers = 4;
  options.locations = 4;
  return net::makeLoopbackStore(options);
}

KVStorePtr makeDroppyRemote() {
  // Failover leg: every 7th exchange has its connection severed, cycling
  // through all three boundaries (before send / after send / after the
  // response).  Because every RemoteStore/RemoteQueuing wire op is either
  // idempotent (retryIo) or dedup-protected, the ENTIRE conformance
  // contract must hold unchanged — lost responses replay from the server
  // dedup cache instead of re-executing, so even destructive ops (drain,
  // create) keep exactly-once effects.
  net::LoopbackOptions options;
  options.hostedContainers = 4;
  options.locations = 4;
  options.retry.maxAttempts = 8;
  options.retry.initialBackoffMs = 0.05;
  options.retry.maxBackoffMs = 0.5;
  auto consults = std::make_shared<std::atomic<std::uint64_t>>(0);
  options.chaos = [consults](net::Opcode, net::ChaosPoint point) {
    const std::uint64_t n =
        consults->fetch_add(1, std::memory_order_relaxed);
    if (n % 7 != 0) {
      return false;
    }
    return static_cast<net::ChaosPoint>((n / 7) % 3) == point;
  };
  return net::makeLoopbackStore(std::move(options));
}

KVStorePtr makeLog() {
  // Ephemeral mode: a private temp directory, deleted with the store.
  return LogStore::open(LogStore::Options{});
}

KVStorePtr makeDroppyLogRemote() {
  // The durable backend hosted BEHIND the chaotic wire: same severed-
  // connection schedule as DroppyRemoteStore, but every server-side op
  // lands in a LogStore.  Durability must not perturb the wire contract.
  net::LoopbackOptions options;
  options.hostedBackend = StoreBackend::kLog;
  options.hostedContainers = 4;
  options.locations = 4;
  options.retry.maxAttempts = 8;
  options.retry.initialBackoffMs = 0.05;
  options.retry.maxBackoffMs = 0.5;
  auto consults = std::make_shared<std::atomic<std::uint64_t>>(0);
  options.chaos = [consults](net::Opcode, net::ChaosPoint point) {
    const std::uint64_t n =
        consults->fetch_add(1, std::memory_order_relaxed);
    if (n % 7 != 0) {
      return false;
    }
    return static_cast<net::ChaosPoint>((n / 7) % 3) == point;
  };
  return net::makeLoopbackStore(std::move(options));
}

constexpr std::string_view kReopenDirPrefix = "ripple-spi-reopen-";

KVStorePtr makeReopenedLog() {
  // Reopen-between-ops leg: the whole contract runs against a RECOVERED
  // store instance.  Open a store at a pinned path, write a marker,
  // close cleanly (commits the final epoch), reopen the same directory
  // and verify recovery carried the marker across — then hand the
  // recovered store to the suite.  The broken-manifest regression test
  // below proves this probe actually bites.
  static std::atomic<int> counter{0};
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string(kReopenDirPrefix) + std::to_string(::getpid()) + "-" +
        std::to_string(counter.fetch_add(1))))
          .string();
  std::filesystem::remove_all(dir);
  {
    std::shared_ptr<LogStore> first = LogStore::open(dir);
    TableOptions markerOptions;
    markerOptions.parts = 2;
    TablePtr marker =
        first->createTable("__reopen_marker", std::move(markerOptions));
    marker->put("k", "survives");
  }
  std::shared_ptr<LogStore> reopened = LogStore::open(dir);
  TablePtr marker = reopened->lookupTable("__reopen_marker");
  if (!marker || marker->get("k") != std::optional<Value>("survives")) {
    throw std::runtime_error(
        "reopen leg: marker did not survive close/reopen");
  }
  reopened->dropTable("__reopen_marker");
  return reopened;
}

// The fault-injection decorator with an empty plan must be contractually
// invisible: the whole suite runs against it too.
KVStorePtr makeFaultyLocal() {
  return fault::FaultyStore::wrap(
      LocalStore::create(),
      std::make_shared<fault::FaultInjector>(fault::FaultPlan{}));
}
KVStorePtr makeFaultyPartitioned() {
  return fault::FaultyStore::wrap(
      PartitionedStore::create(4),
      std::make_shared<fault::FaultInjector>(fault::FaultPlan{}));
}
KVStorePtr makeFaultyShard() {
  return fault::FaultyStore::wrap(
      makeShard(),
      std::make_shared<fault::FaultInjector>(fault::FaultPlan{}));
}
KVStorePtr makeFaultyRemote() {
  return fault::FaultyStore::wrap(
      makeRemote(),
      std::make_shared<fault::FaultInjector>(fault::FaultPlan{}));
}
KVStorePtr makeFaultyLog() {
  return fault::FaultyStore::wrap(
      makeLog(),
      std::make_shared<fault::FaultInjector>(fault::FaultPlan{}));
}

class StoreConformanceTest : public ::testing::TestWithParam<StoreFactory> {
 protected:
  void SetUp() override { store_ = GetParam().make(); }

  void TearDown() override {
    // The reopened-log leg uses pinned (non-ephemeral) directories;
    // collect them once the store is gone.
    std::string path;
    if (auto* log = dynamic_cast<LogStore*>(store_.get())) {
      path = log->storePath();
    }
    store_.reset();
    if (path.find(kReopenDirPrefix) != std::string::npos) {
      std::filesystem::remove_all(path);
    }
  }

  TablePtr makeTable(const std::string& name, std::uint32_t parts,
                     bool ordered = false) {
    TableOptions options;
    options.parts = parts;
    options.ordered = ordered;
    return store_->createTable(name, std::move(options));
  }

  KVStorePtr store_;
};

TEST_P(StoreConformanceTest, CreateLookupDrop) {
  TablePtr t = makeTable("t", 3);
  EXPECT_EQ(t->name(), "t");
  EXPECT_EQ(store_->lookupTable("t"), t);
  EXPECT_EQ(store_->lookupTable("missing"), nullptr);
  store_->dropTable("t");
  EXPECT_EQ(store_->lookupTable("t"), nullptr);
}

TEST_P(StoreConformanceTest, DuplicateCreateThrows) {
  makeTable("t", 2);
  EXPECT_THROW(makeTable("t", 2), std::invalid_argument);
}

TEST_P(StoreConformanceTest, GetPutEraseBasics) {
  TablePtr t = makeTable("t", 4);
  EXPECT_EQ(t->get("k"), std::nullopt);
  t->put("k", "v1");
  EXPECT_EQ(t->get("k"), "v1");
  t->put("k", "v2");  // Overwrite.
  EXPECT_EQ(t->get("k"), "v2");
  EXPECT_TRUE(t->erase("k"));
  EXPECT_FALSE(t->erase("k"));
  EXPECT_EQ(t->get("k"), std::nullopt);
}

TEST_P(StoreConformanceTest, EmptyKeyAndBinaryValues) {
  TablePtr t = makeTable("t", 2);
  const Bytes binary("\0\x01\xff", 3);
  t->put("", binary);
  EXPECT_EQ(t->get(""), binary);
}

TEST_P(StoreConformanceTest, SizeAndPartSize) {
  TablePtr t = makeTable("t", 4);
  for (int i = 0; i < 100; ++i) {
    t->put("key" + std::to_string(i), "v");
  }
  EXPECT_EQ(t->size(), 100u);
  std::uint64_t sum = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    sum += t->partSize(p);
  }
  EXPECT_EQ(sum, 100u);
}

TEST_P(StoreConformanceTest, PartOfMatchesPartitioner) {
  TablePtr t = makeTable("t", 4);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(t->partOf(key), t->options().partitioner->partOf(key));
    EXPECT_LT(t->partOf(key), 4u);
  }
}

TEST_P(StoreConformanceTest, PutBatchRoutesAllParts) {
  TablePtr t = makeTable("t", 4);
  std::vector<std::pair<Key, Value>> batch;
  for (int i = 0; i < 200; ++i) {
    batch.emplace_back("key" + std::to_string(i), std::to_string(i));
  }
  t->putBatch(batch);
  EXPECT_EQ(t->size(), 200u);
  EXPECT_EQ(t->get("key123"), "123");
}

TEST_P(StoreConformanceTest, EnumerateVisitsEverything) {
  TablePtr t = makeTable("t", 3);
  for (int i = 0; i < 60; ++i) {
    t->put("k" + std::to_string(i), std::to_string(i * 2));
  }
  auto all = readAll(*t);
  EXPECT_EQ(all.size(), 60u);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(countPairs(*t), 60u);
}

TEST_P(StoreConformanceTest, OrderedTableEnumeratesPartsInKeyOrder) {
  TablePtr t = makeTable("t", 2, /*ordered=*/true);
  for (int i = 99; i >= 0; --i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    t->put(buf, "v");
  }
  for (std::uint32_t p = 0; p < 2; ++p) {
    std::vector<Bytes> keys;
    class Collect : public PairConsumer {
     public:
      explicit Collect(std::vector<Bytes>& keys) : keys_(keys) {}
      bool consume(std::uint32_t, KeyView k, ValueView) override {
        keys_.emplace_back(k);
        return true;
      }

     private:
      std::vector<Bytes>& keys_;
    };
    Collect collector(keys);
    t->enumeratePart(p, collector);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_FALSE(keys.empty());
  }
}

TEST_P(StoreConformanceTest, PairConsumerEarlyStopIsPerPart) {
  TablePtr t = makeTable("t", 2);
  for (int i = 0; i < 40; ++i) {
    t->put("k" + std::to_string(i), "v");
  }
  class StopAfterOne : public PairConsumer {
   public:
    bool consume(std::uint32_t, KeyView, ValueView) override {
      count.fetch_add(1);
      return false;  // Stop this part after the first pair.
    }
    std::atomic<int> count{0};
  };
  StopAfterOne consumer;
  t->enumerate(consumer);
  EXPECT_EQ(consumer.count.load(), 2);  // One per part.
}

TEST_P(StoreConformanceTest, PairConsumerSetupFinalizeCombine) {
  TablePtr t = makeTable("t", 3);
  for (int i = 0; i < 30; ++i) {
    t->put("k" + std::to_string(i), "v");
  }
  // Count pairs per part via finalize, combine by summation.
  class Counter : public PairConsumer {
   public:
    void setupPart(std::uint32_t part) override {
      std::lock_guard<std::mutex> lock(mu_);
      counts_[part] = 0;
    }
    bool consume(std::uint32_t part, KeyView, ValueView) override {
      std::lock_guard<std::mutex> lock(mu_);
      ++counts_[part];
      return true;
    }
    Bytes finalizePart(std::uint32_t part) override {
      std::lock_guard<std::mutex> lock(mu_);
      return encodeToBytes<std::uint64_t>(counts_[part]);
    }
    Bytes combine(Bytes a, Bytes b) override {
      if (a.empty()) return b;
      if (b.empty()) return a;
      return encodeToBytes<std::uint64_t>(
          decodeFromBytes<std::uint64_t>(a) +
          decodeFromBytes<std::uint64_t>(b));
    }

   private:
    std::mutex mu_;
    std::map<std::uint32_t, std::uint64_t> counts_;
  };
  Counter counter;
  const Bytes result = t->enumerate(counter);
  EXPECT_EQ(decodeFromBytes<std::uint64_t>(result), 30u);
}

TEST_P(StoreConformanceTest, PartConsumerProcessesEveryPart) {
  TablePtr t = makeTable("t", 4);
  for (int i = 0; i < 100; ++i) {
    t->put("k" + std::to_string(i), "v");
  }
  class Sizer : public PartConsumer {
   public:
    Bytes processPart(std::uint32_t part, Table& table) override {
      return encodeToBytes<std::uint64_t>(table.partSize(part));
    }
    Bytes combine(Bytes a, Bytes b) override {
      if (a.empty()) return b;
      if (b.empty()) return a;
      return encodeToBytes<std::uint64_t>(
          decodeFromBytes<std::uint64_t>(a) +
          decodeFromBytes<std::uint64_t>(b));
    }
  };
  Sizer sizer;
  EXPECT_EQ(decodeFromBytes<std::uint64_t>(t->processParts(sizer)), 100u);
}

TEST_P(StoreConformanceTest, DrainPartRemovesAndReturns) {
  TablePtr t = makeTable("t", 2);
  for (int i = 0; i < 20; ++i) {
    t->put("k" + std::to_string(i), "v");
  }
  std::size_t drained = 0;
  for (std::uint32_t p = 0; p < 2; ++p) {
    drained += t->drainPart(p).size();
  }
  EXPECT_EQ(drained, 20u);
  EXPECT_EQ(t->size(), 0u);
}

TEST_P(StoreConformanceTest, ClearPartOnlyClearsThatPart) {
  TablePtr t = makeTable("t", 2);
  for (int i = 0; i < 40; ++i) {
    t->put("k" + std::to_string(i), "v");
  }
  const std::uint64_t before0 = t->partSize(0);
  const std::uint64_t cleared = t->clearPart(0);
  EXPECT_EQ(cleared, before0);
  EXPECT_EQ(t->partSize(0), 0u);
  EXPECT_EQ(t->size(), 40u - before0);
}

TEST_P(StoreConformanceTest, ConsistentTableSharesPartitioning) {
  TablePtr a = makeTable("a", 4);
  TablePtr b = store_->createConsistentTable("b", *a);
  EXPECT_EQ(b->numParts(), a->numParts());
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(a->partOf(key), b->partOf(key));
  }
  // Same partitioner INSTANCE, which is the guarantee.
  EXPECT_EQ(a->options().partitioner.get(), b->options().partitioner.get());
}

TEST_P(StoreConformanceTest, UbiquitousTableHasSinglePart) {
  TableOptions options;
  options.parts = 8;  // Ignored for ubiquitous tables.
  options.ubiquitous = true;
  TablePtr t = store_->createTable("u", std::move(options));
  EXPECT_EQ(t->numParts(), 1u);
  t->put("config", "42");
  EXPECT_EQ(t->get("config"), "42");
  EXPECT_EQ(t->partOf("anything"), 0u);
  EXPECT_EQ(countPairs(*t), 1u);
}

TEST_P(StoreConformanceTest, RunInPartsVisitsEachPartOnce) {
  TablePtr t = makeTable("t", 4);
  std::atomic<std::uint32_t> mask{0};
  store_->runInParts(*t, [&](std::uint32_t part) {
    mask.fetch_or(1u << part);
  });
  EXPECT_EQ(mask.load(), 0b1111u);
}

TEST_P(StoreConformanceTest, RunInPartRejectsBadPart) {
  TablePtr t = makeTable("t", 2);
  EXPECT_THROW(store_->runInPart(*t, 5, [] {}), std::out_of_range);
}

TEST_P(StoreConformanceTest, RunInPartsPropagatesExceptions) {
  TablePtr t = makeTable("t", 3);
  EXPECT_THROW(store_->runInParts(
                   *t,
                   [](std::uint32_t part) {
                     if (part == 1) {
                       throw std::runtime_error("part failure");
                     }
                   }),
               std::runtime_error);
}

TEST_P(StoreConformanceTest, CopyTablePreservesContent) {
  TablePtr src = makeTable("src", 3);
  for (int i = 0; i < 25; ++i) {
    src->put("k" + std::to_string(i), std::to_string(i));
  }
  TablePtr dst = makeTable("dst", 2);
  copyTable(*src, *dst);
  EXPECT_EQ(dst->size(), 25u);
  EXPECT_EQ(dst->get("k7"), "7");
}

TEST_P(StoreConformanceTest, TypedTableRoundtrip) {
  TablePtr raw = makeTable("typed", 2);
  TypedTable<int, std::pair<std::string, double>> t(raw);
  t.put(1, {"one", 1.0});
  t.put(2, {"two", 2.0});
  EXPECT_EQ(t.get(1)->first, "one");
  EXPECT_EQ(t.get(3), std::nullopt);
  EXPECT_TRUE(t.erase(2));
  EXPECT_EQ(t.size(), 1u);
  int visited = 0;
  t.forEach([&](const int& k, const auto& v) {
    EXPECT_EQ(k, 1);
    EXPECT_EQ(v.second, 1.0);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 1);
}

TEST_P(StoreConformanceTest, MismatchedPartitionerThrows) {
  TableOptions options;
  options.parts = 4;
  options.partitioner = makeDefaultPartitioner(2);  // Wrong part count.
  EXPECT_THROW(store_->createTable("bad", std::move(options)),
               std::invalid_argument);
}

TEST_P(StoreConformanceTest, DrainPartIsKeySorted) {
  // The canonical drain-order contract (DESIGN.md §10): every backend
  // drains in ascending byte-lexicographic key order even on unordered
  // tables, because the sync engine drives compute — and therefore the
  // aggregators' floating-point fold order — in drain order.
  TablePtr t = makeTable("t", 3);
  for (int i = 97; i >= 0; --i) {
    t->put("k" + std::to_string(i * 37 % 100), std::to_string(i));
  }
  std::size_t total = 0;
  for (std::uint32_t p = 0; p < 3; ++p) {
    const auto drained = t->drainPart(p);
    EXPECT_TRUE(std::is_sorted(
        drained.begin(), drained.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }))
        << "part " << p << " drained out of key order";
    total += drained.size();
  }
  EXPECT_EQ(total, 98u);
}

TEST_P(StoreConformanceTest, ReadOnlySealRejectsMutations) {
  TablePtr t = makeTable("t", 2);
  t->put("k", "v");
  t->setReadOnly(true);
  EXPECT_TRUE(t->readOnly());
  EXPECT_EQ(t->get("k"), "v");  // Reads still fine.
  EXPECT_THROW(t->put("k", "w"), std::logic_error);
  EXPECT_THROW(t->erase("k"), std::logic_error);
  EXPECT_THROW(t->putBatch({{"a", "b"}}), std::logic_error);
  EXPECT_THROW(t->clearPart(0), std::logic_error);
  EXPECT_THROW(t->drainPart(0), std::logic_error);
  EXPECT_EQ(t->get("k"), "v");  // Nothing leaked through.
  EXPECT_EQ(t->size(), 1u);
  t->setReadOnly(false);
  t->put("k", "w");
  EXPECT_EQ(t->get("k"), "w");
}

TEST_P(StoreConformanceTest, ScopedSealUnsealsOnDestruction) {
  TablePtr t = makeTable("t", 1);
  {
    ScopedTableSeal seal(t);
    EXPECT_TRUE(t->readOnly());
    EXPECT_THROW(t->put("k", "v"), std::logic_error);
  }
  EXPECT_FALSE(t->readOnly());
  t->put("k", "v");
  EXPECT_EQ(t->get("k"), "v");
}

TEST_P(StoreConformanceTest, UbiquitousSealRejectsWrites) {
  TableOptions options;
  options.ubiquitous = true;
  TablePtr u = store_->createTable("u", std::move(options));
  u->put("config", "1");
  ScopedTableSeal seal(u);
  EXPECT_THROW(u->put("config", "2"), std::logic_error);
  EXPECT_THROW(u->erase("config"), std::logic_error);
  EXPECT_EQ(u->get("config"), "1");
  seal.release();
  u->put("config", "2");
  EXPECT_EQ(u->get("config"), "2");
}

TEST_P(StoreConformanceTest, AdoptPartThreadMakesOpsLocal) {
  TablePtr t = makeTable("t", 4);
  // Find a key owned by part 0.
  std::string key;
  for (int i = 0;; ++i) {
    key = "k" + std::to_string(i);
    if (t->partOf(key) == 0) {
      break;
    }
  }
  std::thread worker([&] {
    auto token = store_->adoptPartThread(*t, 0);
    const std::uint64_t localBefore = store_->metrics().localOps.load();
    t->put(key, "v");
    EXPECT_GT(store_->metrics().localOps.load(), localBefore)
        << "op from an adopted thread must be accounted local";
  });
  worker.join();
  EXPECT_EQ(t->get(key), "v");
}

TEST_P(StoreConformanceTest, AdoptPartThreadRejectsBadPart) {
  TablePtr t = makeTable("t", 2);
  EXPECT_THROW(store_->adoptPartThread(*t, 9), std::out_of_range);
}

TEST_P(StoreConformanceTest, PostToPartEventuallyRuns) {
  TablePtr t = makeTable("t", 2);
  std::atomic<int> ran{0};
  store_->postToPart(*t, 1, [&] { ran.fetch_add(1); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ran.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 1);
  EXPECT_THROW(store_->postToPart(*t, 7, [] {}), std::out_of_range);
}

TEST_P(StoreConformanceTest, BackendNameIsConcrete) {
  // Decorators must forward the wrapped store's identity, so every
  // factory in this suite resolves to a concrete backend name.
  const std::string name = store_->backendName();
  EXPECT_TRUE(name == "local" || name == "partitioned" || name == "shard" ||
              name == "remote" || name == "log")
      << name;
}

TEST_P(StoreConformanceTest, ConcurrentWritersStayConsistent) {
  // Mixed put/get/erase from several client threads; sized for the TSan
  // CI leg as much as for the final assertions.
  TablePtr t = makeTable("t", 4);
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        const std::string key =
            "w" + std::to_string(w) + "-" + std::to_string(i);
        t->put(key, std::to_string(i));
        if (i % 3 == 0) {
          EXPECT_EQ(t->get(key), std::to_string(i));
        }
        if (i % 7 == 0) {
          EXPECT_TRUE(t->erase(key));
          t->put(key, std::to_string(i));
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(t->size(),
            static_cast<std::uint64_t>(kThreads) * kKeysPerThread);
  EXPECT_EQ(t->get("w2-123"), "123");
}

INSTANTIATE_TEST_SUITE_P(
    Stores, StoreConformanceTest,
    ::testing::Values(
        StoreFactory{"LocalStore", &makeLocal},
        StoreFactory{"PartitionedStore", &makePartitioned},
        StoreFactory{"ShardStore", &makeShard},
        StoreFactory{"RemoteStore", &makeRemote},
        StoreFactory{"DroppyRemoteStore", &makeDroppyRemote},
        StoreFactory{"FaultyLocalStore", &makeFaultyLocal},
        StoreFactory{"FaultyPartitionedStore", &makeFaultyPartitioned},
        StoreFactory{"FaultyShardStore", &makeFaultyShard},
        StoreFactory{"FaultyRemoteStore", &makeFaultyRemote},
        StoreFactory{"LogStore", &makeLog},
        StoreFactory{"FaultyLogStore", &makeFaultyLog},
        StoreFactory{"DroppyLogRemoteStore", &makeDroppyLogRemote},
        StoreFactory{"ReopenedLogStore", &makeReopenedLog}),
    [](const ::testing::TestParamInfo<StoreFactory>& info) {
      return info.param.name;
    });

TEST(LogStoreReopenLeg, ReopenProbeFailsOnBrokenManifest) {
  // The same close/reopen sequence makeReopenedLog runs, with one byte of
  // the manifest's final commit record flipped in between.  Recovery must
  // reject the torn commit and roll back to an empty store, making the
  // reopen probe's marker check fail — evidence that the ReopenedLogStore
  // leg detects broken recovery rather than vacuously passing.
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("ripple-spi-manifest-" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  {
    std::shared_ptr<LogStore> first = LogStore::open(dir);
    TableOptions options;
    options.parts = 2;
    TablePtr marker =
        first->createTable("__reopen_marker", std::move(options));
    marker->put("k", "survives");
  }
  {
    std::fstream f(dir + "/MANIFEST",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    ASSERT_GT(size, 0);
    f.seekg(size - 1);
    char last = 0;
    f.read(&last, 1);
    last = static_cast<char>(last ^ 0x5a);
    f.seekp(size - 1);
    f.write(&last, 1);
    ASSERT_TRUE(f.good());
  }
  std::shared_ptr<LogStore> reopened = LogStore::open(dir);
  EXPECT_EQ(reopened->lookupTable("__reopen_marker"), nullptr)
      << "a torn final commit must roll the store back to the prior epoch";
  reopened.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ripple::kv
