// Torn-write crash matrix for the durable log store (DESIGN.md §14).
//
// The tests build a reference store with two committed epochs, snapshot
// the directory after each, and then replay every crash state a power
// cut could leave behind:
//
//  * the manifest cut at EVERY byte boundary (mid-begin, begin-without-
//    commit, torn commit record, clean commit boundary), and
//  * a part log cut at EVERY byte boundary of the bytes one epoch
//    appended, under a begin-without-commit manifest.
//
// Recovery must land exactly on the last committed epoch: the full
// content of that epoch, no partial records, and nothing from the torn
// epoch.  Corruption *inside* a committed prefix is different — that is
// fatal (SegmentError), never silently patched over.
//
// Every scenario works on a copy of a snapshot, never the original, so
// the matrices are independent and order-insensitive.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <unistd.h>

#include <gtest/gtest.h>

#include "kvstore/log_store.h"
#include "kvstore/manifest.h"
#include "kvstore/segment.h"
#include "kvstore/table.h"

namespace fs = std::filesystem;
namespace kv = ripple::kv;
namespace ls = ripple::kv::logstore;

namespace {

constexpr const char* kTable = "pages";
constexpr std::uint32_t kParts = 3;

/// Gather a table's full contents; part enumeration may be concurrent.
class Collector : public kv::PairConsumer {
 public:
  bool consume(std::uint32_t /*part*/, kv::KeyView key,
               kv::ValueView value) override {
    std::lock_guard<std::mutex> lock(mu_);
    pairs_.emplace(std::string(key), std::string(value));
    return true;
  }

  std::map<std::string, std::string> pairs_;

 private:
  std::mutex mu_;
};

std::map<std::string, std::string> contents(kv::KVStore& store) {
  kv::TablePtr t = store.lookupTable(kTable);
  if (t == nullptr) {
    return {};
  }
  Collector c;
  t->enumerate(c);
  return std::move(c.pairs_);
}

void copyDir(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    fs::copy_file(entry.path(), to / entry.path().filename());
  }
}

void flipByte(const fs::path& p, std::uint64_t off) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << p;
  f.seekg(static_cast<std::streamoff>(off));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(off));
  f.put(static_cast<char>(c ^ 0x5a));
}

void appendBytes(const fs::path& p, const std::string& bytes) {
  std::ofstream f(p, std::ios::app | std::ios::binary);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class LogStoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("ripple-logrec-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  std::shared_ptr<kv::LogStore> open(const fs::path& dir) {
    kv::LogStore::Options o;
    o.path = dir.string();
    // Compaction only via compactNow() so the matrices pin file states.
    o.backgroundCompaction = false;
    return kv::LogStore::open(std::move(o));
  }

  std::shared_ptr<kv::LogStore> openBudget(const fs::path& dir,
                                           std::size_t budget) {
    kv::LogStore::Options o;
    o.path = dir.string();
    o.backgroundCompaction = false;
    o.memoryBudgetBytes = budget;
    return kv::LogStore::open(std::move(o));
  }

  /// Two sessions against `base`, snapshotting the directory after each
  /// clean close.  Epoch numbering on disk: the explicit commit plus the
  /// destructor's shutdown commit per session, all carrying the same
  /// content — so snapA holds epochs {1..epochA_} with contentA_, and
  /// snapB additionally {epochA_+1..epochB_} with contentB_.
  void buildReference() {
    const fs::path base = root_ / "base";
    {
      auto store = open(base);
      kv::TableOptions opts;
      opts.parts = kParts;
      kv::TablePtr t = store->createTable(kTable, opts);
      for (int i = 0; i < 24; ++i) {
        t->put("k" + std::to_string(i), "a" + std::to_string(i * 3));
      }
      store->commitEpoch();
      contentA_ = contents(*store);
    }
    copyDir(base, snapA_ = root_ / "snapA");
    {
      auto store = open(base);
      kv::TablePtr t = store->lookupTable(kTable);
      ASSERT_NE(t, nullptr);
      for (int i = 24; i < 40; ++i) {
        t->put("k" + std::to_string(i), "b" + std::to_string(i));
      }
      for (int i = 0; i < 8; i += 2) {
        t->erase("k" + std::to_string(i));
      }
      t->put("k1", "rewritten");
      store->commitEpoch();
      contentB_ = contents(*store);
    }
    copyDir(base, snapB_ = root_ / "snapB");
    // Committed-epoch numbers come from a recovery, not from the writing
    // sessions (the destructor commits once more on close).
    epochA_ = probeEpoch(snapA_);
    epochB_ = probeEpoch(snapB_);
    ASSERT_GT(epochA_, 0u);
    ASSERT_GT(epochB_, epochA_);
    ASSERT_NE(contentA_, contentB_);
  }

  std::uint64_t probeEpoch(const fs::path& snap) {
    const fs::path work = root_ / "probe";
    copyDir(snap, work);
    auto store = open(work);
    EXPECT_EQ(contents(*store),
              snap == snapA_ ? contentA_ : contentB_);
    return store->lastCommittedEpoch();
  }

  /// Open a crash-state copy and assert it recovered to a whole epoch:
  /// nothing (epoch 0), all of A, or all of B — never a blend.
  enum class Landed { kFresh, kA, kB };
  Landed assertWholeEpoch(const fs::path& work, const std::string& what) {
    auto store = open(work);
    const std::uint64_t epoch = store->lastCommittedEpoch();
    const std::map<std::string, std::string> got = contents(*store);
    if (epoch == 0) {
      EXPECT_EQ(store->lookupTable(kTable), nullptr) << what;
      EXPECT_TRUE(got.empty()) << what;
      return Landed::kFresh;
    }
    if (epoch <= epochA_) {
      EXPECT_EQ(got, contentA_) << what << " (epoch " << epoch << ")";
      return Landed::kA;
    }
    EXPECT_LE(epoch, epochB_) << what;
    EXPECT_EQ(got, contentB_) << what << " (epoch " << epoch << ")";
    return Landed::kB;
  }

  fs::path root_;
  fs::path snapA_;
  fs::path snapB_;
  std::map<std::string, std::string> contentA_;
  std::map<std::string, std::string> contentB_;
  std::uint64_t epochA_ = 0;
  std::uint64_t epochB_ = 0;
};

// Power cut while appending to the MANIFEST: truncate it at every byte
// boundary from empty through the final commit.  Each prefix must
// recover to exactly the newest commit it wholly contains.
TEST_F(LogStoreRecoveryTest, ManifestTornAtEveryByte) {
  buildReference();
  const std::uintmax_t full = fs::file_size(snapB_ / "MANIFEST");
  bool sawFresh = false;
  bool sawA = false;
  bool sawB = false;
  const fs::path work = root_ / "work";
  for (std::uintmax_t cut = 0; cut <= full; ++cut) {
    copyDir(snapB_, work);
    fs::resize_file(work / "MANIFEST", cut);
    switch (assertWholeEpoch(work, "manifest cut at " + std::to_string(cut))) {
      case Landed::kFresh:
        sawFresh = true;
        break;
      case Landed::kA:
        sawA = true;
        break;
      case Landed::kB:
        sawB = true;
        break;
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      break;  // One broken boundary is enough signal; don't spam.
    }
  }
  // The matrix must actually have exercised all three regimes.
  EXPECT_TRUE(sawFresh);
  EXPECT_TRUE(sawA);
  EXPECT_TRUE(sawB);
}

// Regression for the append-after-garbage hazard: recovery must trim a
// manifest down to its valid prefix (to zero when no commit survived the
// cut) BEFORE new epochs append to it.  Otherwise the bad bytes sit in
// front of every future commit and the NEXT recovery, whose scan stops
// at the first bad frame, silently opens fresh and deletes the new
// commits' files.  So: cut, reopen, commit a new epoch, reopen again —
// the new epoch must always be there.
TEST_F(LogStoreRecoveryTest, CommitAfterTornManifestSurvivesReopen) {
  buildReference();
  const std::uintmax_t full = fs::file_size(snapB_ / "MANIFEST");
  const fs::path work = root_ / "work";
  for (std::uintmax_t cut = 0; cut <= full; ++cut) {
    copyDir(snapB_, work);
    fs::resize_file(work / "MANIFEST", cut);
    const std::string marker = "cut" + std::to_string(cut);
    std::uint64_t epoch = 0;
    {
      auto store = open(work);
      epoch = store->lastCommittedEpoch();
      kv::TablePtr t = store->lookupTable(kTable);
      if (t == nullptr) {
        kv::TableOptions opts;
        opts.parts = kParts;
        t = store->createTable(kTable, opts);
      }
      t->put("marker", marker);
      store->commitEpoch();
    }
    {
      auto store = open(work);
      EXPECT_GT(store->lastCommittedEpoch(), epoch)
          << "manifest cut at " << cut;
      kv::TablePtr t = store->lookupTable(kTable);
      ASSERT_NE(t, nullptr) << "manifest cut at " << cut;
      EXPECT_EQ(t->get("marker"), std::optional<kv::Value>(marker))
          << "manifest cut at " << cut;
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      break;
    }
  }
}

// Same hazard with garbage instead of a truncation: a pure-garbage
// manifest opens fresh, and an epoch committed afterwards must survive
// the next reopen (recovery truncated the garbage rather than letting
// the commit land behind it).
TEST_F(LogStoreRecoveryTest, CommitAfterGarbageManifestSurvivesReopen) {
  buildReference();
  const fs::path work = root_ / "work";
  copyDir(snapB_, work);
  std::ofstream(work / "MANIFEST", std::ios::trunc | std::ios::binary)
      << std::string(64, '\xee');
  {
    auto store = open(work);
    ASSERT_EQ(store->lastCommittedEpoch(), 0u);
    kv::TableOptions opts;
    opts.parts = kParts;
    kv::TablePtr t = store->createTable(kTable, opts);
    t->put("phoenix", "risen");
    store->commitEpoch();
  }
  {
    auto store = open(work);
    EXPECT_GT(store->lastCommittedEpoch(), 0u);
    kv::TablePtr t = store->lookupTable(kTable);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->get("phoenix"), std::optional<kv::Value>("risen"));
  }
}

// Power cut while appending to a part log: epoch A committed, a begin
// record for the next epoch written, and the log's new tail torn at
// every byte boundary.  Recovery must truncate the tail and land on
// epoch A with no partial records visible.
TEST_F(LogStoreRecoveryTest, PartLogTornAtEveryByte) {
  buildReference();
  std::string begin;
  ls::appendFrame(begin, ls::encodeBeginRecord(epochA_ + 1));
  const fs::path work = root_ / "work";
  int grownLogs = 0;
  for (const auto& entry : fs::directory_iterator(snapB_)) {
    const fs::path name = entry.path().filename();
    if (name.extension() != ".log") {
      continue;
    }
    const std::uintmax_t lenB = fs::file_size(entry.path());
    const std::uintmax_t lenA =
        fs::exists(snapA_ / name) ? fs::file_size(snapA_ / name) : 0;
    if (lenB <= lenA) {
      continue;  // This part saw no epoch-B appends.
    }
    ++grownLogs;
    for (std::uintmax_t cut = lenA; cut <= lenB; ++cut) {
      copyDir(snapA_, work);
      appendBytes(work / "MANIFEST", begin);  // begin, no commit
      fs::copy_file(entry.path(), work / name,
                    fs::copy_options::overwrite_existing);
      fs::resize_file(work / name, cut);
      ASSERT_EQ(assertWholeEpoch(work, name.string() + " cut at " +
                                           std::to_string(cut)),
                Landed::kA);
      if (HasFatalFailure() || HasNonfatalFailure()) {
        return;
      }
    }
  }
  // Sixteen puts plus erases must have touched every part's log.
  EXPECT_EQ(grownLogs, static_cast<int>(kParts));
}

// A log shorter than its committed length means committed data is gone:
// fatal, never a silent rollback.
TEST_F(LogStoreRecoveryTest, LogShorterThanCommittedLengthIsFatal) {
  buildReference();
  const fs::path work = root_ / "work";
  for (const auto& entry : fs::directory_iterator(snapB_)) {
    const fs::path name = entry.path().filename();
    if (name.extension() != ".log" || fs::file_size(entry.path()) == 0) {
      continue;
    }
    copyDir(snapB_, work);
    fs::resize_file(work / name, fs::file_size(entry.path()) / 2);
    EXPECT_THROW(open(work), ls::SegmentError) << name;
    return;  // One file suffices; the check is per-part identical.
  }
  FAIL() << "no non-empty part log found";
}

// A bit flip inside the committed prefix of a part log is fatal.
TEST_F(LogStoreRecoveryTest, CorruptCommittedLogIsFatal) {
  buildReference();
  const fs::path work = root_ / "work";
  for (const auto& entry : fs::directory_iterator(snapB_)) {
    const fs::path name = entry.path().filename();
    if (name.extension() != ".log" || fs::file_size(entry.path()) == 0) {
      continue;
    }
    copyDir(snapB_, work);
    flipByte(work / name, fs::file_size(entry.path()) / 2);
    EXPECT_THROW(open(work), ls::SegmentError) << name;
    return;
  }
  FAIL() << "no non-empty part log found";
}

// A torn manifest with garbage appended (not a clean truncation) still
// recovers to the last commit: the scan stops at the first bad frame.
TEST_F(LogStoreRecoveryTest, TrailingManifestGarbageIgnored) {
  buildReference();
  const fs::path work = root_ / "work";
  copyDir(snapB_, work);
  appendBytes(work / "MANIFEST", std::string(97, '\x7f'));
  EXPECT_EQ(assertWholeEpoch(work, "trailing garbage"), Landed::kB);
}

// A manifest that is pure garbage has no commit: the store opens fresh
// and deletes the unreferenced part files.
TEST_F(LogStoreRecoveryTest, GarbageManifestOpensFresh) {
  buildReference();
  const fs::path work = root_ / "work";
  copyDir(snapB_, work);
  std::ofstream(work / "MANIFEST", std::ios::trunc | std::ios::binary)
      << std::string(64, '\xee');
  EXPECT_EQ(assertWholeEpoch(work, "garbage manifest"), Landed::kFresh);
  // Recovery removed the stray part files the manifest no longer names.
  for (const auto& entry : fs::directory_iterator(work)) {
    EXPECT_EQ(entry.path().filename().string(), "MANIFEST");
  }
}

// Crash after a compaction wrote its new generation but before any
// commit referenced it: recovery uses the old generation (still intact)
// and deletes the orphaned new-generation files.
TEST_F(LogStoreRecoveryTest, CrashMidCompactionRecoversOldGeneration) {
  const fs::path base = root_ / "cbase";
  std::map<std::string, std::string> expected;
  std::uint64_t epoch = 0;
  auto store = open(base);
  {
    kv::TableOptions opts;
    opts.parts = kParts;
    kv::TablePtr t = store->createTable(kTable, opts);
    for (int i = 0; i < 24; ++i) {
      t->put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    store->commitEpoch();
    epoch = store->lastCommittedEpoch();
    expected = contents(*store);
    store->compactNow();  // New generation on disk, not yet committed.
  }
  // Snapshot the directory as a power cut would leave it (the live store
  // stays open so its shutdown commit cannot retroactively bless the
  // new generation in our copy).
  const fs::path crash = root_ / "crash";
  copyDir(base, crash);
  bool sawNewGen = false;
  for (const auto& entry : fs::directory_iterator(crash)) {
    sawNewGen |= entry.path().filename().string().find("_g2") !=
                 std::string::npos;
  }
  ASSERT_TRUE(sawNewGen) << "compaction should have written gen-2 files";
  {
    auto recovered = open(crash);
    EXPECT_EQ(recovered->lastCommittedEpoch(), epoch);
    EXPECT_EQ(contents(*recovered), expected);
    for (const auto& entry : fs::directory_iterator(crash)) {
      EXPECT_EQ(entry.path().filename().string().find("_g2"),
                std::string::npos)
          << "stray " << entry.path().filename();
    }
  }
  store.reset();
}

// Eviction × crash interplay: under a tiny memory budget every mutation
// forces an eviction, which folds the part into a NEW uncommitted
// segment generation on disk.  Commit, keep mutating (more evictions,
// more uncommitted generations), then cut power before the next commit.
// Recovery must land on the last committed epoch exactly — never a blend
// of committed state with evicted-then-rewritten data, because the
// manifest still names the committed generations and everything newer is
// a stray.
TEST_F(LogStoreRecoveryTest, EvictThenMutateThenCrashLandsOnCommit) {
  const fs::path base = root_ / "ebase";
  std::map<std::string, std::string> committed;
  std::uint64_t epoch = 0;
  auto store = openBudget(base, 1);  // Evict after every single op.
  {
    kv::TableOptions opts;
    opts.parts = kParts;
    kv::TablePtr t = store->createTable(kTable, opts);
    for (int i = 0; i < 24; ++i) {
      t->put("k" + std::to_string(i), "committed" + std::to_string(i));
    }
    ASSERT_GT(store->stats().evictions, 0u);
    ASSERT_LE(store->stats().residentBytes, 1u);
    store->commitEpoch();
    epoch = store->lastCommittedEpoch();
    committed = contents(*store);
    // Mutate the evicted parts again: each op reloads nothing (the state
    // is sealed), buffers the write, and is immediately evicted into yet
    // another uncommitted generation.
    for (int i = 0; i < 24; i += 2) {
      t->put("k" + std::to_string(i), "UNCOMMITTED");
    }
    t->erase("k1");
    t->put("k100", "UNCOMMITTED");
  }
  // Snapshot the directory as a power cut would leave it (the live store
  // stays open so its shutdown commit cannot bless the new generations
  // in our copy).
  const fs::path crash = root_ / "crash";
  copyDir(base, crash);
  {
    auto recovered = open(crash);
    EXPECT_EQ(recovered->lastCommittedEpoch(), epoch);
    EXPECT_EQ(contents(*recovered), committed);
  }
  // Same crash state recovered under a budget (lazy, read-through open)
  // must land on the identical epoch and contents.
  const fs::path crash2 = root_ / "crash2";
  copyDir(base, crash2);
  {
    auto recovered = openBudget(crash2, 1);
    EXPECT_EQ(recovered->lastCommittedEpoch(), epoch);
    EXPECT_EQ(contents(*recovered), committed);
  }
  store.reset();
}

// A bit flip in a committed sealed segment is fatal at open.
TEST_F(LogStoreRecoveryTest, CorruptSealedSegmentIsFatal) {
  const fs::path base = root_ / "sbase";
  {
    auto store = open(base);
    kv::TableOptions opts;
    opts.parts = kParts;
    kv::TablePtr t = store->createTable(kTable, opts);
    for (int i = 0; i < 24; ++i) {
      t->put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    store->commitEpoch();
    store->compactNow();
    store->commitEpoch();  // Manifest now references the sealed files.
  }
  const fs::path work = root_ / "work";
  copyDir(base, work);
  for (const auto& entry : fs::directory_iterator(work)) {
    if (entry.path().extension() == ".seg" &&
        fs::file_size(entry.path()) > 0) {
      flipByte(entry.path(), fs::file_size(entry.path()) / 2);
      EXPECT_THROW(open(work), ls::SegmentError)
          << entry.path().filename();
      return;
    }
  }
  FAIL() << "no sealed segment found after compaction";
}

// size()/partSize() must count the sealed entries after recovery, not
// just the keys replayed from the committed log on top of them.
TEST_F(LogStoreRecoveryTest, SizeSurvivesCompactedReopen) {
  const fs::path base = root_ / "szbase";
  {
    auto store = open(base);
    kv::TableOptions opts;
    opts.parts = kParts;
    kv::TablePtr t = store->createTable(kTable, opts);
    for (int i = 0; i < 24; ++i) {
      t->put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    store->compactNow();
    store->commitEpoch();
    t->put("k100", "post");  // One net-new key through the log...
    t->erase("k3");          // ...one sealed key erased through it.
    store->commitEpoch();
    ASSERT_EQ(t->size(), 24u);
  }
  {
    auto store = open(base);
    kv::TablePtr t = store->lookupTable(kTable);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->size(), 24u);
    std::uint64_t sum = 0;
    for (std::uint32_t p = 0; p < t->numParts(); ++p) {
      sum += t->partSize(p);
    }
    EXPECT_EQ(sum, 24u);
  }
}

// Reopening after compaction + commit round-trips through the sealed
// generation: the recovered store reads from segments, not logs.
TEST_F(LogStoreRecoveryTest, SealedGenerationRoundTrips) {
  const fs::path base = root_ / "rbase";
  std::map<std::string, std::string> expected;
  {
    auto store = open(base);
    kv::TableOptions opts;
    opts.parts = kParts;
    kv::TablePtr t = store->createTable(kTable, opts);
    for (int i = 0; i < 24; ++i) {
      t->put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    store->commitEpoch();
    store->compactNow();
    store->commitEpoch();
    t->put("k100", "after-compaction");
    t->erase("k3");
    store->commitEpoch();
    expected = contents(*store);
  }
  {
    auto store = open(base);
    EXPECT_EQ(contents(*store), expected);
    const kv::LogStore::Stats stats = store->stats();
    EXPECT_GT(stats.sealedSegments, 0u);
    // Point reads hit the sealed segment through the recovered store.
    kv::TablePtr t = store->lookupTable(kTable);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->get("k5"), std::optional<kv::Value>("v5"));
    EXPECT_EQ(t->get("k3"), std::nullopt);
    EXPECT_EQ(t->get("k100"), std::optional<kv::Value>("after-compaction"));
  }
}

}  // namespace
