// The typed public API (paper Listings 1-3 rendered in C++): typed
// contexts, combiners, loaders, and the Job/Compute adapter.

#include "ebsp/job.h"

#include <gtest/gtest.h>

#include <mutex>

#include "kvstore/partitioned_store.h"
#include "kvstore/store_util.h"

namespace ripple::ebsp {
namespace {

struct Account {
  std::int64_t balance = 0;
  std::string owner;

  bool operator==(const Account&) const = default;

  void encodeTo(ByteWriter& w) const {
    w.putVarintSigned(balance);
    w.putBytes(owner);
  }
  static Account decodeFrom(ByteReader& r) {
    Account a;
    a.balance = r.getVarintSigned();
    a.owner = Bytes(r.getBytes());
    return a;
  }
};

/// Transfers: message = amount; each account applies incoming amounts and
/// forwards half of any surplus over 100 to account key+1 (mod 8).
class TransferCompute : public Compute<int, Account, std::int64_t> {
 public:
  bool compute(Context& ctx) override {
    Account account = ctx.readState().value_or(Account{0, "auto"});
    for (const std::int64_t amount : ctx.inputMessages()) {
      account.balance += amount;
    }
    if (account.balance > 100) {
      const std::int64_t surplus = (account.balance - 100) / 2;
      if (surplus > 0) {
        ctx.sendMessage((ctx.key() + 1) % 8, surplus);
        account.balance -= surplus;
      }
    }
    ctx.writeState(account);
    ctx.aggregate("totalBalance", account.balance);
    return false;
  }

  std::int64_t combineMessages(const int&, const std::int64_t& a,
                               const std::int64_t& b) override {
    return a + b;
  }
  bool hasMessageCombiner() const override { return true; }
};

class TransferJob : public Job<int, Account, std::int64_t> {
 public:
  std::vector<std::string> stateTableNames() const override {
    return {"accounts"};
  }
  std::shared_ptr<ComputeType> getCompute() override {
    return std::make_shared<TransferCompute>();
  }
  std::vector<AggregatorDecl> aggregators() const override {
    return {{"totalBalance", sumAggregator<std::int64_t>()}};
  }
  std::string referenceTable() const override { return "accounts"; }
  std::vector<RawLoaderPtr> loaders() const override {
    auto loader = makeTypedLoader<int, std::int64_t>(
        [](TypedLoader<int, std::int64_t>::Context& ctx) {
          ctx.emitMessage(0, 1000);  // Seed account 0 with 1000.
          ctx.putState(0, 3, Account{50, "carol"});
        });
    return {loader};
  }
};

TEST(TypedJob, EndToEnd) {
  auto store = kv::PartitionedStore::create(4);
  kv::TableOptions options;
  options.parts = 4;
  store->createTable("accounts", options);
  Engine engine(store);
  TransferJob job;
  const JobResult r = runJob(engine, job);

  // Money is conserved: total = 1000 seeded + 50 preloaded.
  kv::TypedTable<int, Account> accounts(store->lookupTable("accounts"));
  std::int64_t total = 0;
  accounts.forEach([&](const int&, const Account& a) {
    total += a.balance;
    return true;
  });
  EXPECT_EQ(total, 1050);
  EXPECT_GT(r.steps, 1);
  // Preloaded state survived untouched content-wise except balance flow.
  EXPECT_EQ(accounts.get(3)->owner, "carol");
}

TEST(TypedContext, ReadWriteStateHelper) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  store->createTable("t", options);

  struct RwCompute : Compute<int, std::int64_t, std::int64_t> {
    bool compute(Context& ctx) override {
      ctx.readWriteState([](std::int64_t& v) { v += 10; });
      return ctx.stepNum() < 3;
    }
  };
  struct RwJob : Job<int, std::int64_t, std::int64_t> {
    std::vector<std::string> stateTableNames() const override { return {"t"}; }
    std::shared_ptr<ComputeType> getCompute() override {
      return std::make_shared<RwCompute>();
    }
    std::string referenceTable() const override { return "t"; }
    std::vector<RawLoaderPtr> loaders() const override {
      auto loader = std::make_shared<VectorLoader>();
      loader->enable(encodeToBytes(5));
      return {loader};
    }
  };

  Engine engine(store);
  RwJob job;
  runJob(engine, job);
  kv::TypedTable<int, std::int64_t> t(store->lookupTable("t"));
  EXPECT_EQ(t.get(5), 30);  // 3 invocations x +10, from default 0.
}

TEST(TypedContext, CreateStateWithTypedCombiner) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions options;
  options.parts = 2;
  store->createTable("t", options);

  struct CreateCompute : Compute<int, std::int64_t, std::int64_t> {
    bool compute(Context& ctx) override {
      ctx.createState(999, 1);
      return false;
    }
    std::int64_t combineStates(const int&, const std::int64_t& a,
                               const std::int64_t& b) override {
      return a + b;
    }
    bool hasStateCombiner() const override { return true; }
  };
  struct CreateJob : Job<int, std::int64_t, std::int64_t> {
    std::vector<std::string> stateTableNames() const override { return {"t"}; }
    std::shared_ptr<ComputeType> getCompute() override {
      return std::make_shared<CreateCompute>();
    }
    std::string referenceTable() const override { return "t"; }
    std::vector<RawLoaderPtr> loaders() const override {
      auto loader = std::make_shared<VectorLoader>();
      for (int i = 0; i < 4; ++i) {
        loader->enable(encodeToBytes(i));
      }
      return {loader};
    }
  };

  Engine engine(store);
  CreateJob job;
  runJob(engine, job);
  kv::TypedTable<int, std::int64_t> t(store->lookupTable("t"));
  EXPECT_EQ(t.get(999), 4);
}

TEST(TypedJob, MissingComputeThrows) {
  struct BadJob : Job<int, int, int> {
    std::vector<std::string> stateTableNames() const override { return {"t"}; }
    std::shared_ptr<ComputeType> getCompute() override { return nullptr; }
    std::string referenceTable() const override { return "t"; }
  };
  BadJob job;
  EXPECT_THROW(toRawJob(job), std::invalid_argument);
}

TEST(TypedJob, DefaultCombinersThrowWhenNotImplemented) {
  struct Minimal : Compute<int, int, int> {
    bool compute(Context&) override { return false; }
  };
  Minimal compute;
  EXPECT_THROW(compute.combineMessages(1, 2, 3), std::logic_error);
  EXPECT_THROW(compute.combineStates(1, 2, 3), std::logic_error);
  EXPECT_FALSE(compute.hasMessageCombiner());
}

TEST(TypedJob, BroadcastAndDirectOutputTyped) {
  auto store = kv::PartitionedStore::create(2);
  kv::TableOptions refOptions;
  refOptions.parts = 2;
  store->createTable("t", refOptions);
  kv::TableOptions ubiOptions;
  ubiOptions.ubiquitous = true;
  kv::TypedTable<std::string, double> config(
      store->createTable("cfg", std::move(ubiOptions)));
  config.put("scale", 3.0);

  auto collector = std::make_shared<CollectingExporter>();

  struct BCompute : Compute<int, int, int, std::string, double> {
    bool compute(Context& ctx) override {
      const double scale =
          ctx.broadcast<double>(std::string("scale")).value_or(1.0);
      ctx.directOutput("scaled", scale * ctx.key());
      return false;
    }
  };
  struct BJob : Job<int, int, int, std::string, double> {
    explicit BJob(RawExporterPtr out) : out_(std::move(out)) {}
    std::vector<std::string> stateTableNames() const override { return {"t"}; }
    std::shared_ptr<ComputeType> getCompute() override {
      return std::make_shared<BCompute>();
    }
    std::string referenceTable() const override { return "t"; }
    std::string broadcastTable() const override { return "cfg"; }
    RawExporterPtr directOutputter() const override { return out_; }
    std::vector<RawLoaderPtr> loaders() const override {
      auto loader = std::make_shared<VectorLoader>();
      loader->enable(encodeToBytes(7));
      return {loader};
    }
    RawExporterPtr out_;
  };

  Engine engine(store);
  BJob job(collector);
  runJob(engine, job);
  auto pairs = collector->take();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(decodeFromBytes<std::string>(pairs[0].first), "scaled");
  EXPECT_EQ(decodeFromBytes<double>(pairs[0].second), 21.0);
}

}  // namespace
}  // namespace ripple::ebsp
