#include "ebsp/transport.h"

#include <gtest/gtest.h>

#include "kvstore/partitioned_store.h"

namespace ripple::ebsp {
namespace {

TEST(SpillKey, RoutesToDestinationPart) {
  auto partitioner = makeTransportPartitioner(6);
  for (std::uint32_t dest = 0; dest < 6; ++dest) {
    const kv::Key key = makeSpillKey(dest, 3, 12345);
    EXPECT_EQ(partitioner->partOf(key), dest);
  }
}

TEST(SpillKey, UniquePerSenderAndSequence) {
  EXPECT_NE(makeSpillKey(1, 2, 3), makeSpillKey(1, 2, 4));
  EXPECT_NE(makeSpillKey(1, 2, 3), makeSpillKey(1, 3, 3));
}

TEST(SpillCodec, RoundtripsAllRecordKinds) {
  std::vector<TransportRecord> records;
  TransportRecord msg;
  msg.kind = RecordKind::kMessage;
  msg.key = "dest";
  msg.payload = "payload";
  records.push_back(msg);
  TransportRecord enable;
  enable.kind = RecordKind::kEnable;
  enable.key = "wake";
  records.push_back(enable);
  TransportRecord create;
  create.kind = RecordKind::kCreate;
  create.key = "new";
  create.payload = "state";
  create.tabIdx = 2;
  records.push_back(create);

  const Bytes encoded = encodeSpill(records);
  std::vector<TransportRecord> decoded;
  decodeSpill(encoded,
              [&](TransportRecord&& r) { decoded.push_back(std::move(r)); });
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].key, "dest");
  EXPECT_EQ(decoded[0].payload, "payload");
  EXPECT_EQ(decoded[1].kind, RecordKind::kEnable);
  EXPECT_EQ(decoded[1].key, "wake");
  EXPECT_EQ(decoded[2].kind, RecordKind::kCreate);
  EXPECT_EQ(decoded[2].tabIdx, 2);
  EXPECT_EQ(decoded[2].payload, "state");
}

TEST(SpillCodec, TrailingGarbageThrows) {
  Bytes encoded = encodeSpill({});
  encoded.push_back('x');
  EXPECT_THROW(decodeSpill(encoded, [](TransportRecord&&) {}), CodecError);
}

class SpillWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = kv::PartitionedStore::create(4);
    kv::TableOptions options;
    options.parts = 4;
    options.partitioner = makeTransportPartitioner(4);
    transport_ = store_->createTable("tr", std::move(options));
    refPartitioner_ = makeDefaultPartitioner(4);
  }

  std::vector<TransportRecord> drainAll() {
    std::vector<TransportRecord> all;
    for (std::uint32_t p = 0; p < 4; ++p) {
      for (const auto& [k, v] : transport_->drainPart(p)) {
        decodeSpill(v, [&](TransportRecord&& r) {
          all.push_back(std::move(r));
        });
      }
    }
    return all;
  }

  kv::KVStorePtr store_;
  kv::TablePtr transport_;
  PartitionerPtr refPartitioner_;
};

TEST_F(SpillWriterTest, BuffersUntilFlush) {
  SpillWriter writer(*transport_, 0, refPartitioner_, CombinerOps{}, 4096);
  writer.addMessage("a", "1");
  writer.addMessage("b", "2");
  EXPECT_EQ(transport_->size(), 0u);  // Nothing written yet.
  writer.flushAll();
  EXPECT_GT(transport_->size(), 0u);
  EXPECT_EQ(drainAll().size(), 2u);
  EXPECT_EQ(writer.messagesAdded(), 2u);
}

TEST_F(SpillWriterTest, AutoFlushesAtBatchLimit) {
  SpillWriter writer(*transport_, 0, refPartitioner_, CombinerOps{},
                     /*maxBatch=*/8);
  // 64 messages to one destination key => one part fills up and flushes.
  for (int i = 0; i < 64; ++i) {
    writer.addMessage("same-key", std::to_string(i));
  }
  EXPECT_GT(writer.spillsWritten(), 0u);
  writer.flushAll();
  EXPECT_EQ(drainAll().size(), 64u);
}

TEST_F(SpillWriterTest, RecordsLandInDestinationKeyPart) {
  SpillWriter writer(*transport_, 2, refPartitioner_, CombinerOps{}, 4096);
  const Bytes destKey = "component-x";
  const std::uint32_t expectedPart = refPartitioner_->partOf(destKey);
  writer.addMessage(destKey, "m");
  writer.flushAll();
  for (std::uint32_t p = 0; p < 4; ++p) {
    const auto drained = transport_->drainPart(p);
    if (p == expectedPart) {
      EXPECT_EQ(drained.size(), 1u);
    } else {
      EXPECT_TRUE(drained.empty());
    }
  }
}

TEST_F(SpillWriterTest, EagerCombiningMergesSameDestination) {
  auto combiner = [](BytesView, BytesView a, BytesView b) {
    return encodeToBytes(decodeFromBytes<std::int64_t>(a) +
                         decodeFromBytes<std::int64_t>(b));
  };
  SpillWriter writer(*transport_, 0, refPartitioner_, CombinerOps(combiner), 4096);
  for (int i = 1; i <= 10; ++i) {
    writer.addMessage("dest", encodeToBytes<std::int64_t>(i));
  }
  writer.addMessage("other", encodeToBytes<std::int64_t>(100));
  writer.flushAll();
  EXPECT_EQ(writer.combinerCalls(), 9u);

  const auto records = drainAll();
  ASSERT_EQ(records.size(), 2u);
  std::int64_t destSum = 0;
  for (const auto& r : records) {
    if (r.key == "dest") {
      destSum = decodeFromBytes<std::int64_t>(r.payload);
    }
  }
  EXPECT_EQ(destSum, 55);
}

TEST_F(SpillWriterTest, EnablesAndCreationsFlowThrough) {
  SpillWriter writer(*transport_, 1, refPartitioner_, CombinerOps{}, 4096);
  writer.addEnable("wake-me");
  writer.addCreate(1, "new-comp", "init");
  writer.flushAll();
  const auto records = drainAll();
  ASSERT_EQ(records.size(), 2u);
}

TEST_F(SpillWriterTest, ByteAccountingIsPlausible) {
  SpillWriter writer(*transport_, 0, refPartitioner_, CombinerOps{}, 4096);
  writer.addMessage("key", std::string(1000, 'p'));
  writer.flushAll();
  EXPECT_GT(writer.bytesWritten(), 1000u);
  EXPECT_EQ(writer.spillsWritten(), 1u);
}

TEST(CollectedValueCodec, Roundtrip) {
  CollectedValue v;
  v.enabled = true;
  v.messages = {"m1", "", "m3"};
  const CollectedValue out = decodeCollected(encodeCollected(v));
  EXPECT_TRUE(out.enabled);
  ASSERT_EQ(out.messages.size(), 3u);
  EXPECT_EQ(out.messages[0], "m1");
  EXPECT_EQ(out.messages[1], "");
  EXPECT_EQ(out.messages[2], "m3");

  const CollectedValue empty = decodeCollected(encodeCollected({}));
  EXPECT_FALSE(empty.enabled);
  EXPECT_TRUE(empty.messages.empty());
}

}  // namespace
}  // namespace ripple::ebsp
